// Line graph construction: L(G) has one node per edge of G, with two nodes
// adjacent iff the edges share an endpoint.  A maximal independent set of
// L(G) is exactly a maximal matching of G — the classic reduction used by
// apps::maximal_matching.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace beepmis::graph {

struct LineGraph {
  Graph graph;              ///< L(G)
  std::vector<Edge> edges;  ///< edges[i] is the G-edge represented by node i
};

/// Builds L(G).  Node i of the result corresponds to `edges[i]` (the
/// canonical, sorted edge list of `g`).  Cost O(sum_v deg(v)^2).
[[nodiscard]] LineGraph line_graph(const Graph& g);

/// True iff `matching` is a matching in `g` (edges exist and are pairwise
/// disjoint).
[[nodiscard]] bool is_matching(const Graph& g, std::span<const Edge> matching);

/// True iff `matching` is a *maximal* matching: a matching such that every
/// edge of `g` shares an endpoint with some matched edge.
[[nodiscard]] bool is_maximal_matching(const Graph& g, std::span<const Edge> matching);

}  // namespace beepmis::graph

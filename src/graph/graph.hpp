// Immutable simple undirected graph in compressed sparse row (CSR) form.
//
// All simulators and algorithms in this library operate on this one graph
// type.  Construction goes through GraphBuilder, which deduplicates edges,
// rejects self-loops and sorts adjacency lists, so a constructed Graph
// always satisfies the simple-graph invariants.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace beepmis::graph {

using NodeId = std::uint32_t;

/// Undirected edge; canonical form has u < v.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  friend constexpr bool operator==(const Edge&, const Edge&) = default;
  friend constexpr auto operator<=>(const Edge&, const Edge&) = default;
};

/// Returns the canonical (min, max) orientation of an edge.
[[nodiscard]] constexpr Edge canonical(Edge e) noexcept {
  return e.u <= e.v ? e : Edge{e.v, e.u};
}

class GraphBuilder;

/// Immutable simple undirected graph.  Neighbour lists are sorted, so
/// adjacency tests are O(log deg) and neighbour iteration is cache-friendly.
///
/// CSR offsets are stored as 32-bit values (halving offset-array memory
/// traffic on large graphs); a graph whose adjacency array exceeds the
/// 32-bit range — more than ~2.1 billion undirected edges — transparently
/// falls back to 64-bit offsets.  The fallback branch is perfectly
/// predicted (one representation per graph), so the common case pays only
/// the smaller cache footprint.
class Graph {
 public:
  Graph() = default;

  [[nodiscard]] NodeId node_count() const noexcept { return node_count_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return adjacency_.size() / 2; }

  /// Sorted neighbours of `v`.  Precondition: v < node_count().
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    if (wide_offsets_.empty()) [[likely]] {
      return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
    }
    return {adjacency_.data() + wide_offsets_[v], adjacency_.data() + wide_offsets_[v + 1]};
  }

  [[nodiscard]] std::size_t degree(NodeId v) const noexcept {
    if (wide_offsets_.empty()) [[likely]] {
      return offsets_[v + 1] - offsets_[v];
    }
    return wide_offsets_[v + 1] - wide_offsets_[v];
  }

  [[nodiscard]] std::size_t max_degree() const noexcept;
  [[nodiscard]] double mean_degree() const noexcept;

  /// O(log deg) adjacency test.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  /// All edges in canonical (u < v) order, sorted.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Human-readable one-line description ("Graph(n=20, m=95)").
  [[nodiscard]] std::string describe() const;

 private:
  friend class GraphBuilder;

  NodeId node_count_ = 0;
  /// Size n+1; offsets_[v]..offsets_[v+1] delimit v's slice of adjacency_.
  /// Empty iff wide_offsets_ is engaged (adjacency beyond 32-bit range).
  std::vector<std::uint32_t> offsets_;
  std::vector<std::size_t> wide_offsets_;  ///< 64-bit fallback, usually empty
  std::vector<NodeId> adjacency_;          ///< concatenated sorted neighbour lists
};

/// Mutable edge accumulator that produces an immutable Graph.
///
/// Self-loops are rejected (throw); duplicate edges are merged silently so
/// generators can add edges without bookkeeping.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId node_count) : node_count_(node_count) {}

  /// Adds undirected edge {u, v}.  Throws std::invalid_argument on a
  /// self-loop or out-of-range endpoint.
  GraphBuilder& add_edge(NodeId u, NodeId v);

  [[nodiscard]] NodeId node_count() const noexcept { return node_count_; }
  [[nodiscard]] std::size_t pending_edges() const noexcept { return edges_.size(); }

  /// Finalises into a Graph.  The builder may be reused afterwards (its
  /// pending edges are preserved).
  [[nodiscard]] Graph build() const;

 private:
  NodeId node_count_;
  std::vector<Edge> edges_;
};

/// Disjoint union: relabels `b`'s nodes to follow `a`'s.
[[nodiscard]] Graph disjoint_union(const Graph& a, const Graph& b);

/// Induced subgraph on `keep` (ids into `g`); returns the subgraph and the
/// mapping new-id -> old-id.
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> original_ids;
};
[[nodiscard]] InducedSubgraph induced_subgraph(const Graph& g, std::span<const NodeId> keep);

/// Complement graph (useful for tests: MIS(G) == max clique side-checks on
/// tiny instances).  Quadratic; intended for small graphs only.
[[nodiscard]] Graph complement(const Graph& g);

}  // namespace beepmis::graph

// Immutable simple undirected graph in compressed sparse row (CSR) form.
//
// All simulators and algorithms in this library operate on this one graph
// type.  Construction goes through GraphBuilder, which deduplicates edges,
// rejects self-loops and sorts adjacency lists, so a constructed Graph
// always satisfies the simple-graph invariants.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace beepmis::graph {

using NodeId = std::uint32_t;

/// Undirected edge; canonical form has u < v.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  friend constexpr bool operator==(const Edge&, const Edge&) = default;
  friend constexpr auto operator<=>(const Edge&, const Edge&) = default;
};

/// Returns the canonical (min, max) orientation of an edge.
[[nodiscard]] constexpr Edge canonical(Edge e) noexcept {
  return e.u <= e.v ? e : Edge{e.v, e.u};
}

class GraphBuilder;

/// Backend-independent read view of a CSR adjacency structure: (n+1)
/// offsets (narrow 32-bit or wide 64-bit — exactly one pointer set when
/// node_count > 0) delimiting slices of one concatenated sorted-neighbour
/// array.  This is the tier interface of the memory-tiered storage layer
/// (src/graph/README.md): the on-disk CSR writer (csr_file.hpp) consumes a
/// view, so it serialises an in-RAM and a memory-mapped graph identically,
/// and differential tests compare tiers element-by-element through it.
/// Non-owning — valid only while the Graph (or mapping) it came from lives.
struct AdjacencyView {
  NodeId node_count = 0;
  const std::uint32_t* offsets32 = nullptr;  ///< (n+1) narrow offsets, or
  const std::uint64_t* offsets64 = nullptr;  ///< (n+1) wide-fallback offsets
  const NodeId* adjacency = nullptr;
  std::uint64_t adjacency_count = 0;  ///< == offsets[node_count] == 2m

  [[nodiscard]] bool wide() const noexcept { return offsets64 != nullptr; }
  [[nodiscard]] std::uint64_t offset(NodeId i) const noexcept {
    return offsets32 != nullptr ? offsets32[i] : offsets64[i];
  }
  /// Sorted neighbours of `v`.  Precondition: v < node_count.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return {adjacency + offset(v), adjacency + offset(v + 1)};
  }
};

/// Immutable simple undirected graph.  Neighbour lists are sorted, so
/// adjacency tests are O(log deg) and neighbour iteration is cache-friendly.
///
/// CSR offsets are stored as 32-bit values (halving offset-array memory
/// traffic on large graphs); a graph whose adjacency array exceeds the
/// 32-bit range — more than ~2.1 billion undirected edges — transparently
/// falls back to 64-bit offsets.  The fallback branch is perfectly
/// predicted (one representation per graph), so the common case pays only
/// the smaller cache footprint.
///
/// Storage tiers: besides the in-RAM vectors filled by GraphBuilder, a
/// Graph can be backed by a read-only memory-mapped on-disk CSR file
/// (graph/csr_file.hpp's load_csr_file).  The accessors branch once per
/// call on the backend — one representation per graph, perfectly
/// predicted — so every simulator runs unmodified against either tier.
/// Copies of a mapped Graph share the mapping (shared_ptr keep-alive);
/// the mapping is released when the last copy goes away.
class Graph {
 public:
  Graph() = default;

  [[nodiscard]] NodeId node_count() const noexcept { return node_count_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return adjacency_size() / 2; }

  /// Length of the concatenated adjacency array (== 2m), whichever backend
  /// holds it.
  [[nodiscard]] std::size_t adjacency_size() const noexcept {
    return mapping_ == nullptr ? adjacency_.size()
                               : static_cast<std::size_t>(map_adjacency_count_);
  }

  /// Whether this graph reads from a memory-mapped on-disk CSR file.
  [[nodiscard]] bool memory_mapped() const noexcept { return mapping_ != nullptr; }

  /// Sorted neighbours of `v`.  Precondition: v < node_count().
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    if (mapping_ == nullptr) [[likely]] {
      if (wide_offsets_.empty()) [[likely]] {
        return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
      }
      return {adjacency_.data() + wide_offsets_[v], adjacency_.data() + wide_offsets_[v + 1]};
    }
    if (map_offsets32_ != nullptr) {
      return {map_adjacency_ + map_offsets32_[v], map_adjacency_ + map_offsets32_[v + 1]};
    }
    return {map_adjacency_ + map_offsets64_[v], map_adjacency_ + map_offsets64_[v + 1]};
  }

  [[nodiscard]] std::size_t degree(NodeId v) const noexcept {
    if (mapping_ == nullptr) [[likely]] {
      if (wide_offsets_.empty()) [[likely]] {
        return offsets_[v + 1] - offsets_[v];
      }
      return wide_offsets_[v + 1] - wide_offsets_[v];
    }
    if (map_offsets32_ != nullptr) {
      return map_offsets32_[v + 1] - map_offsets32_[v];
    }
    return static_cast<std::size_t>(map_offsets64_[v + 1] - map_offsets64_[v]);
  }

  /// Uniform read view of the active backend (see AdjacencyView).
  [[nodiscard]] AdjacencyView view() const noexcept;

  [[nodiscard]] std::size_t max_degree() const noexcept;
  [[nodiscard]] double mean_degree() const noexcept;

  /// O(log deg) adjacency test.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  /// All edges in canonical (u < v) order, sorted.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Human-readable one-line description ("Graph(n=20, m=95)").
  [[nodiscard]] std::string describe() const;

 private:
  friend class GraphBuilder;
  friend class MappedGraphFactory;  ///< csr_file.cpp's loader seam

  NodeId node_count_ = 0;
  /// Size n+1; offsets_[v]..offsets_[v+1] delimit v's slice of adjacency_.
  /// Empty iff wide_offsets_ is engaged (adjacency beyond 32-bit range) or
  /// the graph is memory-mapped.
  std::vector<std::uint32_t> offsets_;
  std::vector<std::size_t> wide_offsets_;  ///< 64-bit fallback, usually empty
  std::vector<NodeId> adjacency_;          ///< concatenated sorted neighbour lists

  /// Memory-mapped backend: an opaque keep-alive of the mapped region (a
  /// csr_file.cpp CsrMapping) plus raw pointers into it.  The pointers
  /// never point into this object's own vectors, so default copy/move keep
  /// them valid — copies just share the mapping.
  std::shared_ptr<const void> mapping_;
  const std::uint32_t* map_offsets32_ = nullptr;
  const std::uint64_t* map_offsets64_ = nullptr;
  const NodeId* map_adjacency_ = nullptr;
  std::uint64_t map_adjacency_count_ = 0;
};

/// Mutable edge accumulator that produces an immutable Graph.
///
/// Self-loops are rejected (throw); duplicate edges are merged silently so
/// generators can add edges without bookkeeping.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId node_count) : node_count_(node_count) {}

  /// Adds undirected edge {u, v}.  Throws std::invalid_argument on a
  /// self-loop or out-of-range endpoint.
  GraphBuilder& add_edge(NodeId u, NodeId v);

  [[nodiscard]] NodeId node_count() const noexcept { return node_count_; }
  [[nodiscard]] std::size_t pending_edges() const noexcept { return edges_.size(); }

  /// Finalises into a Graph.  The builder may be reused afterwards (its
  /// pending edges are preserved).
  [[nodiscard]] Graph build() const;

 private:
  NodeId node_count_;
  std::vector<Edge> edges_;
};

/// Disjoint union: relabels `b`'s nodes to follow `a`'s.
[[nodiscard]] Graph disjoint_union(const Graph& a, const Graph& b);

/// Induced subgraph on `keep` (ids into `g`); returns the subgraph and the
/// mapping new-id -> old-id.
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> original_ids;
};
[[nodiscard]] InducedSubgraph induced_subgraph(const Graph& g, std::span<const NodeId> keep);

/// Complement graph (useful for tests: MIS(G) == max clique side-checks on
/// tiny instances).  Quadratic; intended for small graphs only.
[[nodiscard]] Graph complement(const Graph& g);

}  // namespace beepmis::graph

// Graph generators for every workload in the paper's evaluation plus the
// example applications:
//   * G(n, p)            — Figures 3 and 5 use G(n, 1/2)
//   * clique family      — Theorem 1's lower-bound instance
//   * grid / hex lattice — §5 grid beeps claim; fly-epithelium example
//   * geometric          — sensor-network example (§6 motivation)
//   * plus standard families (ring, path, star, trees, hypercube, BA, ...)
#pragma once

#include <cstdint>

#include "graph/csr_file.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace beepmis::graph {

/// Erdős–Rényi G(n, p): each of the C(n,2) edges present independently with
/// probability p.  Uses a geometric skip for sparse p, direct sampling
/// otherwise; O(n + m) expected time for small p.
[[nodiscard]] Graph gnp(NodeId n, double p, support::Xoshiro256StarStar& rng);

/// Complete graph K_n.
[[nodiscard]] Graph complete(NodeId n);

/// Empty graph on n nodes (no edges).
[[nodiscard]] Graph empty_graph(NodeId n);

/// Theorem 1's lower-bound family: `copies` disjoint copies of K_d for each
/// d = 1..max_clique.  The paper uses copies = max_clique = n^{1/3}.
[[nodiscard]] Graph clique_family(NodeId max_clique, NodeId copies);

/// Convenience: the Theorem 1 graph parameterised by target size n
/// (max_clique = copies = floor(n^{1/3})).
[[nodiscard]] Graph clique_family_for_n(NodeId n);

/// Rectangular grid graph rows x cols (4-neighbour).
[[nodiscard]] Graph grid2d(NodeId rows, NodeId cols);

/// Hexagonal (triangular-lattice) grid: like grid2d plus one diagonal per
/// cell, giving each interior node 6 neighbours.  Models the fly's
/// epithelial cell packing.
[[nodiscard]] Graph hex_grid(NodeId rows, NodeId cols);

/// Cycle C_n (requires n >= 3).
[[nodiscard]] Graph ring(NodeId n);

/// Path P_n.
[[nodiscard]] Graph path(NodeId n);

/// Star K_{1,n-1}: node 0 is the hub.
[[nodiscard]] Graph star(NodeId n);

/// Uniform random labelled tree (random Prüfer sequence), n >= 1.
[[nodiscard]] Graph random_tree(NodeId n, support::Xoshiro256StarStar& rng);

/// Hypercube Q_d on 2^d nodes (d <= 20).
[[nodiscard]] Graph hypercube(unsigned dimension);

/// Random geometric graph: n points uniform in the unit square; edge when
/// distance <= radius.  Returned positions are useful for visualisation.
struct GeometricGraph {
  Graph graph;
  std::vector<double> x;  ///< x[i], y[i] = position of node i
  std::vector<double> y;
};
[[nodiscard]] GeometricGraph random_geometric(NodeId n, double radius,
                                              support::Xoshiro256StarStar& rng);

/// Barabási–Albert preferential attachment: starts from a clique on
/// `attach_edges + 1` nodes, then each new node attaches to `attach_edges`
/// distinct existing nodes chosen proportionally to degree.
[[nodiscard]] Graph barabasi_albert(NodeId n, NodeId attach_edges,
                                    support::Xoshiro256StarStar& rng);

/// Random bipartite graph on `left` + `right` nodes, each cross edge
/// present with probability p.
[[nodiscard]] Graph random_bipartite(NodeId left, NodeId right, double p,
                                     support::Xoshiro256StarStar& rng);

/// Caterpillar: a path of `spine` nodes with `legs_per_node` pendant leaves
/// on each spine node.  High-degree low-diameter tree used in tests.
[[nodiscard]] Graph caterpillar(NodeId spine, NodeId legs_per_node);

/// Node count of clique_family(max_clique, copies); throws (like the
/// generator) when it would overflow NodeId.  Lets streaming callers size
/// the CSR without building the graph.
[[nodiscard]] NodeId clique_family_node_count(NodeId max_clique, NodeId copies);

// --- replayable edge streams ---------------------------------------------
//
// Each factory returns a csr_file.hpp EdgeStream that enumerates exactly
// the edges the same-parameter Graph generator builds, in the same order.
// Random families take an explicit seed and construct a fresh rng per
// replay, so every invocation is identical — the replayability contract
// write_csr_file_streaming requires — and a streamed on-disk build is
// byte-identical to GraphBuilder + write_csr_file.  Parameter validation
// happens at factory-call time (same exceptions as the generators).
// Stateful families (random_tree, barabasi_albert, random_geometric) have
// no stream form: their enumeration needs O(n) state the streaming builder
// exists to avoid.

[[nodiscard]] EdgeStream gnp_edge_stream(NodeId n, double p, std::uint64_t seed);
[[nodiscard]] EdgeStream complete_edge_stream(NodeId n);
[[nodiscard]] EdgeStream empty_edge_stream();
[[nodiscard]] EdgeStream ring_edge_stream(NodeId n);
[[nodiscard]] EdgeStream path_edge_stream(NodeId n);
[[nodiscard]] EdgeStream star_edge_stream(NodeId n);
[[nodiscard]] EdgeStream grid2d_edge_stream(NodeId rows, NodeId cols);
[[nodiscard]] EdgeStream hex_grid_edge_stream(NodeId rows, NodeId cols);
[[nodiscard]] EdgeStream hypercube_edge_stream(unsigned dimension);
[[nodiscard]] EdgeStream clique_family_edge_stream(NodeId max_clique, NodeId copies);
[[nodiscard]] EdgeStream caterpillar_edge_stream(NodeId spine, NodeId legs_per_node);
[[nodiscard]] EdgeStream random_bipartite_edge_stream(NodeId left, NodeId right, double p,
                                                      std::uint64_t seed);

}  // namespace beepmis::graph

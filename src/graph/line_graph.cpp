#include "graph/line_graph.hpp"

#include <algorithm>
#include <vector>

namespace beepmis::graph {

LineGraph line_graph(const Graph& g) {
  LineGraph out;
  out.edges = g.edges();

  // Index of each canonical edge for endpoint-bucket joins.
  const auto m = static_cast<NodeId>(out.edges.size());
  GraphBuilder builder(m);

  // Bucket edge ids by endpoint; edges in a common bucket are adjacent.
  std::vector<std::vector<NodeId>> incident(g.node_count());
  for (NodeId i = 0; i < m; ++i) {
    incident[out.edges[i].u].push_back(i);
    incident[out.edges[i].v].push_back(i);
  }
  for (const auto& bucket : incident) {
    for (std::size_t a = 0; a < bucket.size(); ++a) {
      for (std::size_t b = a + 1; b < bucket.size(); ++b) {
        builder.add_edge(bucket[a], bucket[b]);
      }
    }
  }
  out.graph = builder.build();
  return out;
}

bool is_matching(const Graph& g, std::span<const Edge> matching) {
  std::vector<bool> used(g.node_count(), false);
  for (const Edge& e : matching) {
    if (!g.has_edge(e.u, e.v)) return false;
    if (used[e.u] || used[e.v]) return false;
    used[e.u] = true;
    used[e.v] = true;
  }
  return true;
}

bool is_maximal_matching(const Graph& g, std::span<const Edge> matching) {
  if (!is_matching(g, matching)) return false;
  std::vector<bool> used(g.node_count(), false);
  for (const Edge& e : matching) {
    used[e.u] = true;
    used[e.v] = true;
  }
  for (const Edge& e : g.edges()) {
    if (!used[e.u] && !used[e.v]) return false;  // e could still be added
  }
  return true;
}

}  // namespace beepmis::graph

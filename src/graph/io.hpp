// Graph serialisation: whitespace edge lists (with `#` comments), Graphviz
// DOT export (optionally highlighting an MIS), and dense adjacency-matrix
// text for small-graph debugging.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "graph/graph.hpp"

namespace beepmis::graph {

/// Writes "n <count>" followed by one "u v" line per edge.
void write_edge_list(std::ostream& out, const Graph& g);

/// Reads the format produced by write_edge_list.  Lines starting with '#'
/// and blank lines are ignored.  Throws std::runtime_error on malformed
/// input (missing header, bad endpoints, self-loops).
[[nodiscard]] Graph read_edge_list(std::istream& in);

/// Round-trip helpers on strings.
[[nodiscard]] std::string to_edge_list_string(const Graph& g);
[[nodiscard]] Graph from_edge_list_string(const std::string& text);

/// Graphviz DOT export; nodes in `highlight` are drawn filled (used to
/// visualise a selected MIS).
void write_dot(std::ostream& out, const Graph& g,
               std::span<const NodeId> highlight = {});

/// Dense 0/1 adjacency matrix, one row per line.  Only sensible for small n.
[[nodiscard]] std::string adjacency_matrix_string(const Graph& g);

}  // namespace beepmis::graph

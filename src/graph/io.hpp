// Graph serialisation: whitespace edge lists (with `#` comments), Graphviz
// DOT export (optionally highlighting an MIS), and dense adjacency-matrix
// text for small-graph debugging.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "graph/csr_file.hpp"
#include "graph/graph.hpp"

namespace beepmis::graph {

/// Writes "n <count>" followed by one "u v" line per edge.
void write_edge_list(std::ostream& out, const Graph& g);

/// Reads the format produced by write_edge_list.  `#` starts a comment
/// (rest of line); blank lines are ignored.  Strict: every surviving line
/// must be exactly the 'n <count>' header (first) or two decimal endpoints
/// — trailing tokens, non-numeric endpoints, out-of-range ids, self-loops
/// and duplicate headers all throw std::runtime_error naming the 1-based
/// line number.  Duplicate edges are merged (GraphBuilder semantics).
[[nodiscard]] Graph read_edge_list(std::istream& in);

/// Parses just the 'n <count>' header of an edge-list file — the node
/// count a streaming CSR build needs without reading the edges.  Throws
/// std::runtime_error naming the path / line on failure.
[[nodiscard]] NodeId read_edge_list_node_count(const std::string& path);

/// Replayable edge stream over an edge-list file: each replay re-reads the
/// file (constant memory), with the same strict line-numbered validation
/// as read_edge_list.  Unlike read_edge_list, duplicate edges are NOT
/// merged — the streaming CSR writer rejects them, so a file destined for
/// the disk tier must be duplicate-free.  The header is validated at
/// factory-call time.
[[nodiscard]] EdgeStream edge_list_file_stream(const std::string& path);

/// Loads a graph file of either supported format, sniffing the content:
/// BMCSR magic -> memory-mapped CSR (csr_file.hpp), anything else ->
/// edge-list text.  The family="file" workload loader.
[[nodiscard]] Graph load_graph_file(const std::string& path);

/// Round-trip helpers on strings.
[[nodiscard]] std::string to_edge_list_string(const Graph& g);
[[nodiscard]] Graph from_edge_list_string(const std::string& text);

/// Graphviz DOT export; nodes in `highlight` are drawn filled (used to
/// visualise a selected MIS).
void write_dot(std::ostream& out, const Graph& g,
               std::span<const NodeId> highlight = {});

/// Dense 0/1 adjacency matrix, one row per line.  Only sensible for small n.
[[nodiscard]] std::string adjacency_matrix_string(const Graph& g);

}  // namespace beepmis::graph

// Structural queries and centralised reference algorithms: the MIS
// correctness oracle used by every test, the trivial sequential MIS the
// paper's introduction describes, and assorted graph statistics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace beepmis::graph {

/// True iff no two nodes of `set` are adjacent in `g`.
[[nodiscard]] bool is_independent_set(const Graph& g, std::span<const NodeId> set);

/// True iff `set` is independent and no node outside it could be added
/// (i.e. every non-member has a neighbour in the set).
[[nodiscard]] bool is_maximal_independent_set(const Graph& g, std::span<const NodeId> set);

/// The centralised sequential MIS from the paper's introduction: scan nodes
/// in the given order (ascending id by default), adding each node that does
/// not violate independence.  Returns the MIS in ascending id order.
[[nodiscard]] std::vector<NodeId> greedy_mis(const Graph& g);
[[nodiscard]] std::vector<NodeId> greedy_mis(const Graph& g, std::span<const NodeId> order);

/// Greedy MIS in a uniformly random scan order.
[[nodiscard]] std::vector<NodeId> random_greedy_mis(const Graph& g,
                                                    support::Xoshiro256StarStar& rng);

/// Connected components; returns component index per node (0-based, in
/// order of first discovery) and the number of components.
struct Components {
  std::vector<NodeId> component_of;
  NodeId count = 0;
};
[[nodiscard]] Components connected_components(const Graph& g);

/// Degree distribution statistics.
struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
  double stddev = 0.0;
};
[[nodiscard]] DegreeStats degree_stats(const Graph& g);

/// Greedy sequential colouring (first-fit in id order); returns colour per
/// node and the number of colours used.  Reference for the MIS-based
/// distributed colouring example.
struct Coloring {
  std::vector<NodeId> color_of;
  NodeId colors_used = 0;
};
[[nodiscard]] Coloring greedy_coloring(const Graph& g);

/// True iff adjacent nodes always have different colours and every node has
/// a colour < colors_used.
[[nodiscard]] bool is_proper_coloring(const Graph& g, const Coloring& coloring);

/// Exact maximum independent set size by branch and bound; exponential —
/// only for graphs with <= ~40 nodes (tests comparing MIS quality).
[[nodiscard]] std::size_t maximum_independent_set_size(const Graph& g);

}  // namespace beepmis::graph

#include "graph/partition.hpp"

#include <algorithm>
#include <limits>

namespace beepmis::graph {

Partition Partition::build(const Graph& g, std::uint32_t shards) {
  const NodeId n = g.node_count();
  Partition p;
  p.graph_ = &g;
  const std::uint32_t k =
      std::max<std::uint32_t>(1, std::min<std::uint32_t>(shards, std::max<NodeId>(n, 1)));

  // Contiguous ranges balanced by degree+1 weight: prefix splitting against
  // the ideal cumulative weight.  deg+1 (not deg) so isolated nodes still
  // carry weight and an edgeless graph splits evenly.
  p.bounds_.assign(k + 1, n);
  p.bounds_[0] = 0;
  std::size_t total_weight = 2 * g.edge_count() + n;
  std::size_t acc = 0;
  std::uint32_t s = 1;
  for (NodeId v = 0; v < n && s < k; ++v) {
    acc += g.degree(v) + 1;
    // Node v goes to the current shard once acc crosses its quota; the
    // comparison is in integers (acc * k vs total * s) to avoid rounding.
    while (s < k && acc * k >= total_weight * s) {
      p.bounds_[s] = v + 1;
      ++s;
    }
  }

  // Per-node adjacency slices: one pass over each sorted neighbour list,
  // advancing a shard cursor — O(deg + K) per node.
  p.slice_rel_.assign(static_cast<std::size_t>(n) * (k + 1), 0);
  p.boundary_.assign(n, 0);
  p.boundary_nodes_.assign(k, {});
  p.internal_edges_.assign(k, 0);
  p.cut_edges_ = 0;
  std::uint32_t owner = 0;
  for (NodeId u = 0; u < n; ++u) {
    while (u >= p.bounds_[owner + 1]) ++owner;
    const std::span<const NodeId> nbrs = g.neighbors(u);
    std::uint32_t* rel = p.slice_rel_.data() + static_cast<std::size_t>(u) * (k + 1);
    std::uint32_t idx = 0;
    for (std::uint32_t t = 0; t < k; ++t) {
      rel[t] = idx;
      const NodeId hi = p.bounds_[t + 1];
      while (idx < nbrs.size() && nbrs[idx] < hi) ++idx;
      if (t != owner && idx > rel[t]) {
        p.boundary_[u] = 1;
        // Count each cut edge from its lower endpoint only.
        for (std::uint32_t i = rel[t]; i < idx; ++i) {
          if (u < nbrs[i]) ++p.cut_edges_;
        }
      }
    }
    rel[k] = idx;
    const std::uint32_t own_lo = rel[owner];
    const std::uint32_t own_hi = rel[owner + 1];
    for (std::uint32_t i = own_lo; i < own_hi; ++i) {
      if (u < nbrs[i]) ++p.internal_edges_[owner];
    }
    if (p.boundary_[u]) p.boundary_nodes_[owner].push_back(u);
  }
  return p;
}

void Partition::materialize_local_adjacency() {
  const NodeId n = graph_->node_count();
  const std::uint32_t k = shard_count();
  local_off_.assign(k, {});
  local_adj_.assign(k, {});
  for (std::uint32_t s = 0; s < k; ++s) {
    std::uint64_t total = 0;
    for (NodeId u = 0; u < n; ++u) {
      const std::size_t base = static_cast<std::size_t>(u) * (k + 1) + s;
      total += slice_rel_[base + 1] - slice_rel_[base];
    }
    if (total > std::numeric_limits<std::uint32_t>::max()) continue;  // shared fallback
    local_off_[s].resize(n);
    local_adj_[s].resize(static_cast<std::size_t>(total));
    std::uint32_t cursor = 0;
    for (NodeId u = 0; u < n; ++u) {
      const std::size_t base = static_cast<std::size_t>(u) * (k + 1) + s;
      const std::uint32_t lo = slice_rel_[base];
      const std::uint32_t len = slice_rel_[base + 1] - lo;
      local_off_[s][u] = cursor;
      const std::span<const NodeId> nbrs = graph_->neighbors(u);
      std::copy_n(nbrs.data() + lo, len, local_adj_[s].data() + cursor);
      cursor += len;
    }
  }
}

std::uint32_t Partition::shard_of(NodeId v) const {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<std::uint32_t>(it - bounds_.begin()) - 1;
}

}  // namespace beepmis::graph

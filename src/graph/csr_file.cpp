#include "graph/csr_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "support/hash.hpp"

namespace beepmis::graph {

namespace {

constexpr std::size_t kHeaderSize = 64;
constexpr std::size_t kHeaderHashedBytes = 40;  ///< [0, header_checksum)
constexpr std::uint32_t kFlagWideOffsets = 1u;

[[noreturn]] void fail(const std::string& path, const std::string& message) {
  throw std::runtime_error("csr_file: " + path + ": " + message);
}

[[noreturn]] void fail_errno(const std::string& path, const std::string& what) {
  fail(path, what + ": " + std::strerror(errno));
}

void require_little_endian(const std::string& path) {
  if (std::endian::native != std::endian::little) {
    fail(path, "the BMCSR container is little-endian only");
  }
}

/// The fixed 64-byte header (see csr_file.hpp for the layout).
struct CsrHeader {
  std::uint32_t version = kCsrFileVersion;
  std::uint32_t flags = 0;
  std::uint64_t node_count = 0;
  std::uint64_t adjacency_count = 0;
  std::uint64_t payload_checksum = 0;

  /// Renders the header, computing header_checksum over the first 40 bytes.
  void encode(unsigned char out[kHeaderSize]) const {
    std::memset(out, 0, kHeaderSize);
    std::memcpy(out, kCsrFileMagic, sizeof(kCsrFileMagic));
    std::memcpy(out + 8, &version, 4);
    std::memcpy(out + 12, &flags, 4);
    std::memcpy(out + 16, &node_count, 8);
    std::memcpy(out + 24, &adjacency_count, 8);
    std::memcpy(out + 32, &payload_checksum, 8);
    const std::uint64_t header_checksum = support::stable_hash_bytes(
        std::string_view(reinterpret_cast<const char*>(out), kHeaderHashedBytes));
    std::memcpy(out + 40, &header_checksum, 8);
  }
};

/// RAII mmap of a whole BMCSR file; Graph copies share one via shared_ptr.
class CsrMapping {
 public:
  CsrMapping(void* data, std::size_t length) : data_(data), length_(length) {}
  CsrMapping(const CsrMapping&) = delete;
  CsrMapping& operator=(const CsrMapping&) = delete;
  ~CsrMapping() { ::munmap(data_, length_); }

  [[nodiscard]] const unsigned char* bytes() const noexcept {
    return static_cast<const unsigned char*>(data_);
  }
  [[nodiscard]] std::size_t length() const noexcept { return length_; }

 private:
  void* data_;
  std::size_t length_;
};

/// Atomic file production: write to a temp name in the target's directory,
/// fsync, rename over the target, fsync the directory.  The destructor
/// unlinks the temp file unless commit() ran, so a throw mid-build leaves
/// nothing behind under either name.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path)
      : path_(std::move(path)), tmp_path_(path_ + ".tmp." + std::to_string(::getpid())) {
    fd_ = ::open(tmp_path_.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
    if (fd_ < 0) fail_errno(path_, "cannot create temp file " + tmp_path_);
  }
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;
  ~AtomicFileWriter() {
    if (fd_ >= 0) ::close(fd_);
    if (!committed_) ::unlink(tmp_path_.c_str());
  }

  void write(const void* data, std::size_t len) {
    const char* p = static_cast<const char*>(data);
    while (len > 0) {
      const ssize_t wrote = ::write(fd_, p, len);
      if (wrote < 0) {
        if (errno == EINTR) continue;
        fail_errno(path_, "write failed");
      }
      p += wrote;
      len -= static_cast<std::size_t>(wrote);
    }
  }

  /// Payload bytes fold into the running checksum (raw FNV-1a, the
  /// stable_hash_bytes convention — incremental update_bytes calls over a
  /// byte sequence equal one whole-buffer hash).
  void write_payload(const void* data, std::size_t len) {
    write(data, len);
    payload_hash_.update_bytes(data, len);
  }

  [[nodiscard]] std::uint64_t payload_checksum() const noexcept {
    return payload_hash_.digest();
  }

  /// Seeks back to offset 0, writes the finalised header, and publishes the
  /// file under its target name.
  void commit(const unsigned char header[kHeaderSize]) {
    if (::lseek(fd_, 0, SEEK_SET) != 0) fail_errno(path_, "seek failed");
    write(header, kHeaderSize);
    if (::fsync(fd_) != 0) fail_errno(path_, "fsync failed");
    if (::close(fd_) != 0) {
      fd_ = -1;
      fail_errno(path_, "close failed");
    }
    fd_ = -1;
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
      fail_errno(path_, "rename from " + tmp_path_ + " failed");
    }
    committed_ = true;
    // Durability of the rename itself: fsync the containing directory
    // (best-effort — some filesystems refuse directory fds).
    const std::size_t slash = path_.find_last_of('/');
    const std::string dir = slash == std::string::npos ? "." : path_.substr(0, slash + 1);
    const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dir_fd >= 0) {
      (void)::fsync(dir_fd);
      ::close(dir_fd);
    }
  }

 private:
  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
  bool committed_ = false;
  support::StableHash payload_hash_;
};

}  // namespace

/// Private-constructor seam: the only way to produce a memory-mapped Graph
/// (befriended by Graph; see graph.hpp).
class MappedGraphFactory {
 public:
  static Graph make(std::shared_ptr<const CsrMapping> mapping, NodeId node_count,
                    const std::uint32_t* offsets32, const std::uint64_t* offsets64,
                    const NodeId* adjacency, std::uint64_t adjacency_count) {
    Graph g;
    g.node_count_ = node_count;
    g.mapping_ = std::move(mapping);
    g.map_offsets32_ = offsets32;
    g.map_offsets64_ = offsets64;
    g.map_adjacency_ = adjacency;
    g.map_adjacency_count_ = adjacency_count;
    return g;
  }
};

void write_csr_file(const Graph& g, const std::string& path) {
  require_little_endian(path);
  const AdjacencyView view = g.view();
  AtomicFileWriter out(path);
  unsigned char header_bytes[kHeaderSize] = {};
  out.write(header_bytes, kHeaderSize);  // placeholder; finalised in commit

  const std::uint64_t entries = static_cast<std::uint64_t>(view.node_count) + 1;
  if (view.offsets32 != nullptr) {
    out.write_payload(view.offsets32, entries * sizeof(std::uint32_t));
  } else if (view.offsets64 != nullptr) {
    out.write_payload(view.offsets64, entries * sizeof(std::uint64_t));
  } else {
    // Default-constructed (node-less, never-built) graph: one zero offset.
    const std::uint32_t zero = 0;
    out.write_payload(&zero, sizeof(zero));
  }
  if (view.adjacency_count > 0) {
    out.write_payload(view.adjacency, view.adjacency_count * sizeof(NodeId));
  }

  CsrHeader header;
  header.flags = view.wide() ? kFlagWideOffsets : 0;
  header.node_count = view.node_count;
  header.adjacency_count = view.adjacency_count;
  header.payload_checksum = out.payload_checksum();
  header.encode(header_bytes);
  out.commit(header_bytes);
}

StreamCsrStats write_csr_file_streaming(NodeId node_count, const EdgeStream& stream,
                                        const std::string& path,
                                        const StreamCsrOptions& options) {
  require_little_endian(path);
  const NodeId n = node_count;
  const auto check_edge = [&](NodeId u, NodeId v) {
    if (u == v) {
      throw std::invalid_argument("write_csr_file_streaming: self-loop at node " +
                                  std::to_string(u));
    }
    if (u >= n || v >= n) {
      throw std::invalid_argument("write_csr_file_streaming: endpoint out of range: " +
                                  std::to_string(u >= n ? u : v) + " >= n=" +
                                  std::to_string(n));
    }
  };

  // Pass 0: count degrees.  A simple graph caps every degree at n-1, so a
  // count about to exceed that proves a duplicate edge without waiting for
  // the sorted-chunk check.
  std::vector<std::uint32_t> degree(n, 0);
  stream([&](NodeId u, NodeId v) {
    check_edge(u, v);
    if (degree[u] >= n - 1 || degree[v] >= n - 1) {
      throw std::invalid_argument(
          "write_csr_file_streaming: duplicate edges (a node exceeds degree n-1)");
    }
    ++degree[u];
    ++degree[v];
  });

  std::uint64_t total = 0;
  for (NodeId v = 0; v < n; ++v) total += degree[v];
  const bool wide =
      options.force_wide_offsets || total > std::numeric_limits<std::uint32_t>::max();

  // Offsets (exclusive prefix sums of the degrees), in the on-disk width.
  std::vector<std::uint32_t> offsets32;
  std::vector<std::uint64_t> offsets64;
  if (wide) {
    offsets64.resize(static_cast<std::size_t>(n) + 1);
    std::uint64_t acc = 0;
    for (NodeId v = 0; v < n; ++v) {
      offsets64[v] = acc;
      acc += degree[v];
    }
    offsets64[n] = acc;
  } else {
    offsets32.resize(static_cast<std::size_t>(n) + 1);
    std::uint32_t acc = 0;
    for (NodeId v = 0; v < n; ++v) {
      offsets32[v] = acc;
      acc += degree[v];
    }
    offsets32[n] = acc;
  }
  degree.clear();
  degree.shrink_to_fit();
  const auto off = [&](NodeId i) -> std::uint64_t {
    return wide ? offsets64[i] : offsets32[i];
  };

  AtomicFileWriter out(path);
  unsigned char header_bytes[kHeaderSize] = {};
  out.write(header_bytes, kHeaderSize);
  if (wide) {
    out.write_payload(offsets64.data(), offsets64.size() * sizeof(std::uint64_t));
  } else {
    out.write_payload(offsets32.data(), offsets32.size() * sizeof(std::uint32_t));
  }

  // Fill passes: node-range chunks whose adjacency slots + scatter cursors
  // fit the memory budget (a single node may exceed it alone and gets an
  // over-budget chunk to itself); each chunk replays the stream, scatters
  // its own slots, sorts each node's slice and appends sequentially.
  StreamCsrStats stats;
  stats.adjacency_count = total;
  stats.stream_passes = 1;
  std::vector<NodeId> buf;
  std::vector<std::uint32_t> cursor;  // per-chunk-node fill position, chunk-relative
  NodeId lo = 0;
  while (lo < n) {
    NodeId hi = lo + 1;
    const auto chunk_cost = [&](NodeId h) -> std::uint64_t {
      return (off(h) - off(lo)) * sizeof(NodeId) +
             static_cast<std::uint64_t>(h - lo) * sizeof(std::uint32_t);
    };
    while (hi < n && chunk_cost(hi + 1) <= options.memory_budget_bytes) ++hi;
    const std::uint64_t base = off(lo);
    const auto slots = static_cast<std::size_t>(off(hi) - base);
    buf.resize(slots);
    cursor.resize(hi - lo);
    for (NodeId v = lo; v < hi; ++v) {
      cursor[v - lo] = static_cast<std::uint32_t>(off(v) - base);
    }
    const auto scatter = [&](NodeId owner, NodeId neighbor) {
      if (owner < lo || owner >= hi) return;
      std::uint32_t& cur = cursor[owner - lo];
      if (cur >= off(owner + 1) - base) {
        throw std::invalid_argument(
            "write_csr_file_streaming: stream did not replay identically "
            "(node " + std::to_string(owner) + " grew a neighbour)");
      }
      buf[cur++] = neighbor;
    };
    stream([&](NodeId u, NodeId v) {
      check_edge(u, v);
      scatter(u, v);
      scatter(v, u);
    });
    for (NodeId v = lo; v < hi; ++v) {
      const auto begin = static_cast<std::size_t>(off(v) - base);
      const auto end = static_cast<std::size_t>(off(v + 1) - base);
      if (cursor[v - lo] != end) {
        throw std::invalid_argument(
            "write_csr_file_streaming: stream did not replay identically "
            "(node " + std::to_string(v) + " lost a neighbour)");
      }
      std::sort(buf.begin() + static_cast<std::ptrdiff_t>(begin),
                buf.begin() + static_cast<std::ptrdiff_t>(end));
      for (std::size_t i = begin + 1; i < end; ++i) {
        if (buf[i] == buf[i - 1]) {
          throw std::invalid_argument("write_csr_file_streaming: duplicate edge " +
                                      std::to_string(v) + "-" + std::to_string(buf[i]));
        }
      }
    }
    out.write_payload(buf.data(), slots * sizeof(NodeId));
    ++stats.stream_passes;
    lo = hi;
  }

  CsrHeader header;
  header.flags = wide ? kFlagWideOffsets : 0;
  header.node_count = n;
  header.adjacency_count = total;
  header.payload_checksum = out.payload_checksum();
  header.encode(header_bytes);
  out.commit(header_bytes);
  return stats;
}

Graph load_csr_file(const std::string& path, const CsrLoadOptions& options) {
  require_little_endian(path);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail_errno(path, "cannot open");
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno(path, "fstat failed");
  }
  const auto length = static_cast<std::size_t>(st.st_size);
  if (length < kHeaderSize) {
    ::close(fd);
    fail(path, "truncated: " + std::to_string(length) + " bytes is smaller than the " +
                   std::to_string(kHeaderSize) + "-byte header");
  }
  void* data = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
  const int mmap_errno = errno;
  ::close(fd);
  if (data == MAP_FAILED) {
    errno = mmap_errno;
    fail_errno(path, "mmap failed");
  }
  auto mapping = std::make_shared<const CsrMapping>(data, length);
  const unsigned char* bytes = mapping->bytes();

  // Cheap structural validation (always on): magic, header checksum,
  // version, flags, reserved bytes, exact file size, offset monotonicity.
  if (std::memcmp(bytes, kCsrFileMagic, sizeof(kCsrFileMagic)) != 0) {
    fail(path, "not a BMCSR file (bad magic)");
  }
  std::uint64_t stored_header_checksum = 0;
  std::memcpy(&stored_header_checksum, bytes + 40, 8);
  const std::uint64_t header_checksum = support::stable_hash_bytes(
      std::string_view(reinterpret_cast<const char*>(bytes), kHeaderHashedBytes));
  if (stored_header_checksum != header_checksum) {
    fail(path, "header checksum mismatch (corrupted header)");
  }
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  std::uint64_t node_count = 0;
  std::uint64_t adjacency_count = 0;
  std::uint64_t payload_checksum = 0;
  std::memcpy(&version, bytes + 8, 4);
  std::memcpy(&flags, bytes + 12, 4);
  std::memcpy(&node_count, bytes + 16, 8);
  std::memcpy(&adjacency_count, bytes + 24, 8);
  std::memcpy(&payload_checksum, bytes + 32, 8);
  if (version != kCsrFileVersion) {
    fail(path, "unsupported version " + std::to_string(version) + " (this build speaks " +
                   std::to_string(kCsrFileVersion) + ")");
  }
  if ((flags & ~kFlagWideOffsets) != 0) {
    fail(path, "unsupported flags 0x" + support::to_hex_u64(flags));
  }
  for (std::size_t i = 48; i < kHeaderSize; ++i) {
    if (bytes[i] != 0) fail(path, "reserved header bytes are not zero");
  }
  if (node_count > std::numeric_limits<NodeId>::max()) {
    fail(path, "node count " + std::to_string(node_count) +
                   " exceeds this build's 32-bit NodeId");
  }
  const bool wide = (flags & kFlagWideOffsets) != 0;
  const std::uint64_t entries = node_count + 1;
  const std::uint64_t offsets_bytes = entries * (wide ? 8 : 4);
  const std::uint64_t expected =
      kHeaderSize + offsets_bytes + adjacency_count * sizeof(NodeId);
  if (expected != length) {
    fail(path, "size mismatch: header implies " + std::to_string(expected) +
                   " bytes, file has " + std::to_string(length) +
                   " (truncated or trailing garbage)");
  }

  const auto n = static_cast<NodeId>(node_count);
  const std::uint32_t* offsets32 = nullptr;
  const std::uint64_t* offsets64 = nullptr;
  if (wide) {
    offsets64 = reinterpret_cast<const std::uint64_t*>(bytes + kHeaderSize);
  } else {
    offsets32 = reinterpret_cast<const std::uint32_t*>(bytes + kHeaderSize);
  }
  const auto* adjacency =
      reinterpret_cast<const NodeId*>(bytes + kHeaderSize + offsets_bytes);
  const auto off = [&](NodeId i) -> std::uint64_t {
    return wide ? offsets64[i] : offsets32[i];
  };
  if (off(0) != 0) fail(path, "offsets[0] != 0");
  for (NodeId v = 0; v < n; ++v) {
    if (off(v + 1) < off(v)) {
      fail(path, "offsets are not monotone at node " + std::to_string(v));
    }
  }
  if (off(n) != adjacency_count) {
    fail(path, "offsets[n] != adjacency_count (inconsistent index)");
  }

  if (options.verify_checksum) {
    const std::uint64_t fresh = support::stable_hash_bytes(std::string_view(
        reinterpret_cast<const char*>(bytes + kHeaderSize), length - kHeaderSize));
    if (fresh != payload_checksum) {
      fail(path, "payload checksum mismatch (corrupted offsets or adjacency)");
    }
    // Structural deep-verify: every neighbour list strictly ascending (sorted,
    // duplicate-free), in range, and loop-free — the simple-graph invariants
    // every consumer of Graph assumes.
    for (NodeId v = 0; v < n; ++v) {
      const std::uint64_t begin = off(v);
      const std::uint64_t end = off(v + 1);
      for (std::uint64_t i = begin; i < end; ++i) {
        const NodeId w = adjacency[i];
        if (w >= n) {
          fail(path, "neighbour id " + std::to_string(w) + " of node " +
                         std::to_string(v) + " out of range");
        }
        if (w == v) fail(path, "self-loop at node " + std::to_string(v));
        if (i > begin && adjacency[i - 1] >= w) {
          fail(path, "neighbour list of node " + std::to_string(v) +
                         " is not sorted strictly ascending");
        }
      }
    }
  }

  return MappedGraphFactory::make(std::move(mapping), n, offsets32, offsets64, adjacency,
                                  adjacency_count);
}

bool is_csr_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[sizeof(kCsrFileMagic)] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kCsrFileMagic, sizeof(magic)) == 0;
}

}  // namespace beepmis::graph

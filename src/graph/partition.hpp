// Node-range partition of a CSR graph for sharded simulation.
//
// A Partition splits the node id space [0, n) into K *contiguous* ranges
// ("shards") balanced by degree-weighted size, and precomputes, for every
// node, the slice of its (sorted) adjacency list that falls inside each
// shard.  That turns the graph into K per-shard CSR views without copying
// any edge data: shard s's view of the graph is "neighbors_in(u, s) for
// any u" — the edges whose *listener* endpoint shard s owns — so a
// push-style beep delivery can be partitioned by listener (each shard
// writes only its own heard flags, race-free) while every shard still
// reads the one shared CSR.
//
// Boundary bookkeeping: a node with at least one neighbour outside its own
// shard is a *boundary* node; its beeps must be exported to the shards
// owning those neighbours (the sharded simulator pre-filters each shard's
// frontier through is_boundary before the cross-shard merge).
// `boundary_nodes(s)` lists shard s's boundary nodes and `cut_edges()` /
// `internal_edges(s)` count edges against shard lines — the
// balance/locality trade-off bench_shard records per sharded row
// (cut_edges / boundary_nodes fields in BENCH_core.json's shard section).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace beepmis::graph {

class Partition {
 public:
  Partition() = default;

  /// Partitions `g` into (at most) `shards` contiguous node ranges whose
  /// degree+1 weights are balanced by prefix splitting.  `shards` is
  /// clamped to [1, max(n, 1)]; trailing shards may be empty on tiny or
  /// degree-skewed graphs.  O(m + n·K) time, n·(K+1) uint32 of index
  /// memory.  The partition stores a pointer to `g`; the caller keeps the
  /// graph alive for the partition's lifetime.
  static Partition build(const Graph& g, std::uint32_t shards);

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(bounds_.size() - 1);
  }
  /// Shard s owns node ids [begin(s), end(s)).
  [[nodiscard]] NodeId begin(std::uint32_t s) const { return bounds_[s]; }
  [[nodiscard]] NodeId end(std::uint32_t s) const { return bounds_[s + 1]; }
  [[nodiscard]] NodeId size(std::uint32_t s) const { return end(s) - begin(s); }

  /// The shard owning node v (binary search over the K+1 bounds).
  [[nodiscard]] std::uint32_t shard_of(NodeId v) const;

  /// The neighbours of `u` that live in shard `s` — a subspan of the
  /// graph's sorted adjacency list (or of shard s's reordered local copy
  /// after materialize_local_adjacency()), so iteration order always
  /// matches a full neighbour walk filtered to [begin(s), end(s)).
  [[nodiscard]] std::span<const NodeId> neighbors_in(NodeId u, std::uint32_t s) const {
    const std::uint32_t k = shard_count();
    const std::uint32_t lo = slice_rel_[static_cast<std::size_t>(u) * (k + 1) + s];
    const std::uint32_t hi = slice_rel_[static_cast<std::size_t>(u) * (k + 1) + s + 1];
    if (local_off_.empty() || local_off_[s].empty()) {
      return graph_->neighbors(u).subspan(lo, hi - lo);
    }
    return {local_adj_[s].data() + local_off_[s][u], hi - lo};
  }

  /// Builds per-shard *reordered* CSR copies: for each shard s, the slices
  /// neighbors_in(u, s) for u = 0..n-1 concatenated contiguously, so a
  /// shard's delivery sweep reads one sequential array instead of strided
  /// subspans of the shared adjacency — the locality rationale for running
  /// sharded lanes against a memory-mapped shared CSR.  Identical elements
  /// in identical order, so simulation results are bit-identical either
  /// way.  Costs one extra copy of the adjacency (split across shards)
  /// plus n uint32 per shard; a shard whose local copy would exceed the
  /// 32-bit index range silently keeps the shared-subspan path.
  void materialize_local_adjacency();

  /// Whether shard s reads its reordered local copy (false before
  /// materialize_local_adjacency(), or for an over-large shard).
  [[nodiscard]] bool local_adjacency_materialized(std::uint32_t s) const {
    return !local_off_.empty() && !local_off_[s].empty();
  }

  /// Whether `u` has at least one neighbour outside its own shard.
  [[nodiscard]] bool is_boundary(NodeId u) const { return boundary_[u] != 0; }
  /// Boundary nodes of shard s, ascending.
  [[nodiscard]] const std::vector<NodeId>& boundary_nodes(std::uint32_t s) const {
    return boundary_nodes_[s];
  }

  /// Edges with both endpoints in shard s.
  [[nodiscard]] std::size_t internal_edges(std::uint32_t s) const {
    return internal_edges_[s];
  }
  /// Edges crossing a shard line (each counted once).
  [[nodiscard]] std::size_t cut_edges() const noexcept { return cut_edges_; }

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

 private:
  const Graph* graph_ = nullptr;
  /// K+1 range bounds: shard s owns [bounds_[s], bounds_[s+1]).
  std::vector<NodeId> bounds_ = {0, 0};
  /// Per-node relative slice offsets into the node's adjacency list:
  /// slice_rel_[u*(K+1) + s] .. [.. + s + 1] delimit the neighbours of u
  /// inside shard s.  Relative (not absolute CSR) offsets fit uint32 for
  /// any graph, since a single degree cannot exceed n.
  std::vector<std::uint32_t> slice_rel_;
  std::vector<std::uint8_t> boundary_;
  std::vector<std::vector<NodeId>> boundary_nodes_;
  std::vector<std::size_t> internal_edges_;
  std::size_t cut_edges_ = 0;
  /// Reordered per-shard CSR copies (materialize_local_adjacency):
  /// local_off_[s][u] is the start of u's shard-s slice in local_adj_[s];
  /// the slice length still comes from slice_rel_.  Empty per shard until
  /// materialized (or when the copy would overflow 32-bit indexing).
  std::vector<std::vector<std::uint32_t>> local_off_;
  std::vector<std::vector<NodeId>> local_adj_;
};

}  // namespace beepmis::graph

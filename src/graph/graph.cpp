#include "graph/graph.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace beepmis::graph {

AdjacencyView Graph::view() const noexcept {
  AdjacencyView v;
  v.node_count = node_count_;
  if (mapping_ == nullptr) {
    if (wide_offsets_.empty()) {
      v.offsets32 = offsets_.data();
    } else {
      // The wide in-RAM offsets are std::size_t; the view (like the file
      // format) speaks uint64.  Identical representation on every platform
      // this library's mmap tier supports.
      static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
                    "the memory-tiered CSR layer requires a 64-bit size_t");
      v.offsets64 = reinterpret_cast<const std::uint64_t*>(wide_offsets_.data());
    }
    v.adjacency = adjacency_.data();
    v.adjacency_count = adjacency_.size();
  } else {
    v.offsets32 = map_offsets32_;
    v.offsets64 = map_offsets64_;
    v.adjacency = map_adjacency_;
    v.adjacency_count = map_adjacency_count_;
  }
  return v;
}

std::size_t Graph::max_degree() const noexcept {
  std::size_t best = 0;
  for (NodeId v = 0; v < node_count(); ++v) best = std::max(best, degree(v));
  return best;
}

double Graph::mean_degree() const noexcept {
  if (node_count() == 0) return 0.0;
  return static_cast<double>(adjacency_size()) / static_cast<double>(node_count());
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  if (u >= node_count() || v >= node_count()) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count());
  for (NodeId u = 0; u < node_count(); ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) out.push_back({u, v});
    }
  }
  return out;
}

std::string Graph::describe() const {
  std::ostringstream ss;
  ss << "Graph(n=" << node_count() << ", m=" << edge_count() << ")";
  return ss.str();
}

GraphBuilder& GraphBuilder::add_edge(NodeId u, NodeId v) {
  if (u == v) throw std::invalid_argument("GraphBuilder: self-loops are not allowed");
  if (u >= node_count_ || v >= node_count_) {
    throw std::invalid_argument("GraphBuilder: endpoint out of range");
  }
  edges_.push_back(canonical({u, v}));
  return *this;
}

Graph GraphBuilder::build() const {
  std::vector<Edge> sorted = edges_;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  // Compute offsets in 64 bits, then narrow to the 32-bit representation
  // unless the adjacency array is too large for it.
  std::vector<std::size_t> offsets(static_cast<std::size_t>(node_count_) + 1, 0);
  for (const Edge& e : sorted) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  Graph g;
  g.node_count_ = node_count_;
  g.adjacency_.resize(sorted.size() * 2);
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : sorted) {
    g.adjacency_[cursor[e.u]++] = e.v;
    g.adjacency_[cursor[e.v]++] = e.u;
  }
  // Adjacency lists are already sorted because edges were processed in
  // canonical sorted order for the lower endpoint, but the higher endpoint's
  // list may interleave; sort each list to guarantee the invariant.
  for (NodeId v = 0; v < node_count_; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              g.adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }
  if (g.adjacency_.size() <= std::numeric_limits<std::uint32_t>::max()) {
    g.offsets_.assign(offsets.begin(), offsets.end());
  } else {
    g.wide_offsets_ = std::move(offsets);
  }
  return g;
}

Graph disjoint_union(const Graph& a, const Graph& b) {
  const NodeId na = a.node_count();
  GraphBuilder builder(na + b.node_count());
  for (const Edge& e : a.edges()) builder.add_edge(e.u, e.v);
  for (const Edge& e : b.edges()) builder.add_edge(e.u + na, e.v + na);
  return builder.build();
}

InducedSubgraph induced_subgraph(const Graph& g, std::span<const NodeId> keep) {
  std::vector<NodeId> ids(keep.begin(), keep.end());
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (NodeId v : ids) {
    if (v >= g.node_count()) {
      throw std::invalid_argument("induced_subgraph: node id out of range");
    }
  }

  std::vector<NodeId> remap(g.node_count(), static_cast<NodeId>(-1));
  for (std::size_t i = 0; i < ids.size(); ++i) remap[ids[i]] = static_cast<NodeId>(i);

  GraphBuilder builder(static_cast<NodeId>(ids.size()));
  for (NodeId v : ids) {
    for (NodeId w : g.neighbors(v)) {
      if (v < w && remap[w] != static_cast<NodeId>(-1)) {
        builder.add_edge(remap[v], remap[w]);
      }
    }
  }
  return {builder.build(), std::move(ids)};
}

Graph complement(const Graph& g) {
  const NodeId n = g.node_count();
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (!g.has_edge(u, v)) builder.add_edge(u, v);
    }
  }
  return builder.build();
}

}  // namespace beepmis::graph

#include "graph/io.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace beepmis::graph {

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "n " << g.node_count() << '\n';
  for (const Edge& e : g.edges()) out << e.u << ' ' << e.v << '\n';
}

Graph read_edge_list(std::istream& in) {
  std::string line;
  bool have_header = false;
  NodeId n = 0;
  std::vector<Edge> edges;

  while (std::getline(in, line)) {
    // Strip comments and whitespace-only lines.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;

    if (!have_header) {
      if (first != "n") throw std::runtime_error("read_edge_list: expected 'n <count>' header");
      long count = 0;
      if (!(ls >> count) || count < 0) {
        throw std::runtime_error("read_edge_list: bad node count");
      }
      n = static_cast<NodeId>(count);
      have_header = true;
      continue;
    }

    long u = 0, v = 0;
    std::istringstream es(line);
    if (!(es >> u >> v)) throw std::runtime_error("read_edge_list: bad edge line: " + line);
    if (u < 0 || v < 0) throw std::runtime_error("read_edge_list: negative endpoint");
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }
  if (!have_header) throw std::runtime_error("read_edge_list: missing header");

  GraphBuilder builder(n);
  for (const Edge& e : edges) builder.add_edge(e.u, e.v);
  return builder.build();
}

std::string to_edge_list_string(const Graph& g) {
  std::ostringstream ss;
  write_edge_list(ss, g);
  return ss.str();
}

Graph from_edge_list_string(const std::string& text) {
  std::istringstream ss(text);
  return read_edge_list(ss);
}

void write_dot(std::ostream& out, const Graph& g, std::span<const NodeId> highlight) {
  std::vector<bool> is_highlighted(g.node_count(), false);
  for (NodeId v : highlight) {
    if (v < g.node_count()) is_highlighted[v] = true;
  }
  out << "graph G {\n  node [shape=circle];\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out << "  " << v;
    if (is_highlighted[v]) out << " [style=filled, fillcolor=lightblue]";
    out << ";\n";
  }
  for (const Edge& e : g.edges()) out << "  " << e.u << " -- " << e.v << ";\n";
  out << "}\n";
}

std::string adjacency_matrix_string(const Graph& g) {
  std::ostringstream ss;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      ss << (g.has_edge(u, v) ? '1' : '0');
      if (v + 1 < g.node_count()) ss << ' ';
    }
    ss << '\n';
  }
  return ss.str();
}

}  // namespace beepmis::graph

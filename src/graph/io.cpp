#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace beepmis::graph {

namespace {

[[noreturn]] void parse_fail(std::size_t line_number, const std::string& message) {
  throw std::runtime_error("read_edge_list: line " + std::to_string(line_number) + ": " +
                           message);
}

/// Strict decimal NodeId: digits only, no sign, no overflow.
bool parse_node_token(const std::string& token, NodeId& out) {
  if (token.empty() || token.size() > 10) return false;  // NodeId max has 10 digits
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (value > std::numeric_limits<NodeId>::max()) return false;
  out = static_cast<NodeId>(value);
  return true;
}

/// Shared strict scanner behind read_edge_list and edge_list_file_stream:
/// validates the header and every edge line (naming the 1-based line
/// number in every error), forwards edges to `on_edge`, returns the node
/// count.
template <typename EdgeFn>
NodeId scan_edge_list(std::istream& in, EdgeFn&& on_edge) {
  std::string line;
  std::string token;
  std::vector<std::string> tokens;
  std::size_t line_number = 0;
  bool have_header = false;
  NodeId n = 0;

  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments; blank (or comment-only) lines are skipped below.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    tokens.clear();
    std::istringstream ls(line);
    while (ls >> token) tokens.push_back(token);
    if (tokens.empty()) continue;

    if (!have_header) {
      if (tokens[0] != "n") {
        parse_fail(line_number, "expected 'n <count>' header before any edges");
      }
      if (tokens.size() != 2) parse_fail(line_number, "header must be exactly 'n <count>'");
      if (!parse_node_token(tokens[1], n)) {
        parse_fail(line_number, "bad node count '" + tokens[1] + "'");
      }
      have_header = true;
      continue;
    }

    if (tokens[0] == "n") parse_fail(line_number, "duplicate 'n' header");
    if (tokens.size() != 2) {
      parse_fail(line_number, "expected exactly two endpoints, got " +
                                  std::to_string(tokens.size()) + " tokens");
    }
    NodeId u = 0;
    NodeId v = 0;
    if (!parse_node_token(tokens[0], u)) {
      parse_fail(line_number, "bad endpoint '" + tokens[0] + "'");
    }
    if (!parse_node_token(tokens[1], v)) {
      parse_fail(line_number, "bad endpoint '" + tokens[1] + "'");
    }
    if (u >= n || v >= n) {
      parse_fail(line_number, "endpoint " + std::to_string(std::max(u, v)) +
                                  " out of range (n=" + std::to_string(n) + ")");
    }
    if (u == v) parse_fail(line_number, "self-loop at node " + std::to_string(u));
    on_edge(u, v);
  }
  if (!have_header) throw std::runtime_error("read_edge_list: missing 'n <count>' header");
  return n;
}

std::ifstream open_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_list: cannot open " + path);
  return in;
}

}  // namespace

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "n " << g.node_count() << '\n';
  for (const Edge& e : g.edges()) out << e.u << ' ' << e.v << '\n';
}

Graph read_edge_list(std::istream& in) {
  std::vector<Edge> edges;
  const NodeId n = scan_edge_list(in, [&edges](NodeId u, NodeId v) {
    edges.push_back({u, v});
  });
  GraphBuilder builder(n);
  for (const Edge& e : edges) builder.add_edge(e.u, e.v);
  return builder.build();
}

NodeId read_edge_list_node_count(const std::string& path) {
  auto in = open_text_file(path);
  std::string line;
  std::string token;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    while (ls >> token) tokens.push_back(token);
    if (tokens.empty()) continue;
    if (tokens[0] != "n") {
      parse_fail(line_number, "expected 'n <count>' header before any edges");
    }
    if (tokens.size() != 2) parse_fail(line_number, "header must be exactly 'n <count>'");
    NodeId n = 0;
    if (!parse_node_token(tokens[1], n)) {
      parse_fail(line_number, "bad node count '" + tokens[1] + "'");
    }
    return n;
  }
  throw std::runtime_error("read_edge_list: " + path + ": missing 'n <count>' header");
}

EdgeStream edge_list_file_stream(const std::string& path) {
  (void)read_edge_list_node_count(path);  // surface open/header errors now
  return [path](const EdgeEmitter& emit) {
    auto in = open_text_file(path);
    scan_edge_list(in, [&emit](NodeId u, NodeId v) { emit(u, v); });
  };
}

Graph load_graph_file(const std::string& path) {
  if (is_csr_file(path)) return load_csr_file(path);
  auto in = open_text_file(path);
  return read_edge_list(in);
}

std::string to_edge_list_string(const Graph& g) {
  std::ostringstream ss;
  write_edge_list(ss, g);
  return ss.str();
}

Graph from_edge_list_string(const std::string& text) {
  std::istringstream ss(text);
  return read_edge_list(ss);
}

void write_dot(std::ostream& out, const Graph& g, std::span<const NodeId> highlight) {
  std::vector<bool> is_highlighted(g.node_count(), false);
  for (NodeId v : highlight) {
    if (v < g.node_count()) is_highlighted[v] = true;
  }
  out << "graph G {\n  node [shape=circle];\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out << "  " << v;
    if (is_highlighted[v]) out << " [style=filled, fillcolor=lightblue]";
    out << ";\n";
  }
  for (const Edge& e : g.edges()) out << "  " << e.u << " -- " << e.v << ";\n";
  out << "}\n";
}

std::string adjacency_matrix_string(const Graph& g) {
  std::ostringstream ss;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      ss << (g.has_edge(u, v) ? '1' : '0');
      if (v + 1 < g.node_count()) ss << ' ';
    }
    ss << '\n';
  }
  return ss.str();
}

}  // namespace beepmis::graph

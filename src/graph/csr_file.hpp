// On-disk CSR graph container ("BMCSR") — the disk tier of the
// memory-tiered graph storage layer (see src/graph/README.md).
//
// File layout (fixed 64-byte little-endian header, then two arrays):
//
//   offset  size  field
//        0     8  magic "BMCSRGR\0"
//        8     4  u32 version (currently 1)
//       12     4  u32 flags (bit 0: wide 64-bit offsets; others reserved 0)
//       16     8  u64 node_count
//       24     8  u64 adjacency_count (== offsets[node_count] == 2m)
//       32     8  u64 payload_checksum (FNV-1a over offsets then adjacency bytes)
//       40     8  u64 header_checksum (FNV-1a over bytes [0, 40))
//       48    16  reserved, must be zero
//       64     —  offsets: (node_count+1) × u32, or × u64 when flag bit 0
//        …     —  adjacency: adjacency_count × u32, concatenated sorted
//                 neighbour lists
//
// The wide-offsets flag is the on-disk face of Graph's uint32→64-bit
// offset fallback: files below ~2.1 billion directed edges use the narrow
// layout, larger ones the wide layout, mirroring the in-RAM decision so a
// round trip never changes representation.  Writers produce the file
// atomically (temp file in the same directory + fsync + rename) so a crash
// mid-write can never leave a half-written file under the target name.
// Readers validate magic/version/flags/exact size/header checksum and
// offset monotonicity unconditionally, and (by default) the full payload
// checksum plus neighbour-range/sortedness — reject-whole, like the sweep
// journal: a file is either understood exactly or refused loudly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "graph/graph.hpp"

namespace beepmis::graph {

/// First 8 bytes of every BMCSR file.
inline constexpr unsigned char kCsrFileMagic[8] = {'B', 'M', 'C', 'S', 'R', 'G', 'R', 0};
inline constexpr std::uint32_t kCsrFileVersion = 1;

struct CsrLoadOptions {
  /// Verify the payload checksum and scan the adjacency for out-of-range
  /// ids and unsorted / duplicate neighbour lists before returning.  One
  /// sequential O(n + m) pass over the mapping; disable only for trusted
  /// freshly-written files on a hot path (the cheap structural checks —
  /// header checksum, exact file size, offset monotonicity — always run).
  bool verify_checksum = true;
};

/// Serialises `g` (either backend, via Graph::view()) to `path` atomically.
/// Throws std::runtime_error naming the path on any I/O failure.
void write_csr_file(const Graph& g, const std::string& path);

/// Memory-maps `path` as a read-only Graph (the disk tier).  The returned
/// Graph — and every copy of it — shares the mapping and keeps it alive.
/// Throws std::runtime_error naming the path on I/O failure or any
/// validation failure (see CsrLoadOptions).
[[nodiscard]] Graph load_csr_file(const std::string& path, const CsrLoadOptions& options = {});

/// Whether `path` starts with the BMCSR magic (content sniff used by the
/// family="file" loader to pick mmap vs edge-list-text ingest).  False for
/// unreadable or short files.
[[nodiscard]] bool is_csr_file(const std::string& path);

// --- streaming builds -----------------------------------------------------

/// Receives one undirected edge; endpoints may come in either orientation.
using EdgeEmitter = std::function<void(NodeId u, NodeId v)>;

/// A *replayable* edge enumeration: invoking the stream emits every edge of
/// the graph exactly once (no duplicates in either orientation, no
/// self-loops), and every invocation replays the identical sequence.
/// Generators re-seed a fresh rng per replay (graph/generators.hpp edge
/// streams); file ingest re-reads the file (graph/io.hpp).
using EdgeStream = std::function<void(const EdgeEmitter&)>;

struct StreamCsrOptions {
  /// Bound on the chunk fill buffer.  The builder keeps O(node_count)
  /// index arrays plus one adjacency chunk of at most this many bytes
  /// (a single node whose list alone exceeds the budget still gets one
  /// over-budget chunk); smaller budgets trade more stream replays for a
  /// lower peak RSS.
  std::size_t memory_budget_bytes = 64ull << 20;
  /// Test seam: write the wide (64-bit offset) layout regardless of size,
  /// so the fallback boundary is coverable without 2^31 edges.
  bool force_wide_offsets = false;
};

struct StreamCsrStats {
  std::uint64_t adjacency_count = 0;  ///< directed slots written (2m)
  unsigned stream_passes = 0;         ///< replays: 1 degree pass + fill chunks
};

/// Builds the BMCSR file for the graph described by `stream` without ever
/// materialising the full edge list or adjacency in memory: one counting
/// replay fixes the degrees/offsets, then node-range chunks sized by the
/// memory budget are filled (scatter + per-node sort) by further replays
/// and appended sequentially.  Bit-identical to GraphBuilder + write_csr_file
/// for the same edge set.  Throws std::invalid_argument on a self-loop,
/// out-of-range endpoint, duplicate edge, or a stream that does not replay
/// identically; std::runtime_error on I/O failure.  Atomic like
/// write_csr_file.
StreamCsrStats write_csr_file_streaming(NodeId node_count, const EdgeStream& stream,
                                        const std::string& path,
                                        const StreamCsrOptions& options = {});

}  // namespace beepmis::graph

#include "graph/properties.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "support/stats.hpp"

namespace beepmis::graph {

bool is_independent_set(const Graph& g, std::span<const NodeId> set) {
  std::vector<bool> member(g.node_count(), false);
  for (NodeId v : set) {
    if (v >= g.node_count()) return false;
    member[v] = true;
  }
  for (NodeId v : set) {
    for (NodeId w : g.neighbors(v)) {
      if (member[w]) return false;
    }
  }
  return true;
}

bool is_maximal_independent_set(const Graph& g, std::span<const NodeId> set) {
  if (!is_independent_set(g, set)) return false;
  std::vector<bool> covered(g.node_count(), false);
  for (NodeId v : set) {
    covered[v] = true;
    for (NodeId w : g.neighbors(v)) covered[w] = true;
  }
  return std::all_of(covered.begin(), covered.end(), [](bool c) { return c; });
}

std::vector<NodeId> greedy_mis(const Graph& g) {
  std::vector<NodeId> order(g.node_count());
  std::iota(order.begin(), order.end(), NodeId{0});
  return greedy_mis(g, order);
}

std::vector<NodeId> greedy_mis(const Graph& g, std::span<const NodeId> order) {
  std::vector<bool> blocked(g.node_count(), false);
  std::vector<NodeId> mis;
  for (NodeId v : order) {
    if (v >= g.node_count()) throw std::invalid_argument("greedy_mis: bad order");
    if (blocked[v]) continue;
    mis.push_back(v);
    blocked[v] = true;
    for (NodeId w : g.neighbors(v)) blocked[w] = true;
  }
  std::sort(mis.begin(), mis.end());
  return mis;
}

std::vector<NodeId> random_greedy_mis(const Graph& g, support::Xoshiro256StarStar& rng) {
  std::vector<NodeId> order(g.node_count());
  std::iota(order.begin(), order.end(), NodeId{0});
  // Fisher-Yates shuffle driven by our deterministic generator.
  for (std::size_t i = order.size(); i > 1; --i) {
    const std::size_t j = rng.below(i);
    std::swap(order[i - 1], order[j]);
  }
  return greedy_mis(g, order);
}

Components connected_components(const Graph& g) {
  Components out;
  out.component_of.assign(g.node_count(), static_cast<NodeId>(-1));
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (out.component_of[start] != static_cast<NodeId>(-1)) continue;
    const NodeId comp = out.count++;
    stack.push_back(start);
    out.component_of[start] = comp;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (NodeId w : g.neighbors(v)) {
        if (out.component_of[w] == static_cast<NodeId>(-1)) {
          out.component_of[w] = comp;
          stack.push_back(w);
        }
      }
    }
  }
  return out;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats out;
  if (g.node_count() == 0) return out;
  support::RunningStats rs;
  out.min = g.degree(0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::size_t d = g.degree(v);
    out.min = std::min(out.min, d);
    out.max = std::max(out.max, d);
    rs.push(static_cast<double>(d));
  }
  out.mean = rs.mean();
  out.stddev = rs.stddev();
  return out;
}

Coloring greedy_coloring(const Graph& g) {
  Coloring out;
  out.color_of.assign(g.node_count(), static_cast<NodeId>(-1));
  std::vector<bool> in_use;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    in_use.assign(g.degree(v) + 1, false);
    for (NodeId w : g.neighbors(v)) {
      const NodeId c = out.color_of[w];
      if (c != static_cast<NodeId>(-1) && c < in_use.size()) in_use[c] = true;
    }
    NodeId color = 0;
    while (in_use[color]) ++color;
    out.color_of[v] = color;
    out.colors_used = std::max(out.colors_used, color + 1);
  }
  return out;
}

bool is_proper_coloring(const Graph& g, const Coloring& coloring) {
  if (coloring.color_of.size() != g.node_count()) return false;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (coloring.color_of[v] >= coloring.colors_used) return false;
    for (NodeId w : g.neighbors(v)) {
      if (coloring.color_of[v] == coloring.color_of[w]) return false;
    }
  }
  return true;
}

namespace {

/// Branch and bound over (remaining candidates as vector): pick a pivot
/// node; either exclude it (and keep its neighbours) or include it (and
/// drop its closed neighbourhood).
std::size_t max_is_recurse(const Graph& g, std::vector<NodeId>& candidates,
                           std::size_t current, std::size_t& best) {
  if (candidates.empty()) {
    best = std::max(best, current);
    return best;
  }
  if (current + candidates.size() <= best) return best;  // bound

  const NodeId pivot = candidates.back();
  candidates.pop_back();

  // Branch 1: include pivot.
  std::vector<NodeId> reduced;
  reduced.reserve(candidates.size());
  for (NodeId c : candidates) {
    if (c != pivot && !g.has_edge(pivot, c)) reduced.push_back(c);
  }
  max_is_recurse(g, reduced, current + 1, best);

  // Branch 2: exclude pivot.
  max_is_recurse(g, candidates, current, best);

  candidates.push_back(pivot);
  return best;
}

}  // namespace

std::size_t maximum_independent_set_size(const Graph& g) {
  if (g.node_count() > 48) {
    throw std::invalid_argument(
        "maximum_independent_set_size: exact solver limited to 48 nodes");
  }
  std::vector<NodeId> candidates(g.node_count());
  std::iota(candidates.begin(), candidates.end(), NodeId{0});
  std::size_t best = 0;
  max_is_recurse(g, candidates, 0, best);
  return best;
}

}  // namespace beepmis::graph

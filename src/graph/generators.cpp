#include "graph/generators.hpp"

#include <cmath>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

namespace beepmis::graph {

// Deterministic and seed-replayable families share one sink-templated edge
// enumeration each: the Graph generator feeds a GraphBuilder, the edge
// stream feeds the streaming CSR writer, and both walk the identical
// sequence — the bit-identity contract between the RAM and disk tiers
// hangs on this sharing, so add edges only inside the emit_* functions.
namespace {

template <typename Sink>
void emit_complete_edges(NodeId n, Sink&& sink) {
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) sink(u, v);
  }
}

/// Skip-based G(n,p) edge enumeration (Batagelj & Brandes 2005): walks the
/// implicit list of all C(n,2) edges, jumping Geometric(p) positions at a
/// time, so the cost is proportional to the number of generated edges.
template <typename Sink>
void emit_gnp_edges_sparse(NodeId n, double p, support::Xoshiro256StarStar& rng,
                           Sink&& sink) {
  const double log_1p = std::log(1.0 - p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  const auto nn = static_cast<std::int64_t>(n);
  while (v < nn) {
    const double r = 1.0 - rng.uniform01();  // (0, 1]
    const auto skip = static_cast<std::int64_t>(std::floor(std::log(r) / log_1p));
    w += 1 + skip;
    while (w >= v && v < nn) {
      w -= v;
      ++v;
    }
    if (v < nn) {
      sink(static_cast<NodeId>(w), static_cast<NodeId>(v));
    }
  }
}

template <typename Sink>
void emit_gnp_edges(NodeId n, double p, support::Xoshiro256StarStar& rng, Sink&& sink) {
  if (n < 2 || p == 0.0) return;
  if (p == 1.0) {
    emit_complete_edges(n, sink);
    return;
  }
  if (p <= 0.25) {
    emit_gnp_edges_sparse(n, p, rng, sink);
  } else {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (rng.bernoulli(p)) sink(u, v);
      }
    }
  }
}

template <typename Sink>
void emit_ring_edges(NodeId n, Sink&& sink) {
  for (NodeId v = 0; v < n; ++v) sink(v, (v + 1) % n);
}

template <typename Sink>
void emit_path_edges(NodeId n, Sink&& sink) {
  for (NodeId v = 0; v + 1 < n; ++v) sink(v, v + 1);
}

template <typename Sink>
void emit_star_edges(NodeId n, Sink&& sink) {
  for (NodeId v = 1; v < n; ++v) sink(0, v);
}

template <typename Sink>
void emit_grid2d_edges(NodeId rows, NodeId cols, Sink&& sink) {
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) sink(id(r, c), id(r, c + 1));
      if (r + 1 < rows) sink(id(r, c), id(r + 1, c));
    }
  }
}

template <typename Sink>
void emit_hex_grid_edges(NodeId rows, NodeId cols, Sink&& sink) {
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) sink(id(r, c), id(r, c + 1));
      if (r + 1 < rows) sink(id(r, c), id(r + 1, c));
      // One diagonal per cell turns the square grid into a triangular
      // lattice, whose dual is the hexagonal cell packing.
      if (r + 1 < rows && c + 1 < cols) sink(id(r, c + 1), id(r + 1, c));
    }
  }
}

template <typename Sink>
void emit_hypercube_edges(unsigned dimension, Sink&& sink) {
  const NodeId n = static_cast<NodeId>(1) << dimension;
  for (NodeId v = 0; v < n; ++v) {
    for (unsigned b = 0; b < dimension; ++b) {
      const NodeId w = v ^ (static_cast<NodeId>(1) << b);
      if (v < w) sink(v, w);
    }
  }
}

template <typename Sink>
void emit_clique_family_edges(NodeId max_clique, NodeId copies, Sink&& sink) {
  NodeId next = 0;
  for (NodeId d = 1; d <= max_clique; ++d) {
    for (NodeId c = 0; c < copies; ++c) {
      const NodeId base = next;
      for (NodeId i = 0; i < d; ++i) {
        for (NodeId j = i + 1; j < d; ++j) sink(base + i, base + j);
      }
      next += d;
    }
  }
}

template <typename Sink>
void emit_caterpillar_edges(NodeId spine, NodeId legs_per_node, Sink&& sink) {
  for (NodeId s = 0; s + 1 < spine; ++s) sink(s, s + 1);
  NodeId next = spine;
  for (NodeId s = 0; s < spine; ++s) {
    for (NodeId l = 0; l < legs_per_node; ++l) sink(s, next++);
  }
}

template <typename Sink>
void emit_random_bipartite_edges(NodeId left, NodeId right, double p,
                                 support::Xoshiro256StarStar& rng, Sink&& sink) {
  for (NodeId u = 0; u < left; ++u) {
    for (NodeId v = 0; v < right; ++v) {
      if (rng.bernoulli(p)) sink(u, left + v);
    }
  }
}

/// Builds a Graph by piping a sink-templated enumeration into GraphBuilder.
template <typename Emit>
Graph build_from_emitter(NodeId n, Emit&& emit) {
  GraphBuilder builder(n);
  emit([&builder](NodeId u, NodeId v) { builder.add_edge(u, v); });
  return builder.build();
}

void check_probability(const char* who, double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string(who) + ": p must be in [0, 1]");
  }
}

}  // namespace

Graph gnp(NodeId n, double p, support::Xoshiro256StarStar& rng) {
  check_probability("gnp", p);
  return build_from_emitter(n, [&](auto&& sink) { emit_gnp_edges(n, p, rng, sink); });
}

Graph complete(NodeId n) {
  return build_from_emitter(n, [&](auto&& sink) { emit_complete_edges(n, sink); });
}

Graph empty_graph(NodeId n) { return GraphBuilder(n).build(); }

NodeId clique_family_node_count(NodeId max_clique, NodeId copies) {
  // Total nodes: copies * (1 + 2 + ... + max_clique).
  const std::uint64_t per_copy_set =
      static_cast<std::uint64_t>(max_clique) * (static_cast<std::uint64_t>(max_clique) + 1) / 2;
  const std::uint64_t total = per_copy_set * copies;
  if (total > 0xffffffffULL) throw std::invalid_argument("clique_family: too many nodes");
  return static_cast<NodeId>(total);
}

Graph clique_family(NodeId max_clique, NodeId copies) {
  const NodeId total = clique_family_node_count(max_clique, copies);
  return build_from_emitter(
      total, [&](auto&& sink) { emit_clique_family_edges(max_clique, copies, sink); });
}

Graph clique_family_for_n(NodeId n) {
  const auto k = static_cast<NodeId>(std::cbrt(static_cast<double>(n)));
  return clique_family(std::max<NodeId>(k, 1), std::max<NodeId>(k, 1));
}

Graph grid2d(NodeId rows, NodeId cols) {
  const std::uint64_t total = static_cast<std::uint64_t>(rows) * cols;
  if (total > 0xffffffffULL) throw std::invalid_argument("grid2d: too many nodes");
  return build_from_emitter(static_cast<NodeId>(total),
                            [&](auto&& sink) { emit_grid2d_edges(rows, cols, sink); });
}

Graph hex_grid(NodeId rows, NodeId cols) {
  const std::uint64_t total = static_cast<std::uint64_t>(rows) * cols;
  if (total > 0xffffffffULL) throw std::invalid_argument("hex_grid: too many nodes");
  return build_from_emitter(static_cast<NodeId>(total),
                            [&](auto&& sink) { emit_hex_grid_edges(rows, cols, sink); });
}

Graph ring(NodeId n) {
  if (n < 3) throw std::invalid_argument("ring: need n >= 3");
  return build_from_emitter(n, [&](auto&& sink) { emit_ring_edges(n, sink); });
}

Graph path(NodeId n) {
  return build_from_emitter(n, [&](auto&& sink) { emit_path_edges(n, sink); });
}

Graph star(NodeId n) {
  return build_from_emitter(n, [&](auto&& sink) { emit_star_edges(n, sink); });
}

Graph random_tree(NodeId n, support::Xoshiro256StarStar& rng) {
  GraphBuilder builder(n);
  if (n <= 1) return builder.build();
  if (n == 2) return builder.add_edge(0, 1).build();

  // Decode a uniformly random Prüfer sequence of length n-2.
  std::vector<NodeId> prufer(n - 2);
  for (auto& x : prufer) x = static_cast<NodeId>(rng.below(n));

  std::vector<NodeId> degree(n, 1);
  for (NodeId x : prufer) ++degree[x];

  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> leaves;
  for (NodeId v = 0; v < n; ++v) {
    if (degree[v] == 1) leaves.push(v);
  }
  for (NodeId x : prufer) {
    const NodeId leaf = leaves.top();
    leaves.pop();
    builder.add_edge(leaf, x);
    if (--degree[x] == 1) leaves.push(x);
  }
  const NodeId u = leaves.top();
  leaves.pop();
  builder.add_edge(u, leaves.top());
  return builder.build();
}

Graph hypercube(unsigned dimension) {
  if (dimension > 20) throw std::invalid_argument("hypercube: dimension too large");
  const NodeId n = static_cast<NodeId>(1) << dimension;
  return build_from_emitter(n, [&](auto&& sink) { emit_hypercube_edges(dimension, sink); });
}

GeometricGraph random_geometric(NodeId n, double radius,
                                support::Xoshiro256StarStar& rng) {
  GeometricGraph out;
  out.x.resize(n);
  out.y.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    out.x[v] = rng.uniform01();
    out.y[v] = rng.uniform01();
  }
  GraphBuilder builder(n);
  const double r2 = radius * radius;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = out.x[u] - out.x[v];
      const double dy = out.y[u] - out.y[v];
      if (dx * dx + dy * dy <= r2) builder.add_edge(u, v);
    }
  }
  out.graph = builder.build();
  return out;
}

Graph barabasi_albert(NodeId n, NodeId attach_edges, support::Xoshiro256StarStar& rng) {
  if (attach_edges == 0) throw std::invalid_argument("barabasi_albert: attach_edges >= 1");
  const NodeId seed_nodes = attach_edges + 1;
  if (n < seed_nodes) throw std::invalid_argument("barabasi_albert: n too small");

  GraphBuilder builder(n);
  // Endpoint multiset: sampling a uniform element is degree-proportional.
  std::vector<NodeId> endpoints;
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (NodeId v = u + 1; v < seed_nodes; ++v) {
      builder.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId v = seed_nodes; v < n; ++v) {
    std::vector<NodeId> chosen;
    while (chosen.size() < attach_edges) {
      const NodeId target = endpoints[rng.below(endpoints.size())];
      bool duplicate = false;
      for (NodeId c : chosen) duplicate = duplicate || (c == target);
      if (!duplicate) chosen.push_back(target);
    }
    for (NodeId target : chosen) {
      builder.add_edge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return builder.build();
}

Graph random_bipartite(NodeId left, NodeId right, double p,
                       support::Xoshiro256StarStar& rng) {
  check_probability("random_bipartite", p);
  return build_from_emitter(left + right, [&](auto&& sink) {
    emit_random_bipartite_edges(left, right, p, rng, sink);
  });
}

Graph caterpillar(NodeId spine, NodeId legs_per_node) {
  const std::uint64_t total =
      static_cast<std::uint64_t>(spine) * (1 + static_cast<std::uint64_t>(legs_per_node));
  if (total > 0xffffffffULL) throw std::invalid_argument("caterpillar: too many nodes");
  return build_from_emitter(static_cast<NodeId>(total), [&](auto&& sink) {
    emit_caterpillar_edges(spine, legs_per_node, sink);
  });
}

// --- replayable edge streams ---------------------------------------------

EdgeStream gnp_edge_stream(NodeId n, double p, std::uint64_t seed) {
  check_probability("gnp_edge_stream", p);
  return [n, p, seed](const EdgeEmitter& emit) {
    auto rng = support::Xoshiro256StarStar(seed);  // fresh per replay
    emit_gnp_edges(n, p, rng, emit);
  };
}

EdgeStream complete_edge_stream(NodeId n) {
  return [n](const EdgeEmitter& emit) { emit_complete_edges(n, emit); };
}

EdgeStream empty_edge_stream() {
  return [](const EdgeEmitter&) {};
}

EdgeStream ring_edge_stream(NodeId n) {
  if (n < 3) throw std::invalid_argument("ring: need n >= 3");
  return [n](const EdgeEmitter& emit) { emit_ring_edges(n, emit); };
}

EdgeStream path_edge_stream(NodeId n) {
  return [n](const EdgeEmitter& emit) { emit_path_edges(n, emit); };
}

EdgeStream star_edge_stream(NodeId n) {
  return [n](const EdgeEmitter& emit) { emit_star_edges(n, emit); };
}

EdgeStream grid2d_edge_stream(NodeId rows, NodeId cols) {
  if (static_cast<std::uint64_t>(rows) * cols > 0xffffffffULL) {
    throw std::invalid_argument("grid2d: too many nodes");
  }
  return [rows, cols](const EdgeEmitter& emit) { emit_grid2d_edges(rows, cols, emit); };
}

EdgeStream hex_grid_edge_stream(NodeId rows, NodeId cols) {
  if (static_cast<std::uint64_t>(rows) * cols > 0xffffffffULL) {
    throw std::invalid_argument("hex_grid: too many nodes");
  }
  return [rows, cols](const EdgeEmitter& emit) { emit_hex_grid_edges(rows, cols, emit); };
}

EdgeStream hypercube_edge_stream(unsigned dimension) {
  if (dimension > 20) throw std::invalid_argument("hypercube: dimension too large");
  return [dimension](const EdgeEmitter& emit) { emit_hypercube_edges(dimension, emit); };
}

EdgeStream clique_family_edge_stream(NodeId max_clique, NodeId copies) {
  (void)clique_family_node_count(max_clique, copies);  // overflow check up front
  return [max_clique, copies](const EdgeEmitter& emit) {
    emit_clique_family_edges(max_clique, copies, emit);
  };
}

EdgeStream caterpillar_edge_stream(NodeId spine, NodeId legs_per_node) {
  if (static_cast<std::uint64_t>(spine) * (1 + static_cast<std::uint64_t>(legs_per_node)) >
      0xffffffffULL) {
    throw std::invalid_argument("caterpillar: too many nodes");
  }
  return [spine, legs_per_node](const EdgeEmitter& emit) {
    emit_caterpillar_edges(spine, legs_per_node, emit);
  };
}

EdgeStream random_bipartite_edge_stream(NodeId left, NodeId right, double p,
                                        std::uint64_t seed) {
  check_probability("random_bipartite", p);
  return [left, right, p, seed](const EdgeEmitter& emit) {
    auto rng = support::Xoshiro256StarStar(seed);  // fresh per replay
    emit_random_bipartite_edges(left, right, p, rng, emit);
  };
}

}  // namespace beepmis::graph

#include "graph/generators.hpp"

#include <cmath>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

namespace beepmis::graph {

namespace {

/// Skip-based G(n,p) edge enumeration (Batagelj & Brandes 2005): walks the
/// implicit list of all C(n,2) edges, jumping Geometric(p) positions at a
/// time, so the cost is proportional to the number of generated edges.
void add_gnp_edges_sparse(GraphBuilder& builder, NodeId n, double p,
                          support::Xoshiro256StarStar& rng) {
  const double log_1p = std::log(1.0 - p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  const auto nn = static_cast<std::int64_t>(n);
  while (v < nn) {
    const double r = 1.0 - rng.uniform01();  // (0, 1]
    const auto skip = static_cast<std::int64_t>(std::floor(std::log(r) / log_1p));
    w += 1 + skip;
    while (w >= v && v < nn) {
      w -= v;
      ++v;
    }
    if (v < nn) {
      builder.add_edge(static_cast<NodeId>(w), static_cast<NodeId>(v));
    }
  }
}

}  // namespace

Graph gnp(NodeId n, double p, support::Xoshiro256StarStar& rng) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("gnp: p must be in [0, 1]");
  GraphBuilder builder(n);
  if (n < 2 || p == 0.0) return builder.build();
  if (p == 1.0) return complete(n);
  if (p <= 0.25) {
    add_gnp_edges_sparse(builder, n, p, rng);
  } else {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (rng.bernoulli(p)) builder.add_edge(u, v);
      }
    }
  }
  return builder.build();
}

Graph complete(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph empty_graph(NodeId n) { return GraphBuilder(n).build(); }

Graph clique_family(NodeId max_clique, NodeId copies) {
  // Total nodes: copies * (1 + 2 + ... + max_clique).
  const std::uint64_t per_copy_set =
      static_cast<std::uint64_t>(max_clique) * (static_cast<std::uint64_t>(max_clique) + 1) / 2;
  const std::uint64_t total = per_copy_set * copies;
  if (total > 0xffffffffULL) throw std::invalid_argument("clique_family: too many nodes");

  GraphBuilder builder(static_cast<NodeId>(total));
  NodeId next = 0;
  for (NodeId d = 1; d <= max_clique; ++d) {
    for (NodeId c = 0; c < copies; ++c) {
      const NodeId base = next;
      for (NodeId i = 0; i < d; ++i) {
        for (NodeId j = i + 1; j < d; ++j) builder.add_edge(base + i, base + j);
      }
      next += d;
    }
  }
  return builder.build();
}

Graph clique_family_for_n(NodeId n) {
  const auto k = static_cast<NodeId>(std::cbrt(static_cast<double>(n)));
  return clique_family(std::max<NodeId>(k, 1), std::max<NodeId>(k, 1));
}

Graph grid2d(NodeId rows, NodeId cols) {
  const std::uint64_t total = static_cast<std::uint64_t>(rows) * cols;
  if (total > 0xffffffffULL) throw std::invalid_argument("grid2d: too many nodes");
  GraphBuilder builder(static_cast<NodeId>(total));
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return builder.build();
}

Graph hex_grid(NodeId rows, NodeId cols) {
  const std::uint64_t total = static_cast<std::uint64_t>(rows) * cols;
  if (total > 0xffffffffULL) throw std::invalid_argument("hex_grid: too many nodes");
  GraphBuilder builder(static_cast<NodeId>(total));
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.add_edge(id(r, c), id(r + 1, c));
      // One diagonal per cell turns the square grid into a triangular
      // lattice, whose dual is the hexagonal cell packing.
      if (r + 1 < rows && c + 1 < cols) builder.add_edge(id(r, c + 1), id(r + 1, c));
    }
  }
  return builder.build();
}

Graph ring(NodeId n) {
  if (n < 3) throw std::invalid_argument("ring: need n >= 3");
  GraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) builder.add_edge(v, (v + 1) % n);
  return builder.build();
}

Graph path(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1);
  return builder.build();
}

Graph star(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) builder.add_edge(0, v);
  return builder.build();
}

Graph random_tree(NodeId n, support::Xoshiro256StarStar& rng) {
  GraphBuilder builder(n);
  if (n <= 1) return builder.build();
  if (n == 2) return builder.add_edge(0, 1).build();

  // Decode a uniformly random Prüfer sequence of length n-2.
  std::vector<NodeId> prufer(n - 2);
  for (auto& x : prufer) x = static_cast<NodeId>(rng.below(n));

  std::vector<NodeId> degree(n, 1);
  for (NodeId x : prufer) ++degree[x];

  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> leaves;
  for (NodeId v = 0; v < n; ++v) {
    if (degree[v] == 1) leaves.push(v);
  }
  for (NodeId x : prufer) {
    const NodeId leaf = leaves.top();
    leaves.pop();
    builder.add_edge(leaf, x);
    if (--degree[x] == 1) leaves.push(x);
  }
  const NodeId u = leaves.top();
  leaves.pop();
  builder.add_edge(u, leaves.top());
  return builder.build();
}

Graph hypercube(unsigned dimension) {
  if (dimension > 20) throw std::invalid_argument("hypercube: dimension too large");
  const NodeId n = static_cast<NodeId>(1) << dimension;
  GraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) {
    for (unsigned b = 0; b < dimension; ++b) {
      const NodeId w = v ^ (static_cast<NodeId>(1) << b);
      if (v < w) builder.add_edge(v, w);
    }
  }
  return builder.build();
}

GeometricGraph random_geometric(NodeId n, double radius,
                                support::Xoshiro256StarStar& rng) {
  GeometricGraph out;
  out.x.resize(n);
  out.y.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    out.x[v] = rng.uniform01();
    out.y[v] = rng.uniform01();
  }
  GraphBuilder builder(n);
  const double r2 = radius * radius;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = out.x[u] - out.x[v];
      const double dy = out.y[u] - out.y[v];
      if (dx * dx + dy * dy <= r2) builder.add_edge(u, v);
    }
  }
  out.graph = builder.build();
  return out;
}

Graph barabasi_albert(NodeId n, NodeId attach_edges, support::Xoshiro256StarStar& rng) {
  if (attach_edges == 0) throw std::invalid_argument("barabasi_albert: attach_edges >= 1");
  const NodeId seed_nodes = attach_edges + 1;
  if (n < seed_nodes) throw std::invalid_argument("barabasi_albert: n too small");

  GraphBuilder builder(n);
  // Endpoint multiset: sampling a uniform element is degree-proportional.
  std::vector<NodeId> endpoints;
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (NodeId v = u + 1; v < seed_nodes; ++v) {
      builder.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId v = seed_nodes; v < n; ++v) {
    std::vector<NodeId> chosen;
    while (chosen.size() < attach_edges) {
      const NodeId target = endpoints[rng.below(endpoints.size())];
      bool duplicate = false;
      for (NodeId c : chosen) duplicate = duplicate || (c == target);
      if (!duplicate) chosen.push_back(target);
    }
    for (NodeId target : chosen) {
      builder.add_edge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return builder.build();
}

Graph random_bipartite(NodeId left, NodeId right, double p,
                       support::Xoshiro256StarStar& rng) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("random_bipartite: bad p");
  GraphBuilder builder(left + right);
  for (NodeId u = 0; u < left; ++u) {
    for (NodeId v = 0; v < right; ++v) {
      if (rng.bernoulli(p)) builder.add_edge(u, left + v);
    }
  }
  return builder.build();
}

Graph caterpillar(NodeId spine, NodeId legs_per_node) {
  const std::uint64_t total =
      static_cast<std::uint64_t>(spine) * (1 + static_cast<std::uint64_t>(legs_per_node));
  if (total > 0xffffffffULL) throw std::invalid_argument("caterpillar: too many nodes");
  GraphBuilder builder(static_cast<NodeId>(total));
  for (NodeId s = 0; s + 1 < spine; ++s) builder.add_edge(s, s + 1);
  NodeId next = spine;
  for (NodeId s = 0; s < spine; ++s) {
    for (NodeId l = 0; l < legs_per_node; ++l) builder.add_edge(s, next++);
  }
  return builder.build();
}

}  // namespace beepmis::graph

#include "cli/registry.hpp"

#include <cmath>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "cli/sweep_spec.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "support/hash.hpp"
#include "mis/exact_feedback.hpp"
#include "mis/global_schedule.hpp"
#include "mis/mis.hpp"
#include "mis/pure_beep.hpp"
#include "mis/schedule.hpp"
#include "mis/self_healing.hpp"
#include "sim/sharded.hpp"

namespace beepmis::cli {

graph::Graph make_graph(const GraphSpec& spec) {
  auto rng = support::Xoshiro256StarStar(spec.seed);
  if (spec.family == "gnp") return graph::gnp(spec.n, spec.p, rng);
  if (spec.family == "complete") return graph::complete(spec.n);
  if (spec.family == "empty") return graph::empty_graph(spec.n);
  if (spec.family == "ring") return graph::ring(spec.n);
  if (spec.family == "path") return graph::path(spec.n);
  if (spec.family == "star") return graph::star(spec.n);
  if (spec.family == "grid") return graph::grid2d(spec.rows, spec.cols);
  if (spec.family == "hex") return graph::hex_grid(spec.rows, spec.cols);
  if (spec.family == "tree") return graph::random_tree(spec.n, rng);
  if (spec.family == "hypercube") {
    const auto d = static_cast<unsigned>(
        std::round(std::log2(std::max<double>(2.0, static_cast<double>(spec.n)))));
    return graph::hypercube(d);
  }
  if (spec.family == "geometric") return graph::random_geometric(spec.n, spec.p, rng).graph;
  if (spec.family == "ba") return graph::barabasi_albert(spec.n, spec.k, rng);
  if (spec.family == "clique-family") return graph::clique_family(spec.k, spec.k);
  if (spec.family == "caterpillar") return graph::caterpillar(spec.rows, spec.cols);
  if (spec.family == "bipartite") {
    return graph::random_bipartite(spec.n / 2, spec.n - spec.n / 2, spec.p, rng);
  }
  if (spec.family == "file") {
    if (spec.path.empty()) {
      throw std::invalid_argument("graph family 'file' needs a path (--graph-file)");
    }
    return graph::load_graph_file(spec.path);
  }
  throw std::invalid_argument("unknown graph family: " + spec.family);
}

std::vector<std::string> graph_families() {
  return {"ba",   "bipartite", "caterpillar", "clique-family", "complete", "empty",
          "file", "geometric", "gnp",         "grid",          "hex",      "hypercube",
          "path", "ring",      "star",        "tree"};
}

GraphStream make_graph_stream(const GraphSpec& spec) {
  const auto hypercube_dim = [](graph::NodeId n) {
    return static_cast<unsigned>(
        std::round(std::log2(std::max<double>(2.0, static_cast<double>(n)))));
  };
  if (spec.family == "gnp") return {spec.n, graph::gnp_edge_stream(spec.n, spec.p, spec.seed)};
  if (spec.family == "complete") return {spec.n, graph::complete_edge_stream(spec.n)};
  if (spec.family == "empty") return {spec.n, graph::empty_edge_stream()};
  if (spec.family == "ring") return {spec.n, graph::ring_edge_stream(spec.n)};
  if (spec.family == "path") return {spec.n, graph::path_edge_stream(spec.n)};
  if (spec.family == "star") return {spec.n, graph::star_edge_stream(spec.n)};
  if (spec.family == "grid") {
    auto stream = graph::grid2d_edge_stream(spec.rows, spec.cols);  // validates size
    return {static_cast<graph::NodeId>(static_cast<std::uint64_t>(spec.rows) * spec.cols),
            std::move(stream)};
  }
  if (spec.family == "hex") {
    auto stream = graph::hex_grid_edge_stream(spec.rows, spec.cols);  // validates size
    return {static_cast<graph::NodeId>(static_cast<std::uint64_t>(spec.rows) * spec.cols),
            std::move(stream)};
  }
  if (spec.family == "hypercube") {
    const unsigned d = hypercube_dim(spec.n);
    return {static_cast<graph::NodeId>(1) << d, graph::hypercube_edge_stream(d)};
  }
  if (spec.family == "clique-family") {
    return {graph::clique_family_node_count(spec.k, spec.k),
            graph::clique_family_edge_stream(spec.k, spec.k)};
  }
  if (spec.family == "caterpillar") {
    auto stream = graph::caterpillar_edge_stream(spec.rows, spec.cols);  // validates size
    return {static_cast<graph::NodeId>(static_cast<std::uint64_t>(spec.rows) *
                                       (1 + static_cast<std::uint64_t>(spec.cols))),
            std::move(stream)};
  }
  if (spec.family == "bipartite") {
    return {spec.n, graph::random_bipartite_edge_stream(spec.n / 2, spec.n - spec.n / 2,
                                                        spec.p, spec.seed)};
  }
  if (spec.family == "file") {
    if (spec.path.empty()) {
      throw std::invalid_argument("graph family 'file' needs a path (--graph-file)");
    }
    if (graph::is_csr_file(spec.path)) {
      throw std::invalid_argument(
          "make_graph_stream: " + spec.path + " is already a BMCSR container");
    }
    return {graph::read_edge_list_node_count(spec.path),
            graph::edge_list_file_stream(spec.path)};
  }
  if (spec.family == "tree" || spec.family == "ba" || spec.family == "geometric") {
    throw std::invalid_argument(
        "graph family '" + spec.family +
        "' has no bounded-memory edge stream (its enumeration needs O(n) state); "
        "build it in RAM and write_csr_file instead");
  }
  throw std::invalid_argument("unknown graph family: " + spec.family);
}

std::string graph_help() {
  return "graph families:\n"
         "  gnp            G(n, p)                      (--n, --p, --graph-seed)\n"
         "  geometric      random geometric, radius p   (--n, --p, --graph-seed)\n"
         "  tree           uniform random tree          (--n, --graph-seed)\n"
         "  ba             Barabasi-Albert, k edges     (--n, --k, --graph-seed)\n"
         "  bipartite      random bipartite, prob p     (--n, --p, --graph-seed)\n"
         "  complete/empty/ring/path/star               (--n)\n"
         "  grid/hex       lattice                      (--rows, --cols)\n"
         "  caterpillar    spine rows, cols legs each   (--rows, --cols)\n"
         "  hypercube      dimension round(log2 n)      (--n)\n"
         "  clique-family  Theorem 1 family, param k    (--k)\n"
         "  file           load a graph file            (--graph-file; BMCSR\n"
         "                 memory-mapped CSR or edge-list text, content-sniffed)\n";
}

std::shared_ptr<sim::FaultScenario> make_scenario(const ScenarioSpec& spec) {
  if (spec.name == "none") return nullptr;
  if (spec.name == "uniform-crash") {
    return std::make_shared<sim::UniformRandomCrash>(sim::UniformRandomCrashConfig{
        spec.rate, spec.round_lo, spec.round_hi, spec.seed});
  }
  if (spec.name == "target-degree") {
    return std::make_shared<sim::TargetHighDegree>(sim::TargetHighDegreeConfig{
        spec.budget, spec.round_lo, spec.round_hi, spec.seed});
  }
  if (spec.name == "target-boundary") {
    return std::make_shared<sim::TargetBoundary>(sim::TargetBoundaryConfig{
        spec.shards, spec.rate, spec.round_lo, spec.round_hi, spec.seed});
  }
  if (spec.name == "target-mis") {
    return std::make_shared<sim::TargetMisMembers>(sim::TargetMisMembersConfig{
        spec.round_lo, spec.budget, spec.rate, spec.seed});
  }
  if (spec.name == "churn") {
    const std::uint32_t hi = spec.round_hi == 0 ? UINT32_MAX : spec.round_hi;
    return std::make_shared<sim::ChurnStream>(sim::ChurnStreamConfig{
        spec.rate, spec.revive_delay_mean, spec.round_lo, hi, spec.seed});
  }
  if (spec.name == "budgeted") {
    return std::make_shared<sim::BudgetedAdversary>(sim::BudgetedAdversaryConfig{
        spec.budget, spec.round_lo, /*crashes_per_round=*/1});
  }
  throw std::invalid_argument("unknown fault scenario: " + spec.name);
}

std::vector<std::string> scenario_names() {
  return {"budgeted",   "churn",          "none",      "target-boundary",
          "target-degree", "target-mis", "uniform-crash"};
}

std::string scenario_help() {
  return "fault scenarios (--scenario; all deterministic per --scenario-seed):\n"
         "  none             no injected faults (default)\n"
         "  uniform-crash    each node crashes w.p. rate in [round-lo, round-hi]\n"
         "  target-degree    crash the budget highest-degree nodes in the window\n"
         "  target-boundary  crash partition-boundary nodes w.p. rate (shards cuts)\n"
         "  target-mis       adaptive: crash new MIS members (prob rate, from\n"
         "                   round-lo, at most budget crashes)\n"
         "  churn            Poisson(rate) crashes/round, geometric revives\n"
         "  budgeted         adaptive: greedy worst-case member kills (budget)\n";
}

namespace {

/// The beeping SimConfig for a spec: the shared sim knobs plus the
/// requested fault scenario.
sim::SimConfig beeping_sim_config(const AlgorithmSpec& spec) {
  sim::SimConfig config = spec.sim;
  if (auto scenario = make_scenario(spec.scenario)) {
    if (spec.shards >= 2) {
      throw std::invalid_argument(
          "--scenario: fault scenarios run on the scalar simulator (drop --shards)");
    }
    config.scenario = std::move(scenario);
  }
  if (spec.budget_seconds > 0.0) {
    config.deadline_ns = std::make_shared<std::atomic<std::int64_t>>(
        sim::steady_now_ns() + static_cast<std::int64_t>(spec.budget_seconds * 1e9));
  }
  return config;
}

/// Runs a shard-capable beeping protocol either scalar or sharded
/// (AlgorithmSpec::shards >= 2).  The sharded path draws in scalar order,
/// so both paths return bit-identical results.
sim::RunResult run_beeping(const AlgorithmSpec& spec, const graph::Graph& g,
                           sim::BeepProtocol& protocol) {
  if (spec.shards >= 2) {
    sim::ShardedSimulator simulator(g, spec.shards, beeping_sim_config(spec));
    return simulator.run(protocol, support::Xoshiro256StarStar(spec.seed));
  }
  sim::BeepSimulator simulator(g, beeping_sim_config(spec));
  return simulator.run(protocol, support::Xoshiro256StarStar(spec.seed));
}

}  // namespace

sim::RunResult run_algorithm(const AlgorithmSpec& spec, const graph::Graph& g) {
  if (spec.name == "local-feedback") {
    mis::LocalFeedbackConfig config;
    config.factor_low = config.factor_high = spec.factor;
    config.initial_p_low = config.initial_p_high = spec.initial_p;
    mis::LocalFeedbackMis protocol(config);
    return run_beeping(spec, g, protocol);
  }
  if (spec.name == "local-feedback-exact") {
    mis::ExactLocalFeedbackMis protocol;
    return run_beeping(spec, g, protocol);
  }
  if (spec.name == "self-healing") {
    mis::SelfHealingConfig config;
    config.base.factor_low = config.base.factor_high = spec.factor;
    config.base.initial_p_low = config.base.initial_p_high = spec.initial_p;
    mis::SelfHealingLocalFeedbackMis protocol(config);
    // Healing detects dominator death through keepalive silence; without
    // keepalive the protocol never reactivates, so force it on.
    AlgorithmSpec healing = spec;
    healing.sim.mis_keepalive = true;
    return run_beeping(healing, g, protocol);
  }
  if (spec.name == "pure-beep") {
    if (spec.shards >= 2) {
      throw std::invalid_argument(
          "--shards: pure-beep has no sharded support (subslot exchanges draw "
          "outside the skeleton contract)");
    }
    mis::PureBeepLocalFeedbackMis protocol(/*subslots=*/8, spec.factor);
    sim::BeepSimulator simulator(g, beeping_sim_config(spec));
    return simulator.run(protocol, support::Xoshiro256StarStar(spec.seed));
  }
  if (spec.name == "global-sweep") {
    mis::GlobalScheduleMis protocol = mis::make_global_sweep_mis();
    return run_beeping(spec, g, protocol);
  }
  if (spec.name == "global-increasing") {
    // Parameterisation must match mis::run_global_increasing (mis.cpp),
    // which this path mirrors so --shards can route through run_beeping.
    mis::GlobalScheduleMis protocol =
        mis::make_global_increasing_mis(g.max_degree(), g.node_count());
    return run_beeping(spec, g, protocol);
  }
  if (spec.shards >= 2) {
    throw std::invalid_argument("--shards is only supported by the shard-capable "
                                "beeping algorithms (local-feedback, "
                                "local-feedback-exact, self-healing, global-sweep, "
                                "global-increasing); got: " + spec.name);
  }
  if (spec.scenario.name != "none") {
    throw std::invalid_argument(
        "--scenario: fault scenarios are a beeping-model feature; got LOCAL-model "
        "algorithm: " + spec.name);
  }
  if (spec.name == "luby") return mis::run_luby(g, spec.seed, spec.local_sim);
  if (spec.name == "luby-degree") return mis::run_luby_degree(g, spec.seed, spec.local_sim);
  if (spec.name == "metivier") return mis::run_metivier(g, spec.seed, 0, spec.local_sim);
  if (spec.name == "greedy-id") return mis::run_greedy_id(g, spec.local_sim);
  throw std::invalid_argument("unknown algorithm: " + spec.name);
}

std::vector<std::string> algorithm_names() {
  return {"global-increasing",    "global-sweep", "greedy-id", "local-feedback",
          "local-feedback-exact", "luby",         "luby-degree", "metivier",
          "pure-beep",            "self-healing"};
}

double parse_seconds_flag(const std::string& flag, const std::string& value) {
  const auto bad = [&] {
    throw std::invalid_argument(flag + ": expected a finite, non-negative number of seconds, got '" +
                                value + "'");
  };
  if (value.empty()) bad();
  const char* begin = value.c_str();
  char* end = nullptr;
  const double parsed = std::strtod(begin, &end);
  if (end != begin + value.size()) bad();        // trailing garbage ("5s", "1,5")
  if (!std::isfinite(parsed) || parsed < 0.0) bad();  // "nan", "inf", "-1"
  return parsed;
}

std::size_t parse_count_flag(const std::string& flag, const std::string& value) {
  const auto bad = [&] {
    throw std::invalid_argument(flag + ": expected a non-negative integer, got '" + value + "'");
  };
  if (value.empty() || value.size() > 19) bad();  // 19 digits always fits in 63 bits
  std::size_t parsed = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') bad();  // rejects "-3", "+3", "1e3", "7x"
    parsed = parsed * 10 + static_cast<std::size_t>(c - '0');
  }
  return parsed;
}

namespace {

/// Fresh protocol instance for a beeping algorithm spec, or nullptr for
/// LOCAL-model algorithms (g parameterises the global-increasing
/// schedule).  Unknown names throw, matching run_algorithm.
std::unique_ptr<sim::BeepProtocol> make_beep_protocol(const AlgorithmSpec& spec,
                                                      const graph::Graph& g) {
  if (spec.name == "local-feedback") {
    mis::LocalFeedbackConfig config;
    config.factor_low = config.factor_high = spec.factor;
    config.initial_p_low = config.initial_p_high = spec.initial_p;
    return std::make_unique<mis::LocalFeedbackMis>(config);
  }
  if (spec.name == "local-feedback-exact") return std::make_unique<mis::ExactLocalFeedbackMis>();
  if (spec.name == "self-healing") {
    mis::SelfHealingConfig config;
    config.base.factor_low = config.base.factor_high = spec.factor;
    config.base.initial_p_low = config.base.initial_p_high = spec.initial_p;
    return std::make_unique<mis::SelfHealingLocalFeedbackMis>(config);
  }
  if (spec.name == "pure-beep") {
    return std::make_unique<mis::PureBeepLocalFeedbackMis>(/*subslots=*/8, spec.factor);
  }
  if (spec.name == "global-sweep") {
    return std::make_unique<mis::GlobalScheduleMis>(mis::make_global_sweep_mis());
  }
  if (spec.name == "global-increasing") {
    return std::make_unique<mis::GlobalScheduleMis>(
        mis::make_global_increasing_mis(g.max_degree(), g.node_count()));
  }
  if (spec.name == "luby" || spec.name == "luby-degree" || spec.name == "metivier" ||
      spec.name == "greedy-id") {
    return nullptr;  // LOCAL-model: no beeping protocol
  }
  throw std::invalid_argument("unknown algorithm: " + spec.name);
}

}  // namespace

std::uint64_t sweep_fingerprint(const SweepSpec& spec) {
  // The fingerprint IS the hash of the canonical request text: the serialized
  // form, the cache key and the journal key can never drift apart.  Golden
  // values are pinned in tests/test_sweep_spec.cpp — see the stability
  // contract on the declaration before changing anything here.
  support::StableHash h;
  h.update(format_sweep_request(spec));
  return h.digest();
}

harness::TrialStats run_sweep(const SweepSpec& spec) { return run_sweep(spec, SweepHooks{}); }

harness::TrialStats run_sweep(const SweepSpec& spec, const SweepHooks& hooks) {
  // Build the graph once up front: it is shared across trials (the CLI
  // sweep semantics) and parameterises the global-increasing schedule.
  auto g = std::make_shared<const graph::Graph>(make_graph(spec.graph));
  const AlgorithmSpec aspec = spec.algorithm;
  if (make_beep_protocol(aspec, *g) == nullptr) {
    throw std::invalid_argument(
        "run_sweep: crash-safe sweeps are a beeping-harness feature; got LOCAL-model "
        "algorithm: " + aspec.name);
  }

  harness::TrialConfig config;
  config.trials = spec.trials;
  config.base_seed = spec.base_seed;
  config.threads = spec.threads;
  config.shared_graph = true;
  config.shards = aspec.shards;  // AlgorithmSpec default 1 = never auto-shard
  config.sim = aspec.sim;
  if (aspec.name == "self-healing") config.sim.mis_keepalive = true;  // mirror run_algorithm
  config.journal_path = spec.journal_path;
  config.resume = spec.resume;
  config.budget_seconds = spec.budget_seconds;
  config.trial_timeout_seconds = spec.trial_timeout_seconds;
  config.isolate_trial_faults = spec.isolate_faults;
  config.max_retries = spec.max_retries;
  config.checkpoint_interval = spec.checkpoint_interval;
  config.request_fingerprint = sweep_fingerprint(spec);
  config.on_checkpoint = hooks.on_checkpoint;
  config.stop_request = hooks.stop_request;
  if (aspec.scenario.name != "none") {
    const ScenarioSpec sspec = aspec.scenario;
    config.scenario = [sspec]() { return make_scenario(sspec)->clone(); };
  }

  const harness::GraphFactory graphs = [g](support::Xoshiro256StarStar&) { return *g; };
  const harness::BeepProtocolFactory protocols = [aspec, g]() {
    return make_beep_protocol(aspec, *g);
  };
  return harness::run_beep_trials(graphs, protocols, config);
}

std::string algorithm_help() {
  return "algorithms:\n"
         "  local-feedback     the paper's algorithm (beeping; --factor, --initial-p)\n"
         "  local-feedback-exact  Definition 1 with integer exponents (beeping)\n"
         "  self-healing       local feedback + silence-triggered reactivation\n"
         "                     (beeping; forces keepalive; pair with --scenario)\n"
         "  pure-beep          local feedback without sender collision detection\n"
         "  global-sweep       Afek et al. DISC'11 sweeping schedule (beeping)\n"
         "  global-increasing  Science'11-style increasing schedule (beeping)\n"
         "  luby               Luby's algorithm (LOCAL model, 64-bit messages)\n"
         "  luby-degree        Luby's original 1/(2d) marking variant (LOCAL model)\n"
         "  metivier           Metivier et al. bitwise MIS (LOCAL model, 1-bit)\n"
         "  greedy-id          deterministic id-minimum (LOCAL model, 1-bit)\n";
}

}  // namespace beepmis::cli

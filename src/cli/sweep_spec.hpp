// Canonical serialized form of cli::SweepSpec — THE request API.
//
// One sweep request is one line of text:
//
//   sweepspec v3 graph=gnp graph.n=100 ... trials=64 base_seed=1 ... threads=0 ...
//
// and that same line is, by design, three things at once:
//
//   * the wire format of the beepmisd experiment service (src/svc/),
//   * the CLI flag target (`beepmis_cli --spec=...` / `--print-spec`),
//   * the request-cache and journal key: `sweep_fingerprint` is the
//     StableHash of the line's *request prefix* (see below), so equal
//     text <=> equal cache key <=> journals are interchangeable.
//
// Grammar: space-separated tokens; the first two are the magic and the
// schema version ("sweepspec v3"); every other token is `key=value`
// (split at the first '='; values must not contain whitespace).  Keys
// may appear in any order; a missing key takes its SweepSpec default;
// unknown keys, duplicate keys, malformed numbers, unregistered
// graph/algorithm/scenario names and out-of-range counts are all hard
// std::invalid_argument errors naming the offending key — a request is
// either understood exactly or rejected loudly, never half-parsed.
//
// Canonical form (what format_sweep_spec emits): every key present, in
// the fixed order below, doubles rendered via std::to_chars shortest
// round-trip (parse(format(s)) is value-identical and
// format(parse(text)) is a pure canonicalisation — idempotent).  The
// line is ordered so that the *request-identity* keys — everything that
// changes the sweep's numbers — form a prefix, and the execution keys
// (threads, shards, shard_local, journal, resume, budget, trial_timeout,
// isolate_faults, max_retries), which never change the numbers, form
// the suffix.  `sweep_fingerprint` hashes only the prefix: resubmitting
// a sweep with different parallelism or durability knobs hits the same
// cache entry and may finish the same journal.
//
// Versioning: bump "v3" whenever a key is added, removed, renamed, or
// its fingerprint membership changes; parse rejects every version it
// was not built for (reject-whole, like the sweep journal).
#pragma once

#include <cstdint>
#include <string>

#include "cli/registry.hpp"

namespace beepmis::cli {

/// Current schema version tag, e.g. "v3".
[[nodiscard]] const std::string& sweep_spec_version();

/// Canonical one-line rendering of `spec` (request prefix + execution
/// suffix).  Throws std::invalid_argument when a string field (the
/// journal or graph-file path) contains whitespace — such a spec has no
/// line form.
[[nodiscard]] std::string format_sweep_spec(const SweepSpec& spec);

/// The request-identity prefix of format_sweep_spec: graph, algorithm
/// and scenario parameters, sim knobs, trials, base_seed and
/// checkpoint_interval — exactly the fields sweep_fingerprint hashes.
[[nodiscard]] std::string format_sweep_request(const SweepSpec& spec);

/// Parses a serialized spec (canonical or not).  Strict: throws
/// std::invalid_argument, naming the key, for anything it does not
/// understand exactly (see the grammar note above).
[[nodiscard]] SweepSpec parse_sweep_spec(const std::string& text);

}  // namespace beepmis::cli

#include "cli/sweep_spec.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "sim/sharded.hpp"
#include "support/hash.hpp"

namespace beepmis::cli {

namespace {

constexpr std::string_view kMagic = "sweepspec";
// v3: added graph.file to the request prefix (family="file" workloads are
// part of a sweep's identity) and shard_local to the execution suffix.
constexpr std::string_view kVersion = "v3";

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("sweepspec: " + message);
}

std::string render_double(double v) {
  // std::to_chars emits the shortest decimal string that parses back to
  // the exact same double — the whole round-trip contract in one call.
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string joined(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

// --- typed, key-naming value parsers (full-match or throw) ---------------

std::uint64_t parse_u64_value(const std::string& key, std::string_view value,
                              std::uint64_t lo = 0,
                              std::uint64_t hi = std::numeric_limits<std::uint64_t>::max()) {
  const auto bad = [&] {
    fail(key + ": expected an integer in [" + std::to_string(lo) + ", " + std::to_string(hi) +
         "], got '" + std::string(value) + "'");
  };
  if (value.empty() || value.size() > 20) bad();
  std::uint64_t parsed = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') bad();  // rejects "-3", "+3", "1e3", "7x"
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (parsed > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) bad();
    parsed = parsed * 10 + digit;
  }
  if (parsed < lo || parsed > hi) bad();
  return parsed;
}

double parse_double_value(const std::string& key, std::string_view value, double lo, double hi) {
  const auto bad = [&] {
    fail(key + ": expected a finite number in [" + render_double(lo) + ", " + render_double(hi) +
         "], got '" + std::string(value) + "'");
  };
  if (value.empty()) bad();
  const std::string copy(value);  // strtod needs a terminator
  const char* begin = copy.c_str();
  char* end = nullptr;
  const double parsed = std::strtod(begin, &end);
  if (end != begin + copy.size()) bad();
  if (!std::isfinite(parsed) || parsed < lo || parsed > hi) bad();
  return parsed;
}

bool parse_bool_value(const std::string& key, std::string_view value) {
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  fail(key + ": expected 0/1/true/false, got '" + std::string(value) + "'");
}

std::string parse_name_value(const std::string& key, std::string_view value,
                             const std::vector<std::string>& registry, const char* what) {
  const std::string name(value);
  if (std::find(registry.begin(), registry.end(), name) == registry.end()) {
    fail(key + ": unknown " + std::string(what) + " '" + name + "' (registered: " +
         joined(registry) + ")");
  }
  return name;
}

// --- canonical emission ---------------------------------------------------

void emit(std::ostringstream& out, std::string_view key, const std::string& value) {
  out << ' ' << key << '=' << value;
}

void emit_request_fields(std::ostringstream& out, const SweepSpec& s) {
  if (s.graph.path.find_first_of(" \t\r\n") != std::string::npos) {
    fail("graph.file: path contains whitespace and has no line form: '" + s.graph.path + "'");
  }
  emit(out, "graph", s.graph.family);
  emit(out, "graph.file", s.graph.path);
  emit(out, "graph.n", std::to_string(s.graph.n));
  emit(out, "graph.p", render_double(s.graph.p));
  emit(out, "graph.rows", std::to_string(s.graph.rows));
  emit(out, "graph.cols", std::to_string(s.graph.cols));
  emit(out, "graph.k", std::to_string(s.graph.k));
  emit(out, "graph.seed", std::to_string(s.graph.seed));
  emit(out, "algorithm", s.algorithm.name);
  emit(out, "algorithm.factor", render_double(s.algorithm.factor));
  emit(out, "algorithm.initial_p", render_double(s.algorithm.initial_p));
  emit(out, "sim.loss", render_double(s.algorithm.sim.beep_loss_probability));
  emit(out, "sim.keepalive", s.algorithm.sim.mis_keepalive ? "1" : "0");
  emit(out, "sim.max_rounds", std::to_string(s.algorithm.sim.max_rounds));
  emit(out, "sim.run_until", std::to_string(s.algorithm.sim.run_until_round));
  emit(out, "sim.track_recovery", s.algorithm.sim.track_recovery ? "1" : "0");
  emit(out, "scenario", s.algorithm.scenario.name);
  emit(out, "scenario.rate", render_double(s.algorithm.scenario.rate));
  emit(out, "scenario.lo", std::to_string(s.algorithm.scenario.round_lo));
  emit(out, "scenario.hi", std::to_string(s.algorithm.scenario.round_hi));
  emit(out, "scenario.budget", std::to_string(s.algorithm.scenario.budget));
  emit(out, "scenario.shards", std::to_string(s.algorithm.scenario.shards));
  emit(out, "scenario.revive_delay", render_double(s.algorithm.scenario.revive_delay_mean));
  emit(out, "scenario.seed", std::to_string(s.algorithm.scenario.seed));
  emit(out, "trials", std::to_string(s.trials));
  emit(out, "base_seed", std::to_string(s.base_seed));
  emit(out, "checkpoint_interval", std::to_string(s.checkpoint_interval));
}

void emit_execution_fields(std::ostringstream& out, const SweepSpec& s) {
  if (s.journal_path.find_first_of(" \t\r\n") != std::string::npos) {
    fail("journal: path contains whitespace and has no line form: '" + s.journal_path + "'");
  }
  emit(out, "threads", std::to_string(s.threads));
  emit(out, "shards", std::to_string(s.algorithm.shards));
  emit(out, "shard_local", s.algorithm.sim.shard_local_adjacency ? "1" : "0");
  emit(out, "journal", s.journal_path);
  emit(out, "resume", s.resume ? "1" : "0");
  emit(out, "budget", render_double(s.budget_seconds));
  emit(out, "trial_timeout", render_double(s.trial_timeout_seconds));
  emit(out, "isolate_faults", s.isolate_faults ? "1" : "0");
  emit(out, "max_retries", std::to_string(s.max_retries));
}

}  // namespace

const std::string& sweep_spec_version() {
  static const std::string version(kVersion);
  return version;
}

std::string format_sweep_request(const SweepSpec& spec) {
  std::ostringstream out;
  out << kMagic << ' ' << kVersion;
  emit_request_fields(out, spec);
  return out.str();
}

std::string format_sweep_spec(const SweepSpec& spec) {
  std::ostringstream out;
  out << format_sweep_request(spec);
  emit_execution_fields(out, spec);
  return out.str();
}

SweepSpec parse_sweep_spec(const std::string& text) {
  // Tokenize on runs of spaces/tabs (a trailing newline from a socket
  // line reader is tolerated; interior newlines are not a line).
  std::string_view view(text);
  while (!view.empty() && (view.back() == '\n' || view.back() == '\r')) view.remove_suffix(1);
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < view.size()) {
    while (i < view.size() && (view[i] == ' ' || view[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < view.size() && view[i] != ' ' && view[i] != '\t') ++i;
    if (i > start) tokens.push_back(view.substr(start, i - start));
  }
  if (tokens.size() < 2 || tokens[0] != kMagic) {
    fail("expected a line starting with '" + std::string(kMagic) + " " + std::string(kVersion) +
         "'");
  }
  if (tokens[1] != kVersion) {
    fail("unsupported schema version '" + std::string(tokens[1]) + "' (this build speaks " +
         std::string(kVersion) + ")");
  }

  SweepSpec spec;
  std::vector<std::string> seen;
  for (std::size_t t = 2; t < tokens.size(); ++t) {
    const std::string_view token = tokens[t];
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      fail("expected key=value, got '" + std::string(token) + "'");
    }
    const std::string key(token.substr(0, eq));
    const std::string_view value = token.substr(eq + 1);
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
      fail("duplicate key '" + key + "'");
    }
    seen.push_back(key);

    constexpr std::uint64_t kU32Max = std::numeric_limits<std::uint32_t>::max();
    // --- request-identity keys (the fingerprint prefix) ---
    if (key == "graph") {
      spec.graph.family = parse_name_value(key, value, graph_families(), "graph family");
    } else if (key == "graph.file") {
      spec.graph.path = std::string(value);
    } else if (key == "graph.n") {
      spec.graph.n = static_cast<graph::NodeId>(parse_u64_value(key, value, 1, kU32Max));
    } else if (key == "graph.p") {
      spec.graph.p = parse_double_value(key, value, 0.0, 1.0);
    } else if (key == "graph.rows") {
      spec.graph.rows = static_cast<graph::NodeId>(parse_u64_value(key, value, 1, kU32Max));
    } else if (key == "graph.cols") {
      spec.graph.cols = static_cast<graph::NodeId>(parse_u64_value(key, value, 1, kU32Max));
    } else if (key == "graph.k") {
      spec.graph.k = static_cast<graph::NodeId>(parse_u64_value(key, value, 1, kU32Max));
    } else if (key == "graph.seed") {
      spec.graph.seed = parse_u64_value(key, value);
    } else if (key == "algorithm") {
      spec.algorithm.name = parse_name_value(key, value, algorithm_names(), "algorithm");
    } else if (key == "algorithm.factor") {
      spec.algorithm.factor =
          parse_double_value(key, value, std::nextafter(1.0, 2.0), 1e9);
    } else if (key == "algorithm.initial_p") {
      spec.algorithm.initial_p =
          parse_double_value(key, value, std::numeric_limits<double>::min(), 1.0);
    } else if (key == "sim.loss") {
      spec.algorithm.sim.beep_loss_probability = parse_double_value(key, value, 0.0, 1.0);
    } else if (key == "sim.keepalive") {
      spec.algorithm.sim.mis_keepalive = parse_bool_value(key, value);
    } else if (key == "sim.max_rounds") {
      spec.algorithm.sim.max_rounds = parse_u64_value(key, value, 1);
    } else if (key == "sim.run_until") {
      spec.algorithm.sim.run_until_round = parse_u64_value(key, value);
    } else if (key == "sim.track_recovery") {
      spec.algorithm.sim.track_recovery = parse_bool_value(key, value);
    } else if (key == "scenario") {
      spec.algorithm.scenario.name =
          parse_name_value(key, value, scenario_names(), "fault scenario");
    } else if (key == "scenario.rate") {
      spec.algorithm.scenario.rate = parse_double_value(key, value, 0.0, 1e9);
    } else if (key == "scenario.lo") {
      spec.algorithm.scenario.round_lo =
          static_cast<std::uint32_t>(parse_u64_value(key, value, 0, kU32Max));
    } else if (key == "scenario.hi") {
      spec.algorithm.scenario.round_hi =
          static_cast<std::uint32_t>(parse_u64_value(key, value, 0, kU32Max));
    } else if (key == "scenario.budget") {
      spec.algorithm.scenario.budget = parse_u64_value(key, value);
    } else if (key == "scenario.shards") {
      spec.algorithm.scenario.shards = static_cast<std::uint32_t>(
          parse_u64_value(key, value, 1, sim::ShardedSimulator::kMaxShards));
    } else if (key == "scenario.revive_delay") {
      spec.algorithm.scenario.revive_delay_mean = parse_double_value(key, value, 0.0, 1e12);
    } else if (key == "scenario.seed") {
      spec.algorithm.scenario.seed = parse_u64_value(key, value);
    } else if (key == "trials") {
      spec.trials = parse_u64_value(key, value, 1);
    } else if (key == "base_seed") {
      spec.base_seed = parse_u64_value(key, value);
    } else if (key == "checkpoint_interval") {
      spec.checkpoint_interval = parse_u64_value(key, value, 1);
      // --- execution keys (never change the numbers; not fingerprinted) ---
    } else if (key == "threads") {
      spec.threads = static_cast<unsigned>(parse_u64_value(key, value, 0, kU32Max));
    } else if (key == "shards") {
      spec.algorithm.shards = static_cast<unsigned>(
          parse_u64_value(key, value, 1, sim::ShardedSimulator::kMaxShards));
    } else if (key == "shard_local") {
      spec.algorithm.sim.shard_local_adjacency = parse_bool_value(key, value);
    } else if (key == "journal") {
      spec.journal_path = std::string(value);
    } else if (key == "resume") {
      spec.resume = parse_bool_value(key, value);
    } else if (key == "budget") {
      spec.budget_seconds = parse_double_value(key, value, 0.0, 1e12);
    } else if (key == "trial_timeout") {
      spec.trial_timeout_seconds = parse_double_value(key, value, 0.0, 1e12);
    } else if (key == "isolate_faults") {
      spec.isolate_faults = parse_bool_value(key, value);
    } else if (key == "max_retries") {
      spec.max_retries = static_cast<unsigned>(parse_u64_value(key, value, 0, 1000));
    } else {
      fail("unknown key '" + key + "'");
    }
  }
  return spec;
}

}  // namespace beepmis::cli

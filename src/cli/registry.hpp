// Name-based registries mapping CLI strings to graph generators and MIS
// algorithms.  Kept as a library (rather than inline in the tool's main)
// so the mapping logic is unit-testable.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "graph/csr_file.hpp"
#include "graph/graph.hpp"
#include "sim/beep.hpp"
#include "sim/local.hpp"
#include "sim/scenario.hpp"

namespace beepmis::cli {

/// Parameters shared by all generators; each generator reads the subset it
/// needs (documented in graph_help()).
struct GraphSpec {
  std::string family = "gnp";
  graph::NodeId n = 100;
  double p = 0.5;          ///< edge probability / geometric radius
  graph::NodeId rows = 10; ///< grid-style families
  graph::NodeId cols = 10;
  graph::NodeId k = 3;     ///< clique-family parameter / BA attach edges
  std::uint64_t seed = 1;
  /// family="file" only: path of a graph file — BMCSR (memory-mapped CSR,
  /// graph/csr_file.hpp) or edge-list text, sniffed by content.
  std::string path;
};

/// Builds the requested graph.  Throws std::invalid_argument for an
/// unknown family name.
[[nodiscard]] graph::Graph make_graph(const GraphSpec& spec);

/// Registered family names, alphabetical.
[[nodiscard]] std::vector<std::string> graph_families();
/// One-line description per family.
[[nodiscard]] std::string graph_help();

/// A replayable edge enumeration plus the node count it covers: what the
/// streaming on-disk CSR writer (graph/csr_file.hpp) needs to build a
/// graph file in bounded memory, without materializing the graph.
struct GraphStream {
  graph::NodeId node_count = 0;
  graph::EdgeStream stream;
};

/// The streaming counterpart of make_graph: enumerates exactly the edges
/// make_graph(spec) would build (same parameters, same seed discipline),
/// so a streamed on-disk build is byte-identical to write_csr_file of the
/// in-RAM graph.  Throws std::invalid_argument for families with no
/// bounded-memory enumeration (tree, ba, geometric) and for a
/// family="file" path that is already a BMCSR container.
[[nodiscard]] GraphStream make_graph_stream(const GraphSpec& spec);

/// Fault-scenario selection (see sim/scenario.hpp); each scenario reads
/// the parameter subset documented in scenario_help().
struct ScenarioSpec {
  std::string name = "none";
  /// uniform-crash / target-boundary crash fraction; churn crashes/round;
  /// target-mis per-member crash probability.
  double rate = 0.05;
  std::uint32_t round_lo = 0;  ///< crash window start / adaptive start round
  std::uint32_t round_hi = 0;  ///< crash window end (inclusive)
  std::size_t budget = 64;     ///< max crashes (adaptive) / node count (target-degree)
  std::uint32_t shards = 2;    ///< target-boundary partition width
  double revive_delay_mean = 8.0;  ///< churn mean down-time
  std::uint64_t seed = 1;
};

/// Builds the named scenario, or nullptr for "none".  Throws
/// std::invalid_argument for an unknown name.
[[nodiscard]] std::shared_ptr<sim::FaultScenario> make_scenario(const ScenarioSpec& spec);

[[nodiscard]] std::vector<std::string> scenario_names();
[[nodiscard]] std::string scenario_help();

struct AlgorithmSpec {
  std::string name = "local-feedback";
  std::uint64_t seed = 1;
  sim::SimConfig sim;
  sim::LocalSimConfig local_sim;
  /// Local-feedback knobs (ignored by other algorithms).
  double factor = 2.0;
  double initial_p = 0.5;
  /// >= 2: run through sim::ShardedSimulator with this many shards (one
  /// worker thread each) — bit-identical to the scalar run, so results
  /// never depend on the flag.  Only shard-capable beeping algorithms
  /// accept it (local-feedback, local-feedback-exact, global-sweep,
  /// global-increasing); others throw std::invalid_argument.
  unsigned shards = 1;
  /// Fault adversary (beeping algorithms only; scalar simulator only —
  /// combining with shards >= 2 throws).
  ScenarioSpec scenario;
  /// Wall-clock budget for one run (beeping algorithms; 0 = unlimited):
  /// arms SimConfig::deadline_ns, so the simulator throws sim::RunCancelled
  /// at the first round boundary past the deadline.  Callers catch it and
  /// degrade (the sensor_network example falls back to greedy-id).
  double budget_seconds = 0.0;
};

/// Runs the named algorithm on `g`.  Throws std::invalid_argument for an
/// unknown algorithm name.
[[nodiscard]] sim::RunResult run_algorithm(const AlgorithmSpec& spec, const graph::Graph& g);

[[nodiscard]] std::vector<std::string> algorithm_names();
[[nodiscard]] std::string algorithm_help();

// --- Crash-safe trial sweeps (the harness path; src/exp/README.md) ------

/// Strict duration-flag validation: a finite, non-negative number of
/// seconds, full-match.  Throws std::invalid_argument naming the flag with
/// a clear message on negative, non-numeric or partially numeric input
/// (the kMaxShards guard style) — never silently truncates.
[[nodiscard]] double parse_seconds_flag(const std::string& flag, const std::string& value);

/// Strict count-flag validation: a non-negative decimal integer,
/// full-match (rejects "-3", "1e3", "7x", overflow).  Throws
/// std::invalid_argument naming the flag.
[[nodiscard]] std::size_t parse_count_flag(const std::string& flag, const std::string& value);

/// A crash-safe multi-trial sweep request: one graph (GraphSpec), one
/// beeping algorithm, harness-derived per-trial seeds (SeedSequence tree
/// rooted at base_seed — deliberately different from the legacy
/// seed-plus-trial CLI loop, which has no checkpointing).  LOCAL-model
/// algorithms are rejected — crash-safe sweeps are a beeping-harness
/// feature.
struct SweepSpec {
  GraphSpec graph;
  AlgorithmSpec algorithm;
  std::size_t trials = 1;
  std::uint64_t base_seed = 1;
  unsigned threads = 0;  ///< 0 = hardware concurrency
  // Crash-safety knobs, forwarded to harness::TrialConfig (see there).
  std::string journal_path;
  bool resume = false;
  double budget_seconds = 0.0;
  double trial_timeout_seconds = 0.0;
  bool isolate_faults = false;
  unsigned max_retries = 2;
  std::size_t checkpoint_interval = 64;
};

/// Stable identity of the sweep *request*: the StableHash of the spec's
/// canonical request text (cli/sweep_spec.hpp's format_sweep_request), so
/// equal serialized requests — and only those — share a fingerprint.
///
/// This is a documented **stability contract** (pinned by golden-hash
/// tests in tests/test_sweep_spec.cpp): the value for a given spec must
/// never change within a schema version, because it keys (a) the sweep
/// journal's request hash (TrialConfig::request_fingerprint — a journal
/// written for one request is rejected by any other) and (b) the beepmisd
/// result cache and in-flight job identity (src/svc/).  Covered: graph
/// family and parameters (including the family="file" path — a different
/// file is a different workload), algorithm name and knobs, sim knobs
/// (loss, keepalive, max_rounds, run_until, track_recovery), scenario
/// parameters, trials, base_seed and checkpoint_interval (chunk geometry
/// decides merge order, hence the exact bits).  Deliberately *excluded*,
/// matching SweepJournal's request-hash rules (src/exp/README.md): thread
/// count, shard count, shard-local adjacency (bit-identical by contract),
/// journal path, resume, budget, trial timeout and retry knobs —
/// execution-path and durability choices that never change the numbers of
/// a cleanly completed sweep.
[[nodiscard]] std::uint64_t sweep_fingerprint(const SweepSpec& spec);

/// Observability/cancellation hooks a long-lived caller (the beepmisd
/// service) threads into the sweep; both optional.
struct SweepHooks {
  /// Forwarded to TrialConfig::on_checkpoint (chunks completed by this
  /// invocation so far; called under the checkpoint lock — keep cheap).
  std::function<void(std::size_t chunks_completed)> on_checkpoint;
  /// Forwarded to TrialConfig::stop_request: set to true to stop the
  /// sweep at the next chunk boundary (returns truncated = true).
  std::shared_ptr<std::atomic<bool>> stop_request;
};

/// Runs the sweep through harness::run_beep_trials with journaling, fault
/// isolation and budget controls wired up.  Throws std::invalid_argument
/// for unknown names, LOCAL-model algorithms, or invalid knobs.
[[nodiscard]] harness::TrialStats run_sweep(const SweepSpec& spec);
[[nodiscard]] harness::TrialStats run_sweep(const SweepSpec& spec, const SweepHooks& hooks);

}  // namespace beepmis::cli

// Shared worker-pool helper for the trial runner and the sharded
// simulator.  Extracted from exp/runner.cpp so every multi-threaded
// execution path in the library funnels through one exception-capture
// policy: a throw from any worker (a protocol-contract logic_error, a
// misconfigured SimConfig) is captured and rethrown after the join, so
// callers see the same catchable exception at any thread count instead of
// std::terminate.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace beepmis::support {

/// Clamps the requested thread count to the work-unit count (0 = hardware
/// concurrency) and runs `worker` on that many threads; workers claim
/// units through their own shared atomic (or, for SPMD callers like the
/// sharded simulator, one worker per unit).  With a single thread the
/// worker runs inline on the calling thread.
///
/// std::thread construction can fail partway (resource exhaustion);
/// unwinding past joinable threads would std::terminate, so the failure
/// is captured like a worker error, `on_spawn_failure(missing)` runs
/// before the join, and the exception is rethrown after it.  Workers that
/// merely drain a shared queue need no hook (the started ones finish the
/// work); workers that *rendezvous* with every sibling (the sharded
/// simulator's barrier lanes) must use the hook to unblock the started
/// ones, or the join would deadlock.
template <typename Worker, typename OnSpawnFailure>
void run_workers(unsigned threads, std::size_t work_units, Worker&& worker,
                 OnSpawnFailure&& on_spawn_failure) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(work_units, 1)));
  if (threads == 1) {
    worker();
    return;
  }
  std::mutex mutex;
  std::exception_ptr first_error;
  const auto guarded = [&] {
    try {
      worker();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  unsigned spawned = 0;
  try {
    for (; spawned < threads; ++spawned) pool.emplace_back(guarded);
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (!first_error) first_error = std::current_exception();
    }
    on_spawn_failure(threads - spawned);
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

template <typename Worker>
void run_workers(unsigned threads, std::size_t work_units, Worker&& worker) {
  run_workers(threads, work_units, std::forward<Worker>(worker), [](unsigned) {});
}

}  // namespace beepmis::support

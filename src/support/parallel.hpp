// Shared worker-pool helper for the trial runner and the sharded
// simulator.  Extracted from exp/runner.cpp so every multi-threaded
// execution path in the library funnels through one exception-capture
// policy: a throw from any worker (a protocol-contract logic_error, a
// misconfigured SimConfig) is captured and rethrown after the join, so
// callers see the same catchable exception at any thread count instead of
// std::terminate.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <typeinfo>
#include <utility>
#include <vector>

namespace beepmis::support {

namespace detail {

/// typeid of the exception behind `error`, or nullptr for a non-std
/// exception (throw 42;) whose dynamic type cannot be inspected.
inline const std::type_info* exception_type(const std::exception_ptr& error) noexcept {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return &typeid(e);
  } catch (...) {
    return nullptr;
  }
}

inline std::string exception_message(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace detail

/// Clamps the requested thread count to the work-unit count (0 = hardware
/// concurrency) and runs `worker` on that many threads; workers claim
/// units through their own shared atomic (or, for SPMD callers like the
/// sharded simulator, one worker per unit).  With a single thread the
/// worker runs inline on the calling thread.
///
/// Every worker exception is collected (not just the first).  After the
/// join: a single captured exception is rethrown unmodified, and when all
/// captured exceptions share one dynamic type the first (lowest worker id)
/// is rethrown unmodified too — so a contract violation that several
/// workers hit at once still surfaces as the same catchable type it would
/// at one thread.  Only genuinely *mixed* failures are wrapped in a
/// std::runtime_error whose message reports every failing worker id with
/// its own message, so no failure is silently shadowed by another.
///
/// std::thread construction can fail partway (resource exhaustion);
/// unwinding past joinable threads would std::terminate, so the failure
/// is captured like a worker error, `on_spawn_failure(missing)` runs
/// before the join, and the exception is rethrown after it.  Workers that
/// merely drain a shared queue need no hook (the started ones finish the
/// work); workers that *rendezvous* with every sibling (the sharded
/// simulator's barrier lanes) must use the hook to unblock the started
/// ones, or the join would deadlock.
template <typename Worker, typename OnSpawnFailure>
void run_workers(unsigned threads, std::size_t work_units, Worker&& worker,
                 OnSpawnFailure&& on_spawn_failure) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(work_units, 1)));
  if (threads == 1) {
    worker();
    return;
  }
  struct CapturedError {
    unsigned worker = 0;
    std::exception_ptr error;
  };
  std::mutex mutex;
  std::vector<CapturedError> errors;
  const auto guarded = [&](unsigned id) {
    try {
      worker();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex);
      errors.push_back({id, std::current_exception()});
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  unsigned spawned = 0;
  try {
    for (; spawned < threads; ++spawned) pool.emplace_back(guarded, spawned);
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      errors.push_back({spawned, std::current_exception()});
    }
    on_spawn_failure(threads - spawned);
  }
  for (auto& t : pool) t.join();
  if (errors.empty()) return;
  // Capture order is racy; report deterministically by worker id.
  std::sort(errors.begin(), errors.end(),
            [](const CapturedError& a, const CapturedError& b) { return a.worker < b.worker; });
  if (errors.size() > 1) {
    const std::type_info* first_type = detail::exception_type(errors.front().error);
    bool homogeneous = first_type != nullptr;
    for (std::size_t i = 1; homogeneous && i < errors.size(); ++i) {
      const std::type_info* type = detail::exception_type(errors[i].error);
      homogeneous = type != nullptr && *type == *first_type;
    }
    if (!homogeneous) {
      std::string message =
          "run_workers: " + std::to_string(errors.size()) + " workers failed:";
      for (const CapturedError& e : errors) {
        message += " [worker " + std::to_string(e.worker) + "] " +
                   detail::exception_message(e.error) + ";";
      }
      message.pop_back();
      throw std::runtime_error(message);
    }
  }
  std::rethrow_exception(errors.front().error);
}

template <typename Worker>
void run_workers(unsigned threads, std::size_t work_units, Worker&& worker) {
  run_workers(threads, work_units, std::forward<Worker>(worker), [](unsigned) {});
}

}  // namespace beepmis::support

// Fixed-width table rendering for bench output: each bench binary prints
// the same rows/series the paper's figures report, in a stable format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace beepmis::support {

/// Accumulates rows of cells and renders them column-aligned.  Numeric
/// convenience overloads format with a fixed number of decimals.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begins a new row; subsequent cell() calls append to it.
  Table& new_row();
  Table& cell(std::string value);
  Table& cell(std::string_view value) { return cell(std::string(value)); }
  Table& cell(const char* value) { return cell(std::string(value)); }
  Table& cell(double value, int decimals = 2);
  Table& cell(std::size_t value);
  Table& cell(long value);
  Table& cell(int value) { return cell(static_cast<long>(value)); }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept { return headers_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data() const noexcept {
    return rows_;
  }

  /// Renders with a header rule; columns sized to max content width.
  void print(std::ostream& out) const;
  [[nodiscard]] std::string to_string() const;

  /// Writes the same content as CSV.
  void write_csv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `decimals` places (std::fixed).
[[nodiscard]] std::string format_fixed(double value, int decimals);

}  // namespace beepmis::support

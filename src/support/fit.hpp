// Least-squares curve fitting used to check the *shape* of measured round
// counts against the paper's predicted growth rates (Θ(log n) for local
// feedback, Θ(log² n) for global schedules).
#pragma once

#include <span>
#include <string>

namespace beepmis::support {

/// Result of an ordinary least-squares fit y ≈ slope * f(x) + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1] (1 = perfect fit).
  double r_squared = 0.0;
  /// Root-mean-square residual in the units of y.
  double residual_rms = 0.0;
};

/// OLS fit of y against x.  Requires x.size() == y.size() >= 2 and x not all
/// equal; otherwise returns a degenerate fit with r_squared = 0.
[[nodiscard]] LinearFit fit_linear(std::span<const double> x, std::span<const double> y) noexcept;

/// Fit y against log2(x).  All x must be positive.
[[nodiscard]] LinearFit fit_vs_log2(std::span<const double> x, std::span<const double> y) noexcept;

/// Fit y against (log2 x)^2.  All x must be positive.
[[nodiscard]] LinearFit fit_vs_log2_squared(std::span<const double> x,
                                            std::span<const double> y) noexcept;

/// Which growth model explains the data better, by residual RMS.
struct GrowthComparison {
  LinearFit vs_log;
  LinearFit vs_log_squared;
  /// True when the log² model has strictly smaller residual RMS.
  bool prefers_log_squared = false;
};

[[nodiscard]] GrowthComparison compare_growth(std::span<const double> n_values,
                                              std::span<const double> y) noexcept;

/// Human-readable one-line description, e.g. "y = 2.47*log2(n) + 1.3 (R²=0.996)".
[[nodiscard]] std::string describe_fit(const LinearFit& fit, const std::string& basis);

}  // namespace beepmis::support

#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/csv.hpp"

namespace beepmis::support {

std::string format_fixed(double value, int decimals) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(decimals) << value;
  return ss.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::new_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int decimals) {
  return cell(format_fixed(value, decimals));
}

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }

Table& Table::cell(long value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string{};
      out << "  " << std::setw(static_cast<int>(widths[c])) << v;
    }
    out << '\n';
  };

  print_row(headers_);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

void Table::write_csv(std::ostream& out) const {
  CsvWriter writer(out);
  writer.row(headers_);
  for (const auto& row : rows_) writer.row(row);
}

}  // namespace beepmis::support

#include "support/options.hpp"

#include <sstream>
#include <stdexcept>

namespace beepmis::support {

Options& Options::add(std::string name, std::string default_value, std::string help) {
  if (!flags_.contains(name)) order_.push_back(name);
  flags_[std::move(name)] = Flag{std::move(default_value), std::move(help), std::nullopt};
  return *this;
}

bool Options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = body.find('='); eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }
    if (auto it = flags_.find(body); it != flags_.end()) {
      if (!has_value) {
        // Boolean-style flag or space-separated value.
        if (i + 1 < argc && flags_.contains(body) &&
            (it->second.default_value == "true" || it->second.default_value == "false")) {
          value = "true";
        } else if (i + 1 < argc) {
          value = argv[++i];
        } else {
          value = "true";
        }
      }
      it->second.value = value;
      continue;
    }
    // --no-name for booleans.
    if (body.rfind("no-", 0) == 0) {
      if (auto it2 = flags_.find(body.substr(3)); it2 != flags_.end()) {
        it2->second.value = "false";
        continue;
      }
    }
    error_ = "unknown flag: --" + body;
    return false;
  }
  return true;
}

const Options::Flag& Options::flag_or_throw(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) throw std::invalid_argument("unregistered flag: " + name);
  return it->second;
}

std::string Options::get(const std::string& name) const {
  const Flag& f = flag_or_throw(name);
  return f.value.value_or(f.default_value);
}

long Options::get_int(const std::string& name) const { return std::stol(get(name)); }

std::uint64_t Options::get_u64(const std::string& name) const {
  return std::stoull(get(name));
}

double Options::get_double(const std::string& name) const { return std::stod(get(name)); }

bool Options::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string Options::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    out << "  --" << name << " (default: " << f.default_value << ")\n      " << f.help
        << '\n';
  }
  return out.str();
}

}  // namespace beepmis::support

#include "support/fit.hpp"

#include <cmath>
#include <sstream>
#include <vector>

namespace beepmis::support {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) noexcept {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return fit;

  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);

  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;

  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  double ss_res = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double resid = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += resid * resid;
  }
  fit.residual_rms = std::sqrt(ss_res / static_cast<double>(n));
  fit.r_squared = syy == 0.0 ? 1.0 : 1.0 - ss_res / syy;
  return fit;
}

namespace {

std::vector<double> transform_log2(std::span<const double> x, bool squared) {
  std::vector<double> out;
  out.reserve(x.size());
  for (double v : x) {
    const double l = std::log2(v);
    out.push_back(squared ? l * l : l);
  }
  return out;
}

}  // namespace

LinearFit fit_vs_log2(std::span<const double> x, std::span<const double> y) noexcept {
  const auto tx = transform_log2(x, /*squared=*/false);
  return fit_linear(tx, y);
}

LinearFit fit_vs_log2_squared(std::span<const double> x, std::span<const double> y) noexcept {
  const auto tx = transform_log2(x, /*squared=*/true);
  return fit_linear(tx, y);
}

GrowthComparison compare_growth(std::span<const double> n_values,
                                std::span<const double> y) noexcept {
  GrowthComparison cmp;
  cmp.vs_log = fit_vs_log2(n_values, y);
  cmp.vs_log_squared = fit_vs_log2_squared(n_values, y);
  cmp.prefers_log_squared = cmp.vs_log_squared.residual_rms < cmp.vs_log.residual_rms;
  return cmp;
}

std::string describe_fit(const LinearFit& fit, const std::string& basis) {
  std::ostringstream out;
  out.precision(4);
  out << "y = " << fit.slope << "*" << basis;
  if (fit.intercept >= 0) {
    out << " + " << fit.intercept;
  } else {
    out << " - " << -fit.intercept;
  }
  out << "  (R^2=" << fit.r_squared << ", rms=" << fit.residual_rms << ")";
  return out.str();
}

}  // namespace beepmis::support

// Stable (process- and platform-independent) hashing for request keys and
// file checksums.  std::hash makes no cross-run guarantees, so everything
// that is persisted — the sweep journal's request hash and its content
// checksum (see exp/journal.hpp) — goes through this FNV-1a-based hasher
// instead.  The digest for a given update sequence is pinned by tests and
// must never change: journals written by one build must be readable (or
// cleanly rejected) by the next.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace beepmis::support {

/// Streaming 64-bit FNV-1a hasher with typed, length-delimited updates:
/// update("ab") then update("c") yields a different digest than
/// update("a") then update("bc"), because every string update folds in its
/// length first — field boundaries are part of the hash.
class StableHash {
 public:
  void update_bytes(const void* data, std::size_t len) noexcept;
  /// Length-prefixed string update (see class comment).
  void update(std::string_view s) noexcept;
  void update_u64(std::uint64_t v) noexcept;  ///< little-endian byte order
  void update_double(double v) noexcept;      ///< exact bit pattern
  [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

 private:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot raw-byte hash (no length prefix): the journal's whole-file
/// content checksum.
[[nodiscard]] std::uint64_t stable_hash_bytes(std::string_view bytes) noexcept;

/// Fixed-width (16 digit) lowercase hex rendering of a 64-bit value; the
/// journal stores hashes and double bit-patterns in this form.
[[nodiscard]] std::string to_hex_u64(std::uint64_t v);

/// Parses exactly 16 lowercase/uppercase hex digits; returns false on any
/// other input (journal loaders must reject, never guess).
[[nodiscard]] bool parse_hex_u64(std::string_view text, std::uint64_t& out) noexcept;

}  // namespace beepmis::support

// Small command-line flag parser shared by the examples and bench binaries.
// Supports --name=value, --name value, and boolean --name / --no-name.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace beepmis::support {

class Options {
 public:
  /// Registers a flag with its default value and help text.  Registration
  /// order is preserved in the usage message.
  Options& add(std::string name, std::string default_value, std::string help);

  /// Parses argv.  Returns false (and fills error()) on an unknown flag or
  /// malformed input.  `--help` sets help_requested().
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] long get_int(const std::string& name) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] bool help_requested() const noexcept { return help_requested_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] std::string usage(const std::string& program) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
  };

  [[nodiscard]] const Flag& flag_or_throw(const std::string& name) const;

  std::vector<std::string> order_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
  std::string error_;
};

}  // namespace beepmis::support

// Compile-time-optional per-phase timing counters (pasched's STM_DECLARE /
// STM_START / STM_STOP time-stat idiom, adapted to a thread-safe registry).
//
// The simulator front-ends bracket their hot phases (emit, deliver, react,
// faults) with BEEPMIS_STM_START/STOP pairs.  In a normal build the macros
// expand to nothing — zero instructions, zero data — so the round loops pay
// no cost for the instrumentation.  A bench build configured with
// -DBEEPMIS_PHASE_TIMERS=ON compiles them into two steady_clock reads and
// two relaxed atomic adds per bracket, accumulated into a process-global
// registry the bench drivers snapshot into optional `phase_ns` JSON fields.
//
// The snapshot/reset API below is declared unconditionally so callers need
// no #ifdef of their own: with timers compiled out the registry is simply
// always empty, and drivers that emit phase_ns "only when non-empty" do the
// right thing in both builds.
//
// Accuracy contract: counters are process-global totals.  Concurrent timed
// sections (K sharded workers all inside "shard/deliver") each add their own
// wall time, so a phase's total can exceed wall clock — it is CPU-seconds of
// phase work, which is the quantity the bench rows want.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace beepmis::support {

/// One snapshot row: total nanoseconds and bracket count for a named phase.
struct PhaseStat {
  std::string name;
  std::uint64_t total_ns = 0;
  std::uint64_t count = 0;
};

class PhaseTimer;

namespace detail {
/// Registry of every PhaseTimer ever constructed (they are function-local
/// statics, so the set is small and never shrinks).
struct PhaseTimerRegistry {
  std::mutex mu;
  std::vector<PhaseTimer*> timers;
};
inline PhaseTimerRegistry& phase_timer_registry() {
  static PhaseTimerRegistry registry;
  return registry;
}
}  // namespace detail

[[nodiscard]] inline std::uint64_t phase_clock_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// A named accumulator.  Construction registers it for the lifetime of the
/// process; add() is safe from any thread (relaxed — totals are only read
/// via snapshot between runs, never for synchronisation).
class PhaseTimer {
 public:
  explicit PhaseTimer(const char* name) : name_(name) {
    auto& registry = detail::phase_timer_registry();
    const std::lock_guard<std::mutex> lock(registry.mu);
    registry.timers.push_back(this);
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  void add(std::uint64_t ns) noexcept {
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] PhaseStat stat() const {
    return {name_, total_ns_.load(std::memory_order_relaxed),
            count_.load(std::memory_order_relaxed)};
  }
  void reset() noexcept {
    total_ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// All registered timers with a non-zero bracket count, in registration
/// order.  Empty when BEEPMIS_PHASE_TIMERS is off (nothing ever registers)
/// or when no timed section has run since the last reset.
[[nodiscard]] inline std::vector<PhaseStat> snapshot_phase_timers() {
  auto& registry = detail::phase_timer_registry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<PhaseStat> out;
  out.reserve(registry.timers.size());
  for (const PhaseTimer* t : registry.timers) {
    PhaseStat s = t->stat();
    if (s.count != 0) out.push_back(std::move(s));
  }
  return out;
}

/// Zero every counter (bench drivers call this between timed sections so
/// each row's phase_ns covers exactly that row's reps).
inline void reset_phase_timers() {
  auto& registry = detail::phase_timer_registry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  for (PhaseTimer* t : registry.timers) t->reset();
}

}  // namespace beepmis::support

// The macros.  DECLARE introduces a function-local static timer (magic
// statics make the registration race-free) plus a local start tick; START
// and STOP bracket the timed section.  Block scope only — like any
// multi-declaration macro they do not nest directly under an unbraced if.
#if defined(BEEPMIS_PHASE_TIMERS)
#define BEEPMIS_STM_DECLARE(var, name_str)                        \
  static ::beepmis::support::PhaseTimer beepmis_stm_##var{name_str}; \
  std::uint64_t beepmis_stm_start_##var = 0
#define BEEPMIS_STM_START(var) \
  beepmis_stm_start_##var = ::beepmis::support::phase_clock_ns()
#define BEEPMIS_STM_STOP(var) \
  beepmis_stm_##var.add(::beepmis::support::phase_clock_ns() - beepmis_stm_start_##var)
#else
#define BEEPMIS_STM_DECLARE(var, name_str) \
  do {                                     \
  } while (false)
#define BEEPMIS_STM_START(var) \
  do {                         \
  } while (false)
#define BEEPMIS_STM_STOP(var) \
  do {                        \
  } while (false)
#endif

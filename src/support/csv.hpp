// Minimal CSV reading/writing (RFC-4180 quoting) for experiment output.
// Every bench binary emits its table as CSV alongside the human-readable
// rendering so results can be re-plotted without re-running.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace beepmis::support {

/// Streaming CSV writer.  Cells are quoted only when required.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row; any cell containing a comma, quote or newline is quoted.
  void row(std::initializer_list<std::string_view> cells) {
    row(std::vector<std::string_view>(cells));
  }
  void row(const std::vector<std::string_view>& cells);
  void row(const std::vector<std::string>& cells);

  /// Convenience: format numeric cells with `precision` significant digits.
  void numeric_row(const std::vector<double>& cells, int precision = 10);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ostream& out_;
  std::size_t rows_ = 0;
};

/// Escapes a single cell per RFC 4180 if needed.
[[nodiscard]] std::string csv_escape(std::string_view cell);

/// Parses CSV text into rows of cells.  Handles quoted cells with embedded
/// commas, quotes ("" escape) and newlines; tolerates both \n and \r\n.
/// Throws std::runtime_error on an unterminated quoted cell.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(std::string_view text);

}  // namespace beepmis::support

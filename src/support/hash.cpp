#include "support/hash.hpp"

#include <bit>

namespace beepmis::support {

void StableHash::update_bytes(const void* data, std::size_t len) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    state_ ^= bytes[i];
    state_ *= kPrime;
  }
}

void StableHash::update(std::string_view s) noexcept {
  update_u64(s.size());
  update_bytes(s.data(), s.size());
}

void StableHash::update_u64(std::uint64_t v) noexcept {
  unsigned char bytes[8];
  for (auto& b : bytes) {
    b = static_cast<unsigned char>(v & 0xff);
    v >>= 8;
  }
  update_bytes(bytes, sizeof bytes);
}

void StableHash::update_double(double v) noexcept {
  update_u64(std::bit_cast<std::uint64_t>(v));
}

std::uint64_t stable_hash_bytes(std::string_view bytes) noexcept {
  StableHash h;
  h.update_bytes(bytes.data(), bytes.size());
  return h.digest();
}

std::string to_hex_u64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

bool parse_hex_u64(std::string_view text, std::uint64_t& out) noexcept {
  if (text.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    unsigned digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<unsigned>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<unsigned>(c - 'A') + 10;
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  out = v;
  return true;
}

}  // namespace beepmis::support

#include "support/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

namespace beepmis::support {

namespace {

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  [[nodiscard]] bool valid() const { return lo <= hi; }
  [[nodiscard]] double span() const { return hi - lo; }
};

double maybe_log(double v, bool log_x) { return log_x ? std::log2(v) : v; }

}  // namespace

std::string render_plot(const std::vector<Series>& series, const PlotOptions& options) {
  Range xr, yr;
  for (const auto& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      const double xv = maybe_log(s.x[i], options.log_x);
      if (!std::isfinite(xv) || !std::isfinite(s.y[i])) continue;
      xr.include(xv);
      yr.include(s.y[i]);
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  if (!xr.valid() || !yr.valid()) {
    out << "(no data)\n";
    return out.str();
  }
  // Avoid zero-span axes.
  if (xr.span() == 0) {
    xr.lo -= 1;
    xr.hi += 1;
  }
  if (yr.span() == 0) {
    yr.lo -= 1;
    yr.hi += 1;
  }

  const std::size_t w = std::max<std::size_t>(options.width, 10);
  const std::size_t h = std::max<std::size_t>(options.height, 5);
  std::vector<std::string> canvas(h, std::string(w, ' '));

  for (const auto& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      const double xv = maybe_log(s.x[i], options.log_x);
      if (!std::isfinite(xv) || !std::isfinite(s.y[i])) continue;
      const double fx = (xv - xr.lo) / xr.span();
      const double fy = (s.y[i] - yr.lo) / yr.span();
      auto col = static_cast<std::size_t>(std::lround(fx * static_cast<double>(w - 1)));
      auto row_from_bottom =
          static_cast<std::size_t>(std::lround(fy * static_cast<double>(h - 1)));
      const std::size_t row = h - 1 - row_from_bottom;
      char& cell = canvas[row][col];
      // Overlapping markers from different series render as '+'.
      cell = (cell == ' ' || cell == s.marker) ? s.marker : '+';
    }
  }

  std::ostringstream y_hi_ss, y_lo_ss;
  y_hi_ss << std::setprecision(4) << yr.hi;
  y_lo_ss << std::setprecision(4) << yr.lo;
  const std::size_t margin = std::max(y_hi_ss.str().size(), y_lo_ss.str().size());

  for (std::size_t r = 0; r < h; ++r) {
    std::string label(margin, ' ');
    if (r == 0) label = y_hi_ss.str();
    if (r == h - 1) label = y_lo_ss.str();
    out << std::setw(static_cast<int>(margin)) << label << " |" << canvas[r] << '\n';
  }
  out << std::string(margin + 1, ' ') << '+' << std::string(w, '-') << '\n';

  std::ostringstream x_axis;
  x_axis << std::setprecision(4) << (options.log_x ? "log2 " : "") << options.x_label << ": "
         << xr.lo << " .. " << xr.hi;
  out << std::string(margin + 2, ' ') << x_axis.str() << "   (y: " << options.y_label << ")\n";

  for (const auto& s : series) {
    if (s.x.empty()) continue;
    out << "   " << s.marker << " = " << s.label << '\n';
  }
  return out.str();
}

}  // namespace beepmis::support

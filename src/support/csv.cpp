#include "support/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace beepmis::support {

std::string csv_escape(std::string_view cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::row(const std::vector<std::string_view>& cells) {
  bool first = true;
  for (auto cell : cells) {
    if (!first) out_ << ',';
    out_ << csv_escape(cell);
    first = false;
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  std::vector<std::string_view> views(cells.begin(), cells.end());
  row(views);
}

void CsvWriter::numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream ss;
    ss.precision(precision);
    ss << v;
    formatted.push_back(ss.str());
  }
  row(formatted);
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> current_row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;  // a row with content, even empty cells, counts

  std::size_t i = 0;
  const std::size_t n = text.size();
  auto end_cell = [&] {
    current_row.push_back(std::move(cell));
    cell.clear();
    cell_started = false;
  };
  auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(current_row));
    current_row.clear();
  };

  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        cell_started = true;
        ++i;
        break;
      case ',':
        end_cell();
        cell_started = true;  // next cell exists even if empty
        ++i;
        break;
      case '\r':
        ++i;  // tolerate CRLF; the '\n' branch ends the row
        break;
      case '\n':
        end_row();
        ++i;
        break;
      default:
        cell.push_back(c);
        cell_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) throw std::runtime_error("parse_csv: unterminated quoted cell");
  if (cell_started || !cell.empty() || !current_row.empty()) end_row();
  return rows;
}

}  // namespace beepmis::support

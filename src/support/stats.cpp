#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace beepmis::support {

void RunningStats::push(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double quantile_sorted(std::span<const double> sorted, double q) noexcept {
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted.back();
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  RunningStats rs;
  for (double v : sorted) rs.push(v);
  s.n = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.q25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.q75 = quantile_sorted(sorted, 0.75);
  return s;
}

double mean_of(std::span<const double> values) noexcept {
  RunningStats rs;
  for (double v : values) rs.push(v);
  return rs.mean();
}

double stddev_of(std::span<const double> values) noexcept {
  RunningStats rs;
  for (double v : values) rs.push(v);
  return rs.stddev();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
}

void Histogram::push(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto raw = static_cast<long>(std::floor((x - lo_) / width));
  raw = std::clamp(raw, 0L, static_cast<long>(counts_.size()) - 1L);
  ++counts_[static_cast<std::size_t>(raw)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  return bin_lo(bin + 1);
}

std::string Histogram::render(std::size_t max_bar_width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * max_bar_width / peak;
    out << "[";
    out.precision(3);
    out << bin_lo(b) << ", " << bin_hi(b) << ") ";
    out << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  return out.str();
}

}  // namespace beepmis::support

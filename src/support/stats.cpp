#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace beepmis::support {

void RunningStats::push(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double quantile_sorted(std::span<const double> sorted, double q) noexcept {
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted.back();
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  RunningStats rs;
  for (double v : sorted) rs.push(v);
  s.n = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.q25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.q75 = quantile_sorted(sorted, 0.75);
  return s;
}

double mean_of(std::span<const double> values) noexcept {
  RunningStats rs;
  for (double v : values) rs.push(v);
  return rs.mean();
}

double stddev_of(std::span<const double> values) noexcept {
  RunningStats rs;
  for (double v : values) rs.push(v);
  return rs.stddev();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
}

void Histogram::push(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto raw = static_cast<long>(std::floor((x - lo_) / width));
  raw = std::clamp(raw, 0L, static_cast<long>(counts_.size()) - 1L);
  ++counts_[static_cast<std::size_t>(raw)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  return bin_lo(bin + 1);
}

namespace {

/// Series expansion of P(a, x), valid (and fast) for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Modified Lentz continued fraction for Q(a, x) = 1 - P(a, x), x >= a + 1.
double gamma_q_contfrac(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  if (!(a > 0.0) || x < 0.0) {
    throw std::invalid_argument("regularized_gamma_p: requires a > 0 and x >= 0");
  }
  if (x == 0.0) return 0.0;
  return x < a + 1.0 ? gamma_p_series(a, x) : 1.0 - gamma_q_contfrac(a, x);
}

double chi_square_cdf(double x, double dof) {
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(dof / 2.0, x / 2.0);
}

ChiSquareResult chi_square_gof(std::span<const double> observed,
                               std::span<const double> expected) {
  if (observed.size() != expected.size()) {
    throw std::invalid_argument("chi_square_gof: observed/expected size mismatch");
  }
  ChiSquareResult result;
  result.bins = observed.size();
  if (observed.size() < 2) return result;  // nothing to test; p = 1
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (!(expected[i] > 0.0)) {
      throw std::invalid_argument("chi_square_gof: expected counts must be > 0");
    }
    const double diff = observed[i] - expected[i];
    result.statistic += diff * diff / expected[i];
  }
  result.dof = static_cast<double>(observed.size() - 1);
  result.p_value = 1.0 - chi_square_cdf(result.statistic, result.dof);
  return result;
}

ChiSquareResult chi_square_homogeneity(std::span<const double> a,
                                       std::span<const double> b, double min_expected) {
  ChiSquareResult result;
  if (a.empty() || b.empty()) return result;  // degenerate; p = 1

  // Pool the distinct values of both samples into ascending value bins.
  std::vector<double> values;
  values.reserve(a.size() + b.size());
  values.insert(values.end(), a.begin(), a.end());
  values.insert(values.end(), b.begin(), b.end());
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());

  const auto count_in = [&](std::span<const double> sample, std::vector<double>& counts) {
    for (const double x : sample) {
      const auto it = std::lower_bound(values.begin(), values.end(), x);
      counts[static_cast<std::size_t>(it - values.begin())] += 1.0;
    }
  };
  std::vector<double> count_a(values.size(), 0.0), count_b(values.size(), 0.0);
  count_in(a, count_a);
  count_in(b, count_b);

  // Merge adjacent value bins left to right until each pooled bin's
  // *smaller* expected cell reaches min_expected; a trailing light bin is
  // folded into its predecessor.
  const double total = static_cast<double>(a.size() + b.size());
  const double share_a = static_cast<double>(a.size()) / total;
  const double share_b = static_cast<double>(b.size()) / total;
  const double min_share = std::min(share_a, share_b);
  std::vector<double> merged_a, merged_b;
  double acc_a = 0.0, acc_b = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    acc_a += count_a[i];
    acc_b += count_b[i];
    if ((acc_a + acc_b) * min_share >= min_expected) {
      merged_a.push_back(acc_a);
      merged_b.push_back(acc_b);
      acc_a = acc_b = 0.0;
    }
  }
  if (acc_a + acc_b > 0.0) {
    if (merged_a.empty()) {
      merged_a.push_back(acc_a);
      merged_b.push_back(acc_b);
    } else {
      merged_a.back() += acc_a;
      merged_b.back() += acc_b;
    }
  }
  result.bins = merged_a.size();
  if (merged_a.size() < 2) return result;  // one bin: identical by construction

  for (std::size_t i = 0; i < merged_a.size(); ++i) {
    const double bin_total = merged_a[i] + merged_b[i];
    const double exp_a = bin_total * share_a;
    const double exp_b = bin_total * share_b;
    const double da = merged_a[i] - exp_a;
    const double db = merged_b[i] - exp_b;
    result.statistic += da * da / exp_a + db * db / exp_b;
  }
  result.dof = static_cast<double>(merged_a.size() - 1);
  result.p_value = 1.0 - chi_square_cdf(result.statistic, result.dof);
  return result;
}

std::string Histogram::render(std::size_t max_bar_width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * max_bar_width / peak;
    out << "[";
    out.precision(3);
    out << bin_lo(b) << ", " << bin_hi(b) << ") ";
    out << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  return out.str();
}

}  // namespace beepmis::support

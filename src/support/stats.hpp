// Descriptive statistics used throughout the experiment harness: running
// moments (Welford), five-number summaries, quantiles and histograms.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace beepmis::support {

/// Single-pass mean/variance accumulator (Welford's algorithm), mergeable
/// so per-thread accumulators can be combined after a parallel sweep.
class RunningStats {
 public:
  /// The accumulator's complete internal state, exposed so it can be
  /// persisted and restored bit-exactly (the sweep journal checkpoints
  /// per-chunk aggregates; see exp/journal.hpp).  A from_state(state())
  /// round trip yields an accumulator whose every future push/merge is
  /// bit-identical to the original's.
  struct State {
    std::size_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  void push(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] State state() const noexcept { return {count_, mean_, m2_, min_, max_}; }
  [[nodiscard]] static RunningStats from_state(const State& s) noexcept {
    RunningStats r;
    r.count_ = s.count;
    r.mean_ = s.mean;
    r.m2_ = s.m2;
    r.min_ = s.min;
    r.max_ = s.max;
    return r;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 when fewer than two samples.
  [[nodiscard]] double stderr_mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample, including order statistics.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
};

/// Summarises `values` (copies internally for sorting); empty input yields a
/// zero summary.
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Linear-interpolated quantile of a *sorted* sample, q in [0, 1].
/// Precondition: `sorted` is nonempty and ascending.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q) noexcept;

[[nodiscard]] double mean_of(std::span<const double> values) noexcept;
[[nodiscard]] double stddev_of(std::span<const double> values) noexcept;

// --- Chi-square goodness of fit ------------------------------------------
//
// Distribution-level evidence for the statistical-lanes RNG mode: instead
// of only comparing means (6-sigma intervals), compare full termination-
// round histograms with a chi-square test.  No external math library: the
// CDF comes from the regularized incomplete gamma function below.

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0,
/// x >= 0.  Series expansion for x < a + 1, continued fraction otherwise
/// (the classic split; accurate to ~1e-12 over the range tests use).
[[nodiscard]] double regularized_gamma_p(double a, double x);

/// CDF of the chi-square distribution with `dof` degrees of freedom.
[[nodiscard]] double chi_square_cdf(double x, double dof);

struct ChiSquareResult {
  double statistic = 0.0;
  double dof = 0.0;
  double p_value = 1.0;
  std::size_t bins = 0;  ///< bins actually used after pooling
};

/// Pearson goodness-of-fit test of observed counts against expected
/// counts (same length; expected entries must be > 0).
[[nodiscard]] ChiSquareResult chi_square_gof(std::span<const double> observed,
                                             std::span<const double> expected);

/// Two-sample chi-square homogeneity test: are samples `a` and `b` drawn
/// from the same distribution?  Bins are the pooled distinct values of
/// both samples (suited to integer-valued samples such as termination
/// rounds), then adjacent bins are merged until every expected cell count
/// is at least `min_expected` — the textbook validity rule.  dof =
/// bins - 1.  Degenerate inputs (either sample empty, or only one pooled
/// bin) return p_value = 1.
[[nodiscard]] ChiSquareResult chi_square_homogeneity(std::span<const double> a,
                                                     std::span<const double> b,
                                                     double min_expected = 5.0);

/// Fixed-width histogram over [lo, hi); samples outside the range clamp to
/// the first/last bin so no mass is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void push(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;
  /// Multi-line ASCII rendering ("[lo, hi) ####### count").
  [[nodiscard]] std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace beepmis::support

// Descriptive statistics used throughout the experiment harness: running
// moments (Welford), five-number summaries, quantiles and histograms.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace beepmis::support {

/// Single-pass mean/variance accumulator (Welford's algorithm), mergeable
/// so per-thread accumulators can be combined after a parallel sweep.
class RunningStats {
 public:
  void push(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 when fewer than two samples.
  [[nodiscard]] double stderr_mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample, including order statistics.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
};

/// Summarises `values` (copies internally for sorting); empty input yields a
/// zero summary.
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Linear-interpolated quantile of a *sorted* sample, q in [0, 1].
/// Precondition: `sorted` is nonempty and ascending.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q) noexcept;

[[nodiscard]] double mean_of(std::span<const double> values) noexcept;
[[nodiscard]] double stddev_of(std::span<const double> values) noexcept;

/// Fixed-width histogram over [lo, hi); samples outside the range clamp to
/// the first/last bin so no mass is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void push(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;
  /// Multi-line ASCII rendering ("[lo, hi) ####### count").
  [[nodiscard]] std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace beepmis::support

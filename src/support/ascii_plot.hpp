// Terminal scatter plots so bench binaries can render the paper's figures
// directly into their stdout (Figure 3 / Figure 5 analogues).
#pragma once

#include <string>
#include <vector>

namespace beepmis::support {

/// One plotted series: (x, y) points drawn with `marker`.
struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
  char marker = '*';
};

struct PlotOptions {
  std::size_t width = 72;   ///< plot area width in characters
  std::size_t height = 20;  ///< plot area height in characters
  bool log_x = false;       ///< plot against log2(x)
  std::string title;
  std::string x_label = "x";
  std::string y_label = "y";
};

/// Renders series into a framed ASCII scatter plot with axis ranges and a
/// legend.  Series may have different lengths; empty series are skipped.
[[nodiscard]] std::string render_plot(const std::vector<Series>& series,
                                      const PlotOptions& options);

}  // namespace beepmis::support

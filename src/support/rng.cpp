#include "support/rng.hpp"

namespace beepmis::support {

void Xoshiro256StarStar::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
      0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};

  std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      (void)(*this)();
    }
  }
  state_ = acc;
}

Xoshiro256StarStar Xoshiro256StarStar::split(std::uint64_t stream) const noexcept {
  // Hash the full current state together with the stream index so that
  // splits from distinct parents (or the same parent at different times)
  // are independent.
  std::uint64_t h = mix_seed(state_[0], state_[1]);
  h = mix_seed(h, state_[2]);
  h = mix_seed(h, state_[3]);
  h = mix_seed(h, stream);
  return Xoshiro256StarStar(h);
}

std::uint64_t Xoshiro256StarStar::below(std::uint64_t bound) noexcept {
  // Lemire (2019): multiply-shift with rejection to remove modulo bias.
  __extension__ using uint128 = unsigned __int128;
  std::uint64_t x = (*this)();
  uint128 m = static_cast<uint128>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<uint128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace beepmis::support

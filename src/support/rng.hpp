// Deterministic random number generation for reproducible simulations.
//
// Every experiment in this library is a pure function of a small set of
// integer seeds.  To make that hold even under multi-threaded trial
// execution, we never share generator state between logical streams;
// instead, independent streams are *derived* by hashing (base seed, stream
// index) with splitmix64, following the recommendation of the xoshiro
// authors (Blackman & Vigna) for seeding from a weak source.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace beepmis::support {

/// One step of the splitmix64 generator; advances `state` and returns the
/// next output.  Used both as a standalone mixer and to seed xoshiro.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless strong mix of two 64-bit words; commutative inputs yield
/// distinct outputs (a is pre-mixed), suitable for deriving stream seeds.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a;
  std::uint64_t x = splitmix64_next(s);
  s = x ^ b;
  return splitmix64_next(s);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG with 256-bit state.
/// Satisfies the C++ UniformRandomBitGenerator concept so it can be used
/// with <random> distributions, though the convenience members below avoid
/// the libstdc++ distribution objects in hot loops.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64,
  /// as recommended by the generator's authors.
  explicit constexpr Xoshiro256StarStar(std::uint64_t seed = 1) noexcept : state_{} {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Jump ahead by 2^128 outputs (for partitioning one seed into a few
  /// long non-overlapping sequences).
  void jump() noexcept;

  /// Advance by exactly `count` outputs, as if calling operator() that
  /// many times and discarding the results.  The sharded simulator carves
  /// per-shard windows out of one scalar stream with this (one output per
  /// Bernoulli draw), so it must stay exactly equivalent to the discard
  /// loop — there is no shortcut through xoshiro state space for
  /// arbitrary counts.
  void discard(std::uint64_t count) noexcept {
    while (count-- > 0) (void)(*this)();
  }

  /// Derives an independent generator for stream `stream`.  Unlike jump(),
  /// this supports an arbitrary number of streams and is the mechanism used
  /// for per-trial and per-node randomness.
  [[nodiscard]] Xoshiro256StarStar split(std::uint64_t stream) const noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p) draw; p outside [0,1] is clamped by construction
  /// (p <= 0 never fires, p >= 1 always fires).
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Bernoulli(2^-k) draw, bit-identical to bernoulli(ldexp(1.0, -k)) for
  /// every k >= 0 on the same single rng() output — including the region
  /// below the 2^-53 draw granularity (53 < k <= 1074, only the exact-zero
  /// mantissa passes) and the underflow at k >= 1075, where ldexp rounds
  /// to 0.0 and the draw can never fire (the output is still consumed,
  /// like bernoulli(0.0)).  The uniform01 mantissa (x >> 11) * 2^-53 is
  /// below 2^-k iff its top 53-k bits are all zero, so the whole draw is
  /// one integer shift/compare; the batched dyadic kernels rely on this
  /// being the single source of that endpoint behaviour.  Deliberately
  /// branchless: the outcome is a coin flip, so a data dependency beats a
  /// guaranteed-mispredicting branch in the kernel hot loops.
  [[nodiscard]] bool bernoulli_pow2(unsigned k) noexcept {
    const std::uint64_t mantissa = (*this)() >> 11;
    const unsigned shift = k < 53 ? 53 - k : 0;
    return (static_cast<unsigned>(k < 1075) & static_cast<unsigned>((mantissa >> shift) == 0)) != 0;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection
  /// method; bound must be nonzero.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  [[nodiscard]] constexpr const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }

  friend constexpr bool operator==(const Xoshiro256StarStar& a,
                                   const Xoshiro256StarStar& b) noexcept {
    return a.state_ == b.state_;
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

/// Hierarchical seed derivation: experiments address their randomness as
/// (base, trial, node, ...) paths so that adding a component never perturbs
/// the randomness of sibling components.
class SeedSequence {
 public:
  explicit constexpr SeedSequence(std::uint64_t base) noexcept : base_(base) {}

  /// Child sequence for component `index`.
  [[nodiscard]] constexpr SeedSequence child(std::uint64_t index) const noexcept {
    return SeedSequence(mix_seed(base_, index));
  }

  /// Materialise a generator for this node of the seed tree.
  [[nodiscard]] Xoshiro256StarStar generator() const noexcept {
    return Xoshiro256StarStar(base_);
  }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return base_; }

 private:
  std::uint64_t base_;
};

}  // namespace beepmis::support

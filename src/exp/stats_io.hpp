// Text serialization of harness::TrialStats — the one encoding shared by
// everything that persists or ships aggregates:
//
//   * the sweep journal's per-chunk blocks (exp/journal.cpp) use the
//     low-level "stats core" encode/decode, byte-identical to the
//     journal's v1 on-disk format;
//   * the beepmisd experiment service (src/svc/) uses the framed
//     format_trial_stats / parse_trial_stats round trip as both its wire
//     result payload and its on-disk result-cache entry.
//
// The encoding rules are the journal's (see exp/journal.hpp): doubles as
// exact IEEE-754 bit patterns (hex16, never formatted — load(save(x)) is
// bit-identical), strings hex-escaped into single whitespace-free tokens,
// strict full-match parsing that rejects rather than guesses, and a
// whole-payload StableHash checksum on the framed form.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "exp/runner.hpp"

namespace beepmis::harness::statsio {

// --- token-level helpers (shared with the journal) ------------------------

/// Exact IEEE-754 bit pattern as 16 hex digits.
[[nodiscard]] std::string hex_double(double v);
[[nodiscard]] bool parse_hex_double(std::string_view text, double& out) noexcept;

/// Strict full-match decimal parse (loaders must reject, never guess).
[[nodiscard]] bool parse_size(std::string_view text, std::size_t& out) noexcept;

/// Hex-escapes an arbitrary byte string into one whitespace-free token
/// ("-" for empty, so every line keeps a fixed token structure).
[[nodiscard]] std::string escape_text(std::string_view s);
[[nodiscard]] bool unescape_text(std::string_view token, std::string& out);

[[nodiscard]] std::vector<std::string> split_tokens(std::string_view line);

// --- the stats core: metric aggregates + accounting -----------------------
//
// The journal's chunk-body line group, exactly:
//
//   stat <name> <count> <hex16 mean> <hex16 m2> <hex16 min> <hex16 max>  x5
//   counts <10 integers>
//   recovery <k> <hex16>*k
//   failed <trial> <hex16 seed> <attempts> <hex-escaped error>           x0+
//
// Covers every TrialStats field that chunk merging aggregates; the
// sweep-level fields (requested_trials, truncated, resumed_trials, the
// reason strings) are NOT part of the core — the framed format below
// carries those.

void encode_stats_core(std::ostream& out, const TrialStats& stats);

/// Decodes one stats core from lines[i .. stop); advances `i` past the
/// consumed lines.  Returns false with a human-readable `error` (and an
/// unspecified `out` / `i`) on the first malformed line; the caller must
/// then reject the whole payload.
[[nodiscard]] bool decode_stats_core(const std::vector<std::string_view>& lines, std::size_t& i,
                                     std::size_t stop, TrialStats& out, std::string& error);

}  // namespace beepmis::harness::statsio

namespace beepmis::harness {

/// Framed, self-checksummed full TrialStats round trip:
///
///   beepmis-trial-stats v1
///   <stats core lines>
///   meta <requested_trials> <truncated 0|1> <resumed_trials>
///   fallback <hex-escaped scalar_fallback_reason>
///   discarded <hex-escaped resume_discarded_reason>
///   checksum <hex16>
///
/// parse(format(x)) reproduces every field bit-for-bit.
[[nodiscard]] std::string format_trial_stats(const TrialStats& stats);

/// Validates and decodes a framed payload.  Returns false with a reason
/// on any anomaly (bad magic, torn content, checksum mismatch, malformed
/// line) — reject whole, never half-loaded.
[[nodiscard]] bool parse_trial_stats(const std::string& text, TrialStats& out,
                                     std::string& error);

}  // namespace beepmis::harness

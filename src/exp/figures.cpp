#include "exp/figures.hpp"

#include <cmath>
#include <memory>

#include "graph/generators.hpp"
#include "mis/global_schedule.hpp"
#include "mis/greedy_id.hpp"
#include "mis/luby.hpp"
#include "mis/metivier.hpp"
#include "mis/self_healing.hpp"
#include "mis/theory.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace beepmis::harness {

namespace {

GraphFactory gnp_factory(std::size_t n, double p) {
  return [n, p](support::Xoshiro256StarStar& rng) {
    return graph::gnp(static_cast<graph::NodeId>(n), p, rng);
  };
}

BeepProtocolFactory local_feedback_factory(
    mis::LocalFeedbackConfig config = mis::LocalFeedbackConfig::paper()) {
  return [config] { return std::make_unique<mis::LocalFeedbackMis>(config); };
}

BeepProtocolFactory global_sweep_factory() {
  return [] {
    return std::make_unique<mis::GlobalScheduleMis>(std::make_unique<mis::SweepSchedule>());
  };
}

TrialConfig make_trial_config(const ExperimentConfig& config, std::uint64_t salt) {
  TrialConfig tc;
  tc.trials = config.trials;
  tc.base_seed = support::mix_seed(config.base_seed, salt);
  tc.threads = config.threads;
  return tc;
}

}  // namespace

std::vector<Figure3Row> figure3_experiment(std::span<const std::size_t> ns,
                                           const ExperimentConfig& config) {
  std::vector<Figure3Row> rows;
  rows.reserve(ns.size());
  for (const std::size_t n : ns) {
    const auto graphs = gnp_factory(n, config.edge_probability);

    const TrialStats global =
        run_beep_trials(graphs, global_sweep_factory(), make_trial_config(config, n * 2));
    const TrialStats local = run_beep_trials(graphs, local_feedback_factory(),
                                             make_trial_config(config, n * 2 + 1));

    Figure3Row row;
    row.n = n;
    row.global_mean = global.rounds.mean();
    row.global_stddev = global.rounds.stddev();
    row.local_mean = local.rounds.mean();
    row.local_stddev = local.rounds.stddev();
    row.reference_log2_squared = mis::figure3_global_reference(n);
    row.reference_25_log2 = mis::figure3_local_reference(n);
    rows.push_back(row);
  }
  return rows;
}

std::vector<Figure5Row> figure5_experiment(std::span<const std::size_t> ns,
                                           const ExperimentConfig& config) {
  std::vector<Figure5Row> rows;
  rows.reserve(ns.size());
  for (const std::size_t n : ns) {
    const auto graphs = gnp_factory(n, config.edge_probability);

    // The increasing schedule needs n and the max degree; G(n, 1/2) has
    // max degree concentrated near n/2 + O(sqrt(n log n)).
    const BeepProtocolFactory increasing_factory = [n, &config] {
      const auto degree_estimate = static_cast<std::size_t>(
          config.edge_probability * static_cast<double>(n) +
          2.0 * std::sqrt(static_cast<double>(n)));
      return std::make_unique<mis::GlobalScheduleMis>(
          std::make_unique<mis::IncreasingSchedule>(degree_estimate, n));
    };

    const TrialStats global =
        run_beep_trials(graphs, global_sweep_factory(), make_trial_config(config, n * 2));
    const TrialStats increasing = run_beep_trials(graphs, increasing_factory,
                                                  make_trial_config(config, n * 3 + 2));
    const TrialStats local = run_beep_trials(graphs, local_feedback_factory(),
                                             make_trial_config(config, n * 2 + 1));

    Figure5Row row;
    row.n = n;
    row.global_mean = global.beeps_per_node.mean();
    row.global_stddev = global.beeps_per_node.stddev();
    row.increasing_mean = increasing.beeps_per_node.mean();
    row.increasing_stddev = increasing.beeps_per_node.stddev();
    row.local_mean = local.beeps_per_node.mean();
    row.local_stddev = local.beeps_per_node.stddev();
    rows.push_back(row);
  }
  return rows;
}

std::vector<GridBeepsRow> grid_beeps_experiment(std::span<const std::size_t> sides,
                                                const ExperimentConfig& config) {
  std::vector<GridBeepsRow> rows;
  rows.reserve(sides.size());
  for (const std::size_t side : sides) {
    const GraphFactory graphs = [side](support::Xoshiro256StarStar&) {
      return graph::grid2d(static_cast<graph::NodeId>(side),
                           static_cast<graph::NodeId>(side));
    };
    const TrialStats local = run_beep_trials(graphs, local_feedback_factory(),
                                             make_trial_config(config, 7000 + side));
    GridBeepsRow row;
    row.side = side;
    row.local_mean = local.beeps_per_node.mean();
    row.local_stddev = local.beeps_per_node.stddev();
    rows.push_back(row);
  }
  return rows;
}

std::vector<Theorem1Row> theorem1_experiment(std::span<const std::size_t> ks,
                                             const ExperimentConfig& config) {
  std::vector<Theorem1Row> rows;
  rows.reserve(ks.size());
  for (const std::size_t k : ks) {
    // Deterministic graph; the randomness is only in the protocol.
    const GraphFactory graphs = [k](support::Xoshiro256StarStar&) {
      return graph::clique_family(static_cast<graph::NodeId>(k),
                                  static_cast<graph::NodeId>(k));
    };
    TrialConfig tc_global = make_trial_config(config, 9000 + k * 2);
    tc_global.shared_graph = true;
    TrialConfig tc_local = make_trial_config(config, 9001 + k * 2);
    tc_local.shared_graph = true;

    const TrialStats global = run_beep_trials(graphs, global_sweep_factory(), tc_global);
    const TrialStats local = run_beep_trials(graphs, local_feedback_factory(), tc_local);

    Theorem1Row row;
    row.k = k;
    row.node_count = k * (k * (k + 1) / 2);
    row.global_mean = global.rounds.mean();
    row.global_stddev = global.rounds.stddev();
    row.local_mean = local.rounds.mean();
    row.local_stddev = local.rounds.stddev();
    rows.push_back(row);
  }
  return rows;
}

std::vector<ComparisonRow> luby_comparison_experiment(std::span<const std::size_t> ns,
                                                      const ExperimentConfig& config) {
  std::vector<ComparisonRow> rows;
  rows.reserve(ns.size());
  const LocalProtocolFactory luby = [] { return std::make_unique<mis::LubyMis>(); };
  const LocalProtocolFactory metivier = [] { return std::make_unique<mis::MetivierMis>(); };
  const LocalProtocolFactory greedy_id = [] { return std::make_unique<mis::GreedyIdMis>(); };
  for (const std::size_t n : ns) {
    const auto graphs = gnp_factory(n, config.edge_probability);

    const TrialStats luby_stats =
        run_local_trials(graphs, luby, make_trial_config(config, 11000 + n));
    const TrialStats metivier_stats =
        run_local_trials(graphs, metivier, make_trial_config(config, 13000 + n));
    const TrialStats greedy_stats =
        run_local_trials(graphs, greedy_id, make_trial_config(config, 14000 + n));
    const TrialStats local_stats = run_beep_trials(graphs, local_feedback_factory(),
                                                   make_trial_config(config, 12000 + n));

    ComparisonRow row;
    row.family = "gnp(0.5)";
    row.n = n;
    row.luby_rounds = luby_stats.rounds.mean();
    row.luby_rounds_stddev = luby_stats.rounds.stddev();
    row.metivier_rounds = metivier_stats.rounds.mean();
    row.greedy_id_rounds = greedy_stats.rounds.mean();
    row.local_rounds = local_stats.rounds.mean();
    row.local_rounds_stddev = local_stats.rounds.stddev();
    row.luby_message_bits = luby_stats.message_bits.mean();
    row.metivier_message_bits = metivier_stats.message_bits.mean();
    // Every beep is a 1-bit broadcast; total beeps is the natural analogue.
    row.local_total_beeps =
        local_stats.beeps_per_node.mean() * static_cast<double>(n);
    rows.push_back(row);
  }
  return rows;
}

std::vector<RobustnessRow> robustness_experiment(std::size_t n,
                                                 const ExperimentConfig& config) {
  struct Variant {
    std::string label;
    mis::LocalFeedbackConfig algo;
  };
  std::vector<Variant> variants;
  variants.push_back({"paper (factor 2, p0=1/2)", mis::LocalFeedbackConfig::paper()});
  for (const double factor : {1.25, 1.5, 3.0, 4.0}) {
    mis::LocalFeedbackConfig c;
    c.factor_low = c.factor_high = factor;
    variants.push_back({"factor " + support::format_fixed(factor, 2), c});
  }
  {
    mis::LocalFeedbackConfig c;
    c.initial_p_low = c.initial_p_high = 0.25;
    variants.push_back({"p0 = 1/4", c});
  }
  {
    mis::LocalFeedbackConfig c;
    c.initial_p_low = c.initial_p_high = 1.0 / 16.0;
    variants.push_back({"p0 = 1/16", c});
  }
  {
    mis::LocalFeedbackConfig c;
    c.initial_p_low = 0.05;
    c.initial_p_high = 0.5;
    variants.push_back({"p0 ~ U[0.05, 0.5]", c});
  }
  {
    mis::LocalFeedbackConfig c;
    c.factor_low = 1.5;
    c.factor_high = 3.0;
    variants.push_back({"factor ~ U[1.5, 3]", c});
  }

  std::vector<RobustnessRow> rows;
  rows.reserve(variants.size());
  std::uint64_t salt = 21000;
  for (const Variant& variant : variants) {
    const auto graphs = gnp_factory(n, config.edge_probability);
    const TrialStats stats = run_beep_trials(graphs, local_feedback_factory(variant.algo),
                                             make_trial_config(config, salt++));
    RobustnessRow row;
    row.label = variant.label;
    row.algo = variant.algo;
    row.n = n;
    row.rounds_mean = stats.rounds.mean();
    row.rounds_stddev = stats.rounds.stddev();
    row.beeps_mean = stats.beeps_per_node.mean();
    row.valid = stats.valid;
    row.trials = stats.trials;
    rows.push_back(row);
  }
  return rows;
}

std::vector<FaultRow> fault_experiment(std::size_t n, std::span<const double> losses,
                                       const ExperimentConfig& config) {
  std::vector<FaultRow> rows;
  rows.reserve(losses.size());
  std::uint64_t salt = 31000;
  for (const double loss : losses) {
    TrialConfig tc = make_trial_config(config, salt++);
    tc.sim.beep_loss_probability = loss;
    // Lossy runs may not terminate (a node can wait forever for a lost
    // announcement); cap rounds so the experiment finishes.
    tc.sim.max_rounds = 2000;

    const auto graphs = gnp_factory(n, config.edge_probability);
    const TrialStats stats =
        run_beep_trials(graphs, local_feedback_factory(), tc);

    FaultRow row;
    row.loss = loss;
    row.rounds_mean = stats.rounds.mean();
    const auto trials = static_cast<double>(stats.trials);
    row.valid_fraction = static_cast<double>(stats.valid) / trials;
    row.terminated_fraction = static_cast<double>(stats.terminated) / trials;
    row.independence_violations_per_trial =
        static_cast<double>(stats.independence_violations) / trials;
    row.uncovered_per_trial = static_cast<double>(stats.uncovered_nodes) / trials;
    rows.push_back(row);
  }
  return rows;
}

std::vector<FaultRow> fault_scenario_experiment(std::size_t n,
                                                std::span<const double> losses,
                                                const FaultScenarioFactory& scenario,
                                                const ExperimentConfig& config) {
  std::vector<FaultRow> rows;
  rows.reserve(losses.size());
  std::uint64_t salt = 33000;
  for (const double loss : losses) {
    TrialConfig tc = make_trial_config(config, salt++);
    tc.sim.beep_loss_probability = loss;
    tc.sim.max_rounds = 2000;
    // Maintenance regime: keepalive (the healing rule listens for it), a
    // fixed tail so recovery has room to complete, recovery tracking on.
    tc.sim.mis_keepalive = true;
    tc.sim.run_until_round = 150;
    tc.sim.track_recovery = true;
    tc.scenario = scenario;

    const auto graphs = gnp_factory(n, config.edge_probability);
    const BeepProtocolFactory protocols = [] {
      return std::make_unique<mis::SelfHealingLocalFeedbackMis>();
    };
    const TrialStats stats = run_beep_trials(graphs, protocols, tc);

    FaultRow row;
    row.loss = loss;
    row.rounds_mean = stats.rounds.mean();
    const auto trials = static_cast<double>(stats.trials);
    row.valid_fraction = static_cast<double>(stats.valid) / trials;
    row.terminated_fraction = static_cast<double>(stats.terminated) / trials;
    row.independence_violations_per_trial =
        static_cast<double>(stats.independence_violations) / trials;
    row.uncovered_per_trial = static_cast<double>(stats.uncovered_nodes) / trials;
    row.disruptions_per_trial = static_cast<double>(stats.disruptions) / trials;
    row.unrecovered_per_trial =
        static_cast<double>(stats.unrecovered_disruptions) / trials;
    const TrialStats::RecoveryQuantiles q = stats.recovery_quantiles();
    row.recovery_p50 = q.p50;
    row.recovery_p95 = q.p95;
    row.recovery_p99 = q.p99;
    rows.push_back(row);
  }
  return rows;
}

std::vector<FamilyRow> family_experiment(std::size_t n, const ExperimentConfig& config) {
  struct Family {
    std::string name;
    GraphFactory factory;
    bool deterministic;
  };
  const auto nid = static_cast<graph::NodeId>(n);
  const auto side = static_cast<graph::NodeId>(std::max(
      2.0, std::round(std::sqrt(static_cast<double>(n)))));

  std::vector<Family> families;
  families.push_back({"gnp(0.5)", gnp_factory(n, 0.5), false});
  families.push_back({"gnp(0.05)", gnp_factory(n, 0.05), false});
  families.push_back(
      {"ring", [nid](support::Xoshiro256StarStar&) { return graph::ring(nid); }, true});
  families.push_back({"grid " + std::to_string(side) + "x" + std::to_string(side),
                      [side](support::Xoshiro256StarStar&) { return graph::grid2d(side, side); },
                      true});
  families.push_back({"random tree",
                      [nid](support::Xoshiro256StarStar& rng) {
                        return graph::random_tree(nid, rng);
                      },
                      false});
  families.push_back(
      {"star", [nid](support::Xoshiro256StarStar&) { return graph::star(nid); }, true});
  families.push_back(
      {"clique", [nid](support::Xoshiro256StarStar&) { return graph::complete(nid); }, true});
  families.push_back({"barabasi-albert(3)",
                      [nid](support::Xoshiro256StarStar& rng) {
                        return graph::barabasi_albert(nid, 3, rng);
                      },
                      false});

  std::vector<FamilyRow> rows;
  rows.reserve(families.size());
  std::uint64_t salt = 41000;
  for (const Family& family : families) {
    TrialConfig tc = make_trial_config(config, salt++);
    tc.shared_graph = family.deterministic;
    const TrialStats stats = run_beep_trials(family.factory, local_feedback_factory(), tc);

    FamilyRow row;
    row.family = family.name;
    row.n = n;
    row.rounds_mean = stats.rounds.mean();
    row.rounds_stddev = stats.rounds.stddev();
    row.beeps_mean = stats.beeps_per_node.mean();
    row.mis_size_mean = stats.mis_size.mean();
    rows.push_back(row);
  }
  return rows;
}

}  // namespace beepmis::harness

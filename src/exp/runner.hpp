// Multi-threaded trial runner: executes many independent (graph, protocol)
// trials and aggregates the metrics the paper reports.  Results are
// deterministic in the base seed regardless of thread count, because each
// trial derives its own seed tree and writes into its own slot.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "graph/graph.hpp"
#include "sim/beep.hpp"
#include "sim/local.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace beepmis::harness {

/// Builds the trial's graph from the trial's graph RNG.  Called once per
/// trial (each trial gets a fresh random graph, matching the paper's
/// methodology of averaging over random networks) unless
/// TrialConfig::shared_graph is set.
using GraphFactory = std::function<graph::Graph(support::Xoshiro256StarStar&)>;

/// Creates a fresh protocol instance (protocols are stateful per run).
using BeepProtocolFactory = std::function<std::unique_ptr<sim::BeepProtocol>()>;
using LocalProtocolFactory = std::function<std::unique_ptr<sim::LocalProtocol>()>;
/// Creates a fresh fault-scenario instance (scenarios are stateful per
/// run, so every worker thread needs its own; see TrialConfig::scenario).
using FaultScenarioFactory = std::function<std::unique_ptr<sim::FaultScenario>()>;

struct TrialConfig {
  std::size_t trials = 100;
  std::uint64_t base_seed = 0x5eed;
  /// 0 = use hardware concurrency.
  unsigned threads = 0;
  /// Generate the graph once (from trial 0's graph seed) and reuse it for
  /// every trial instead of resampling per trial.
  bool shared_graph = false;
  /// Permit the batched 64-lane fast path.  It engages automatically when
  /// shared_graph is set, the protocol provides a batched kernel
  /// (BeepProtocol::make_batch_protocol), no trace is recorded, and — in
  /// the default kScalarOrder mode — the workload is not a lossy
  /// tail-dominated sweep (where per-lane delivery draws make batching a
  /// pessimisation; see BENCH_core.json's lossy-tail rows).  In
  /// kScalarOrder results are bit-identical to the scalar path either way,
  /// so this exists only for A/B testing and benchmarking the two paths.
  bool allow_batched = true;
  /// Draw-entropy policy of the batched fast path.  kScalarOrder (the
  /// default) keeps every trial bit-identical to the scalar path.
  /// kStatisticalLanes opts into jump()-partitioned per-lane streams and
  /// bulk cross-lane Bernoulli planes: the same per-trial marginal
  /// distributions from a different sample, which lifts the converge-phase
  /// batching ceiling and makes lossy tail-dominated sweeps batchable
  /// again.  TrialStats stay deterministic per (base_seed, trials, mode)
  /// and thread count, but are not comparable seed-for-seed with
  /// kScalarOrder runs.  Only consulted on the batched path; scalar and
  /// sharded execution always draw in scalar order.
  sim::BatchRngMode rng_mode = sim::BatchRngMode::kScalarOrder;
  /// Shard-parallel execution of large single runs (sim/sharded.hpp).
  /// 0 = auto: when exactly one trial is requested, the protocol declares
  /// shard support (BeepProtocol::shard_support), no trace is recorded and
  /// the trial's graph has at least `auto_shard_min_nodes` nodes, the run
  /// executes across `threads` (default: hardware) shards.  1 = never.
  /// >= 2 = force that shard count for every trial; the trial loop then
  /// runs single-worker, since each trial already uses `shards` threads.
  /// The sharded path draws in scalar order, so results are bit-identical
  /// to the scalar path either way — callers never observe the switch.
  unsigned shards = 0;
  /// Opt-out mirror of allow_batched for the sharded path.
  bool allow_sharded = true;
  /// Auto-sharding size threshold: below this a single run is too small
  /// for the per-exchange barriers to pay off.  Exposed for tests.
  std::size_t auto_shard_min_nodes = std::size_t{1} << 18;
  /// Fault scenario for every trial (see sim/scenario.hpp).  Set this —
  /// not SimConfig::scenario, which run_beep_trials rejects — so the
  /// harness can hand each worker thread its own instance.  Routing by
  /// ScenarioKind: a kStaticSchedule scenario on a shared graph with empty
  /// crash_round is materialised into SimConfig::crash_round once, keeping
  /// the batched/sharded fast paths (bit-identical to the equivalent
  /// static-vector run); anything else — adaptive or dynamic-event
  /// scenarios, per-trial graphs, recovery tracking — runs on the scalar
  /// simulator, with the reason surfaced in
  /// TrialStats::scalar_fallback_reason.
  FaultScenarioFactory scenario;
  sim::SimConfig sim;
  sim::LocalSimConfig local_sim;
};

/// Aggregated metrics across trials.
struct TrialStats {
  support::RunningStats rounds;
  support::RunningStats beeps_per_node;
  support::RunningStats max_beeps_any_node;
  support::RunningStats mis_size;
  support::RunningStats message_bits;
  std::size_t trials = 0;
  std::size_t terminated = 0;
  /// Trials whose final state passed full MIS verification.
  std::size_t valid = 0;
  /// Total violation counts summed over trials (nonzero only under faults).
  std::size_t independence_violations = 0;
  std::size_t uncovered_nodes = 0;
  /// Recovery-SLA samples across all trials, in trial order (populated
  /// only when SimConfig::track_recovery is set): rounds from each
  /// disruption to the next quiescent-and-valid state.
  std::vector<double> recovery_rounds;
  /// Disruptions opened across trials (== recovery_rounds.size() +
  /// unrecovered_disruptions).
  std::size_t disruptions = 0;
  /// Disruptions still unhealed when their runs ended.
  std::size_t unrecovered_disruptions = 0;
  /// Why the batched/sharded fast paths were refused and the scalar
  /// simulator ran instead (empty = no forced fallback).  E.g. an adaptive
  /// fault scenario or recovery tracking.
  std::string scalar_fallback_reason;

  struct RecoveryQuantiles {
    double p50 = 0, p95 = 0, p99 = 0;
  };
  /// p50/p95/p99 of recovery_rounds (zeros when there are no samples).
  [[nodiscard]] RecoveryQuantiles recovery_quantiles() const;

  void merge(const TrialStats& other);
};

/// Runs `config.trials` beeping-model trials.
[[nodiscard]] TrialStats run_beep_trials(const GraphFactory& graphs,
                                         const BeepProtocolFactory& protocols,
                                         const TrialConfig& config);

/// Runs LOCAL-model trials (Luby baseline).
[[nodiscard]] TrialStats run_local_trials(const GraphFactory& graphs,
                                          const LocalProtocolFactory& protocols,
                                          const TrialConfig& config);

}  // namespace beepmis::harness

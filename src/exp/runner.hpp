// Multi-threaded trial runner: executes many independent (graph, protocol)
// trials and aggregates the metrics the paper reports.  Results are
// deterministic in the base seed regardless of thread count, because each
// trial derives its own seed tree and writes into its own slot.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/beep.hpp"
#include "sim/local.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace beepmis::harness {

/// Builds the trial's graph from the trial's graph RNG.  Called once per
/// trial (each trial gets a fresh random graph, matching the paper's
/// methodology of averaging over random networks) unless
/// TrialConfig::shared_graph is set.
using GraphFactory = std::function<graph::Graph(support::Xoshiro256StarStar&)>;

/// Creates a fresh protocol instance (protocols are stateful per run).
using BeepProtocolFactory = std::function<std::unique_ptr<sim::BeepProtocol>()>;
using LocalProtocolFactory = std::function<std::unique_ptr<sim::LocalProtocol>()>;
/// Creates a fresh fault-scenario instance (scenarios are stateful per
/// run, so every worker thread needs its own; see TrialConfig::scenario).
using FaultScenarioFactory = std::function<std::unique_ptr<sim::FaultScenario>()>;

struct TrialConfig {
  std::size_t trials = 100;
  std::uint64_t base_seed = 0x5eed;
  /// 0 = use hardware concurrency.
  unsigned threads = 0;
  /// Generate the graph once (from trial 0's graph seed) and reuse it for
  /// every trial instead of resampling per trial.
  bool shared_graph = false;
  /// Permit the batched 64-lane fast path.  It engages automatically when
  /// shared_graph is set, the protocol provides a batched kernel
  /// (BeepProtocol::make_batch_protocol), no trace is recorded, and — in
  /// the default kScalarOrder mode — the workload is not a lossy
  /// tail-dominated sweep (where per-lane delivery draws make batching a
  /// pessimisation; see BENCH_core.json's lossy-tail rows).  In
  /// kScalarOrder results are bit-identical to the scalar path either way,
  /// so this exists only for A/B testing and benchmarking the two paths.
  bool allow_batched = true;
  /// Draw-entropy policy of the batched fast path.  kScalarOrder (the
  /// default) keeps every trial bit-identical to the scalar path.
  /// kStatisticalLanes opts into jump()-partitioned per-lane streams and
  /// bulk cross-lane Bernoulli planes: the same per-trial marginal
  /// distributions from a different sample, which lifts the converge-phase
  /// batching ceiling and makes lossy tail-dominated sweeps batchable
  /// again.  TrialStats stay deterministic per (base_seed, trials, mode)
  /// and thread count, but are not comparable seed-for-seed with
  /// kScalarOrder runs.  It also unlocks the sharded-batched path (see
  /// `shards`); scalar and single-run sharded execution always draw in
  /// scalar order.
  sim::BatchRngMode rng_mode = sim::BatchRngMode::kScalarOrder;
  /// Shard-parallel execution (sim/sharded.hpp, sim/sharded_batch.hpp).
  /// 0 = auto: a lone trial on a graph of at least `auto_shard_min_nodes`
  /// nodes runs on the scalar-order sharded simulator across `threads`
  /// (default: hardware) shards, bit-identical to the scalar path; a
  /// kStatisticalLanes sweep of more than one 64-trial batch on such a
  /// graph runs sharded-batched — every batch swept by `threads` shards
  /// at once.  1 = never.  >= 2 = force that shard count: scalar-order
  /// sweeps run every trial on the sharded simulator (bit-identical to
  /// scalar), and eligible kStatisticalLanes sweeps run sharded-batched.
  /// Either way the outer trial loop goes single-worker, since each run
  /// already uses `shards` threads.  Scalar-order shard routing never
  /// changes the numbers; the sharded-batched path partitions the
  /// statistical streams per (shard, lane), so its results are
  /// deterministic per (base_seed, trials, shard count) but a different
  /// sample than the unsharded statistical path — the same trade
  /// kStatisticalLanes already made, one axis further.
  unsigned shards = 0;
  /// Opt-out mirror of allow_batched for the sharded paths (both the
  /// single-run scalar-order one and the sharded-batched one).
  bool allow_sharded = true;
  /// Auto-sharding size threshold: below this a run is too small for the
  /// per-exchange barriers to pay off.  Exposed for tests.
  std::size_t auto_shard_min_nodes = std::size_t{1} << 18;
  /// Fault scenario for every trial (see sim/scenario.hpp).  Set this —
  /// not SimConfig::scenario, which run_beep_trials rejects — so the
  /// harness can hand each worker thread its own instance.  Routing by
  /// ScenarioKind: a kStaticSchedule scenario on a shared graph with empty
  /// crash_round is materialised into SimConfig::crash_round once, keeping
  /// the batched/sharded fast paths (bit-identical to the equivalent
  /// static-vector run); anything else — adaptive or dynamic-event
  /// scenarios, per-trial graphs, recovery tracking — runs on the scalar
  /// simulator, with the reason surfaced in
  /// TrialStats::scalar_fallback_reason.
  FaultScenarioFactory scenario;
  sim::SimConfig sim;
  sim::LocalSimConfig local_sim;

  // --- Crash-safe sweep controls (see src/exp/README.md, "Crash-safe
  // sweeps").  All default to off, preserving the historical fail-fast,
  // run-to-completion semantics exactly. ---

  /// Durable checkpoint journal (exp/journal.hpp).  Empty = no journaling.
  /// The sweep snapshots per-chunk aggregates to this path (atomically:
  /// write-temp-then-rename) every time a chunk of `checkpoint_interval`
  /// trials completes.
  std::string journal_path;
  /// Load `journal_path` before running and skip every chunk it already
  /// holds.  A journal whose request hash does not match this config (or
  /// that fails its content checksum) is rejected *whole* — never half
  /// loaded — and the sweep restarts from scratch, with the reason surfaced
  /// in TrialStats::resume_discarded_reason.  A resumed sweep's final stats
  /// are bit-identical to an uninterrupted run's.
  bool resume = false;
  /// Caller-supplied identity of everything the harness cannot see: graph
  /// family + parameters, protocol identity, scenario parameters.  Mixed
  /// into the journal's request hash so a journal from a different sweep is
  /// rejected instead of silently merged.  (The harness hashes its own
  /// visible knobs — trials, base_seed, rng_mode, fault vectors, … — on top
  /// of this.)
  std::uint64_t request_fingerprint = 0;
  /// Trials per checkpoint chunk.  Rounded up to a multiple of the batched
  /// simulator's 64 lanes so chunk boundaries coincide with batch
  /// boundaries on every execution path (aggregation is chunked
  /// identically everywhere — that is what makes resumed, interrupted and
  /// cross-path runs bit-identical; see src/exp/README.md).
  std::size_t checkpoint_interval = 64;
  /// Wall-clock budget for this invocation (0 = unlimited).  When it
  /// expires, workers stop claiming trials, in-flight trials finish, and
  /// the sweep returns the chunks completed so far with truncated = true —
  /// an honest partial answer (fewer samples => wider confidence
  /// intervals) instead of no answer.  Resume later to finish.
  double budget_seconds = 0.0;
  /// Per-trial-attempt wall-clock timeout (0 = unlimited), enforced
  /// cooperatively by the simulators at round boundaries via
  /// SimConfig::deadline_ns.  A timed-out attempt throws sim::RunCancelled:
  /// with isolate_trial_faults it is retried / quarantined like any other
  /// trial fault; without it, it fails the sweep (fail-fast).
  double trial_timeout_seconds = 0.0;
  /// Per-trial fault isolation.  false (default): the first trial exception
  /// aborts the sweep (historical fail-fast semantics).  true: a throwing
  /// trial is retried up to `max_retries` times with bounded exponential
  /// backoff, then quarantined — recorded in TrialStats::failed_trials and
  /// excluded from the metric aggregates, while the sweep completes.
  /// Retries rerun the identical (seed-pure) computation, so they help with
  /// transient faults (timeouts under load, resource exhaustion), not
  /// deterministic protocol bugs — those quarantine after max_retries.
  bool isolate_trial_faults = false;
  /// Extra attempts after the first failure (isolate_trial_faults only).
  unsigned max_retries = 2;
  /// First retry backoff; doubles per retry, capped at max_retry_backoff_ms.
  unsigned retry_backoff_ms = 1;
  unsigned max_retry_backoff_ms = 100;
  /// Cooperative external stop (e.g. a signal handler): when set to true,
  /// workers stop claiming trials at the next trial boundary and the sweep
  /// returns truncated, exactly like budget expiry.
  std::shared_ptr<std::atomic<bool>> stop_request;
  /// Test/observability hook: invoked after every completed chunk (after
  /// the journal snapshot, when journaling) with the number of chunks
  /// completed by this invocation so far.  Called under the checkpoint
  /// lock — keep it cheap and do not call back into the harness.
  std::function<void(std::size_t chunks_completed)> on_checkpoint;
};

/// A trial that exhausted its retry budget and was excluded from the
/// metric aggregates (TrialConfig::isolate_trial_faults).
struct FailedTrial {
  std::size_t trial = 0;        ///< trial index within the sweep
  std::uint64_t base_seed = 0;  ///< sweep base seed (trial seed = child(trial))
  unsigned attempts = 0;        ///< attempts consumed (1 + retries)
  std::string error;            ///< what() of the final attempt's exception
};

/// Aggregated metrics across trials.
struct TrialStats {
  support::RunningStats rounds;
  support::RunningStats beeps_per_node;
  support::RunningStats max_beeps_any_node;
  support::RunningStats mis_size;
  support::RunningStats message_bits;
  std::size_t trials = 0;
  std::size_t terminated = 0;
  /// Trials whose final state passed full MIS verification.
  std::size_t valid = 0;
  /// Total violation counts summed over trials (nonzero only under faults).
  std::size_t independence_violations = 0;
  std::size_t uncovered_nodes = 0;
  /// Recovery-SLA samples across all trials, in trial order (populated
  /// only when SimConfig::track_recovery is set): rounds from each
  /// disruption to the next quiescent-and-valid state.
  std::vector<double> recovery_rounds;
  /// Disruptions opened across trials (== recovery_rounds.size() +
  /// unrecovered_disruptions).
  std::size_t disruptions = 0;
  /// Disruptions still unhealed when their runs ended.
  std::size_t unrecovered_disruptions = 0;
  /// Why the batched/sharded fast paths were refused and the scalar
  /// simulator ran instead (empty = no forced fallback).  E.g. an adaptive
  /// fault scenario or recovery tracking.
  std::string scalar_fallback_reason;

  // --- Crash-safe sweep accounting (see TrialConfig's sweep controls).
  // `trials` above counts *completed* trials — the ones contributing to
  // the metric aggregates; the fields below reconcile it against what was
  // asked for and what went wrong. ---

  /// TrialConfig::trials of the request (== trials unless the sweep was
  /// truncated or trials were quarantined).
  std::size_t requested_trials = 0;
  /// Trials attempted by this result (completed + quarantined).
  std::size_t attempted = 0;
  /// Trials that exhausted their retry budget (== failed_trials.size()).
  std::size_t quarantined = 0;
  /// Total retry attempts performed across all trials.
  std::size_t retries = 0;
  /// Per-quarantined-trial report, ascending trial index.
  std::vector<FailedTrial> failed_trials;
  /// The sweep stopped early (budget expiry or stop_request) at a clean
  /// checkpoint boundary: the aggregates cover only the completed chunks.
  /// The confidence intervals below widen honestly with the smaller n.
  bool truncated = false;
  /// Trials restored from a resumed journal rather than re-run.
  std::size_t resumed_trials = 0;
  /// Why a resume journal was rejected and the sweep restarted from
  /// scratch (empty = no journal was rejected).
  std::string resume_discarded_reason;

  struct RecoveryQuantiles {
    double p50 = 0, p95 = 0, p99 = 0;
  };
  /// p50/p95/p99 of recovery_rounds (zeros when there are no samples).
  [[nodiscard]] RecoveryQuantiles recovery_quantiles() const;

  struct Interval {
    double lo = 0, hi = 0;
  };
  /// 95% normal-approximation confidence interval for a metric's mean
  /// (mean ± 1.96 · stderr).  Collapses to [mean, mean] below two samples.
  /// Truncated/quarantined sweeps report honestly through this: fewer
  /// completed trials => larger stderr => wider interval.
  [[nodiscard]] static Interval ci95(const support::RunningStats& s);

  void merge(const TrialStats& other);
};

/// The chunk geometry a sweep will actually use: `checkpoint_interval`
/// rounded up to a multiple of the batched simulator's lane width (see
/// TrialConfig::checkpoint_interval), and the resulting number of
/// checkpoint chunks for `trials`.  Exposed so external observers (the
/// beepmisd progress stream) can turn on_checkpoint's chunk counts into
/// an honest "done / total" without re-deriving the rounding rule.
[[nodiscard]] std::size_t effective_checkpoint_interval(std::size_t checkpoint_interval);
[[nodiscard]] std::size_t checkpoint_chunk_count(std::size_t trials,
                                                 std::size_t checkpoint_interval);

/// Runs `config.trials` beeping-model trials.
[[nodiscard]] TrialStats run_beep_trials(const GraphFactory& graphs,
                                         const BeepProtocolFactory& protocols,
                                         const TrialConfig& config);

/// Runs LOCAL-model trials (Luby baseline).
[[nodiscard]] TrialStats run_local_trials(const GraphFactory& graphs,
                                          const LocalProtocolFactory& protocols,
                                          const TrialConfig& config);

}  // namespace beepmis::harness

#include "exp/stats_io.hpp"

#include <array>
#include <bit>
#include <cstdint>
#include <ostream>
#include <sstream>

#include "support/hash.hpp"

namespace beepmis::harness::statsio {

namespace {

using support::parse_hex_u64;
using support::to_hex_u64;

constexpr const char* kStatNames[] = {"rounds", "beeps_per_node", "max_beeps_any_node",
                                      "mis_size", "message_bits"};

std::array<const support::RunningStats*, 5> stat_fields(const TrialStats& s) {
  return {&s.rounds, &s.beeps_per_node, &s.max_beeps_any_node, &s.mis_size, &s.message_bits};
}

std::array<support::RunningStats*, 5> stat_fields(TrialStats& s) {
  return {&s.rounds, &s.beeps_per_node, &s.max_beeps_any_node, &s.mis_size, &s.message_bits};
}

}  // namespace

std::string hex_double(double v) {
  return to_hex_u64(std::bit_cast<std::uint64_t>(v));
}

bool parse_hex_double(std::string_view text, double& out) noexcept {
  std::uint64_t bits = 0;
  if (!parse_hex_u64(text, bits)) return false;
  out = std::bit_cast<double>(bits);
  return true;
}

bool parse_size(std::string_view text, std::size_t& out) noexcept {
  if (text.empty() || text.size() > 20) return false;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (SIZE_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

std::string escape_text(std::string_view s) {
  if (s.empty()) return "-";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (const unsigned char c : s) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

bool unescape_text(std::string_view token, std::string& out) {
  out.clear();
  if (token == "-") return true;
  if (token.size() % 2 != 0) return false;
  const auto nibble = [](char c, unsigned& v) {
    if (c >= '0' && c <= '9') { v = static_cast<unsigned>(c - '0'); return true; }
    if (c >= 'a' && c <= 'f') { v = static_cast<unsigned>(c - 'a') + 10; return true; }
    return false;
  };
  out.reserve(token.size() / 2);
  for (std::size_t i = 0; i < token.size(); i += 2) {
    unsigned hi = 0, lo = 0;
    if (!nibble(token[i], hi) || !nibble(token[i + 1], lo)) return false;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

std::vector<std::string> split_tokens(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

void encode_stats_core(std::ostream& out, const TrialStats& s) {
  const auto stats = stat_fields(s);
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const support::RunningStats::State st = stats[i]->state();
    out << "stat " << kStatNames[i] << ' ' << st.count << ' ' << hex_double(st.mean) << ' '
        << hex_double(st.m2) << ' ' << hex_double(st.min) << ' ' << hex_double(st.max) << "\n";
  }
  out << "counts " << s.trials << ' ' << s.terminated << ' ' << s.valid << ' '
      << s.independence_violations << ' ' << s.uncovered_nodes << ' ' << s.disruptions << ' '
      << s.unrecovered_disruptions << ' ' << s.attempted << ' ' << s.quarantined << ' '
      << s.retries << "\n";
  out << "recovery " << s.recovery_rounds.size();
  for (const double r : s.recovery_rounds) out << ' ' << hex_double(r);
  out << "\n";
  for (const FailedTrial& f : s.failed_trials) {
    out << "failed " << f.trial << ' ' << to_hex_u64(f.base_seed) << ' ' << f.attempts << ' '
        << escape_text(f.error) << "\n";
  }
}

bool decode_stats_core(const std::vector<std::string_view>& lines, std::size_t& i,
                       std::size_t stop, TrialStats& out, std::string& error) {
  const auto reject = [&error](const char* reason) {
    error = reason;
    return false;
  };

  const auto stats = stat_fields(out);
  for (std::size_t s = 0; s < stats.size(); ++s) {
    if (i >= stop) return reject("truncated chunk block");
    const auto tokens = split_tokens(lines[i]);
    support::RunningStats::State st;
    if (tokens.size() != 7 || tokens[0] != "stat" || tokens[1] != kStatNames[s] ||
        !parse_size(tokens[2], st.count) || !parse_hex_double(tokens[3], st.mean) ||
        !parse_hex_double(tokens[4], st.m2) || !parse_hex_double(tokens[5], st.min) ||
        !parse_hex_double(tokens[6], st.max)) {
      return reject("malformed stat line");
    }
    *stats[s] = support::RunningStats::from_state(st);
    ++i;
  }

  if (i >= stop) return reject("truncated chunk block");
  {
    const auto tokens = split_tokens(lines[i]);
    TrialStats& s = out;
    if (tokens.size() != 11 || tokens[0] != "counts" || !parse_size(tokens[1], s.trials) ||
        !parse_size(tokens[2], s.terminated) || !parse_size(tokens[3], s.valid) ||
        !parse_size(tokens[4], s.independence_violations) ||
        !parse_size(tokens[5], s.uncovered_nodes) || !parse_size(tokens[6], s.disruptions) ||
        !parse_size(tokens[7], s.unrecovered_disruptions) ||
        !parse_size(tokens[8], s.attempted) || !parse_size(tokens[9], s.quarantined) ||
        !parse_size(tokens[10], s.retries)) {
      return reject("malformed counts line");
    }
  }
  ++i;

  if (i >= stop) return reject("truncated chunk block");
  {
    const auto tokens = split_tokens(lines[i]);
    std::size_t recovery_count = 0;
    if (tokens.size() < 2 || tokens[0] != "recovery" || !parse_size(tokens[1], recovery_count) ||
        tokens.size() != recovery_count + 2) {
      return reject("malformed recovery line");
    }
    out.recovery_rounds.reserve(recovery_count);
    for (std::size_t r = 0; r < recovery_count; ++r) {
      double value = 0;
      if (!parse_hex_double(tokens[r + 2], value)) return reject("malformed recovery sample");
      out.recovery_rounds.push_back(value);
    }
  }
  ++i;

  while (i < stop) {
    const auto tokens = split_tokens(lines[i]);
    if (tokens.empty()) return reject("blank line inside chunk block");
    if (tokens[0] != "failed") break;
    FailedTrial f;
    std::size_t attempts = 0;
    if (tokens.size() != 5 || !parse_size(tokens[1], f.trial) ||
        !parse_hex_u64(tokens[2], f.base_seed) || !parse_size(tokens[3], attempts) ||
        attempts > UINT32_MAX || !unescape_text(tokens[4], f.error)) {
      return reject("malformed failed-trial line");
    }
    f.attempts = static_cast<unsigned>(attempts);
    out.failed_trials.push_back(std::move(f));
    ++i;
  }
  return true;
}

}  // namespace beepmis::harness::statsio

namespace beepmis::harness {

namespace {

constexpr std::string_view kStatsMagic = "beepmis-trial-stats v1";

}  // namespace

std::string format_trial_stats(const TrialStats& stats) {
  using namespace statsio;
  std::ostringstream out;
  out << kStatsMagic << "\n";
  encode_stats_core(out, stats);
  out << "meta " << stats.requested_trials << ' ' << (stats.truncated ? 1 : 0) << ' '
      << stats.resumed_trials << "\n";
  out << "fallback " << escape_text(stats.scalar_fallback_reason) << "\n";
  out << "discarded " << escape_text(stats.resume_discarded_reason) << "\n";
  std::string body = out.str();
  body += "checksum " + support::to_hex_u64(support::stable_hash_bytes(body)) + "\n";
  return body;
}

bool parse_trial_stats(const std::string& text, TrialStats& out, std::string& error) {
  using namespace statsio;
  const auto reject = [&](std::string reason) {
    error = std::move(reason);
    return false;
  };
  if (text.empty() || text.back() != '\n') return reject("stats payload truncated");
  std::vector<std::string_view> lines;
  {
    std::size_t start = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '\n') {
        lines.emplace_back(text.data() + start, i - start);
        start = i + 1;
      }
    }
  }
  if (lines.size() < 5) return reject("stats payload too short");

  const std::string_view last = lines.back();
  const auto checksum_tokens = split_tokens(last);
  std::uint64_t stored_checksum = 0;
  if (checksum_tokens.size() != 2 || checksum_tokens[0] != "checksum" ||
      !support::parse_hex_u64(checksum_tokens[1], stored_checksum)) {
    return reject("missing or malformed checksum line");
  }
  const std::size_t body_len = text.size() - (last.size() + 1);
  if (support::stable_hash_bytes(std::string_view(text.data(), body_len)) != stored_checksum) {
    return reject("stats checksum mismatch");
  }
  if (lines[0] != kStatsMagic) return reject("unrecognised stats magic/version");

  TrialStats parsed;
  std::size_t i = 1;
  const std::size_t stop = lines.size() - 1;
  std::string core_error;
  if (!decode_stats_core(lines, i, stop, parsed, core_error)) return reject(core_error);

  if (i >= stop) return reject("missing meta line");
  {
    const auto tokens = split_tokens(lines[i]);
    std::size_t truncated = 0;
    if (tokens.size() != 4 || tokens[0] != "meta" ||
        !parse_size(tokens[1], parsed.requested_trials) || !parse_size(tokens[2], truncated) ||
        truncated > 1 || !parse_size(tokens[3], parsed.resumed_trials)) {
      return reject("malformed meta line");
    }
    parsed.truncated = truncated == 1;
  }
  ++i;
  if (i >= stop) return reject("missing fallback line");
  {
    const auto tokens = split_tokens(lines[i]);
    if (tokens.size() != 2 || tokens[0] != "fallback" ||
        !unescape_text(tokens[1], parsed.scalar_fallback_reason)) {
      return reject("malformed fallback line");
    }
  }
  ++i;
  if (i >= stop) return reject("missing discarded line");
  {
    const auto tokens = split_tokens(lines[i]);
    if (tokens.size() != 2 || tokens[0] != "discarded" ||
        !unescape_text(tokens[1], parsed.resume_discarded_reason)) {
      return reject("malformed discarded line");
    }
  }
  ++i;
  if (i != stop) return reject("unexpected trailing lines in stats payload");
  out = std::move(parsed);
  return true;
}

}  // namespace beepmis::harness

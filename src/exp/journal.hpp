// Durable sweep journal: the persistence layer behind crash-safe trial
// sweeps (TrialConfig::journal_path / resume).
//
// The trial harness aggregates a sweep in fixed chunks of
// TrialConfig::checkpoint_interval trials; every time a chunk completes it
// snapshots *all* completed chunks here.  A snapshot is atomic — the file
// is written whole to "<path>.tmp" and renamed over the destination — so a
// reader never sees a torn file from a normal crash, and any file that
// nevertheless fails validation (checksum mismatch, unparseable line,
// request-hash mismatch) is rejected in full: resume either trusts the
// whole journal or none of it.
//
// Format (line-oriented text, self-checksummed):
//
//   beepmis-sweep-journal v1
//   request <hex16>           # StableHash of the sweep request (see
//   trials <N>                #   runner.cpp's request hash: config knobs
//   chunk_size <C>            #   + TrialConfig::request_fingerprint)
//   chunk <index> ...         # repeated blocks, one per completed chunk
//     stat <name> <count> <hex16 mean> <hex16 m2> <hex16 min> <hex16 max>
//     counts <...integers...>
//     recovery <k> <hex16>*k
//     failed <trial> <hex16 seed> <attempts> <hex-escaped error>
//   end <index>
//   checksum <hex16>          # StableHash of every preceding byte
//
// Doubles are stored as exact bit patterns (hex), never formatted — a
// load(save(x)) round trip is bit-identical, which is what lets a resumed
// sweep's final merged TrialStats match an uninterrupted run's exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace beepmis::harness {

/// One completed checkpoint chunk: the chunk-local TrialStats aggregate of
/// trials [index * chunk_size, min((index + 1) * chunk_size, trials)).
struct JournalChunk {
  std::size_t index = 0;
  TrialStats stats;
};

struct JournalLoadResult {
  enum class Status {
    kNoFile,    ///< nothing at the path — fresh sweep
    kValid,     ///< chunks restored
    kRejected,  ///< journal exists but failed validation; see reason
  };
  Status status = Status::kNoFile;
  std::string reason;               ///< human-readable, set when kRejected
  std::vector<JournalChunk> chunks; ///< ascending index, unique (kValid only)
};

class SweepJournal {
 public:
  /// `request_hash` keys the journal to one exact sweep request; `trials`
  /// and `chunk_size` pin the chunk geometry (a journal with different
  /// geometry is rejected on load).
  SweepJournal(std::string path, std::uint64_t request_hash, std::size_t trials,
               std::size_t chunk_size);

  /// Atomically replaces the journal with a snapshot of `chunks` (any
  /// order; persisted sorted by index).  Throws std::runtime_error when the
  /// temp file cannot be written or renamed.
  void save(const std::vector<JournalChunk>& chunks) const;

  /// Loads and validates the journal.  Never throws on bad content — a
  /// corrupt or mismatched journal yields kRejected with the reason, and
  /// the caller restarts the sweep from scratch.
  [[nodiscard]] JournalLoadResult load() const;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t request_hash() const noexcept { return request_hash_; }

 private:
  std::string path_;
  std::uint64_t request_hash_ = 0;
  std::size_t trials_ = 0;
  std::size_t chunk_size_ = 0;
};

}  // namespace beepmis::harness

#include "exp/journal.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "exp/stats_io.hpp"
#include "support/hash.hpp"

namespace beepmis::harness {

namespace {

using statsio::decode_stats_core;
using statsio::encode_stats_core;
using statsio::parse_size;
using statsio::split_tokens;
using support::parse_hex_u64;
using support::stable_hash_bytes;
using support::to_hex_u64;

constexpr std::string_view kMagic = "beepmis-sweep-journal v1";

// The chunk body (stat/counts/recovery/failed lines) is the shared stats
// core (exp/stats_io.hpp) — byte-identical to the pre-refactor journal
// format, which is what keeps journals written by older builds loadable.
void encode_chunk(std::ostringstream& out, const JournalChunk& chunk) {
  out << "chunk " << chunk.index << "\n";
  encode_stats_core(out, chunk.stats);
  out << "end " << chunk.index << "\n";
}

}  // namespace

SweepJournal::SweepJournal(std::string path, std::uint64_t request_hash, std::size_t trials,
                           std::size_t chunk_size)
    : path_(std::move(path)), request_hash_(request_hash), trials_(trials),
      chunk_size_(chunk_size) {
  if (path_.empty()) throw std::invalid_argument("SweepJournal: empty path");
  if (chunk_size_ == 0) throw std::invalid_argument("SweepJournal: chunk_size must be >= 1");
}

void SweepJournal::save(const std::vector<JournalChunk>& chunks) const {
  std::vector<const JournalChunk*> ordered;
  ordered.reserve(chunks.size());
  for (const JournalChunk& c : chunks) ordered.push_back(&c);
  std::sort(ordered.begin(), ordered.end(),
            [](const JournalChunk* a, const JournalChunk* b) { return a->index < b->index; });

  std::ostringstream content;
  content << kMagic << "\n";
  content << "request " << to_hex_u64(request_hash_) << "\n";
  content << "trials " << trials_ << "\n";
  content << "chunk_size " << chunk_size_ << "\n";
  for (const JournalChunk* c : ordered) encode_chunk(content, *c);
  std::string body = content.str();
  body += "checksum " + to_hex_u64(stable_hash_bytes(body)) + "\n";

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("SweepJournal: cannot open " + tmp + " for writing");
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    if (!out) throw std::runtime_error("SweepJournal: short write to " + tmp);
  }
  // Atomic publish: readers see the old snapshot or the new one, never a
  // torn mix.  (A torn file can still exist after a power loss — that is
  // what the whole-file checksum rejects on load.)
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    throw std::runtime_error("SweepJournal: rename " + tmp + " -> " + path_ + " failed");
  }
}

JournalLoadResult SweepJournal::load() const {
  JournalLoadResult result;
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    result.status = JournalLoadResult::Status::kNoFile;
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string file = buffer.str();

  const auto reject = [&result](std::string reason) {
    result.status = JournalLoadResult::Status::kRejected;
    result.reason = std::move(reason);
    result.chunks.clear();
    return result;
  };

  // Split into lines; require a trailing newline (a truncated final line is
  // torn content).
  if (file.empty() || file.back() != '\n') return reject("journal is truncated (no final newline)");
  std::vector<std::string_view> lines;
  {
    std::size_t start = 0;
    for (std::size_t i = 0; i < file.size(); ++i) {
      if (file[i] == '\n') {
        lines.emplace_back(file.data() + start, i - start);
        start = i + 1;
      }
    }
  }
  if (lines.size() < 5) return reject("journal too short");

  // Checksum covers every byte before the checksum line.
  const std::string_view last = lines.back();
  const auto checksum_tokens = split_tokens(last);
  std::uint64_t stored_checksum = 0;
  if (checksum_tokens.size() != 2 || checksum_tokens[0] != "checksum" ||
      !parse_hex_u64(checksum_tokens[1], stored_checksum)) {
    return reject("missing or malformed checksum line");
  }
  const std::size_t body_len = file.size() - (last.size() + 1);
  if (stable_hash_bytes(std::string_view(file.data(), body_len)) != stored_checksum) {
    return reject("content checksum mismatch (torn or corrupted journal)");
  }

  // Header.
  if (lines[0] != kMagic) return reject("unrecognised journal magic/version");
  {
    const auto tokens = split_tokens(lines[1]);
    std::uint64_t stored_request = 0;
    if (tokens.size() != 2 || tokens[0] != "request" ||
        !parse_hex_u64(tokens[1], stored_request)) {
      return reject("malformed request line");
    }
    if (stored_request != request_hash_) {
      return reject("request hash mismatch: journal belongs to a different sweep (have " +
                    to_hex_u64(stored_request) + ", want " + to_hex_u64(request_hash_) + ")");
    }
  }
  {
    const auto tokens = split_tokens(lines[2]);
    std::size_t stored_trials = 0;
    if (tokens.size() != 2 || tokens[0] != "trials" || !parse_size(tokens[1], stored_trials)) {
      return reject("malformed trials line");
    }
    if (stored_trials != trials_) return reject("trial-count mismatch");
  }
  {
    const auto tokens = split_tokens(lines[3]);
    std::size_t stored_chunk = 0;
    if (tokens.size() != 2 || tokens[0] != "chunk_size" || !parse_size(tokens[1], stored_chunk)) {
      return reject("malformed chunk_size line");
    }
    if (stored_chunk != chunk_size_) return reject("chunk-size mismatch");
  }

  const std::size_t num_chunks = trials_ == 0 ? 0 : (trials_ + chunk_size_ - 1) / chunk_size_;
  std::vector<bool> seen(num_chunks, false);

  // Chunk blocks: lines[4 .. size-2].
  std::size_t i = 4;
  const std::size_t stop = lines.size() - 1;
  while (i < stop) {
    auto tokens = split_tokens(lines[i]);
    if (tokens.size() != 2 || tokens[0] != "chunk") return reject("expected chunk line");
    JournalChunk chunk;
    if (!parse_size(tokens[1], chunk.index)) return reject("malformed chunk index");
    if (chunk.index >= num_chunks) return reject("chunk index out of range");
    if (seen[chunk.index]) return reject("duplicate chunk index");
    ++i;

    std::string core_error;
    if (!decode_stats_core(lines, i, stop, chunk.stats, core_error)) {
      return reject(std::move(core_error));
    }

    if (i >= stop) return reject("truncated chunk block");
    tokens = split_tokens(lines[i]);
    std::size_t end_index = 0;
    if (tokens.size() != 2 || tokens[0] != "end" || !parse_size(tokens[1], end_index) ||
        end_index != chunk.index) {
      return reject("malformed chunk end line");
    }
    ++i;

    seen[chunk.index] = true;
    result.chunks.push_back(std::move(chunk));
  }

  std::sort(result.chunks.begin(), result.chunks.end(),
            [](const JournalChunk& a, const JournalChunk& b) { return a.index < b.index; });
  result.status = JournalLoadResult::Status::kValid;
  return result;
}

}  // namespace beepmis::harness

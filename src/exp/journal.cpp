#include "exp/journal.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "support/hash.hpp"

namespace beepmis::harness {

namespace {

using support::parse_hex_u64;
using support::stable_hash_bytes;
using support::to_hex_u64;

constexpr std::string_view kMagic = "beepmis-sweep-journal v1";

std::string hex_double(double v) {
  return to_hex_u64(std::bit_cast<std::uint64_t>(v));
}

bool parse_hex_double(std::string_view text, double& out) noexcept {
  std::uint64_t bits = 0;
  if (!parse_hex_u64(text, bits)) return false;
  out = std::bit_cast<double>(bits);
  return true;
}

/// Strict full-match decimal parse (journal loaders must reject, never
/// guess; same policy as parse_hex_u64).
bool parse_size(std::string_view text, std::size_t& out) noexcept {
  if (text.empty() || text.size() > 20) return false;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (SIZE_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

/// Hex-escapes an arbitrary byte string into one whitespace-free token
/// ("-" for empty, so every line keeps a fixed token structure).
std::string escape_text(std::string_view s) {
  if (s.empty()) return "-";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (const unsigned char c : s) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

bool unescape_text(std::string_view token, std::string& out) {
  out.clear();
  if (token == "-") return true;
  if (token.size() % 2 != 0) return false;
  const auto nibble = [](char c, unsigned& v) {
    if (c >= '0' && c <= '9') { v = static_cast<unsigned>(c - '0'); return true; }
    if (c >= 'a' && c <= 'f') { v = static_cast<unsigned>(c - 'a') + 10; return true; }
    return false;
  };
  out.reserve(token.size() / 2);
  for (std::size_t i = 0; i < token.size(); i += 2) {
    unsigned hi = 0, lo = 0;
    if (!nibble(token[i], hi) || !nibble(token[i + 1], lo)) return false;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

std::vector<std::string> split_tokens(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

constexpr const char* kStatNames[] = {"rounds", "beeps_per_node", "max_beeps_any_node",
                                      "mis_size", "message_bits"};

std::array<const support::RunningStats*, 5> stat_fields(const TrialStats& s) {
  return {&s.rounds, &s.beeps_per_node, &s.max_beeps_any_node, &s.mis_size, &s.message_bits};
}

std::array<support::RunningStats*, 5> stat_fields(TrialStats& s) {
  return {&s.rounds, &s.beeps_per_node, &s.max_beeps_any_node, &s.mis_size, &s.message_bits};
}

void encode_chunk(std::ostringstream& out, const JournalChunk& chunk) {
  out << "chunk " << chunk.index << "\n";
  const auto stats = stat_fields(chunk.stats);
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const support::RunningStats::State st = stats[i]->state();
    out << "stat " << kStatNames[i] << ' ' << st.count << ' ' << hex_double(st.mean) << ' '
        << hex_double(st.m2) << ' ' << hex_double(st.min) << ' ' << hex_double(st.max) << "\n";
  }
  const TrialStats& s = chunk.stats;
  out << "counts " << s.trials << ' ' << s.terminated << ' ' << s.valid << ' '
      << s.independence_violations << ' ' << s.uncovered_nodes << ' ' << s.disruptions << ' '
      << s.unrecovered_disruptions << ' ' << s.attempted << ' ' << s.quarantined << ' '
      << s.retries << "\n";
  out << "recovery " << s.recovery_rounds.size();
  for (const double r : s.recovery_rounds) out << ' ' << hex_double(r);
  out << "\n";
  for (const FailedTrial& f : s.failed_trials) {
    out << "failed " << f.trial << ' ' << to_hex_u64(f.base_seed) << ' ' << f.attempts << ' '
        << escape_text(f.error) << "\n";
  }
  out << "end " << chunk.index << "\n";
}

}  // namespace

SweepJournal::SweepJournal(std::string path, std::uint64_t request_hash, std::size_t trials,
                           std::size_t chunk_size)
    : path_(std::move(path)), request_hash_(request_hash), trials_(trials),
      chunk_size_(chunk_size) {
  if (path_.empty()) throw std::invalid_argument("SweepJournal: empty path");
  if (chunk_size_ == 0) throw std::invalid_argument("SweepJournal: chunk_size must be >= 1");
}

void SweepJournal::save(const std::vector<JournalChunk>& chunks) const {
  std::vector<const JournalChunk*> ordered;
  ordered.reserve(chunks.size());
  for (const JournalChunk& c : chunks) ordered.push_back(&c);
  std::sort(ordered.begin(), ordered.end(),
            [](const JournalChunk* a, const JournalChunk* b) { return a->index < b->index; });

  std::ostringstream content;
  content << kMagic << "\n";
  content << "request " << to_hex_u64(request_hash_) << "\n";
  content << "trials " << trials_ << "\n";
  content << "chunk_size " << chunk_size_ << "\n";
  for (const JournalChunk* c : ordered) encode_chunk(content, *c);
  std::string body = content.str();
  body += "checksum " + to_hex_u64(stable_hash_bytes(body)) + "\n";

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("SweepJournal: cannot open " + tmp + " for writing");
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    if (!out) throw std::runtime_error("SweepJournal: short write to " + tmp);
  }
  // Atomic publish: readers see the old snapshot or the new one, never a
  // torn mix.  (A torn file can still exist after a power loss — that is
  // what the whole-file checksum rejects on load.)
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    throw std::runtime_error("SweepJournal: rename " + tmp + " -> " + path_ + " failed");
  }
}

JournalLoadResult SweepJournal::load() const {
  JournalLoadResult result;
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    result.status = JournalLoadResult::Status::kNoFile;
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string file = buffer.str();

  const auto reject = [&result](std::string reason) {
    result.status = JournalLoadResult::Status::kRejected;
    result.reason = std::move(reason);
    result.chunks.clear();
    return result;
  };

  // Split into lines; require a trailing newline (a truncated final line is
  // torn content).
  if (file.empty() || file.back() != '\n') return reject("journal is truncated (no final newline)");
  std::vector<std::string_view> lines;
  {
    std::size_t start = 0;
    for (std::size_t i = 0; i < file.size(); ++i) {
      if (file[i] == '\n') {
        lines.emplace_back(file.data() + start, i - start);
        start = i + 1;
      }
    }
  }
  if (lines.size() < 5) return reject("journal too short");

  // Checksum covers every byte before the checksum line.
  const std::string_view last = lines.back();
  const auto checksum_tokens = split_tokens(last);
  std::uint64_t stored_checksum = 0;
  if (checksum_tokens.size() != 2 || checksum_tokens[0] != "checksum" ||
      !parse_hex_u64(checksum_tokens[1], stored_checksum)) {
    return reject("missing or malformed checksum line");
  }
  const std::size_t body_len = file.size() - (last.size() + 1);
  if (stable_hash_bytes(std::string_view(file.data(), body_len)) != stored_checksum) {
    return reject("content checksum mismatch (torn or corrupted journal)");
  }

  // Header.
  if (lines[0] != kMagic) return reject("unrecognised journal magic/version");
  {
    const auto tokens = split_tokens(lines[1]);
    std::uint64_t stored_request = 0;
    if (tokens.size() != 2 || tokens[0] != "request" ||
        !parse_hex_u64(tokens[1], stored_request)) {
      return reject("malformed request line");
    }
    if (stored_request != request_hash_) {
      return reject("request hash mismatch: journal belongs to a different sweep (have " +
                    to_hex_u64(stored_request) + ", want " + to_hex_u64(request_hash_) + ")");
    }
  }
  {
    const auto tokens = split_tokens(lines[2]);
    std::size_t stored_trials = 0;
    if (tokens.size() != 2 || tokens[0] != "trials" || !parse_size(tokens[1], stored_trials)) {
      return reject("malformed trials line");
    }
    if (stored_trials != trials_) return reject("trial-count mismatch");
  }
  {
    const auto tokens = split_tokens(lines[3]);
    std::size_t stored_chunk = 0;
    if (tokens.size() != 2 || tokens[0] != "chunk_size" || !parse_size(tokens[1], stored_chunk)) {
      return reject("malformed chunk_size line");
    }
    if (stored_chunk != chunk_size_) return reject("chunk-size mismatch");
  }

  const std::size_t num_chunks = trials_ == 0 ? 0 : (trials_ + chunk_size_ - 1) / chunk_size_;
  std::vector<bool> seen(num_chunks, false);

  // Chunk blocks: lines[4 .. size-2].
  std::size_t i = 4;
  const std::size_t stop = lines.size() - 1;
  while (i < stop) {
    auto tokens = split_tokens(lines[i]);
    if (tokens.size() != 2 || tokens[0] != "chunk") return reject("expected chunk line");
    JournalChunk chunk;
    if (!parse_size(tokens[1], chunk.index)) return reject("malformed chunk index");
    if (chunk.index >= num_chunks) return reject("chunk index out of range");
    if (seen[chunk.index]) return reject("duplicate chunk index");
    ++i;

    const auto stats = stat_fields(chunk.stats);
    for (std::size_t s = 0; s < stats.size(); ++s) {
      if (i >= stop) return reject("truncated chunk block");
      tokens = split_tokens(lines[i]);
      support::RunningStats::State st;
      if (tokens.size() != 7 || tokens[0] != "stat" || tokens[1] != kStatNames[s] ||
          !parse_size(tokens[2], st.count) || !parse_hex_double(tokens[3], st.mean) ||
          !parse_hex_double(tokens[4], st.m2) || !parse_hex_double(tokens[5], st.min) ||
          !parse_hex_double(tokens[6], st.max)) {
        return reject("malformed stat line");
      }
      *stats[s] = support::RunningStats::from_state(st);
      ++i;
    }

    if (i >= stop) return reject("truncated chunk block");
    tokens = split_tokens(lines[i]);
    TrialStats& s = chunk.stats;
    if (tokens.size() != 11 || tokens[0] != "counts" || !parse_size(tokens[1], s.trials) ||
        !parse_size(tokens[2], s.terminated) || !parse_size(tokens[3], s.valid) ||
        !parse_size(tokens[4], s.independence_violations) ||
        !parse_size(tokens[5], s.uncovered_nodes) || !parse_size(tokens[6], s.disruptions) ||
        !parse_size(tokens[7], s.unrecovered_disruptions) ||
        !parse_size(tokens[8], s.attempted) || !parse_size(tokens[9], s.quarantined) ||
        !parse_size(tokens[10], s.retries)) {
      return reject("malformed counts line");
    }
    ++i;

    if (i >= stop) return reject("truncated chunk block");
    tokens = split_tokens(lines[i]);
    std::size_t recovery_count = 0;
    if (tokens.size() < 2 || tokens[0] != "recovery" || !parse_size(tokens[1], recovery_count) ||
        tokens.size() != recovery_count + 2) {
      return reject("malformed recovery line");
    }
    s.recovery_rounds.reserve(recovery_count);
    for (std::size_t r = 0; r < recovery_count; ++r) {
      double value = 0;
      if (!parse_hex_double(tokens[r + 2], value)) return reject("malformed recovery sample");
      s.recovery_rounds.push_back(value);
    }
    ++i;

    while (i < stop) {
      tokens = split_tokens(lines[i]);
      if (tokens.empty()) return reject("blank line inside chunk block");
      if (tokens[0] != "failed") break;
      FailedTrial f;
      std::size_t attempts = 0;
      if (tokens.size() != 5 || !parse_size(tokens[1], f.trial) ||
          !parse_hex_u64(tokens[2], f.base_seed) || !parse_size(tokens[3], attempts) ||
          attempts > UINT32_MAX || !unescape_text(tokens[4], f.error)) {
        return reject("malformed failed-trial line");
      }
      f.attempts = static_cast<unsigned>(attempts);
      s.failed_trials.push_back(std::move(f));
      ++i;
    }

    if (i >= stop) return reject("truncated chunk block");
    tokens = split_tokens(lines[i]);
    std::size_t end_index = 0;
    if (tokens.size() != 2 || tokens[0] != "end" || !parse_size(tokens[1], end_index) ||
        end_index != chunk.index) {
      return reject("malformed chunk end line");
    }
    ++i;

    seen[chunk.index] = true;
    result.chunks.push_back(std::move(chunk));
  }

  std::sort(result.chunks.begin(), result.chunks.end(),
            [](const JournalChunk& a, const JournalChunk& b) { return a.index < b.index; });
  result.status = JournalLoadResult::Status::kValid;
  return result;
}

}  // namespace beepmis::harness

#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exp/journal.hpp"
#include "mis/verifier.hpp"
#include "sim/batch.hpp"
#include "sim/sharded.hpp"
#include "sim/sharded_batch.hpp"
#include "support/hash.hpp"
#include "support/parallel.hpp"

namespace beepmis::harness {

void TrialStats::merge(const TrialStats& other) {
  rounds.merge(other.rounds);
  beeps_per_node.merge(other.beeps_per_node);
  max_beeps_any_node.merge(other.max_beeps_any_node);
  mis_size.merge(other.mis_size);
  message_bits.merge(other.message_bits);
  trials += other.trials;
  terminated += other.terminated;
  valid += other.valid;
  independence_violations += other.independence_violations;
  uncovered_nodes += other.uncovered_nodes;
  recovery_rounds.insert(recovery_rounds.end(), other.recovery_rounds.begin(),
                         other.recovery_rounds.end());
  disruptions += other.disruptions;
  unrecovered_disruptions += other.unrecovered_disruptions;
  if (scalar_fallback_reason.empty()) scalar_fallback_reason = other.scalar_fallback_reason;
  requested_trials += other.requested_trials;
  attempted += other.attempted;
  quarantined += other.quarantined;
  retries += other.retries;
  failed_trials.insert(failed_trials.end(), other.failed_trials.begin(),
                       other.failed_trials.end());
  truncated = truncated || other.truncated;
  resumed_trials += other.resumed_trials;
  if (resume_discarded_reason.empty()) resume_discarded_reason = other.resume_discarded_reason;
}

TrialStats::RecoveryQuantiles TrialStats::recovery_quantiles() const {
  RecoveryQuantiles q;
  if (recovery_rounds.empty()) return q;
  std::vector<double> sorted = recovery_rounds;
  std::sort(sorted.begin(), sorted.end());
  q.p50 = support::quantile_sorted(sorted, 0.50);
  q.p95 = support::quantile_sorted(sorted, 0.95);
  q.p99 = support::quantile_sorted(sorted, 0.99);
  return q;
}

TrialStats::Interval TrialStats::ci95(const support::RunningStats& s) {
  const double half = 1.96 * s.stderr_mean();
  return {s.mean() - half, s.mean() + half};
}

namespace {

/// Raw metrics of one trial; collected into trial-indexed slots so the
/// final aggregation order (and hence floating-point result) is identical
/// for every thread count.
struct TrialRecord {
  enum class Status { kCompleted, kQuarantined };

  double rounds = 0;
  double beeps_per_node = 0;
  double max_beeps = 0;
  double mis_size = 0;
  double message_bits = 0;
  bool terminated = false;
  bool valid = false;
  std::size_t independence_violations = 0;
  std::size_t uncovered_nodes = 0;
  std::vector<std::uint32_t> recovery_rounds;
  std::size_t unrecovered_disruptions = 0;
  // Fault-isolation bookkeeping (TrialConfig::isolate_trial_faults).
  Status status = Status::kCompleted;
  unsigned attempts = 1;
  std::string error;  ///< final attempt's exception text when quarantined
};

/// Metric extraction + MIS verification for one finished trial; shared by
/// the scalar and batched paths so their records are field-identical.
void fill_record(TrialRecord& rec, const graph::Graph& g, const sim::RunResult& result) {
  rec.rounds = static_cast<double>(result.rounds);
  rec.beeps_per_node = result.mean_beeps_per_node();
  std::uint32_t max_beeps = 0;
  for (const std::uint32_t b : result.beep_counts) max_beeps = std::max(max_beeps, b);
  rec.max_beeps = static_cast<double>(max_beeps);
  rec.message_bits = static_cast<double>(result.message_bits);
  rec.terminated = result.terminated;

  const mis::VerificationReport report = mis::verify_mis_run(g, result);
  rec.mis_size = static_cast<double>(report.mis_size);
  rec.valid = report.valid();
  rec.independence_violations = report.independence_violations;
  rec.uncovered_nodes = report.uncovered_nodes;
  rec.recovery_rounds = result.recovery_rounds;
  rec.unrecovered_disruptions = result.unrecovered_disruptions;
}

// run_workers — the shared worker-pool + exception-capture helper — lives
// in support/parallel.hpp so the sharded simulator's per-run worker pool
// funnels through the same policy.
using support::run_workers;

/// Per-worker cooperative trial-timeout handle: the worker re-arms it
/// before every attempt; the worker's simulator checks it at round
/// boundaries (SimConfig::deadline_ns).  nullptr when no timeout is set.
using DeadlinePtr = std::shared_ptr<std::atomic<std::int64_t>>;

DeadlinePtr make_trial_deadline(const TrialConfig& config) {
  if (config.trial_timeout_seconds <= 0.0) return nullptr;
  return std::make_shared<std::atomic<std::int64_t>>(INT64_MAX);
}

void arm_deadline(const DeadlinePtr& deadline, double timeout_seconds) {
  if (deadline == nullptr) return;
  deadline->store(sim::steady_now_ns() + static_cast<std::int64_t>(timeout_seconds * 1e9),
                  std::memory_order_relaxed);
}

/// Chunk-local aggregation of records[first, last) in ascending trial
/// order.  The sweep-wide result is the in-index-order merge of these
/// chunk aggregates — on *every* execution path, journaled or not — which
/// is what makes interrupted-and-resumed sweeps bit-identical to one-shot
/// runs: a chunk's aggregate depends only on its own trials, and the merge
/// order is fixed.  A sweep that fits in one chunk degenerates to exactly
/// the historical single-pass aggregation (merging into an empty
/// accumulator is a copy).
TrialStats aggregate_chunk(const std::vector<TrialRecord>& records, std::size_t first,
                           std::size_t last, std::uint64_t base_seed) {
  TrialStats total;
  for (std::size_t t = first; t < last; ++t) {
    const TrialRecord& rec = records[t];
    ++total.attempted;
    total.retries += rec.attempts > 0 ? rec.attempts - 1 : 0;
    if (rec.status == TrialRecord::Status::kQuarantined) {
      ++total.quarantined;
      total.failed_trials.push_back({t, base_seed, rec.attempts, rec.error});
      continue;
    }
    total.rounds.push(rec.rounds);
    total.beeps_per_node.push(rec.beeps_per_node);
    total.max_beeps_any_node.push(rec.max_beeps);
    total.mis_size.push(rec.mis_size);
    total.message_bits.push(rec.message_bits);
    ++total.trials;
    if (rec.terminated) ++total.terminated;
    if (rec.valid) ++total.valid;
    total.independence_violations += rec.independence_violations;
    total.uncovered_nodes += rec.uncovered_nodes;
    for (const std::uint32_t r : rec.recovery_rounds) {
      total.recovery_rounds.push_back(static_cast<double>(r));
    }
    total.disruptions += rec.recovery_rounds.size() + rec.unrecovered_disruptions;
    total.unrecovered_disruptions += rec.unrecovered_disruptions;
  }
  return total;
}

/// Shared mutable state of one sweep invocation: the chunk ledger, the
/// journal, and the stop signals.  Created by run_beep_trials /
/// run_local_trials and threaded through every execution path.
struct SweepState {
  const TrialConfig* config = nullptr;
  std::size_t chunk_size = 0;
  std::size_t num_chunks = 0;
  /// Trial-indexed records of the current invocation (slots of resumed
  /// chunks stay untouched).
  std::vector<TrialRecord> records;
  /// Completed-chunk aggregates, indexed by chunk; null = not done.
  /// Written/read under checkpoint_mutex during the run; read freely after
  /// the worker join.
  std::vector<std::unique_ptr<TrialStats>> chunk_stats;
  /// Per-chunk count of work units (trials, or batches on the batched
  /// path) still outstanding; the worker that takes it to zero aggregates
  /// and checkpoints the chunk.
  std::unique_ptr<std::atomic<std::size_t>[]> remaining;
  std::unique_ptr<SweepJournal> journal;
  std::mutex checkpoint_mutex;
  std::size_t checkpoints = 0;           ///< chunks completed this invocation
  std::int64_t budget_deadline_ns = 0;   ///< 0 = no budget
  std::atomic<bool> stopped{false};      ///< budget/stop_request observed
  std::size_t resumed_trials = 0;
  std::string resume_discarded_reason;

  [[nodiscard]] std::size_t chunk_first(std::size_t chunk) const noexcept {
    return chunk * chunk_size;
  }
  [[nodiscard]] std::size_t chunk_last(std::size_t chunk) const noexcept {
    return std::min(chunk_first(chunk) + chunk_size, config->trials);
  }

  /// Checked at trial/batch claim boundaries: in-flight work always
  /// finishes, so a stop truncates the sweep at clean boundaries only.
  [[nodiscard]] bool should_stop() noexcept {
    if (stopped.load(std::memory_order_relaxed)) return true;
    const bool expired =
        (budget_deadline_ns != 0 && sim::steady_now_ns() > budget_deadline_ns) ||
        (config->stop_request != nullptr &&
         config->stop_request->load(std::memory_order_relaxed));
    if (expired) stopped.store(true, std::memory_order_relaxed);
    return expired;
  }
};

/// Aggregates a freshly completed chunk, snapshots the journal, and fires
/// the on_checkpoint hook.  Called by exactly one worker per chunk (the one
/// whose claim took SweepState::remaining[chunk] to zero).
void finish_chunk(SweepState& sweep, std::size_t chunk) {
  auto stats = std::make_unique<TrialStats>(aggregate_chunk(
      sweep.records, sweep.chunk_first(chunk), sweep.chunk_last(chunk),
      sweep.config->base_seed));
  const std::lock_guard<std::mutex> lock(sweep.checkpoint_mutex);
  sweep.chunk_stats[chunk] = std::move(stats);
  if (sweep.journal != nullptr) {
    std::vector<JournalChunk> done;
    for (std::size_t i = 0; i < sweep.num_chunks; ++i) {
      if (sweep.chunk_stats[i] != nullptr) done.push_back({i, *sweep.chunk_stats[i]});
    }
    sweep.journal->save(done);
  }
  ++sweep.checkpoints;
  if (sweep.config->on_checkpoint) sweep.config->on_checkpoint(sweep.checkpoints);
}

/// Final assembly: completed chunks merged in ascending index order.
TrialStats assemble(SweepState& sweep) {
  TrialStats total;
  std::size_t done = 0;
  for (std::size_t chunk = 0; chunk < sweep.num_chunks; ++chunk) {
    if (sweep.chunk_stats[chunk] == nullptr) continue;
    total.merge(*sweep.chunk_stats[chunk]);
    ++done;
  }
  total.requested_trials = sweep.config->trials;
  total.truncated = done < sweep.num_chunks;
  total.resumed_trials = sweep.resumed_trials;
  total.resume_discarded_reason = sweep.resume_discarded_reason;
  return total;
}

/// The journal's request key: every knob of the sweep the harness can see
/// that affects the numeric result, plus the caller's fingerprint for
/// everything it cannot (graph family, protocol, scenario parameters).
/// Thread count is deliberately excluded — results are thread-count
/// independent, so a sweep may be resumed with different parallelism.
std::uint64_t compute_request_hash(const TrialConfig& c, bool local, std::size_t chunk_size,
                                   unsigned sharded_batch_k) {
  support::StableHash h;
  h.update(local ? "beepmis-local-sweep-v1" : "beepmis-beep-sweep-v1");
  h.update_u64(c.request_fingerprint);
  h.update_u64(c.trials);
  h.update_u64(c.base_seed);
  // Execution-path knobs (allow_batched, allow_sharded, shards) are
  // excluded like the thread count: every path draws in scalar order and
  // is bit-identical, so a journal written by a scalar run may be finished
  // by a batched or sharded one.  The one path choice that *does* change
  // the numbers is the statistical-lanes entropy policy, which engages
  // exactly when the batched path's preconditions hold — hash that
  // effective bit, not the raw knobs.
  const bool statistical = c.rng_mode == sim::BatchRngMode::kStatisticalLanes &&
                           c.allow_batched && c.shared_graph && !c.sim.record_trace &&
                           c.shards <= 1;
  h.update_u64(statistical ? 1 : 0);
  // The sharded-batched path partitions the statistical streams per
  // (shard, lane), so its sample depends on the effective shard count —
  // hash it (0 = path disengaged).  Auto-selected counts follow the
  // thread count, so a sharded-batched journal resumed on a different
  // core count is rejected whole and the sweep restarts: correct, just
  // not incremental.  Pin TrialConfig::shards explicitly to keep resumes
  // incremental across machines.
  h.update_u64(sharded_batch_k);
  h.update_u64(c.shared_graph ? 1 : 0);
  h.update_u64(chunk_size);
  h.update_u64(c.sim.max_rounds);
  h.update_double(c.sim.beep_loss_probability);
  h.update_u64(c.sim.record_trace ? 1 : 0);
  h.update_u64(c.sim.mis_keepalive ? 1 : 0);
  h.update_u64(c.sim.run_until_round);
  h.update_u64(c.sim.track_recovery ? 1 : 0);
  h.update_u64(c.sim.wake_round.size());
  for (const std::uint32_t w : c.sim.wake_round) h.update_u64(w);
  h.update_u64(c.sim.crash_round.size());
  for (const std::uint32_t r : c.sim.crash_round) h.update_u64(r);
  h.update_u64(c.scenario ? 1 : 0);
  h.update_u64(c.local_sim.max_rounds);
  return h.digest();
}

void validate_sweep_config(const TrialConfig& config, const char* who) {
  const auto bad = [&](const std::string& what) {
    throw std::invalid_argument(std::string(who) + ": " + what);
  };
  if (!(config.budget_seconds >= 0.0)) bad("budget_seconds must be >= 0 (and not NaN)");
  if (!(config.trial_timeout_seconds >= 0.0)) {
    bad("trial_timeout_seconds must be >= 0 (and not NaN)");
  }
  if (config.checkpoint_interval == 0) bad("checkpoint_interval must be >= 1");
  if (config.resume && config.journal_path.empty()) {
    bad("resume requires journal_path (nothing to resume from)");
  }
}

/// Rounds the checkpoint interval up to a multiple of the batched
/// simulator's lane count so chunk boundaries coincide with batch
/// boundaries: the statistical-lanes mode keys each 64-trial batch's RNG
/// stream by its first trial index, so chunks must contain whole batches
/// for resumed runs to replay the exact same batches.
std::size_t effective_chunk_size(const TrialConfig& config) {
  return effective_checkpoint_interval(config.checkpoint_interval);
}

void init_sweep(SweepState& sweep, const TrialConfig& config, bool local,
                unsigned sharded_batch_k = 0) {
  sweep.config = &config;
  sweep.chunk_size = effective_chunk_size(config);
  sweep.num_chunks =
      config.trials == 0 ? 0 : (config.trials + sweep.chunk_size - 1) / sweep.chunk_size;
  sweep.records.resize(config.trials);
  sweep.chunk_stats.resize(sweep.num_chunks);
  sweep.remaining = std::make_unique<std::atomic<std::size_t>[]>(sweep.num_chunks);
  for (std::size_t i = 0; i < sweep.num_chunks; ++i) {
    sweep.remaining[i].store(0, std::memory_order_relaxed);
  }
  if (!config.journal_path.empty()) {
    const std::uint64_t request =
        compute_request_hash(config, local, sweep.chunk_size, sharded_batch_k);
    sweep.journal = std::make_unique<SweepJournal>(config.journal_path, request, config.trials,
                                                   sweep.chunk_size);
    if (config.resume) {
      JournalLoadResult loaded = sweep.journal->load();
      switch (loaded.status) {
        case JournalLoadResult::Status::kNoFile:
          break;
        case JournalLoadResult::Status::kValid:
          for (JournalChunk& chunk : loaded.chunks) {
            sweep.resumed_trials +=
                sweep.chunk_last(chunk.index) - sweep.chunk_first(chunk.index);
            sweep.chunk_stats[chunk.index] =
                std::make_unique<TrialStats>(std::move(chunk.stats));
          }
          break;
        case JournalLoadResult::Status::kRejected:
          // Reject whole, restart from scratch; the final stats still
          // converge to the uninterrupted run's because every chunk is
          // recomputed from its seeds.
          sweep.resume_discarded_reason = std::move(loaded.reason);
          break;
      }
    }
  }
  if (config.budget_seconds > 0.0) {
    sweep.budget_deadline_ns =
        sim::steady_now_ns() + static_cast<std::int64_t>(config.budget_seconds * 1e9);
  }
}

/// Runs `attempt` under the sweep's fault-isolation policy: without
/// isolate_trial_faults the first exception propagates (fail-fast, the
/// historical behaviour); with it, failed attempts are retried with
/// bounded exponential backoff and the outcome reports quarantine.
struct AttemptOutcome {
  bool completed = true;
  unsigned attempts = 1;
  std::string error;
};

template <typename Attempt>
AttemptOutcome run_with_isolation(const TrialConfig& config, const DeadlinePtr& deadline,
                                  Attempt&& attempt) {
  const unsigned attempts_allowed =
      config.isolate_trial_faults ? 1 + config.max_retries : 1;
  unsigned backoff_ms = std::min(config.retry_backoff_ms, config.max_retry_backoff_ms);
  for (unsigned attempt_no = 1;; ++attempt_no) {
    try {
      arm_deadline(deadline, config.trial_timeout_seconds);
      attempt();
      return {true, attempt_no, {}};
    } catch (...) {
      if (!config.isolate_trial_faults) throw;
      if (attempt_no >= attempts_allowed) {
        return {false, attempt_no,
                support::detail::exception_message(std::current_exception())};
      }
      if (backoff_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      }
      backoff_ms = std::min(backoff_ms == 0 ? 1u : backoff_ms * 2, config.max_retry_backoff_ms);
    }
  }
}

void quarantine_record(TrialRecord& rec, const AttemptOutcome& outcome) {
  rec = TrialRecord{};  // drop any partial metrics from the failed attempt
  rec.status = TrialRecord::Status::kQuarantined;
  rec.attempts = outcome.attempts;
  rec.error = outcome.error;
}

/// Shared trial-loop machinery.  `make_runner(deadline)` is invoked once
/// per worker thread and returns a `run_one(graph, run_rng) -> RunResult`
/// callable that owns that worker's simulator (and protocol) instance;
/// reusing it across trials amortises all per-node scratch allocations.
/// Results are unaffected: a run is a pure function of (graph, protocol,
/// seed).  Workers claim individual trials (trial-granular load balance)
/// but aggregate per chunk: the worker that completes a chunk's last
/// pending trial checkpoints it.
template <typename MakeRunner>
void run_trials_chunked(const GraphFactory& graphs, const TrialConfig& config,
                        SweepState& sweep, MakeRunner&& make_runner) {
  const support::SeedSequence root(config.base_seed);

  // When the graph is shared, build it once up front from trial 0's seed.
  graph::Graph shared;
  if (config.shared_graph) {
    auto rng = root.child(0).child(0).generator();
    shared = graphs(rng);
  }

  // Pending trials: every trial of every not-yet-completed chunk (resumed
  // chunks are skipped whole).
  std::vector<std::size_t> pending;
  pending.reserve(config.trials);
  for (std::size_t chunk = 0; chunk < sweep.num_chunks; ++chunk) {
    if (sweep.chunk_stats[chunk] != nullptr) continue;
    const std::size_t first = sweep.chunk_first(chunk);
    const std::size_t last = sweep.chunk_last(chunk);
    sweep.remaining[chunk].store(last - first, std::memory_order_relaxed);
    for (std::size_t t = first; t < last; ++t) pending.push_back(t);
  }
  std::atomic<std::size_t> next{0};

  auto worker = [&] {
    const DeadlinePtr deadline = make_trial_deadline(config);
    auto run_one = make_runner(deadline);
    for (;;) {
      if (sweep.should_stop()) break;
      const std::size_t i = next.fetch_add(1);
      if (i >= pending.size()) break;
      const std::size_t trial = pending[i];

      const support::SeedSequence trial_seed = root.child(trial);
      TrialRecord& rec = sweep.records[trial];
      graph::Graph own;
      const AttemptOutcome outcome = run_with_isolation(config, deadline, [&] {
        const graph::Graph* g = &shared;
        if (!config.shared_graph) {
          auto graph_rng = trial_seed.child(0).generator();
          own = graphs(graph_rng);
          g = &own;
        }
        const sim::RunResult result = run_one(*g, trial_seed.child(1).generator());
        fill_record(rec, *g, result);
      });
      if (outcome.completed) {
        rec.status = TrialRecord::Status::kCompleted;
        rec.attempts = outcome.attempts;
      } else {
        quarantine_record(rec, outcome);
      }

      const std::size_t chunk = trial / sweep.chunk_size;
      if (sweep.remaining[chunk].fetch_sub(1) == 1) finish_chunk(sweep, chunk);
    }
  };
  run_workers(config.threads, pending.size(), worker);
}

/// Batched fast path: 64 trials share one structure-of-arrays sweep of the
/// shared graph (see src/sim/batch.hpp).  Per-trial seeds, records and the
/// chunked aggregation are identical to the scalar path, and in
/// kScalarOrder each lane is bit-identical to its scalar run, so
/// TrialStats match exactly.  Chunks contain whole batches
/// (effective_chunk_size), so fault isolation and resume operate at batch
/// granularity here: a batch that exhausts its retries quarantines all of
/// its trials.
void run_beep_trials_batched(const graph::Graph& shared, const BeepProtocolFactory& protocols,
                             const TrialConfig& config, SweepState& sweep) {
  const support::SeedSequence root(config.base_seed);

  struct Batch {
    std::size_t first = 0, last = 0;
  };
  std::vector<Batch> pending;
  for (std::size_t chunk = 0; chunk < sweep.num_chunks; ++chunk) {
    if (sweep.chunk_stats[chunk] != nullptr) continue;
    const std::size_t first = sweep.chunk_first(chunk);
    const std::size_t last = sweep.chunk_last(chunk);
    std::size_t batches_in_chunk = 0;
    for (std::size_t b = first; b < last; b += sim::kMaxBatchLanes) {
      pending.push_back({b, std::min(b + sim::kMaxBatchLanes, last)});
      ++batches_in_chunk;
    }
    sweep.remaining[chunk].store(batches_in_chunk, std::memory_order_relaxed);
  }
  std::atomic<std::size_t> next{0};

  auto worker = [&] {
    // One batch simulator and one batched kernel per worker, reused across
    // batches (scratch planes and policy arrays are recycled).
    const DeadlinePtr deadline = make_trial_deadline(config);
    sim::SimConfig sim_config = config.sim;
    sim_config.deadline_ns = deadline;
    sim::BatchSimulator simulator(sim_config, config.rng_mode);
    const std::unique_ptr<sim::BatchProtocol> protocol =
        protocols()->make_batch_protocol(config.rng_mode);
    if (!protocol) {
      // The dispatch probe saw a kernel but this worker's instance refuses
      // one: the factory returns protocols of varying dynamic type.
      throw std::logic_error(
          "run_beep_trials: protocol factory is inconsistent about make_batch_protocol");
    }
    for (;;) {
      if (sweep.should_stop()) break;
      const std::size_t i = next.fetch_add(1);
      if (i >= pending.size()) break;
      const std::size_t first = pending[i].first;
      const std::size_t last = pending[i].last;

      const AttemptOutcome outcome = run_with_isolation(config, deadline, [&] {
        std::vector<sim::RunResult> results;
        if (config.rng_mode == sim::BatchRngMode::kStatisticalLanes) {
          // One base stream per batch, keyed by the batch's first trial
          // index: lane streams are jump()-partitioned inside the
          // simulator, so records stay deterministic for any thread count
          // (per (base_seed, trials, mode), not per trial seed).
          results = simulator.run(shared, *protocol, root.child(first).child(1).generator(),
                                  static_cast<unsigned>(last - first));
        } else {
          std::vector<support::Xoshiro256StarStar> rngs;
          rngs.reserve(last - first);
          for (std::size_t trial = first; trial < last; ++trial) {
            rngs.push_back(root.child(trial).child(1).generator());
          }
          results = simulator.run(shared, *protocol, std::move(rngs));
        }
        for (std::size_t trial = first; trial < last; ++trial) {
          fill_record(sweep.records[trial], shared, results[trial - first]);
        }
      });
      for (std::size_t trial = first; trial < last; ++trial) {
        TrialRecord& rec = sweep.records[trial];
        if (outcome.completed) {
          rec.status = TrialRecord::Status::kCompleted;
          rec.attempts = outcome.attempts;
        } else {
          quarantine_record(rec, outcome);
        }
      }

      const std::size_t chunk = first / sweep.chunk_size;
      if (sweep.remaining[chunk].fetch_sub(1) == 1) finish_chunk(sweep, chunk);
    }
  };
  run_workers(config.threads, pending.size(), worker);
}

/// Sharded-batched fast path (sim/sharded_batch.hpp): every 64-trial batch
/// of a statistical-lanes sweep runs as 64 lane planes swept by `shards`
/// worker threads at once.  Batch seeds, records and the chunked
/// aggregation match the batched statistical path exactly (one base stream
/// per batch, keyed by its first trial index), so at shard count 1 the
/// numbers would coincide with run_beep_trials_batched — but the harness
/// only routes here with shards >= 2, where the per-(shard, lane) stream
/// partition yields a different (equally distributed) sample.  The outer
/// batch loop is single-worker because each run already fans out across
/// `shards` threads.
void run_beep_trials_sharded_batched(const graph::Graph& shared,
                                     const BeepProtocolFactory& protocols,
                                     const TrialConfig& config, SweepState& sweep,
                                     unsigned shards) {
  const support::SeedSequence root(config.base_seed);

  struct Batch {
    std::size_t first = 0, last = 0;
  };
  std::vector<Batch> pending;
  for (std::size_t chunk = 0; chunk < sweep.num_chunks; ++chunk) {
    if (sweep.chunk_stats[chunk] != nullptr) continue;
    const std::size_t first = sweep.chunk_first(chunk);
    const std::size_t last = sweep.chunk_last(chunk);
    std::size_t batches_in_chunk = 0;
    for (std::size_t b = first; b < last; b += sim::kMaxBatchLanes) {
      pending.push_back({b, std::min(b + sim::kMaxBatchLanes, last)});
      ++batches_in_chunk;
    }
    sweep.remaining[chunk].store(batches_in_chunk, std::memory_order_relaxed);
  }

  const DeadlinePtr deadline = make_trial_deadline(config);
  sim::SimConfig sim_config = config.sim;
  sim_config.deadline_ns = deadline;
  sim::ShardedBatchSimulator simulator(shared, shards, std::move(sim_config), config.rng_mode);
  const std::unique_ptr<sim::BatchProtocol> protocol =
      protocols()->make_batch_protocol(config.rng_mode);
  if (!protocol) {
    throw std::logic_error(
        "run_beep_trials: protocol factory is inconsistent about make_batch_protocol");
  }
  for (const Batch& batch : pending) {
    if (sweep.should_stop()) break;
    const AttemptOutcome outcome = run_with_isolation(config, deadline, [&] {
      const std::vector<sim::RunResult> results =
          simulator.run(*protocol, root.child(batch.first).child(1).generator(),
                        static_cast<unsigned>(batch.last - batch.first));
      for (std::size_t trial = batch.first; trial < batch.last; ++trial) {
        fill_record(sweep.records[trial], shared, results[trial - batch.first]);
      }
    });
    for (std::size_t trial = batch.first; trial < batch.last; ++trial) {
      TrialRecord& rec = sweep.records[trial];
      if (outcome.completed) {
        rec.status = TrialRecord::Status::kCompleted;
        rec.attempts = outcome.attempts;
      } else {
        quarantine_record(rec, outcome);
      }
    }
    const std::size_t chunk = batch.first / sweep.chunk_size;
    if (sweep.remaining[chunk].fetch_sub(1) == 1) finish_chunk(sweep, chunk);
  }
}

/// Decides whether the sweep routes to the sharded-batched path and
/// returns its shard count (0 = disengaged).  Engages only for
/// statistical-lanes sweeps whose batch size amortises the per-exchange
/// barriers: a shared graph, a shard-supporting protocol with a batched
/// kernel, more than one batch of trials, and either an explicit
/// TrialConfig::shards >= 2 or — in auto mode — at least two threads and
/// a graph of auto_shard_min_nodes or more.  The auto branch needs the
/// graph's node count, so it materialises the shared graph once and
/// repoints `graphs` at the prebuilt copy (the same idiom the scenario
/// materialisation uses); every downstream path builds trial 0's graph
/// from the identical seed, so the substitution is invisible.
unsigned resolve_sharded_batch_shards(const GraphFactory*& graphs, GraphFactory& prebuilt,
                                      const BeepProtocolFactory& protocols,
                                      const TrialConfig& c) {
  if (c.rng_mode != sim::BatchRngMode::kStatisticalLanes) return 0;
  if (!c.allow_batched || !c.allow_sharded || !c.shared_graph) return 0;
  if (c.sim.record_trace) return 0;
  if (c.trials <= sim::kMaxBatchLanes) return 0;
  if (c.shards == 1) return 0;
  const unsigned threads = c.threads != 0
                               ? c.threads
                               : std::max(1u, std::thread::hardware_concurrency());
  if (c.shards == 0 && threads < 2) return 0;
  const std::unique_ptr<sim::BeepProtocol> probe = protocols();
  if (!probe->shard_support().supported) return 0;
  if (probe->make_batch_protocol(c.rng_mode) == nullptr) return 0;
  // Explicit shard counts are requests: values beyond the simulator's
  // ceiling throw at construction, exactly like the scalar-order sharded
  // path.
  if (c.shards >= 2) return c.shards;
  auto rng = support::SeedSequence(c.base_seed).child(0).child(0).generator();
  auto shared = std::make_shared<graph::Graph>((*graphs)(rng));
  const std::size_t nodes = shared->node_count();
  prebuilt = [shared = std::move(shared)](support::Xoshiro256StarStar&) { return *shared; };
  graphs = &prebuilt;
  if (nodes < c.auto_shard_min_nodes) return 0;
  return std::min(threads, sim::ShardedBatchSimulator::kMaxShards);
}

/// Sharded execution paths (see TrialConfig::shards).  Returns true when a
/// sharded path ran (filling the sweep state); false = use the
/// scalar/batched paths.  Both sharded paths draw in scalar order, so
/// TrialStats are bit-identical to the other execution paths.  The sharded
/// simulator ignores SimConfig::deadline_ns (its lanes rendezvous on
/// barriers), so trial timeouts are not enforced on sharded runs — budget
/// expiry still truncates at trial boundaries.
bool run_beep_trials_sharded(const GraphFactory& graphs, const BeepProtocolFactory& protocols,
                             const TrialConfig& config, SweepState& sweep) {
  if (!config.allow_sharded || config.sim.record_trace || config.trials == 0 ||
      config.shards == 1) {
    return false;
  }
  if (!protocols()->shard_support().supported) return false;

  if (config.shards >= 2) {
    // Explicit shard count: every trial runs sharded; the outer trial loop
    // is single-worker because each run already uses `shards` threads.
    TrialConfig outer = config;
    outer.threads = 1;
    run_trials_chunked(graphs, outer, sweep, [&](const DeadlinePtr&) {
      return [simulator = sim::ShardedSimulator(config.shards, config.sim),
              protocol = protocols()](const graph::Graph& g,
                                      support::Xoshiro256StarStar rng) mutable {
        return simulator.run(g, *protocol, rng);
      };
    });
    return true;
  }

  // Auto mode: only a lone large run benefits — with several trials the
  // trial-level parallelism already saturates the machine.
  const unsigned threads = config.threads != 0
                               ? config.threads
                               : std::max(1u, std::thread::hardware_concurrency());
  if (config.trials != 1 || threads < 2) return false;

  if (sweep.chunk_stats[0] != nullptr) return true;  // resumed: nothing to run
  if (sweep.should_stop()) return true;              // budget spent before starting

  const support::SeedSequence trial_seed = support::SeedSequence(config.base_seed).child(0);
  // Shared or not, trial 0's graph comes from root.child(0).child(0) —
  // the same seed path either way.
  auto graph_rng = trial_seed.child(0).generator();
  const graph::Graph g = graphs(graph_rng);

  const std::unique_ptr<sim::BeepProtocol> protocol = protocols();
  const DeadlinePtr deadline = make_trial_deadline(config);
  TrialRecord& rec = sweep.records[0];
  const AttemptOutcome outcome = run_with_isolation(config, deadline, [&] {
    sim::RunResult result;
    if (g.node_count() >= config.auto_shard_min_nodes) {
      // Auto mode must never reject a config that worked before sharding
      // existed, so clamp to the simulator's shard ceiling (explicit
      // TrialConfig::shards beyond it still throws — that is a request).
      const unsigned k = std::min(threads, sim::ShardedSimulator::kMaxShards);
      sim::ShardedSimulator simulator(g, k, config.sim);
      result = simulator.run(*protocol, trial_seed.child(1).generator());
    } else {
      // Too small for the per-exchange barriers to pay off — but the graph
      // is already built, so run the lone trial scalar here rather than
      // rebuilding it from the same seed in the generic trial loop.
      sim::SimConfig sim_config = config.sim;
      sim_config.deadline_ns = deadline;
      sim::BeepSimulator simulator(g, sim_config);
      result = simulator.run(*protocol, trial_seed.child(1).generator());
    }
    fill_record(rec, g, result);
  });
  if (outcome.completed) {
    rec.status = TrialRecord::Status::kCompleted;
    rec.attempts = outcome.attempts;
  } else {
    quarantine_record(rec, outcome);
  }
  finish_chunk(sweep, 0);
  return true;
}

/// The pre-scenario dispatch pipeline: sharded, then batched, then the
/// scalar trial loop.  Callers route scenario configs before this point —
/// only a materialised (or absent) scenario may reach it.
void dispatch_beep_trials(const GraphFactory& graphs, const BeepProtocolFactory& protocols,
                          const TrialConfig& config, SweepState& sweep,
                          unsigned sharded_batch_k) {
  // Sharded-batched path: every core and every lane at once.  Routed
  // before the scalar-order sharded path because statistical mode is an
  // explicit opt-in to a different sample (resolve_sharded_batch_shards
  // gates on it), and its k is already folded into the journal's request
  // hash.
  if (sharded_batch_k > 0) {
    const support::SeedSequence root(config.base_seed);
    auto rng = root.child(0).child(0).generator();
    const graph::Graph shared = graphs(rng);
    run_beep_trials_sharded_batched(shared, protocols, config, sweep, sharded_batch_k);
    return;
  }
  // Sharded path: parallelism *within* one run (TrialConfig::shards).
  // Bit-identical to the scalar path, like the batched path below.
  if (run_beep_trials_sharded(graphs, protocols, config, sweep)) return;
  // Batched fast path: one graph shared by every trial, a protocol with a
  // batched kernel, and no per-run event trace.  In kScalarOrder it is
  // bit-identical to the scalar path (lane-for-lane), so callers never
  // observe the switch; in kStatisticalLanes it is an explicit opt-in
  // trade (TrialConfig::rng_mode).
  if (config.allow_batched && config.shared_graph && config.trials > 0 &&
      !config.sim.record_trace) {
    // Lossy tail-dominated sweeps (loss + keep-alive + a run_until tail):
    // in kScalarOrder every potential keep-alive delivery consumes its own
    // per-lane Bernoulli, nothing amortises, and the batched path *loses*
    // to scalar (0.6-0.9x in BENCH_core.json) — skip it.  In
    // kStatisticalLanes the bulk loss planes flip the trade back, so those
    // workloads prefer the batched path like everything else.
    const bool statistical = config.rng_mode == sim::BatchRngMode::kStatisticalLanes;
    const bool lossy_tail_dominated = config.sim.beep_loss_probability > 0.0 &&
                                      config.sim.mis_keepalive &&
                                      config.sim.run_until_round > 0;
    if ((statistical || !lossy_tail_dominated) &&
        protocols()->make_batch_protocol(config.rng_mode) != nullptr) {
      const support::SeedSequence root(config.base_seed);
      auto rng = root.child(0).child(0).generator();
      const graph::Graph shared = graphs(rng);
      run_beep_trials_batched(shared, protocols, config, sweep);
      return;
    }
  }
  run_trials_chunked(graphs, config, sweep, [&](const DeadlinePtr& deadline) {
    // One simulator and one protocol per worker, reused for every trial the
    // worker claims; the simulator rebinds to each trial's graph.
    sim::SimConfig sim_config = config.sim;
    sim_config.deadline_ns = deadline;
    return [simulator = sim::BeepSimulator(std::move(sim_config)), protocol = protocols()](
               const graph::Graph& g, support::Xoshiro256StarStar rng) mutable {
      return simulator.run(g, *protocol, rng);
    };
  });
}

}  // namespace

std::size_t effective_checkpoint_interval(std::size_t checkpoint_interval) {
  const std::size_t lanes = sim::kMaxBatchLanes;
  const std::size_t requested = std::max<std::size_t>(checkpoint_interval, 1);
  return ((requested + lanes - 1) / lanes) * lanes;
}

std::size_t checkpoint_chunk_count(std::size_t trials, std::size_t checkpoint_interval) {
  const std::size_t chunk = effective_checkpoint_interval(checkpoint_interval);
  return trials == 0 ? 0 : (trials + chunk - 1) / chunk;
}

TrialStats run_beep_trials(const GraphFactory& graphs, const BeepProtocolFactory& protocols,
                           const TrialConfig& config) {
  if (config.sim.scenario != nullptr) {
    throw std::invalid_argument(
        "run_beep_trials: set TrialConfig::scenario (a factory), not "
        "SimConfig::scenario — every worker thread needs its own stateful instance");
  }
  if (config.sim.deadline_ns != nullptr) {
    throw std::invalid_argument(
        "run_beep_trials: set TrialConfig::trial_timeout_seconds, not "
        "SimConfig::deadline_ns — each worker thread arms its own per-attempt deadline");
  }
  validate_sweep_config(config, "run_beep_trials");
  TrialConfig cfg = config;
  const GraphFactory* effective_graphs = &graphs;
  GraphFactory materialized_graphs;  // owns the shared graph when we materialise
  std::string fallback;

  if (cfg.scenario) {
    const std::unique_ptr<sim::FaultScenario> probe = cfg.scenario();
    if (probe == nullptr) {
      throw std::invalid_argument("run_beep_trials: scenario factory returned nullptr");
    }
    const std::string name(probe->name());
    switch (probe->kind()) {
      case sim::ScenarioKind::kStaticSchedule:
        if (cfg.shared_graph && cfg.sim.crash_round.empty()) {
          // The schedule is a pure function of (graph, scenario config),
          // so fold it into the static crash vectors once and keep every
          // fast path — the run is bit-identical to executing the
          // scenario live through the scalar driver.
          const support::SeedSequence root(cfg.base_seed);
          auto rng = root.child(0).child(0).generator();
          auto shared = std::make_shared<graph::Graph>(graphs(rng));
          cfg.sim.crash_round = probe->materialize_crash_rounds(*shared);
          cfg.scenario = nullptr;
          materialized_graphs = [shared](support::Xoshiro256StarStar&) { return *shared; };
          effective_graphs = &materialized_graphs;
        } else {
          fallback = "scenario '" + name +
                     "' runs live on the scalar simulator (materialising needs "
                     "shared_graph and an empty crash_round)";
        }
        break;
      case sim::ScenarioKind::kObliviousStream:
        fallback = "scenario '" + name +
                   "' emits dynamic events (revives/churn): scalar simulator only";
        break;
      case sim::ScenarioKind::kAdaptive:
        fallback = "scenario '" + name +
                   "' is adaptive (observes live run state): batched/sharded fast "
                   "paths refused, scalar simulator only";
        break;
    }
  }
  if (cfg.sim.track_recovery && fallback.empty()) {
    fallback = "recovery tracking is scalar-only: batched/sharded fast paths refused";
  }

  // The sharded-batched routing decision is part of the journal's request
  // key (its shard count changes the statistical sample), so resolve it
  // before the sweep state is initialised.
  GraphFactory prebuilt_graphs;  // owns the auto-probe's shared graph
  unsigned sharded_batch_k = 0;
  if (!cfg.scenario && !cfg.sim.track_recovery) {
    sharded_batch_k =
        resolve_sharded_batch_shards(effective_graphs, prebuilt_graphs, protocols, cfg);
  }

  // The request hash keys the journal to the routed config.  The scenario
  // materialisation above is a pure function of the caller's config, so an
  // interrupted invocation and its resume hash identical knobs (including
  // the materialised crash_round) and agree on the journal's request key.
  SweepState sweep;
  init_sweep(sweep, cfg, /*local=*/false, sharded_batch_k);

  if (!cfg.scenario && !cfg.sim.track_recovery) {
    dispatch_beep_trials(*effective_graphs, protocols, cfg, sweep, sharded_batch_k);
  } else {
    // Forced-scalar path: each worker owns a private scenario instance
    // (fresh from the factory; BeepSimulator::run resets it every trial).
    run_trials_chunked(*effective_graphs, cfg, sweep, [&](const DeadlinePtr& deadline) {
      sim::SimConfig sim_config = cfg.sim;
      sim_config.deadline_ns = deadline;
      if (cfg.scenario) sim_config.scenario = cfg.scenario();
      return [simulator = sim::BeepSimulator(std::move(sim_config)), protocol = protocols()](
                 const graph::Graph& g, support::Xoshiro256StarStar rng) mutable {
        return simulator.run(g, *protocol, rng);
      };
    });
  }
  TrialStats stats = assemble(sweep);
  stats.scalar_fallback_reason = std::move(fallback);
  return stats;
}

TrialStats run_local_trials(const GraphFactory& graphs, const LocalProtocolFactory& protocols,
                            const TrialConfig& config) {
  if (config.scenario || config.sim.scenario != nullptr) {
    throw std::invalid_argument(
        "run_local_trials: fault scenarios are a beeping-model feature");
  }
  validate_sweep_config(config, "run_local_trials");
  SweepState sweep;
  init_sweep(sweep, config, /*local=*/true);
  // The LOCAL-model simulator has no cooperative deadline hook, so
  // trial_timeout_seconds is not enforced here; budget expiry still
  // truncates at trial boundaries.
  run_trials_chunked(graphs, config, sweep, [&](const DeadlinePtr&) {
    return [simulator = sim::LocalSimulator(config.local_sim), protocol = protocols()](
               const graph::Graph& g, support::Xoshiro256StarStar rng) mutable {
      return simulator.run(g, *protocol, rng);
    };
  });
  return assemble(sweep);
}

}  // namespace beepmis::harness

#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "mis/verifier.hpp"
#include "sim/batch.hpp"
#include "sim/sharded.hpp"
#include "support/parallel.hpp"

namespace beepmis::harness {

void TrialStats::merge(const TrialStats& other) {
  rounds.merge(other.rounds);
  beeps_per_node.merge(other.beeps_per_node);
  max_beeps_any_node.merge(other.max_beeps_any_node);
  mis_size.merge(other.mis_size);
  message_bits.merge(other.message_bits);
  trials += other.trials;
  terminated += other.terminated;
  valid += other.valid;
  independence_violations += other.independence_violations;
  uncovered_nodes += other.uncovered_nodes;
  recovery_rounds.insert(recovery_rounds.end(), other.recovery_rounds.begin(),
                         other.recovery_rounds.end());
  disruptions += other.disruptions;
  unrecovered_disruptions += other.unrecovered_disruptions;
  if (scalar_fallback_reason.empty()) scalar_fallback_reason = other.scalar_fallback_reason;
}

TrialStats::RecoveryQuantiles TrialStats::recovery_quantiles() const {
  RecoveryQuantiles q;
  if (recovery_rounds.empty()) return q;
  std::vector<double> sorted = recovery_rounds;
  std::sort(sorted.begin(), sorted.end());
  q.p50 = support::quantile_sorted(sorted, 0.50);
  q.p95 = support::quantile_sorted(sorted, 0.95);
  q.p99 = support::quantile_sorted(sorted, 0.99);
  return q;
}

namespace {

/// Raw metrics of one trial; collected into trial-indexed slots so the
/// final aggregation order (and hence floating-point result) is identical
/// for every thread count.
struct TrialRecord {
  double rounds = 0;
  double beeps_per_node = 0;
  double max_beeps = 0;
  double mis_size = 0;
  double message_bits = 0;
  bool terminated = false;
  bool valid = false;
  std::size_t independence_violations = 0;
  std::size_t uncovered_nodes = 0;
  std::vector<std::uint32_t> recovery_rounds;
  std::size_t unrecovered_disruptions = 0;
};

/// Metric extraction + MIS verification for one finished trial; shared by
/// the scalar and batched paths so their records are field-identical.
void fill_record(TrialRecord& rec, const graph::Graph& g, const sim::RunResult& result) {
  rec.rounds = static_cast<double>(result.rounds);
  rec.beeps_per_node = result.mean_beeps_per_node();
  std::uint32_t max_beeps = 0;
  for (const std::uint32_t b : result.beep_counts) max_beeps = std::max(max_beeps, b);
  rec.max_beeps = static_cast<double>(max_beeps);
  rec.message_bits = static_cast<double>(result.message_bits);
  rec.terminated = result.terminated;

  const mis::VerificationReport report = mis::verify_mis_run(g, result);
  rec.mis_size = static_cast<double>(report.mis_size);
  rec.valid = report.valid();
  rec.independence_violations = report.independence_violations;
  rec.uncovered_nodes = report.uncovered_nodes;
  rec.recovery_rounds = result.recovery_rounds;
  rec.unrecovered_disruptions = result.unrecovered_disruptions;
}

// run_workers — the shared worker-pool + exception-capture helper — now
// lives in support/parallel.hpp so the sharded simulator's per-run worker
// pool funnels through the same policy.
using support::run_workers;

/// Trial-index-ordered aggregation: the floating-point result is identical
/// for any thread count (and for the scalar vs batched execution paths).
TrialStats aggregate_records(const std::vector<TrialRecord>& records) {
  TrialStats total;
  for (const TrialRecord& rec : records) {
    total.rounds.push(rec.rounds);
    total.beeps_per_node.push(rec.beeps_per_node);
    total.max_beeps_any_node.push(rec.max_beeps);
    total.mis_size.push(rec.mis_size);
    total.message_bits.push(rec.message_bits);
    ++total.trials;
    if (rec.terminated) ++total.terminated;
    if (rec.valid) ++total.valid;
    total.independence_violations += rec.independence_violations;
    total.uncovered_nodes += rec.uncovered_nodes;
    for (const std::uint32_t r : rec.recovery_rounds) {
      total.recovery_rounds.push_back(static_cast<double>(r));
    }
    total.disruptions += rec.recovery_rounds.size() + rec.unrecovered_disruptions;
    total.unrecovered_disruptions += rec.unrecovered_disruptions;
  }
  return total;
}

/// Shared trial-loop machinery.  `make_runner()` is invoked once per worker
/// thread and returns a `run_one(graph, run_rng) -> RunResult` callable that
/// owns that worker's simulator (and protocol) instance; reusing it across
/// trials amortises all per-node scratch allocations — the simulator's
/// status/beeped/heard/beep-count buffers are recycled run to run instead of
/// being reallocated per trial.  Results are unaffected: a run is a pure
/// function of (graph, protocol, seed).
template <typename MakeRunner>
TrialStats run_trials_impl(const GraphFactory& graphs, const TrialConfig& config,
                           MakeRunner&& make_runner) {
  const support::SeedSequence root(config.base_seed);

  // When the graph is shared, build it once up front from trial 0's seed.
  graph::Graph shared;
  if (config.shared_graph) {
    auto rng = root.child(0).child(0).generator();
    shared = graphs(rng);
  }

  std::vector<TrialRecord> records(config.trials);
  std::atomic<std::size_t> next_trial{0};

  auto worker = [&] {
    auto run_one = make_runner();
    for (;;) {
      const std::size_t trial = next_trial.fetch_add(1);
      if (trial >= config.trials) break;

      const support::SeedSequence trial_seed = root.child(trial);
      graph::Graph own;
      const graph::Graph* g = &shared;
      if (!config.shared_graph) {
        auto graph_rng = trial_seed.child(0).generator();
        own = graphs(graph_rng);
        g = &own;
      }

      const sim::RunResult result = run_one(*g, trial_seed.child(1).generator());
      fill_record(records[trial], *g, result);
    }
  };
  run_workers(config.threads, config.trials, worker);

  return aggregate_records(records);
}

/// Batched fast path: 64 trials share one structure-of-arrays sweep of the
/// shared graph (see src/sim/batch.hpp).  Per-trial seeds, records and the
/// aggregation order are identical to the scalar path, and each lane is
/// bit-identical to its scalar run, so TrialStats match exactly.
TrialStats run_beep_trials_batched(const graph::Graph& shared,
                                   const BeepProtocolFactory& protocols,
                                   const TrialConfig& config) {
  const support::SeedSequence root(config.base_seed);
  const std::size_t batches =
      (config.trials + sim::kMaxBatchLanes - 1) / sim::kMaxBatchLanes;

  std::vector<TrialRecord> records(config.trials);
  std::atomic<std::size_t> next_batch{0};

  auto worker = [&] {
    // One batch simulator and one batched kernel per worker, reused across
    // batches (scratch planes and policy arrays are recycled).
    sim::BatchSimulator simulator(config.sim, config.rng_mode);
    const std::unique_ptr<sim::BatchProtocol> protocol =
        protocols()->make_batch_protocol(config.rng_mode);
    if (!protocol) {
      // The dispatch probe saw a kernel but this worker's instance refuses
      // one: the factory returns protocols of varying dynamic type.
      throw std::logic_error(
          "run_beep_trials: protocol factory is inconsistent about make_batch_protocol");
    }
    for (;;) {
      const std::size_t batch = next_batch.fetch_add(1);
      if (batch >= batches) break;
      const std::size_t first = batch * sim::kMaxBatchLanes;
      const std::size_t last = std::min<std::size_t>(first + sim::kMaxBatchLanes, config.trials);

      std::vector<sim::RunResult> results;
      if (config.rng_mode == sim::BatchRngMode::kStatisticalLanes) {
        // One base stream per batch, keyed by the batch's first trial
        // index: lane streams are jump()-partitioned inside the
        // simulator, so records stay deterministic for any thread count
        // (per (base_seed, trials, mode), not per trial seed).
        results = simulator.run(shared, *protocol,
                                root.child(first).child(1).generator(),
                                static_cast<unsigned>(last - first));
      } else {
        std::vector<support::Xoshiro256StarStar> rngs;
        rngs.reserve(last - first);
        for (std::size_t trial = first; trial < last; ++trial) {
          rngs.push_back(root.child(trial).child(1).generator());
        }
        results = simulator.run(shared, *protocol, std::move(rngs));
      }
      for (std::size_t trial = first; trial < last; ++trial) {
        fill_record(records[trial], shared, results[trial - first]);
      }
    }
  };
  run_workers(config.threads, batches, worker);

  return aggregate_records(records);
}

/// Sharded execution paths (see TrialConfig::shards).  Returns true and
/// fills `out` when a sharded path ran; false = use the scalar/batched
/// paths.  Both sharded paths draw in scalar order, so TrialStats are
/// bit-identical to the other execution paths.
bool run_beep_trials_sharded(const GraphFactory& graphs,
                             const BeepProtocolFactory& protocols,
                             const TrialConfig& config, TrialStats& out) {
  if (!config.allow_sharded || config.sim.record_trace || config.trials == 0 ||
      config.shards == 1) {
    return false;
  }
  if (!protocols()->shard_support().supported) return false;

  if (config.shards >= 2) {
    // Explicit shard count: every trial runs sharded; the outer trial loop
    // is single-worker because each run already uses `shards` threads.
    TrialConfig outer = config;
    outer.threads = 1;
    out = run_trials_impl(graphs, outer, [&] {
      return [simulator = sim::ShardedSimulator(config.shards, config.sim),
              protocol = protocols()](const graph::Graph& g,
                                      support::Xoshiro256StarStar rng) mutable {
        return simulator.run(g, *protocol, rng);
      };
    });
    return true;
  }

  // Auto mode: only a lone large run benefits — with several trials the
  // trial-level parallelism already saturates the machine.
  const unsigned threads = config.threads != 0
                               ? config.threads
                               : std::max(1u, std::thread::hardware_concurrency());
  if (config.trials != 1 || threads < 2) return false;
  const support::SeedSequence trial_seed = support::SeedSequence(config.base_seed).child(0);
  // Shared or not, trial 0's graph comes from root.child(0).child(0) —
  // the same seed path either way.
  auto graph_rng = trial_seed.child(0).generator();
  const graph::Graph g = graphs(graph_rng);

  const std::unique_ptr<sim::BeepProtocol> protocol = protocols();
  sim::RunResult result;
  if (g.node_count() >= config.auto_shard_min_nodes) {
    // Auto mode must never reject a config that worked before sharding
    // existed, so clamp to the simulator's shard ceiling (explicit
    // TrialConfig::shards beyond it still throws — that is a request).
    const unsigned k = std::min(threads, sim::ShardedSimulator::kMaxShards);
    sim::ShardedSimulator simulator(g, k, config.sim);
    result = simulator.run(*protocol, trial_seed.child(1).generator());
  } else {
    // Too small for the per-exchange barriers to pay off — but the graph
    // is already built, so run the lone trial scalar here rather than
    // rebuilding it from the same seed in the generic trial loop.
    sim::BeepSimulator simulator(g, config.sim);
    result = simulator.run(*protocol, trial_seed.child(1).generator());
  }
  std::vector<TrialRecord> records(1);
  fill_record(records[0], g, result);
  out = aggregate_records(records);
  return true;
}

/// The pre-scenario dispatch pipeline: sharded, then batched, then the
/// scalar trial loop.  Callers route scenario configs before this point —
/// only a materialised (or absent) scenario may reach it.
TrialStats dispatch_beep_trials(const GraphFactory& graphs,
                                const BeepProtocolFactory& protocols,
                                const TrialConfig& config) {
  // Sharded path: parallelism *within* one run (TrialConfig::shards).
  // Bit-identical to the scalar path, like the batched path below.
  if (TrialStats sharded; run_beep_trials_sharded(graphs, protocols, config, sharded)) {
    return sharded;
  }
  // Batched fast path: one graph shared by every trial, a protocol with a
  // batched kernel, and no per-run event trace.  In kScalarOrder it is
  // bit-identical to the scalar path (lane-for-lane), so callers never
  // observe the switch; in kStatisticalLanes it is an explicit opt-in
  // trade (TrialConfig::rng_mode).
  if (config.allow_batched && config.shared_graph && config.trials > 0 &&
      !config.sim.record_trace) {
    // Lossy tail-dominated sweeps (loss + keep-alive + a run_until tail):
    // in kScalarOrder every potential keep-alive delivery consumes its own
    // per-lane Bernoulli, nothing amortises, and the batched path *loses*
    // to scalar (0.6-0.9x in BENCH_core.json) — skip it.  In
    // kStatisticalLanes the bulk loss planes flip the trade back, so those
    // workloads prefer the batched path like everything else.
    const bool statistical = config.rng_mode == sim::BatchRngMode::kStatisticalLanes;
    const bool lossy_tail_dominated = config.sim.beep_loss_probability > 0.0 &&
                                      config.sim.mis_keepalive &&
                                      config.sim.run_until_round > 0;
    if ((statistical || !lossy_tail_dominated) &&
        protocols()->make_batch_protocol(config.rng_mode) != nullptr) {
      const support::SeedSequence root(config.base_seed);
      auto rng = root.child(0).child(0).generator();
      const graph::Graph shared = graphs(rng);
      return run_beep_trials_batched(shared, protocols, config);
    }
  }
  return run_trials_impl(graphs, config, [&] {
    // One simulator and one protocol per worker, reused for every trial the
    // worker claims; the simulator rebinds to each trial's graph.
    return [simulator = sim::BeepSimulator(config.sim), protocol = protocols()](
               const graph::Graph& g, support::Xoshiro256StarStar rng) mutable {
      return simulator.run(g, *protocol, rng);
    };
  });
}

}  // namespace

TrialStats run_beep_trials(const GraphFactory& graphs, const BeepProtocolFactory& protocols,
                           const TrialConfig& config) {
  if (config.sim.scenario != nullptr) {
    throw std::invalid_argument(
        "run_beep_trials: set TrialConfig::scenario (a factory), not "
        "SimConfig::scenario — every worker thread needs its own stateful instance");
  }
  TrialConfig cfg = config;
  const GraphFactory* effective_graphs = &graphs;
  GraphFactory materialized_graphs;  // owns the shared graph when we materialise
  std::string fallback;

  if (cfg.scenario) {
    const std::unique_ptr<sim::FaultScenario> probe = cfg.scenario();
    if (probe == nullptr) {
      throw std::invalid_argument("run_beep_trials: scenario factory returned nullptr");
    }
    const std::string name(probe->name());
    switch (probe->kind()) {
      case sim::ScenarioKind::kStaticSchedule:
        if (cfg.shared_graph && cfg.sim.crash_round.empty()) {
          // The schedule is a pure function of (graph, scenario config),
          // so fold it into the static crash vectors once and keep every
          // fast path — the run is bit-identical to executing the
          // scenario live through the scalar driver.
          const support::SeedSequence root(cfg.base_seed);
          auto rng = root.child(0).child(0).generator();
          auto shared = std::make_shared<graph::Graph>(graphs(rng));
          cfg.sim.crash_round = probe->materialize_crash_rounds(*shared);
          cfg.scenario = nullptr;
          materialized_graphs = [shared](support::Xoshiro256StarStar&) { return *shared; };
          effective_graphs = &materialized_graphs;
        } else {
          fallback = "scenario '" + name +
                     "' runs live on the scalar simulator (materialising needs "
                     "shared_graph and an empty crash_round)";
        }
        break;
      case sim::ScenarioKind::kObliviousStream:
        fallback = "scenario '" + name +
                   "' emits dynamic events (revives/churn): scalar simulator only";
        break;
      case sim::ScenarioKind::kAdaptive:
        fallback = "scenario '" + name +
                   "' is adaptive (observes live run state): batched/sharded fast "
                   "paths refused, scalar simulator only";
        break;
    }
  }
  if (cfg.sim.track_recovery && fallback.empty()) {
    fallback = "recovery tracking is scalar-only: batched/sharded fast paths refused";
  }

  if (!cfg.scenario && !cfg.sim.track_recovery) {
    TrialStats stats = dispatch_beep_trials(*effective_graphs, protocols, cfg);
    stats.scalar_fallback_reason = std::move(fallback);
    return stats;
  }
  // Forced-scalar path: each worker owns a private scenario instance
  // (fresh from the factory; BeepSimulator::run resets it every trial).
  TrialStats stats = run_trials_impl(*effective_graphs, cfg, [&] {
    sim::SimConfig sim_config = cfg.sim;
    if (cfg.scenario) sim_config.scenario = cfg.scenario();
    return [simulator = sim::BeepSimulator(std::move(sim_config)), protocol = protocols()](
               const graph::Graph& g, support::Xoshiro256StarStar rng) mutable {
      return simulator.run(g, *protocol, rng);
    };
  });
  stats.scalar_fallback_reason = std::move(fallback);
  return stats;
}

TrialStats run_local_trials(const GraphFactory& graphs, const LocalProtocolFactory& protocols,
                            const TrialConfig& config) {
  if (config.scenario || config.sim.scenario != nullptr) {
    throw std::invalid_argument(
        "run_local_trials: fault scenarios are a beeping-model feature");
  }
  return run_trials_impl(graphs, config, [&] {
    return [simulator = sim::LocalSimulator(config.local_sim), protocol = protocols()](
               const graph::Graph& g, support::Xoshiro256StarStar rng) mutable {
      return simulator.run(g, *protocol, rng);
    };
  });
}

}  // namespace beepmis::harness

// Rendering helpers: turn experiment rows into the paper-style tables,
// ASCII figures and growth-model fits printed by the bench binaries.
#pragma once

#include <ostream>
#include <span>
#include <string>

#include "exp/figures.hpp"
#include "support/fit.hpp"
#include "support/table.hpp"

namespace beepmis::harness {

/// Figure 3 table: n, both algorithms' mean +/- stddev, reference curves.
[[nodiscard]] support::Table figure3_table(std::span<const Figure3Row> rows);
/// Figure 3 ASCII scatter (global = 'G', local = 'L', references '-'/'.').
[[nodiscard]] std::string figure3_plot(std::span<const Figure3Row> rows);
/// Growth-fit report: checks global ~ log^2 n and local ~ c log n (E5).
[[nodiscard]] std::string figure3_fit_report(std::span<const Figure3Row> rows);

[[nodiscard]] support::Table figure5_table(std::span<const Figure5Row> rows);
[[nodiscard]] std::string figure5_plot(std::span<const Figure5Row> rows);

[[nodiscard]] support::Table grid_beeps_table(std::span<const GridBeepsRow> rows);
[[nodiscard]] support::Table theorem1_table(std::span<const Theorem1Row> rows);
[[nodiscard]] std::string theorem1_fit_report(std::span<const Theorem1Row> rows);
[[nodiscard]] support::Table comparison_table(std::span<const ComparisonRow> rows);
[[nodiscard]] support::Table robustness_table(std::span<const RobustnessRow> rows);
[[nodiscard]] support::Table fault_table(std::span<const FaultRow> rows);
/// Recovery-SLA rendering of FaultRows produced by fault_scenario_experiment.
[[nodiscard]] support::Table fault_recovery_table(std::span<const FaultRow> rows);
[[nodiscard]] support::Table family_table(std::span<const FamilyRow> rows);

/// Prints a table plus its CSV twin separated by a blank line.
void print_with_csv(std::ostream& out, const support::Table& table);

}  // namespace beepmis::harness

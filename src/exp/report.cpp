#include "exp/report.hpp"

#include <sstream>
#include <vector>

#include "support/ascii_plot.hpp"

namespace beepmis::harness {

support::Table figure3_table(std::span<const Figure3Row> rows) {
  support::Table table({"n", "global mean", "global sd", "local mean", "local sd",
                        "(log2 n)^2", "2.5 log2 n"});
  for (const Figure3Row& r : rows) {
    table.new_row()
        .cell(r.n)
        .cell(r.global_mean)
        .cell(r.global_stddev)
        .cell(r.local_mean)
        .cell(r.local_stddev)
        .cell(r.reference_log2_squared)
        .cell(r.reference_25_log2);
  }
  return table;
}

std::string figure3_plot(std::span<const Figure3Row> rows) {
  support::Series global{"global sweep (mean rounds)", {}, {}, 'G'};
  support::Series local{"local feedback (mean rounds)", {}, {}, 'L'};
  support::Series ref_sq{"(log2 n)^2", {}, {}, '-'};
  support::Series ref_lin{"2.5 log2 n", {}, {}, '.'};
  for (const Figure3Row& r : rows) {
    const auto n = static_cast<double>(r.n);
    global.x.push_back(n);
    global.y.push_back(r.global_mean);
    local.x.push_back(n);
    local.y.push_back(r.local_mean);
    ref_sq.x.push_back(n);
    ref_sq.y.push_back(r.reference_log2_squared);
    ref_lin.x.push_back(n);
    ref_lin.y.push_back(r.reference_25_log2);
  }
  support::PlotOptions options;
  options.title = "Figure 3: time steps to compute an MIS on G(n, 1/2)";
  options.x_label = "n";
  options.y_label = "time steps";
  return support::render_plot({global, local, ref_sq, ref_lin}, options);
}

namespace {

struct FitInputs {
  std::vector<double> ns;
  std::vector<double> global_means;
  std::vector<double> local_means;
};

FitInputs fit_inputs(std::span<const Figure3Row> rows) {
  FitInputs in;
  for (const Figure3Row& r : rows) {
    in.ns.push_back(static_cast<double>(r.n));
    in.global_means.push_back(r.global_mean);
    in.local_means.push_back(r.local_mean);
  }
  return in;
}

}  // namespace

std::string figure3_fit_report(std::span<const Figure3Row> rows) {
  const FitInputs in = fit_inputs(rows);
  std::ostringstream out;

  const auto global_cmp = support::compare_growth(in.ns, in.global_means);
  const auto local_cmp = support::compare_growth(in.ns, in.local_means);

  out << "Growth-model fits (E5):\n";
  out << "  global sweep  vs log2 n   : "
      << support::describe_fit(global_cmp.vs_log, "log2(n)") << '\n';
  out << "  global sweep  vs log2^2 n : "
      << support::describe_fit(global_cmp.vs_log_squared, "log2(n)^2") << '\n';
  out << "  local feedback vs log2 n  : "
      << support::describe_fit(local_cmp.vs_log, "log2(n)") << '\n';
  out << "  local feedback vs log2^2 n: "
      << support::describe_fit(local_cmp.vs_log_squared, "log2(n)^2") << '\n';
  out << "  paper expectation: global prefers log2^2 ("
      << (global_cmp.prefers_log_squared ? "CONFIRMED" : "NOT CONFIRMED")
      << "), local prefers log2 ("
      << (!local_cmp.prefers_log_squared ? "CONFIRMED" : "NOT CONFIRMED") << ")\n";
  out << "  paper: local slope ~ 2.5; measured " << local_cmp.vs_log.slope << '\n';
  return out.str();
}

support::Table figure5_table(std::span<const Figure5Row> rows) {
  support::Table table({"n", "sweep beeps/node", "sd", "increasing beeps/node", "sd",
                        "local beeps/node", "sd"});
  for (const Figure5Row& r : rows) {
    table.new_row()
        .cell(r.n)
        .cell(r.global_mean)
        .cell(r.global_stddev)
        .cell(r.increasing_mean)
        .cell(r.increasing_stddev)
        .cell(r.local_mean)
        .cell(r.local_stddev);
  }
  return table;
}

std::string figure5_plot(std::span<const Figure5Row> rows) {
  support::Series global{"global sweep (mean beeps/node)", {}, {}, 'G'};
  support::Series increasing{"global increasing [Science'11] (mean beeps/node)", {}, {}, 'I'};
  support::Series local{"local feedback (mean beeps/node)", {}, {}, 'L'};
  for (const Figure5Row& r : rows) {
    const auto n = static_cast<double>(r.n);
    global.x.push_back(n);
    global.y.push_back(r.global_mean);
    increasing.x.push_back(n);
    increasing.y.push_back(r.increasing_mean);
    local.x.push_back(n);
    local.y.push_back(r.local_mean);
  }
  support::PlotOptions options;
  options.title = "Figure 5: mean beeps per node on G(n, 1/2)";
  options.x_label = "n";
  options.y_label = "beeps/node";
  return support::render_plot({global, increasing, local}, options);
}

support::Table grid_beeps_table(std::span<const GridBeepsRow> rows) {
  support::Table table({"grid", "n", "local mean beeps/node", "local sd"});
  for (const GridBeepsRow& r : rows) {
    table.new_row()
        .cell(std::to_string(r.side) + "x" + std::to_string(r.side))
        .cell(r.side * r.side)
        .cell(r.local_mean)
        .cell(r.local_stddev);
  }
  return table;
}

support::Table theorem1_table(std::span<const Theorem1Row> rows) {
  support::Table table(
      {"k", "nodes", "global mean", "global sd", "local mean", "local sd"});
  for (const Theorem1Row& r : rows) {
    table.new_row()
        .cell(r.k)
        .cell(r.node_count)
        .cell(r.global_mean)
        .cell(r.global_stddev)
        .cell(r.local_mean)
        .cell(r.local_stddev);
  }
  return table;
}

std::string theorem1_fit_report(std::span<const Theorem1Row> rows) {
  std::vector<double> ns, global_means, local_means;
  for (const Theorem1Row& r : rows) {
    ns.push_back(static_cast<double>(r.node_count));
    global_means.push_back(r.global_mean);
    local_means.push_back(r.local_mean);
  }
  const auto global_cmp = support::compare_growth(ns, global_means);
  const auto local_cmp = support::compare_growth(ns, local_means);

  std::ostringstream out;
  out << "Theorem 1 family growth fits:\n";
  out << "  global sweep  vs log2 n   : "
      << support::describe_fit(global_cmp.vs_log, "log2(n)") << '\n';
  out << "  global sweep  vs log2^2 n : "
      << support::describe_fit(global_cmp.vs_log_squared, "log2(n)^2") << '\n';
  out << "  local feedback vs log2 n  : "
      << support::describe_fit(local_cmp.vs_log, "log2(n)") << '\n';
  out << "  Theorem 1 predicts the global series needs the log^2 model: "
      << (global_cmp.prefers_log_squared ? "CONFIRMED" : "NOT CONFIRMED") << '\n';
  return out.str();
}

support::Table comparison_table(std::span<const ComparisonRow> rows) {
  support::Table table({"family", "n", "luby rnds", "metivier rnds", "greedy-id rnds",
                        "local rnds", "luby Kbits", "metivier Kbits", "local beeps"});
  for (const ComparisonRow& r : rows) {
    table.new_row()
        .cell(r.family)
        .cell(r.n)
        .cell(r.luby_rounds)
        .cell(r.metivier_rounds)
        .cell(r.greedy_id_rounds)
        .cell(r.local_rounds)
        .cell(r.luby_message_bits / 1000.0, 1)
        .cell(r.metivier_message_bits / 1000.0, 1)
        .cell(r.local_total_beeps, 1);
  }
  return table;
}

support::Table robustness_table(std::span<const RobustnessRow> rows) {
  support::Table table({"variant", "n", "rounds mean", "sd", "beeps/node", "valid"});
  for (const RobustnessRow& r : rows) {
    table.new_row()
        .cell(r.label)
        .cell(r.n)
        .cell(r.rounds_mean)
        .cell(r.rounds_stddev)
        .cell(r.beeps_mean)
        .cell(std::to_string(r.valid) + "/" + std::to_string(r.trials));
  }
  return table;
}

support::Table fault_table(std::span<const FaultRow> rows) {
  support::Table table({"beep loss", "rounds mean", "terminated", "valid",
                        "indep viol/trial", "uncovered/trial"});
  for (const FaultRow& r : rows) {
    table.new_row()
        .cell(r.loss, 3)
        .cell(r.rounds_mean)
        .cell(r.terminated_fraction, 3)
        .cell(r.valid_fraction, 3)
        .cell(r.independence_violations_per_trial, 3)
        .cell(r.uncovered_per_trial, 3);
  }
  return table;
}

support::Table fault_recovery_table(std::span<const FaultRow> rows) {
  support::Table table({"beep loss", "rounds mean", "valid", "disrupt/trial",
                        "unrecovered/trial", "rec p50", "rec p95", "rec p99"});
  for (const FaultRow& r : rows) {
    table.new_row()
        .cell(r.loss, 3)
        .cell(r.rounds_mean)
        .cell(r.valid_fraction, 3)
        .cell(r.disruptions_per_trial, 2)
        .cell(r.unrecovered_per_trial, 3)
        .cell(r.recovery_p50, 1)
        .cell(r.recovery_p95, 1)
        .cell(r.recovery_p99, 1);
  }
  return table;
}

support::Table family_table(std::span<const FamilyRow> rows) {
  support::Table table({"family", "n", "rounds mean", "sd", "beeps/node", "MIS size"});
  for (const FamilyRow& r : rows) {
    table.new_row()
        .cell(r.family)
        .cell(r.n)
        .cell(r.rounds_mean)
        .cell(r.rounds_stddev)
        .cell(r.beeps_mean)
        .cell(r.mis_size_mean);
  }
  return table;
}

void print_with_csv(std::ostream& out, const support::Table& table) {
  table.print(out);
  out << "\ncsv:\n";
  table.write_csv(out);
  out << '\n';
}

}  // namespace beepmis::harness

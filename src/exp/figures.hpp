// Concrete experiment definitions for every figure/table in the paper's
// evaluation, plus the extension experiments from DESIGN.md.  Each function
// returns plain row structs; the bench binaries render them as tables,
// plots and CSV.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "mis/local_feedback.hpp"

namespace beepmis::harness {

struct ExperimentConfig {
  std::size_t trials = 100;
  std::uint64_t base_seed = 0x5eed;
  unsigned threads = 0;  ///< 0 = hardware concurrency
  double edge_probability = 0.5;
};

/// One point of Figure 3: mean/stddev time steps on G(n, 1/2) for the two
/// beeping algorithms, plus the paper's two reference curves.
struct Figure3Row {
  std::size_t n = 0;
  double global_mean = 0, global_stddev = 0;
  double local_mean = 0, local_stddev = 0;
  double reference_log2_squared = 0;  ///< (log2 n)^2, the upper dashed line
  double reference_25_log2 = 0;       ///< 2.5 log2 n, the lower dotted line
};
[[nodiscard]] std::vector<Figure3Row> figure3_experiment(std::span<const std::size_t> ns,
                                                         const ExperimentConfig& config);

/// One point of Figure 5: mean/stddev beeps per node on G(n, 1/2).  The
/// `increasing` series checks the paper's §5 remark that the Science'11
/// schedule (probabilities computed from n and max degree, gradually
/// increased) keeps beeps bounded, unlike the sweep.
struct Figure5Row {
  std::size_t n = 0;
  double global_mean = 0, global_stddev = 0;
  double increasing_mean = 0, increasing_stddev = 0;
  double local_mean = 0, local_stddev = 0;
};
[[nodiscard]] std::vector<Figure5Row> figure5_experiment(std::span<const std::size_t> ns,
                                                         const ExperimentConfig& config);

/// Beeps per node for local feedback on rectangular grids (§5: "around
/// 1.1" for grid graphs).
struct GridBeepsRow {
  std::size_t side = 0;  ///< grid is side x side
  double local_mean = 0, local_stddev = 0;
};
[[nodiscard]] std::vector<GridBeepsRow> grid_beeps_experiment(
    std::span<const std::size_t> sides, const ExperimentConfig& config);

/// Theorem 1 family: rounds for global sweep vs local feedback on the
/// clique family with parameter k (k copies of K_d for d = 1..k).
struct Theorem1Row {
  std::size_t k = 0;           ///< family parameter (= n^{1/3} in the paper)
  std::size_t node_count = 0;  ///< k * k(k+1)/2 nodes
  double global_mean = 0, global_stddev = 0;
  double local_mean = 0, local_stddev = 0;
};
[[nodiscard]] std::vector<Theorem1Row> theorem1_experiment(std::span<const std::size_t> ks,
                                                           const ExperimentConfig& config);

/// All-baselines comparison: rounds and communication on a named family.
struct ComparisonRow {
  std::string family;
  std::size_t n = 0;
  double luby_rounds = 0, luby_rounds_stddev = 0;
  double metivier_rounds = 0;
  double greedy_id_rounds = 0;
  double local_rounds = 0, local_rounds_stddev = 0;
  double luby_message_bits = 0;      ///< mean total bits sent by Luby
  double metivier_message_bits = 0;  ///< mean total bits (bitwise protocol)
  double local_total_beeps = 0;      ///< mean total beeps (1-bit messages)
};
[[nodiscard]] std::vector<ComparisonRow> luby_comparison_experiment(
    std::span<const std::size_t> ns, const ExperimentConfig& config);

/// Robustness ablation (paper §6): vary feedback factor and initial p.
struct RobustnessRow {
  std::string label;
  mis::LocalFeedbackConfig algo;
  std::size_t n = 0;
  double rounds_mean = 0, rounds_stddev = 0;
  double beeps_mean = 0;
  std::size_t valid = 0, trials = 0;
};
[[nodiscard]] std::vector<RobustnessRow> robustness_experiment(std::size_t n,
                                                               const ExperimentConfig& config);

/// Fault injection: beep-loss sweep for local feedback.
struct FaultRow {
  double loss = 0;
  double rounds_mean = 0;
  double valid_fraction = 0;       ///< trials ending in a valid MIS
  double terminated_fraction = 0;  ///< trials that terminated at all
  double independence_violations_per_trial = 0;
  double uncovered_per_trial = 0;
  /// Recovery-SLA columns, populated only by the scenario overload below.
  double disruptions_per_trial = 0;
  double unrecovered_per_trial = 0;
  double recovery_p50 = 0, recovery_p95 = 0, recovery_p99 = 0;
};
[[nodiscard]] std::vector<FaultRow> fault_experiment(std::size_t n,
                                                     std::span<const double> losses,
                                                     const ExperimentConfig& config);

/// Beep-loss sweep with a fault scenario layered on top: the self-healing
/// protocol (keepalive on, fixed maintenance tail) under both beep loss
/// and the adversary, with recovery-time quantiles per loss level.
[[nodiscard]] std::vector<FaultRow> fault_scenario_experiment(
    std::size_t n, std::span<const double> losses, const FaultScenarioFactory& scenario,
    const ExperimentConfig& config);

/// Rounds + beeps for local feedback across graph families at a given n
/// (ring, grid, tree, hypercube-ish, gnp dense/sparse, clique, star).
struct FamilyRow {
  std::string family;
  std::size_t n = 0;
  double rounds_mean = 0, rounds_stddev = 0;
  double beeps_mean = 0;
  double mis_size_mean = 0;
};
[[nodiscard]] std::vector<FamilyRow> family_experiment(std::size_t n,
                                                       const ExperimentConfig& config);

}  // namespace beepmis::harness

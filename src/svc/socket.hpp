// Thin RAII wrappers over AF_UNIX stream sockets — the transport under
// the beepmisd experiment service (src/svc/README.md).  Deliberately
// minimal: blocking-with-poll-timeout semantics only, line-oriented
// reads matching the service's protocol, no async machinery.  Anything
// that needs cancellation (the server's accept and read loops) polls
// with a timeout and re-checks its own shutdown flag between polls.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace beepmis::svc {

/// A connected Unix-domain stream with a buffered line reader.  Move-only;
/// the destructor closes the descriptor.  Writes never raise SIGPIPE (a
/// peer that vanished surfaces as a std::runtime_error instead).
class UnixStream {
 public:
  UnixStream() = default;
  /// Adopts an already-connected descriptor (from UnixListener::accept).
  explicit UnixStream(int fd) noexcept : fd_(fd) {}
  ~UnixStream();
  UnixStream(UnixStream&& other) noexcept;
  UnixStream& operator=(UnixStream&& other) noexcept;
  UnixStream(const UnixStream&) = delete;
  UnixStream& operator=(const UnixStream&) = delete;

  /// Connects to the listener at `path`.  Throws std::runtime_error with
  /// the errno text when the socket cannot be created or connected.
  [[nodiscard]] static UnixStream connect(const std::string& path);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

  /// Writes every byte (handling short writes).  Throws std::runtime_error
  /// on any error, including a disconnected peer.
  void write_all(std::string_view data);
  /// write_all of `line` plus the terminating '\n'.
  void write_line(std::string_view line);

  enum class ReadStatus { kLine, kEof, kTimeout };

  /// Reads one '\n'-terminated line into `line` (newline stripped).
  /// `timeout_ms` < 0 blocks indefinitely; otherwise the call returns
  /// kTimeout if no complete line arrives in time (buffered partial input
  /// is kept for the next call).  kEof means the peer closed cleanly with
  /// no buffered line left.  Throws std::runtime_error on socket errors
  /// and on EOF in the middle of an unterminated line (torn request).
  [[nodiscard]] ReadStatus read_line(std::string& line, int timeout_ms = -1);

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// A bound + listening Unix-domain socket.  Binding unlinks a stale
/// socket file first (beepmisd owns its socket path); the destructor
/// closes and unlinks.  Move-only.
class UnixListener {
 public:
  /// Binds and listens.  Throws std::invalid_argument when `path` exceeds
  /// the platform sun_path limit (~107 bytes — keep state under /tmp, not
  /// deep build trees) and std::runtime_error on socket errors.
  explicit UnixListener(std::string path);
  ~UnixListener();
  UnixListener(UnixListener&& other) noexcept;
  UnixListener& operator=(UnixListener&& other) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Waits up to `timeout_ms` for a connection (< 0 = forever).  Returns
  /// nullopt on timeout; throws std::runtime_error on errors other than
  /// the retryable accept races (EINTR/ECONNABORTED).
  [[nodiscard]] std::optional<UnixStream> accept(int timeout_ms);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  void close() noexcept;

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace beepmis::svc

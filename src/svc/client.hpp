// SweepClient — the typed peer of SweepService's line protocol
// (src/svc/README.md).  Submits a serialized SweepSpec and turns the
// server's reply stream (ack, progress*, result+payload, end) back into
// events carrying a decoded harness::TrialStats, so callers get the
// same object a direct cli::run_sweep would have returned —
// bit-identical, which the e2e tests assert.
#pragma once

#include <cstdint>
#include <string>

#include "exp/runner.hpp"
#include "svc/socket.hpp"

namespace beepmis::svc {

class SweepClient {
 public:
  /// Connects to a running beepmisd.  Throws std::runtime_error when the
  /// socket is absent or refuses.
  [[nodiscard]] static SweepClient connect(const std::string& socket_path);

  /// What one server reply line (or result block) decodes to.
  struct Event {
    enum class Kind { kAck, kProgress, kResult, kError };
    Kind kind = Kind::kError;
    std::uint64_t fingerprint = 0;
    /// kAck: cached | queued | attached.
    std::string ack_mode;
    std::size_t chunks_done = 0;
    std::size_t chunks_total = 0;
    /// kResult: complete | degraded | quarantined | truncated | failed |
    /// stopped (beepmis_cli's exit contract: 0/1/2/3; failed/stopped = 1).
    std::string status;
    int exit_code = 0;
    bool cached = false;
    /// kResult with a payload (every status except failed/stopped).
    bool has_stats = false;
    harness::TrialStats stats;
    /// kError text, or kResult failure/stop reason.
    std::string message;
  };

  /// Sends one submit and returns the server's first reply — kAck on
  /// acceptance (follow with next_event() until kResult), kError on
  /// rejection.  `client_id` must be a single whitespace-free token;
  /// `priority` in 0..9, higher runs first.
  [[nodiscard]] Event submit(const std::string& spec_text, int priority = 0,
                             const std::string& client_id = "client");

  /// Next streamed event for the in-flight submit: kProgress zero or more
  /// times, then exactly one kResult or kError.  Throws std::runtime_error
  /// if the server vanishes mid-stream.
  [[nodiscard]] Event next_event();

  /// Convenience: submit and pump until the terminal event (kResult /
  /// kError), which is returned.
  [[nodiscard]] Event run(const std::string& spec_text, int priority = 0,
                          const std::string& client_id = "client");

  /// Round-trips the trivial liveness verb.  Returns false on a wrong
  /// reply; throws if the connection is gone.
  [[nodiscard]] bool ping();

  /// Sends "drain" / "stop" and returns the server's acknowledgement line.
  std::string drain();
  std::string stop();

 private:
  explicit SweepClient(UnixStream stream) : stream_(std::move(stream)) {}
  [[nodiscard]] std::string read_line_or_throw();
  [[nodiscard]] Event parse_event(const std::string& line);

  UnixStream stream_;
};

}  // namespace beepmis::svc

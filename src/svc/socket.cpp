#include "svc/socket.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace beepmis::svc {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("unix socket path empty or longer than sun_path limit (" +
                                std::to_string(sizeof(addr.sun_path) - 1) + "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// poll() one fd for readability; returns false on timeout.  Retries
/// EINTR with the full timeout again (good enough for the service's
/// short poll slices).
bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) throw_errno("poll");
  }
}

}  // namespace

// --- UnixStream -----------------------------------------------------------

UnixStream::~UnixStream() { close(); }

UnixStream::UnixStream(UnixStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

UnixStream& UnixStream::operator=(UnixStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

UnixStream UnixStream::connect(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect " + path);
  }
  return UnixStream(fd);
}

void UnixStream::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void UnixStream::write_all(std::string_view data) {
  if (fd_ < 0) throw std::runtime_error("write on closed stream");
  while (!data.empty()) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE —
    // the server writes from plain connection threads with no handler.
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

void UnixStream::write_line(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  write_all(framed);
}

UnixStream::ReadStatus UnixStream::read_line(std::string& line, int timeout_ms) {
  if (fd_ < 0) throw std::runtime_error("read on closed stream");
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return ReadStatus::kLine;
    }
    if (timeout_ms >= 0 && !wait_readable(fd_, timeout_ms)) return ReadStatus::kTimeout;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (!buffer_.empty()) throw std::runtime_error("peer closed mid-line (torn request)");
      return ReadStatus::kEof;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

// --- UnixListener ---------------------------------------------------------

UnixListener::UnixListener(std::string path) : path_(std::move(path)) {
  const sockaddr_un addr = make_addr(path_);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  // The service owns its socket path: a stale file from a killed server
  // would make bind fail with EADDRINUSE forever.
  ::unlink(path_.c_str());
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind " + path_);
  }
  if (::listen(fd_, 64) != 0) {
    const int saved = errno;
    close();
    errno = saved;
    throw_errno("listen " + path_);
  }
}

UnixListener::~UnixListener() { close(); }

UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {
  other.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

void UnixListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (!path_.empty()) ::unlink(path_.c_str());
  }
}

std::optional<UnixStream> UnixListener::accept(int timeout_ms) {
  if (fd_ < 0) throw std::runtime_error("accept on closed listener");
  for (;;) {
    if (timeout_ms >= 0 && !wait_readable(fd_, timeout_ms)) return std::nullopt;
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) return UnixStream(conn);
    // A peer can connect and hang up between poll and accept.
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (timeout_ms >= 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return std::nullopt;
    throw_errno("accept");
  }
}

}  // namespace beepmis::svc

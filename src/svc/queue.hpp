// Priority + fair-share FIFO job queue for the beepmisd scheduler.
//
// Jobs (identified by their sweep fingerprint) are grouped into priority
// buckets; within a bucket each submitting client gets its own FIFO lane
// and pop() round-robins across the lanes, so one client queueing fifty
// sweeps cannot starve another client's single request: with clients A
// and B both at priority 0, the service dispatch order is A1 B1 A2 A3 …
// no matter how many jobs A enqueued first.  Higher priority values win
// outright across buckets.  The whole discipline is deterministic given
// the push sequence — tests pin exact pop orders.
//
// Shutdown has the two shapes the server needs: close() lets poppers
// drain everything already queued and then return nullopt (graceful
// drain), shutdown_now() makes pop() return nullopt immediately and
// leaves the queued jobs in place for inspection / durable re-queue
// (fast stop — beepmisd persists pending requests on disk anyway).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace beepmis::svc {

class JobQueue {
 public:
  /// Enqueues a job.  Throws std::logic_error after close()/shutdown_now()
  /// (the server stops accepting submits before closing the queue).
  void push(std::uint64_t fingerprint, int priority, const std::string& client);

  /// Blocks until a job is available or the queue is finished; returns
  /// nullopt when closed-and-drained or shut down.
  [[nodiscard]] std::optional<std::uint64_t> pop();

  /// Non-blocking pop (tests and drain accounting).
  [[nodiscard]] std::optional<std::uint64_t> try_pop();

  /// No more pushes; poppers drain the backlog, then pop() returns nullopt.
  void close();

  /// No more pushes or pops; pop() returns nullopt immediately.  Queued
  /// jobs stay in the lanes (size() still reports them).
  void shutdown_now();

  [[nodiscard]] std::size_t size() const;

 private:
  struct Bucket {
    /// Lane rotation order (first-push order); parallel to `lanes`.
    std::vector<std::string> rotation;
    std::map<std::string, std::deque<std::uint64_t>> lanes;
    std::size_t next = 0;  ///< rotation cursor
    std::size_t jobs = 0;
  };

  [[nodiscard]] std::optional<std::uint64_t> pop_locked();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  // Highest priority first.
  std::map<int, Bucket, std::greater<int>> buckets_;
  std::size_t total_ = 0;
  bool closed_ = false;
  bool shutdown_ = false;
};

}  // namespace beepmis::svc

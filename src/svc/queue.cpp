#include "svc/queue.hpp"

#include <stdexcept>

namespace beepmis::svc {

void JobQueue::push(std::uint64_t fingerprint, int priority, const std::string& client) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || shutdown_) throw std::logic_error("JobQueue: push after close");
    Bucket& bucket = buckets_[priority];
    auto [lane, inserted] = bucket.lanes.try_emplace(client);
    if (inserted) bucket.rotation.push_back(client);
    lane->second.push_back(fingerprint);
    ++bucket.jobs;
    ++total_;
  }
  cv_.notify_one();
}

std::optional<std::uint64_t> JobQueue::pop_locked() {
  for (auto& [priority, bucket] : buckets_) {
    if (bucket.jobs == 0) continue;
    // Round-robin over the lane rotation, starting at the cursor.  Empty
    // lanes stay in the rotation (a client that submits again resumes its
    // slot) — skip them.
    for (std::size_t step = 0; step < bucket.rotation.size(); ++step) {
      const std::size_t idx = (bucket.next + step) % bucket.rotation.size();
      std::deque<std::uint64_t>& lane = bucket.lanes[bucket.rotation[idx]];
      if (lane.empty()) continue;
      const std::uint64_t fingerprint = lane.front();
      lane.pop_front();
      --bucket.jobs;
      --total_;
      bucket.next = (idx + 1) % bucket.rotation.size();
      return fingerprint;
    }
  }
  return std::nullopt;
}

std::optional<std::uint64_t> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return shutdown_ || closed_ || total_ > 0; });
  if (shutdown_) return std::nullopt;
  return pop_locked();  // nullopt only when closed-and-drained
}

std::optional<std::uint64_t> JobQueue::try_pop() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) return std::nullopt;
  return pop_locked();
}

void JobQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

void JobQueue::shutdown_now() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t JobQueue::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

}  // namespace beepmis::svc

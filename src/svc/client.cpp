#include "svc/client.hpp"

#include <stdexcept>

#include "exp/stats_io.hpp"
#include "support/hash.hpp"

namespace beepmis::svc {

namespace {

using harness::statsio::parse_size;
using harness::statsio::split_tokens;
using harness::statsio::unescape_text;
using support::parse_hex_u64;

/// "key=value" accessor over a result/ack token; empty when absent.
std::string field(const std::vector<std::string>& tokens, const std::string& key) {
  const std::string prefix = key + "=";
  for (const std::string& t : tokens) {
    if (t.compare(0, prefix.size(), prefix) == 0) return t.substr(prefix.size());
  }
  return {};
}

}  // namespace

SweepClient SweepClient::connect(const std::string& socket_path) {
  return SweepClient(UnixStream::connect(socket_path));
}

std::string SweepClient::read_line_or_throw() {
  std::string line;
  const UnixStream::ReadStatus rs = stream_.read_line(line);
  if (rs != UnixStream::ReadStatus::kLine) {
    throw std::runtime_error("beepmisd closed the connection mid-stream");
  }
  return line;
}

bool SweepClient::ping() {
  stream_.write_line("ping");
  return read_line_or_throw() == "pong";
}

std::string SweepClient::drain() {
  stream_.write_line("drain");
  return read_line_or_throw();
}

std::string SweepClient::stop() {
  stream_.write_line("stop");
  return read_line_or_throw();
}

SweepClient::Event SweepClient::submit(const std::string& spec_text, int priority,
                                       const std::string& client_id) {
  if (client_id.empty() || client_id.find_first_of(" \t\n") != std::string::npos) {
    throw std::invalid_argument("client_id must be one whitespace-free token");
  }
  if (priority < 0 || priority > 9) throw std::invalid_argument("priority must be in 0..9");
  stream_.write_line("submit " + client_id + " " + std::to_string(priority) + " " + spec_text);
  return next_event();
}

SweepClient::Event SweepClient::run(const std::string& spec_text, int priority,
                                    const std::string& client_id) {
  Event event = submit(spec_text, priority, client_id);
  while (event.kind == Event::Kind::kAck || event.kind == Event::Kind::kProgress) {
    event = next_event();
  }
  return event;
}

SweepClient::Event SweepClient::next_event() { return parse_event(read_line_or_throw()); }

SweepClient::Event SweepClient::parse_event(const std::string& line) {
  Event event;
  const std::vector<std::string> tokens = split_tokens(line);
  if (tokens.empty()) throw std::runtime_error("empty reply line from beepmisd");

  if (tokens[0] == "error") {
    event.kind = Event::Kind::kError;
    if (tokens.size() != 2 || !unescape_text(tokens[1], event.message)) {
      throw std::runtime_error("malformed error line from beepmisd: " + line);
    }
    return event;
  }

  if (tokens[0] == "ack") {
    if (tokens.size() != 4 || !parse_hex_u64(tokens[1], event.fingerprint) ||
        tokens[3].compare(0, 7, "chunks=") != 0 ||
        !parse_size(tokens[3].substr(7), event.chunks_total)) {
      throw std::runtime_error("malformed ack line from beepmisd: " + line);
    }
    event.kind = Event::Kind::kAck;
    event.ack_mode = tokens[2];
    return event;
  }

  if (tokens[0] == "progress") {
    if (tokens.size() != 4 || !parse_hex_u64(tokens[1], event.fingerprint) ||
        !parse_size(tokens[2], event.chunks_done) || !parse_size(tokens[3], event.chunks_total)) {
      throw std::runtime_error("malformed progress line from beepmisd: " + line);
    }
    event.kind = Event::Kind::kProgress;
    return event;
  }

  if (tokens[0] == "result") {
    if (tokens.size() != 5 || !parse_hex_u64(tokens[1], event.fingerprint)) {
      throw std::runtime_error("malformed result line from beepmisd: " + line);
    }
    event.kind = Event::Kind::kResult;
    event.status = field(tokens, "status");
    const std::string exit_text = field(tokens, "exit");
    const std::string cached_text = field(tokens, "cached");
    std::size_t exit_value = 0;
    if (event.status.empty() || !parse_size(exit_text, exit_value) || exit_value > 3 ||
        (cached_text != "0" && cached_text != "1")) {
      throw std::runtime_error("malformed result line from beepmisd: " + line);
    }
    event.exit_code = static_cast<int>(exit_value);
    event.cached = cached_text == "1";

    // Body: optional framed-stats payload, optional reason, then the end
    // marker.  The payload's own line keywords (stat/counts/meta/...)
    // never collide with "reason"/"end".
    std::string payload;
    for (;;) {
      const std::string body = read_line_or_throw();
      const std::vector<std::string> body_tokens = split_tokens(body);
      if (!body_tokens.empty() && body_tokens[0] == "end") {
        std::uint64_t end_fp = 0;
        if (body_tokens.size() != 2 || !parse_hex_u64(body_tokens[1], end_fp) ||
            end_fp != event.fingerprint) {
          throw std::runtime_error("malformed end line from beepmisd: " + body);
        }
        break;
      }
      if (!body_tokens.empty() && body_tokens[0] == "reason") {
        if (body_tokens.size() != 2 || !unescape_text(body_tokens[1], event.message)) {
          throw std::runtime_error("malformed reason line from beepmisd: " + body);
        }
        continue;
      }
      payload += body;
      payload += '\n';
    }
    if (!payload.empty()) {
      std::string error;
      if (!harness::parse_trial_stats(payload, event.stats, error)) {
        throw std::runtime_error("beepmisd result payload rejected: " + error);
      }
      event.has_stats = true;
    }
    return event;
  }

  throw std::runtime_error("unexpected reply line from beepmisd: " + line);
}

}  // namespace beepmis::svc

// SweepService — the beepmisd experiment server (protocol and design in
// src/svc/README.md).
//
// One persistent process owns a Unix socket and a state directory and
// turns serialized SweepSpec lines (cli/sweep_spec.hpp — THE request
// API) into harness::TrialStats:
//
//   * requests are keyed by cli::sweep_fingerprint — a repeated request
//     is answered from the result cache (memory, then disk) without
//     re-running, and a duplicate submitted while the first is still
//     running *attaches* to the in-flight job and receives the same
//     bit-identical result;
//   * queued work is scheduled by svc::JobQueue (priority buckets,
//     per-client round-robin fair share) onto a worker pool
//     (support::run_workers);
//   * every accepted job is durable before it is runnable: a pending
//     request file plus a per-job SweepJournal in the state directory,
//     so a killed server re-queues and *resumes* unfinished sweeps on
//     restart, bit-identical to an uninterrupted run;
//   * subscribers stream progress (completed-checkpoint counts from
//     cli::SweepHooks::on_checkpoint) while the sweep runs;
//   * drain() finishes the backlog then shuts down; stop() halts at the
//     next checkpoint boundary, persisting everything for restart.
//
// The class is fully in-process (start()/stop()/join() from tests); the
// beepmisd example wraps it with signal handling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cli/registry.hpp"
#include "svc/queue.hpp"
#include "svc/socket.hpp"

namespace beepmis::svc {

struct ServiceConfig {
  /// Unix socket to listen on (mind the ~107-byte sun_path limit).
  std::string socket_path;
  /// Durable state: pending-<hex16>.req, journal-<hex16>.journal,
  /// result-<hex16>.stats.  Created if missing.
  std::string state_dir;
  /// Concurrent sweeps (each sweep additionally parallelises per its own
  /// spec `threads=` key).
  unsigned job_workers = 1;
  /// Poll slice for accept/read/subscribe loops — the latency bound on
  /// noticing drain/stop.
  int poll_ms = 100;
};

/// Monotonic service counters (tests and the `stats` verb).
struct ServiceCounters {
  std::size_t submitted = 0;       ///< submit requests parsed successfully
  std::size_t cache_hits = 0;      ///< answered from memory or disk cache
  std::size_t attached = 0;        ///< duplicates joined to an in-flight job
  std::size_t queued = 0;          ///< new jobs enqueued
  std::size_t completed = 0;       ///< jobs finished clean (exit 0)
  std::size_t truncated = 0;       ///< jobs finished truncated (exit 3)
  std::size_t quarantined = 0;     ///< jobs finished with quarantined trials (exit 2)
  std::size_t degraded = 0;        ///< jobs finished with valid < trials (exit 1)
  std::size_t failed = 0;          ///< jobs whose run_sweep threw
  std::size_t recovered_pending = 0;  ///< pending files re-queued at start()
  std::size_t rejected_pending = 0;   ///< pending files that failed validation
};

class SweepService {
 public:
  explicit SweepService(ServiceConfig config);
  /// stop() + join() if still running.
  ~SweepService();
  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// Creates the state dir, re-queues surviving pending requests, binds
  /// the socket and spawns the listener + worker threads.  Throws on
  /// socket/filesystem errors.
  void start();

  /// Graceful: stop accepting submits, run the queued backlog to
  /// completion (streaming results to still-connected subscribers), then
  /// wind down.  Returns immediately; join() waits.
  void drain();

  /// Fast: interrupt running sweeps at their next checkpoint boundary
  /// (their journals keep the finished chunks) and leave every queued or
  /// interrupted job's pending file in place for the next start().
  /// Returns immediately; join() waits.
  void stop();

  /// Joins all service threads.  Call after drain() or stop().
  void join();

  /// True once the service is winding down (stop()/drain() finished its
  /// backlog, a `stop`/`drain` verb arrived, or an internal error tore
  /// the listener down) — the daemon's cue to join and exit.
  [[nodiscard]] bool stopped() const { return phase_.load() >= kStopping; }

  [[nodiscard]] ServiceCounters counters() const;
  /// Fingerprints in dispatch order (fair-share tests; deterministic with
  /// job_workers = 1).
  [[nodiscard]] std::vector<std::uint64_t> started_order() const;
  /// Error that tore down the listener/scheduler, if any ("" = clean).
  [[nodiscard]] std::string internal_error() const;

  [[nodiscard]] std::string pending_path(std::uint64_t fingerprint) const;
  [[nodiscard]] std::string journal_path(std::uint64_t fingerprint) const;
  [[nodiscard]] std::string result_path(std::uint64_t fingerprint) const;

 private:
  enum Phase : int { kIdle = 0, kRunning = 1, kDraining = 2, kStopping = 3 };

  struct Job {
    std::uint64_t fingerprint = 0;
    cli::SweepSpec spec;  ///< with the server's journal/resume overrides
    std::string client;
    int priority = 0;
    std::size_t chunks_total = 0;

    std::mutex m;
    std::condition_variable cv;
    std::size_t chunks_done = 0;  ///< completed by the current invocation
    bool done = false;
    std::string status;  ///< complete|degraded|quarantined|truncated|failed|stopped
    int exit_code = 0;
    std::string payload;  ///< framed TrialStats ("" for failed/stopped)
    std::string reason;   ///< failure/stop detail ("" otherwise)
  };

  void recover_pending();
  void listener_loop();
  void worker_loop();
  void run_job(const std::shared_ptr<Job>& job);
  void finish_job(const std::shared_ptr<Job>& job, std::string status, int exit_code,
                  std::string payload, std::string reason);
  void handle_connection(UnixStream stream);
  void handle_submit(UnixStream& stream, const std::string& rest);
  void subscribe(UnixStream& stream, const std::shared_ptr<Job>& job);
  void send_result(UnixStream& stream, std::uint64_t fingerprint, const std::string& status,
                   int exit_code, bool cached, const std::string& payload,
                   const std::string& reason);
  void record_internal_error(const std::string& where, const std::string& what);
  void begin_stop();

  ServiceConfig config_;
  std::atomic<int> phase_{kIdle};
  std::shared_ptr<std::atomic<bool>> stop_flag_;
  JobQueue queue_;
  std::unique_ptr<UnixListener> listener_;

  mutable std::mutex registry_m_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  /// fingerprint -> framed TrialStats payload (clean results only).
  std::unordered_map<std::uint64_t, std::shared_ptr<const std::string>> cache_;
  ServiceCounters counters_;
  std::vector<std::uint64_t> started_order_;
  std::string internal_error_;

  std::thread scheduler_thread_;
  std::thread listener_thread_;
  std::mutex conn_m_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace beepmis::svc

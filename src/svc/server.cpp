#include "svc/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "cli/sweep_spec.hpp"
#include "exp/stats_io.hpp"
#include "support/hash.hpp"
#include "support/parallel.hpp"

namespace beepmis::svc {

namespace fs = std::filesystem;

namespace {

using harness::statsio::escape_text;
using harness::statsio::split_tokens;
using harness::statsio::unescape_text;
using support::parse_hex_u64;
using support::stable_hash_bytes;
using support::to_hex_u64;

constexpr std::string_view kPendingMagic = "beepmis-pending v1";

/// Strict 0..9 priority parse (the protocol's whole range).
bool parse_priority(const std::string& token, int& out) {
  if (token.size() != 1 || token[0] < '0' || token[0] > '9') return false;
  out = token[0] - '0';
  return true;
}

/// Atomic tmp+rename publish, same discipline as SweepJournal::save.
void write_file_atomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + tmp + " for writing");
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    if (!out) throw std::runtime_error("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("rename " + tmp + " -> " + path + " failed");
  }
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Durable request record (checksummed like every other state file here):
///
///   beepmis-pending v1
///   client <hex-escaped id>
///   priority <0..9>
///   spec <serialized sweepspec line>
///   checksum <hex16>
std::string encode_pending(const std::string& client, int priority, const std::string& spec_text) {
  std::ostringstream out;
  out << kPendingMagic << "\n";
  out << "client " << escape_text(client) << "\n";
  out << "priority " << priority << "\n";
  out << "spec " << spec_text << "\n";
  std::string body = out.str();
  body += "checksum " + to_hex_u64(stable_hash_bytes(body)) + "\n";
  return body;
}

bool decode_pending(const std::string& file, std::string& client, int& priority,
                    std::string& spec_text) {
  if (file.empty() || file.back() != '\n') return false;
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < file.size(); ++i) {
    if (file[i] == '\n') {
      lines.emplace_back(file.data() + start, i - start);
      start = i + 1;
    }
  }
  if (lines.size() != 5) return false;
  const auto checksum_tokens = split_tokens(lines[4]);
  std::uint64_t stored = 0;
  if (checksum_tokens.size() != 2 || checksum_tokens[0] != "checksum" ||
      !parse_hex_u64(checksum_tokens[1], stored)) {
    return false;
  }
  const std::size_t body_len = file.size() - (lines[4].size() + 1);
  if (stable_hash_bytes(std::string_view(file.data(), body_len)) != stored) return false;
  if (lines[0] != kPendingMagic) return false;
  const auto client_tokens = split_tokens(lines[1]);
  if (client_tokens.size() != 2 || client_tokens[0] != "client" ||
      !unescape_text(client_tokens[1], client)) {
    return false;
  }
  const auto priority_tokens = split_tokens(lines[2]);
  if (priority_tokens.size() != 2 || priority_tokens[0] != "priority" ||
      !parse_priority(priority_tokens[1], priority)) {
    return false;
  }
  constexpr std::string_view kSpecKey = "spec ";
  if (lines[3].size() <= kSpecKey.size() || lines[3].substr(0, kSpecKey.size()) != kSpecKey) {
    return false;
  }
  spec_text = std::string(lines[3].substr(kSpecKey.size()));
  return true;
}

void remove_if_exists(const std::string& path) noexcept {
  std::error_code ec;
  fs::remove(path, ec);
}

}  // namespace

SweepService::SweepService(ServiceConfig config)
    : config_(std::move(config)), stop_flag_(std::make_shared<std::atomic<bool>>(false)) {
  if (config_.socket_path.empty()) throw std::invalid_argument("SweepService: empty socket_path");
  if (config_.state_dir.empty()) throw std::invalid_argument("SweepService: empty state_dir");
  if (config_.job_workers == 0) throw std::invalid_argument("SweepService: job_workers must be >= 1");
  if (config_.poll_ms <= 0) throw std::invalid_argument("SweepService: poll_ms must be positive");
}

SweepService::~SweepService() {
  if (phase_.load() != kIdle) {
    stop();
    join();
  }
}

std::string SweepService::pending_path(std::uint64_t fingerprint) const {
  return config_.state_dir + "/pending-" + to_hex_u64(fingerprint) + ".req";
}

std::string SweepService::journal_path(std::uint64_t fingerprint) const {
  return config_.state_dir + "/journal-" + to_hex_u64(fingerprint) + ".journal";
}

std::string SweepService::result_path(std::uint64_t fingerprint) const {
  return config_.state_dir + "/result-" + to_hex_u64(fingerprint) + ".stats";
}

ServiceCounters SweepService::counters() const {
  const std::lock_guard<std::mutex> lock(registry_m_);
  return counters_;
}

std::vector<std::uint64_t> SweepService::started_order() const {
  const std::lock_guard<std::mutex> lock(registry_m_);
  return started_order_;
}

std::string SweepService::internal_error() const {
  const std::lock_guard<std::mutex> lock(registry_m_);
  return internal_error_;
}

void SweepService::record_internal_error(const std::string& where, const std::string& what) {
  const std::lock_guard<std::mutex> lock(registry_m_);
  if (internal_error_.empty()) internal_error_ = where + ": " + what;
}

void SweepService::begin_stop() {
  phase_.store(kStopping);
}

void SweepService::start() {
  if (phase_.load() != kIdle) throw std::logic_error("SweepService: already started");
  fs::create_directories(config_.state_dir);
  recover_pending();
  listener_ = std::make_unique<UnixListener>(config_.socket_path);
  phase_.store(kRunning);
  scheduler_thread_ = std::thread([this] {
    try {
      support::run_workers(config_.job_workers, config_.job_workers, [this] { worker_loop(); });
    } catch (const std::exception& e) {
      record_internal_error("scheduler", e.what());
    }
    // Workers are done (queue drained-and-closed, or shut down): nothing
    // left to stream, so let the listener and connections wind down.
    begin_stop();
  });
  listener_thread_ = std::thread([this] { listener_loop(); });
}

void SweepService::recover_pending() {
  // A previous server was killed or stopped: every pending-*.req is a
  // request that was accepted but not finished.  Re-queue the valid ones
  // (their journals make the re-run a resume); anomalous files are left
  // in place for inspection but never run.
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.state_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 12 && name.compare(0, 8, "pending-") == 0 &&
        name.compare(name.size() - 4, 4, ".req") == 0) {
      files.push_back(entry.path().string());
    }
  }
  // Directory order is arbitrary; sort for a deterministic re-queue order
  // (by fingerprint — the original submission order is not persisted).
  std::sort(files.begin(), files.end());
  for (const std::string& path : files) {
    std::string file, client, spec_text;
    int priority = 0;
    cli::SweepSpec spec;
    bool ok = read_file(path, file) && decode_pending(file, client, priority, spec_text);
    if (ok) {
      try {
        spec = cli::parse_sweep_spec(spec_text);
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (!ok) {
      ++counters_.rejected_pending;
      continue;
    }
    const std::uint64_t fingerprint = cli::sweep_fingerprint(spec);
    auto job = std::make_shared<Job>();
    job->fingerprint = fingerprint;
    job->spec = spec;
    job->spec.journal_path = journal_path(fingerprint);
    job->spec.resume = true;
    job->client = client;
    job->priority = priority;
    job->chunks_total = harness::checkpoint_chunk_count(spec.trials, spec.checkpoint_interval);
    jobs_.emplace(fingerprint, std::move(job));
    queue_.push(fingerprint, priority, client);
    ++counters_.recovered_pending;
  }
}

void SweepService::drain() {
  int expected = kRunning;
  if (!phase_.compare_exchange_strong(expected, kDraining)) return;
  // Under the registry lock so no submit can slip between the phase check
  // and its queue_.push after the queue closes.
  const std::lock_guard<std::mutex> lock(registry_m_);
  queue_.close();
}

void SweepService::stop() {
  const int previous = phase_.exchange(kStopping);
  if (previous == kStopping || previous == kIdle) {
    if (previous == kIdle) phase_.store(kIdle);
    return;
  }
  stop_flag_->store(true);
  const std::lock_guard<std::mutex> lock(registry_m_);
  queue_.shutdown_now();
}

void SweepService::join() {
  if (scheduler_thread_.joinable()) scheduler_thread_.join();
  if (listener_thread_.joinable()) listener_thread_.join();
  std::vector<std::thread> conns;
  {
    const std::lock_guard<std::mutex> lock(conn_m_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) t.join();
  listener_.reset();
}

// --- scheduling -----------------------------------------------------------

void SweepService::worker_loop() {
  while (const std::optional<std::uint64_t> fingerprint = queue_.pop()) {
    std::shared_ptr<Job> job;
    {
      const std::lock_guard<std::mutex> lock(registry_m_);
      const auto it = jobs_.find(*fingerprint);
      if (it == jobs_.end()) continue;
      job = it->second;
      started_order_.push_back(*fingerprint);
    }
    run_job(job);
  }
}

void SweepService::run_job(const std::shared_ptr<Job>& job) {
  cli::SweepHooks hooks;
  hooks.stop_request = stop_flag_;
  hooks.on_checkpoint = [job](std::size_t chunks) {
    {
      const std::lock_guard<std::mutex> lock(job->m);
      job->chunks_done = chunks;
    }
    job->cv.notify_all();
  };

  harness::TrialStats stats;
  std::string error;
  bool ok = false;
  try {
    stats = cli::run_sweep(job->spec, hooks);
    ok = true;
  } catch (const std::exception& e) {
    error = e.what();
  }

  const std::uint64_t fp = job->fingerprint;
  if (ok && stats.truncated && stop_flag_->load()) {
    // Server stop, not a client-requested budget: the journal holds the
    // finished chunks and the pending file stays — the next start()
    // resumes exactly here.  Subscribers learn the request survives.
    finish_job(job, "stopped", 1, "",
               "server stopping; request journaled and re-queued on restart");
    return;
  }

  if (!ok) {
    // Deterministic failure (bad spec reaching run_sweep, filesystem
    // refusal): retrying on every restart would be a poison pill, so the
    // pending file goes too.
    remove_if_exists(pending_path(fp));
    remove_if_exists(journal_path(fp));
    {
      const std::lock_guard<std::mutex> lock(registry_m_);
      ++counters_.failed;
    }
    finish_job(job, "failed", 1, "", error);
    return;
  }

  // beepmis_cli's documented exit contract, verbatim: 3 truncated, 2
  // quarantined, 1 incomplete validation, 0 complete-and-valid.
  std::string status;
  int exit_code = 0;
  if (stats.truncated) {
    status = "truncated";
    exit_code = 3;
  } else if (stats.quarantined > 0) {
    status = "quarantined";
    exit_code = 2;
  } else if (stats.valid != stats.trials) {
    status = "degraded";
    exit_code = 1;
  } else {
    status = "complete";
    exit_code = 0;
  }

  const std::string payload = harness::format_trial_stats(stats);
  remove_if_exists(pending_path(fp));
  if (status == "truncated") {
    // Keep the journal: a later submit of the same request resumes from
    // the truncated run's chunks instead of starting over.
  } else {
    remove_if_exists(journal_path(fp));
  }
  if (status == "complete") {
    // Cache policy: clean results only.  The fingerprint deliberately
    // excludes budget/timeout/isolation knobs, so a truncated or
    // quarantined result must never be served for a resubmission that
    // might complete cleanly under different knobs.
    try {
      write_file_atomic(result_path(fp), payload);
    } catch (const std::exception& e) {
      record_internal_error("result-cache", e.what());
    }
  }
  {
    const std::lock_guard<std::mutex> lock(registry_m_);
    if (status == "complete") {
      cache_[fp] = std::make_shared<const std::string>(payload);
      ++counters_.completed;
    } else if (status == "truncated") {
      ++counters_.truncated;
    } else if (status == "quarantined") {
      ++counters_.quarantined;
    } else {
      ++counters_.degraded;
    }
  }
  finish_job(job, std::move(status), exit_code, payload, "");
}

void SweepService::finish_job(const std::shared_ptr<Job>& job, std::string status, int exit_code,
                              std::string payload, std::string reason) {
  {
    const std::lock_guard<std::mutex> lock(job->m);
    job->status = std::move(status);
    job->exit_code = exit_code;
    job->payload = std::move(payload);
    job->reason = std::move(reason);
    job->done = true;
  }
  job->cv.notify_all();
  const std::lock_guard<std::mutex> lock(registry_m_);
  // Erase by identity, not by key: a submit that raced this finish may
  // already have replaced the registry entry with a NEW job for the same
  // fingerprint (a truncated run's resubmission); that job must survive.
  const auto it = jobs_.find(job->fingerprint);
  if (it != jobs_.end() && it->second == job) jobs_.erase(it);
}

// --- the socket side ------------------------------------------------------

void SweepService::listener_loop() {
  try {
    while (phase_.load() < kStopping) {
      std::optional<UnixStream> conn = listener_->accept(config_.poll_ms);
      if (!conn) continue;
      const std::lock_guard<std::mutex> lock(conn_m_);
      conn_threads_.emplace_back(
          [this](UnixStream s) { handle_connection(std::move(s)); }, std::move(*conn));
    }
  } catch (const std::exception& e) {
    record_internal_error("listener", e.what());
    begin_stop();
  }
}

void SweepService::handle_connection(UnixStream stream) {
  try {
    std::string line;
    while (phase_.load() < kStopping) {
      const UnixStream::ReadStatus rs = stream.read_line(line, config_.poll_ms);
      if (rs == UnixStream::ReadStatus::kTimeout) continue;
      if (rs == UnixStream::ReadStatus::kEof) return;
      if (line == "ping") {
        stream.write_line("pong");
      } else if (line == "stats") {
        ServiceCounters c = counters();
        std::ostringstream out;
        out << "stats submitted=" << c.submitted << " cache_hits=" << c.cache_hits
            << " attached=" << c.attached << " queued=" << c.queued
            << " completed=" << c.completed << " failed=" << c.failed
            << " backlog=" << queue_.size();
        stream.write_line(out.str());
      } else if (line == "drain") {
        drain();
        stream.write_line("ok draining");
      } else if (line == "stop") {
        stop();
        stream.write_line("ok stopping");
        return;
      } else if (line.compare(0, 7, "submit ") == 0) {
        handle_submit(stream, line.substr(7));
      } else {
        stream.write_line("error " + escape_text("unknown verb: " + line));
      }
    }
  } catch (const std::exception&) {
    // A vanished or misbehaving peer tears down its own connection only.
  }
}

void SweepService::handle_submit(UnixStream& stream, const std::string& rest) {
  // submit <client> <priority> <sweepspec line...>
  const std::size_t client_end = rest.find(' ');
  const std::size_t priority_end =
      client_end == std::string::npos ? std::string::npos : rest.find(' ', client_end + 1);
  if (client_end == std::string::npos || priority_end == std::string::npos) {
    stream.write_line("error " +
                      escape_text("usage: submit <client> <priority 0-9> <sweepspec ...>"));
    return;
  }
  const std::string client = rest.substr(0, client_end);
  int priority = 0;
  if (client.empty() || !parse_priority(rest.substr(client_end + 1, priority_end - client_end - 1),
                                        priority)) {
    stream.write_line("error " + escape_text("client id empty or priority not in 0..9"));
    return;
  }
  const std::string spec_text = rest.substr(priority_end + 1);

  cli::SweepSpec spec;
  try {
    spec = cli::parse_sweep_spec(spec_text);
  } catch (const std::exception& e) {
    stream.write_line("error " + escape_text(e.what()));
    return;
  }
  const std::uint64_t fingerprint = cli::sweep_fingerprint(spec);

  std::shared_ptr<const std::string> cached;
  std::shared_ptr<Job> job;
  std::string ack_mode;
  std::size_t chunks_total =
      harness::checkpoint_chunk_count(spec.trials, spec.checkpoint_interval);
  {
    const std::lock_guard<std::mutex> lock(registry_m_);
    if (phase_.load() != kRunning) {
      stream.write_line("error " + escape_text("server draining; not accepting new work"));
      return;
    }
    ++counters_.submitted;
    const auto cache_it = cache_.find(fingerprint);
    if (cache_it != cache_.end()) {
      cached = cache_it->second;
      ++counters_.cache_hits;
      ack_mode = "cached";
    } else {
      // Memory miss: a previous server life may have left a durable
      // result.  Validate before trusting (reject-whole, like every
      // state file here).
      std::string file;
      harness::TrialStats parsed;
      std::string parse_error;
      if (read_file(result_path(fingerprint), file) &&
          harness::parse_trial_stats(file, parsed, parse_error)) {
        cached = cache_.emplace(fingerprint, std::make_shared<const std::string>(file))
                     .first->second;
        ++counters_.cache_hits;
        ack_mode = "cached";
      }
    }
    if (!cached) {
      const auto job_it = jobs_.find(fingerprint);
      std::shared_ptr<Job> in_flight;
      if (job_it != jobs_.end()) {
        // A finished job lingers in the registry until its worker erases
        // it; attaching to one would replay a terminal (possibly
        // truncated) result for what is semantically a new request, so
        // only live jobs accept attachments.
        const std::lock_guard<std::mutex> job_lock(job_it->second->m);
        if (!job_it->second->done) in_flight = job_it->second;
      }
      if (in_flight) {
        job = std::move(in_flight);
        chunks_total = job->chunks_total;
        ++counters_.attached;
        ack_mode = "attached";
      } else {
        job = std::make_shared<Job>();
        job->fingerprint = fingerprint;
        job->spec = spec;
        job->spec.journal_path = journal_path(fingerprint);
        job->spec.resume = true;
        job->client = client;
        job->priority = priority;
        job->chunks_total = chunks_total;
        // Durable before runnable: if the pending file cannot be written
        // the request is refused, never half-accepted.
        try {
          write_file_atomic(pending_path(fingerprint),
                            encode_pending(client, priority, spec_text));
        } catch (const std::exception& e) {
          stream.write_line("error " + escape_text(e.what()));
          return;
        }
        // operator[] so a lingering finished entry is replaced, not kept.
        jobs_[fingerprint] = job;
        queue_.push(fingerprint, priority, client);
        ++counters_.queued;
        ack_mode = "queued";
      }
    }
  }

  stream.write_line("ack " + to_hex_u64(fingerprint) + " " + ack_mode +
                    " chunks=" + std::to_string(chunks_total));
  if (cached) {
    send_result(stream, fingerprint, "complete", 0, true, *cached, "");
    return;
  }
  subscribe(stream, job);
}

void SweepService::subscribe(UnixStream& stream, const std::shared_ptr<Job>& job) {
  std::size_t last_progress = 0;
  std::unique_lock<std::mutex> lock(job->m);
  for (;;) {
    while (job->chunks_done != last_progress) {
      last_progress = job->chunks_done;
      const std::size_t total = job->chunks_total;
      lock.unlock();
      stream.write_line("progress " + to_hex_u64(job->fingerprint) + " " +
                        std::to_string(last_progress) + " " + std::to_string(total));
      lock.lock();
    }
    if (job->done) break;
    if (phase_.load() >= kStopping) {
      // The job will never finish in this server life (stop() before its
      // worker picked it up).  Its pending file survives for restart.
      lock.unlock();
      stream.write_line("error " +
                        escape_text("server stopping; request journaled for restart"));
      return;
    }
    job->cv.wait_for(lock, std::chrono::milliseconds(config_.poll_ms));
  }
  const std::string status = job->status;
  const int exit_code = job->exit_code;
  const std::string payload = job->payload;
  const std::string reason = job->reason;
  lock.unlock();
  send_result(stream, job->fingerprint, status, exit_code, false, payload, reason);
}

void SweepService::send_result(UnixStream& stream, std::uint64_t fingerprint,
                               const std::string& status, int exit_code, bool cached,
                               const std::string& payload, const std::string& reason) {
  stream.write_line("result " + to_hex_u64(fingerprint) + " status=" + status +
                    " exit=" + std::to_string(exit_code) + " cached=" + (cached ? "1" : "0"));
  if (!payload.empty()) stream.write_all(payload);
  if (!reason.empty()) stream.write_line("reason " + escape_text(reason));
  stream.write_line("end " + to_hex_u64(fingerprint));
}

}  // namespace beepmis::svc

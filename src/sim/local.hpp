// Synchronous LOCAL-model simulator with word-sized broadcasts.
//
// Classic MIS algorithms (Luby's, in particular) need richer communication
// than a beep: each node broadcasts a value to all neighbours every
// exchange.  This substrate models that: per exchange, every active node
// publishes a 64-bit value which all its neighbours can read in the react
// phase.  Message cost is tracked in bits (deg(v) * bits_per_message for
// each publish), so bit-complexity comparisons against the beeping model
// are possible (paper §5).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "sim/result.hpp"
#include "support/rng.hpp"

namespace beepmis::sim {

struct LocalSimConfig {
  std::size_t max_rounds = 1u << 20;
};

class LocalSimulator;

/// Exchange view for LOCAL-model protocols.
class LocalContext {
 public:
  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] std::size_t round() const noexcept { return round_; }
  [[nodiscard]] unsigned exchange() const noexcept { return exchange_; }

  /// See BeepContext::active_nodes() — compacted at round boundaries only.
  [[nodiscard]] const std::vector<graph::NodeId>& active_nodes() const noexcept {
    return *active_;
  }
  [[nodiscard]] bool is_active(graph::NodeId v) const {
    return status_->at(v) == NodeStatus::kActive;
  }
  [[nodiscard]] NodeStatus status(graph::NodeId v) const { return status_->at(v); }

  /// Value `w` published this exchange, or nullopt if `w` published nothing
  /// (was inactive or stayed silent).  Valid during react.
  [[nodiscard]] std::optional<std::uint64_t> value_of(graph::NodeId w) const {
    if (!(*published_)[w]) return std::nullopt;
    return (*values_)[w];
  }

  /// Emit-phase only: broadcast `value` (costing deg(v) * bits to send).
  void publish(graph::NodeId v, std::uint64_t value, unsigned bits = 64);
  /// React-phase only.
  void join_mis(graph::NodeId v);
  void deactivate(graph::NodeId v);

  [[nodiscard]] support::Xoshiro256StarStar& rng() noexcept { return *rng_; }

 private:
  friend class LocalSimulator;
  enum class Phase { kEmit, kReact };

  const graph::Graph* graph_ = nullptr;
  const std::vector<graph::NodeId>* active_ = nullptr;
  std::vector<NodeStatus>* status_ = nullptr;
  std::vector<std::uint64_t>* values_ = nullptr;
  std::vector<std::uint8_t>* published_ = nullptr;
  support::Xoshiro256StarStar* rng_ = nullptr;
  LocalSimulator* simulator_ = nullptr;
  std::size_t round_ = 0;
  unsigned exchange_ = 0;
  Phase phase_ = Phase::kEmit;
};

class LocalProtocol {
 public:
  virtual ~LocalProtocol() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual unsigned exchanges_per_round() const = 0;
  /// See BeepProtocol::reset — must fully (re)initialise per-run state;
  /// instances are reused across runs by the trial harness.
  virtual void reset(const graph::Graph& g, support::Xoshiro256StarStar& rng) = 0;
  virtual void emit(LocalContext& ctx) = 0;
  virtual void react(LocalContext& ctx) = 0;
};

/// One instance may execute many runs; scratch state is reused across runs
/// and the graph can be rebound per run (see BeepSimulator for the
/// rationale — the trial runner amortises allocations this way).
class LocalSimulator {
 public:
  explicit LocalSimulator(const graph::Graph& g, LocalSimConfig config = {});
  /// The simulator stores a reference; a temporary graph would dangle.
  explicit LocalSimulator(graph::Graph&&, LocalSimConfig = {}) = delete;
  /// Unbound simulator: only usable through the graph-taking run overload.
  explicit LocalSimulator(LocalSimConfig config = {});

  [[nodiscard]] RunResult run(LocalProtocol& protocol, support::Xoshiro256StarStar rng);
  /// Rebinds to `g` and runs, reusing scratch buffers.  The caller must
  /// keep `g` alive for the duration of the call.
  [[nodiscard]] RunResult run(const graph::Graph& g, LocalProtocol& protocol,
                              support::Xoshiro256StarStar rng);
  /// A temporary graph would leave the simulator bound to a destroyed
  /// object (same trap the deleted rvalue constructor blocks).
  RunResult run(graph::Graph&&, LocalProtocol&, support::Xoshiro256StarStar) = delete;

 private:
  friend class LocalContext;

  const graph::Graph* graph_ = nullptr;
  LocalSimConfig config_;

  std::vector<NodeStatus> status_;
  std::vector<graph::NodeId> active_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint8_t> published_;
  std::vector<graph::NodeId> publishers_;  ///< set bits of published_
  std::uint64_t message_bits_ = 0;
};

}  // namespace beepmis::sim

#include "sim/sharded_batch.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <string>

#include "sim/flag_buffer.hpp"
#include "support/parallel.hpp"
#include "support/phase_timer.hpp"

namespace beepmis::sim {

// The exchange machinery here is entirely the shared plane engine
// (sim/exchange_core.hpp detail::) — the same helpers the batched
// front-end calls, pointed at one shard's slice instead of [0, n).  This
// file only adds the SPMD choreography: the barrier schedule, the
// coordinator's merge/snapshot steps, and the per-(shard, lane) stream
// layout.

ShardedBatchSimulator::ShardedBatchSimulator(unsigned shards, SimConfig config,
                                             BatchRngMode rng_mode)
    : requested_shards_(std::max(1u, shards)),
      config_(std::move(config)),
      rng_mode_(rng_mode) {
  if (shards > kMaxShards) {
    throw std::invalid_argument(
        "ShardedBatchSimulator: shard count " + std::to_string(shards) + " exceeds " +
        std::to_string(kMaxShards) +
        " (one worker thread and an n-scaled slice index per shard; is a "
        "negative value wrapping through unsigned?)");
  }
  if (rng_mode_ != BatchRngMode::kStatisticalLanes) {
    throw std::invalid_argument(
        "ShardedBatchSimulator: kScalarOrder's global draw order cannot be "
        "reproduced across shards and lanes at once; use BatchSimulator for "
        "bit-identical lanes or kStatisticalLanes here");
  }
  if (config_.beep_loss_probability < 0.0 || config_.beep_loss_probability >= 1.0) {
    throw std::invalid_argument("SimConfig: beep_loss_probability must be in [0, 1)");
  }
  if (config_.record_trace) {
    throw std::invalid_argument(
        "ShardedBatchSimulator does not support record_trace; use the scalar "
        "BeepSimulator");
  }
  if (config_.scenario != nullptr) {
    throw std::invalid_argument(
        "ShardedBatchSimulator: fault scenarios run on the scalar BeepSimulator "
        "(kStaticSchedule scenarios materialise into crash_round vectors instead)");
  }
  if (config_.track_recovery) {
    throw std::invalid_argument(
        "ShardedBatchSimulator: recovery tracking is scalar-only (use BeepSimulator)");
  }
  lossy_ = config_.beep_loss_probability > 0.0;
  keep_ = 1.0 - config_.beep_loss_probability;
}

ShardedBatchSimulator::ShardedBatchSimulator(const graph::Graph& g, unsigned shards,
                                             SimConfig config, BatchRngMode rng_mode)
    : ShardedBatchSimulator(shards, std::move(config), rng_mode) {
  bind_graph(g);
}

const graph::Partition& ShardedBatchSimulator::partition() const {
  if (graph_ == nullptr) {
    throw std::logic_error("ShardedBatchSimulator::partition: no graph bound");
  }
  return partition_;
}

void ShardedBatchSimulator::bind_graph(const graph::Graph& g) {
  const graph::NodeId n = g.node_count();
  if (!config_.wake_round.empty() && config_.wake_round.size() != n) {
    throw std::invalid_argument("SimConfig: wake_round size must match the graph");
  }
  if (!config_.crash_round.empty() && config_.crash_round.size() != n) {
    throw std::invalid_argument("SimConfig: crash_round size must match the graph");
  }
  graph_ = &g;
  partition_ = graph::Partition::build(g, requested_shards_);
  if (config_.shard_local_adjacency) partition_.materialize_local_adjacency();
  const unsigned k = partition_.shard_count();
  shards_.resize(k);
  for (unsigned s = 0; s < k; ++s) {
    Shard& shard = shards_[s];
    shard.lo = partition_.begin(s);
    shard.hi = partition_.end(s);
    shard.faults = detail::build_fault_schedule(config_.wake_round, config_.crash_round,
                                                shard.lo, shard.hi);
  }
}

std::vector<RunResult> ShardedBatchSimulator::run(const graph::Graph& g,
                                                  BatchProtocol& protocol,
                                                  support::Xoshiro256StarStar base,
                                                  unsigned lanes) {
  bind_graph(g);
  return run(protocol, std::move(base), lanes);
}

std::vector<RunResult> ShardedBatchSimulator::run(BatchProtocol& protocol,
                                                  support::Xoshiro256StarStar base,
                                                  unsigned lanes) {
  if (graph_ == nullptr) {
    throw std::logic_error("ShardedBatchSimulator::run: no graph bound");
  }
  if (lanes == 0 || lanes > kMaxBatchLanes) {
    throw std::invalid_argument("ShardedBatchSimulator::run: need 1..64 lanes");
  }
  const graph::NodeId n = graph_->node_count();
  const unsigned k = partition_.shard_count();
  lane_count_ = lanes;
  const LaneMask all_lanes =
      lanes == kMaxBatchLanes ? ~LaneMask{0} : (LaneMask{1} << lanes) - 1;

  live_.assign(n, 0);
  inmis_.assign(n, 0);
  dominated_.assign(n, 0);
  crashed_.assign(n, 0);
  beeped_.assign(n, 0);
  prev_beeped_.assign(n, 0);
  heard_.assign(n, 0);
  in_active_.assign(n, 0);
  in_mis_union_.assign(n, 0);
  mis_union_.clear();
  mis_mask_.assign(n, 0);
  mis_hear_mask_.assign(n, 0);
  beep_counts_.assign(static_cast<std::size_t>(n) * lanes, 0);
  lane_rounds_.assign(lanes, 0);
  global_active_count_.assign(lanes, 0);
  reactivation_totals_.assign(lanes, 0);
  running_ = all_lanes;
  terminated_ = 0;
  round_ = 0;
  first_pass_ = true;
  mis_dirty_ = false;
  wakeups_pending_ = false;
  failed_.store(false, std::memory_order_relaxed);

  // Stream layout: walking the shards in order, shard s adopts the cursor
  // as its bulk stream, then takes one jump per lane stream, then one
  // more jump separates it from shard s+1.  So shard s's bulk is the base
  // advanced by s·(lanes+1) jumps and every (shard, lane) window is a
  // disjoint 2^128-output span.  At K = 1 this is exactly
  // BatchSimulator's kStatisticalLanes seeding (bulk = base, lane l =
  // base + l+1 jumps), which is what makes the one-shard run a
  // bit-identity oracle against the batched core.
  support::Xoshiro256StarStar cursor = std::move(base);
  for (Shard& shard : shards_) {
    shard.bulk = cursor;
    support::Xoshiro256StarStar stream = cursor;
    shard.rngs.clear();
    shard.rngs.reserve(lanes);
    for (unsigned l = 0; l < lanes; ++l) {
      stream.jump();
      shard.rngs.push_back(stream);
    }
    cursor = stream;
    cursor.jump();
  }

  for (Shard& shard : shards_) {
    shard.cursor = {};
    shard.mis_crashed = 0;
    shard.active = shard.faults.initial_active;
    for (const graph::NodeId v : shard.active) {
      in_active_[v] = 1;
      live_[v] = all_lanes;
    }
    shard.beepers.clear();
    shard.boundary_beepers.clear();
    shard.prev_beepers.clear();
    shard.heard_dirty.clear();
    shard.joined.clear();
    shard.reactivated.clear();
    shard.mis_hear.clear();
    shard.mis_hear_stale = true;
    shard.active_count.assign(lanes, static_cast<std::uint32_t>(shard.active.size()));
    shard.reactivation_counts.assign(lanes, 0);
    shard.error = nullptr;
  }

  // Serial reset, like every front-end: batched kernels keep per-node
  // state only, so one reset initialises all shards' slices.  The reset
  // draws consume shard 0's lane streams — at K = 1 that is exactly the
  // batched core's reset, and for K > 1 the other shards' streams stay
  // untouched (their windows are disjoint either way).
  protocol.reset(*graph_, std::span<support::Xoshiro256StarStar>(shards_[0].rngs));
  exchanges_ = protocol.exchanges_per_round();
  if (exchanges_ == 0) throw std::logic_error("protocol declares zero exchanges per round");
  protocol_ = &protocol;

  sync_.emplace(static_cast<std::ptrdiff_t>(k));
  std::atomic<unsigned> next_shard{0};
  support::run_workers(
      k, k, [&] { shard_worker(next_shard.fetch_add(1)); },
      [&](unsigned missing) {
        // Partial spawn: stand in for the missing shards once
        // (arrive_and_drop also removes them from every later phase) and
        // mark the run failed — shard 0 exists whenever any shard does
        // and aborts the round loop at the next boundary.
        failed_.store(true);
        for (unsigned m = 0; m < missing; ++m) sync_->arrive_and_drop();
      });
  sync_.reset();

  for (const Shard& shard : shards_) {
    for (unsigned l = 0; l < lanes; ++l) {
      reactivation_totals_[l] += shard.reactivation_counts[l];
    }
  }
  return detail::extract_lane_results(n, lanes, crashed_, inmis_, dominated_,
                                      beep_counts_.data(), terminated_,
                                      lane_rounds_.data(), reactivation_totals_.data());
}

void ShardedBatchSimulator::coordinate_round_boundary() {
  if (failed_.load()) {
    // Some shard's work threw; its exception is parked in the shard and
    // rethrown once every shard reaches the common exit, so end the run
    // here.  (At most one partial round of work is discarded.)
    running_ = 0;
    return;
  }
  if (!first_pass_) {
    // Merge per-shard MIS joins into the global union.  Joins happen only
    // in the final exchange (kernel contract), so merging at the round
    // boundary exposes exactly the set the batched core's union holds at
    // its next round top.  Dedup here (not in join_mis) because a node
    // can join in different lanes on different shards' rounds... it
    // cannot — a node lives on one shard — but it can re-join in a later
    // round after a keep-alive-less healing cycle removed it; the bitmap
    // keeps the union a set either way.
    for (Shard& shard : shards_) {
      for (const graph::NodeId v : shard.joined) {
        if (!in_mis_union_[v]) {
          in_mis_union_[v] = 1;
          mis_union_.push_back(v);
        }
      }
      if (!shard.joined.empty()) mis_dirty_ = true;
      shard.joined.clear();
    }
    ++round_;
  }
  first_pass_ = false;

  if (config_.deadline_ns != nullptr &&
      steady_now_ns() > config_.deadline_ns->load(std::memory_order_relaxed)) {
    throw RunCancelled("ShardedBatchSimulator::run: deadline expired at round " +
                       std::to_string(round_));
  }

  // Lane retirement needs lane-global active counts; sum the shard
  // slices.  This is the per-lane analogue of the sharded core's
  // active_total_.
  std::fill(global_active_count_.begin(), global_active_count_.end(), 0u);
  wakeups_pending_ = false;
  for (const Shard& shard : shards_) {
    wakeups_pending_ =
        wakeups_pending_ || shard.cursor.next_wakeup < shard.faults.wakeups.size();
    for (unsigned l = 0; l < lane_count_; ++l) {
      global_active_count_[l] += shard.active_count[l];
    }
  }
  detail::retire_finished_lanes(round_, config_.run_until_round, config_.max_rounds,
                                wakeups_pending_, global_active_count_.data(),
                                lane_rounds_.data(), running_, terminated_);
}

void ShardedBatchSimulator::coordinate_exchange_top(unsigned exchange) {
  if (exchange != 0) {
    // The previous exchange's beeps become prev_beeped_ by a global
    // buffer swap; shards swap their dirty lists in the emit block.
    beeped_.swap(prev_beeped_);
    return;
  }
  LaneMask mis_crashed = 0;
  for (Shard& shard : shards_) {
    mis_crashed |= shard.mis_crashed;
    shard.mis_crashed = 0;
  }
  if (mis_crashed) {
    // A crashed member falls out of every keep-alive frontier the round
    // it fails, exactly like the batched core's union compaction.
    std::erase_if(mis_union_, [this](graph::NodeId v) {
      if (inmis_[v] != 0) return false;
      in_mis_union_[v] = 0;
      return true;
    });
    mis_dirty_ = true;
  }
  if (mis_dirty_) {
    if (config_.mis_keepalive) {
      // Re-snapshot the union's in-MIS planes post-fault: shards read
      // mis_mask_ (never remote inmis_) during keep-alive delivery, so
      // a shard already reacting — joining, mutating its own inmis_
      // rows — cannot race a shard still delivering.
      for (const graph::NodeId v : mis_union_) mis_mask_[v] = inmis_[v];
      for (Shard& shard : shards_) shard.mis_hear_stale = true;
    }
    mis_dirty_ = false;
  }
}

void ShardedBatchSimulator::deliver_shard(Shard& shard, unsigned s) {
  detail::clear_flag_range(heard_.data(), shard.lo, shard.hi, shard.heard_dirty);
  const auto slice = [this, s](graph::NodeId v) { return partition_.neighbors_in(v, s); };
  if (!lossy_) {
    // Local beeps first, then each remote shard's boundary beeps, shards
    // ascending; OR-delivery is idempotent, so the order is free.
    detail::deliver_planes(shard.beepers, beeped_, slice, heard_, shard.heard_dirty);
    for (unsigned r = 0; r < shards_.size(); ++r) {
      if (r == s) continue;
      detail::deliver_planes(shards_[r].boundary_beepers, beeped_, slice, heard_,
                             shard.heard_dirty);
    }
    if (config_.mis_keepalive) {
      if (shard.mis_hear_stale) {
        detail::rebuild_mis_hear_planes(
            mis_union_, [this](graph::NodeId v) { return mis_mask_[v]; }, slice,
            mis_hear_mask_, shard.mis_hear);
        shard.mis_hear_stale = false;
      }
      detail::apply_mis_hear_planes(shard.mis_hear, mis_hear_mask_, heard_,
                                    shard.heard_dirty);
    }
    return;
  }
  // Statistical lossy delivery: every potential edge delivery into this
  // shard's heard rows draws one bulk Bernoulli plane from *this shard's*
  // bulk stream — the listener-side partitioning that kills the sharded
  // core's serial lossy coordinator bottleneck.  Per-listener marginals
  // do not depend on the order the beeping neighbours are tried, so the
  // distribution matches the batched core's; only the sample differs,
  // which is the mode's contract.
  const auto beeped_mask = [this](graph::NodeId v) { return beeped_[v]; };
  detail::deliver_planes_lossy(shard.beepers, beeped_mask, slice, keep_, shard.bulk,
                               heard_, shard.heard_dirty);
  for (unsigned r = 0; r < shards_.size(); ++r) {
    if (r == s) continue;
    detail::deliver_planes_lossy(shards_[r].boundary_beepers, beeped_mask, slice, keep_,
                                 shard.bulk, heard_, shard.heard_dirty);
  }
  if (config_.mis_keepalive) {
    const LaneMask running = running_;
    detail::deliver_planes_lossy(
        mis_union_, [this, running](graph::NodeId v) { return mis_mask_[v] & running; },
        slice, keep_, shard.bulk, heard_, shard.heard_dirty);
  }
}

void ShardedBatchSimulator::shard_worker(unsigned s) {
  BEEPMIS_STM_DECLARE(faults, "sharded_batch/faults");
  BEEPMIS_STM_DECLARE(emit, "sharded_batch/emit");
  BEEPMIS_STM_DECLARE(deliver, "sharded_batch/deliver");
  BEEPMIS_STM_DECLARE(react, "sharded_batch/react");
  Shard& shard = shards_[s];
  // No shard work may unwind past a barrier (the others would deadlock):
  // every inter-barrier block runs through this wrapper, parking the
  // first exception; the shard keeps arriving at every barrier as a
  // no-op participant and the coordinator ends the run at the next round
  // boundary.  Rethrown at the common exit for run_workers' capture.
  const auto guarded = [&](auto&& call) {
    if (shard.error != nullptr) return;
    try {
      call();
    } catch (...) {
      shard.error = std::current_exception();
      failed_.store(true);
    }
  };

  BatchContext ctx;
  ctx.graph_ = graph_;
  ctx.active_ = &shard.active;
  ctx.live_ = &live_;
  ctx.inmis_ = &inmis_;
  ctx.dominated_ = &dominated_;
  ctx.beeped_ = &beeped_;
  ctx.prev_beeped_ = &prev_beeped_;
  ctx.heard_ = &heard_;
  ctx.beepers_ = &shard.beepers;
  ctx.beep_counts_ = beep_counts_.data();
  ctx.active_count_ = shard.active_count.data();
  ctx.mis_lists_ = nullptr;  // statistical-only: nothing consumes join order
  ctx.mis_joins_ = &shard.joined;
  ctx.in_mis_union_ = nullptr;  // dedup happens at the coordinator merge
  ctx.mis_hear_valid_ = &shard.mis_flag_scratch;
  ctx.reactivated_ = &shard.reactivated;
  ctx.reactivation_counts_ = shard.reactivation_counts.data();
  ctx.running_ = &running_;
  ctx.bulk_rng_ = &shard.bulk;
  ctx.rngs_ = &shard.rngs;
  ctx.rng_mode_ = rng_mode_;
  ctx.lo_ = shard.lo;
  ctx.hi_ = shard.hi;
  ctx.lane_count_ = lane_count_;

  // ---- round loop (SPMD; shard 0 doubles as the coordinator) ----------
  for (;;) {
    sync_->arrive_and_wait();  // all shards idle; previous round complete
    if (s == 0) {
      // Not routed through `guarded`: the decision must run every round
      // even on an errored coordinator shard, or running_ would stay
      // nonzero forever.  Its own failure parks like any other and stops
      // the run directly.
      try {
        coordinate_round_boundary();
      } catch (...) {
        if (shard.error == nullptr) shard.error = std::current_exception();
        failed_.store(true);
        running_ = 0;
      }
    }
    sync_->arrive_and_wait();  // decision visible
    if (running_ == 0) break;

    guarded([&] {
      BEEPMIS_STM_START(faults);
      shard.mis_crashed = detail::apply_plane_fault_events(
          shard.faults, shard.cursor, round_, running_, live_, inmis_, dominated_,
          crashed_, shard.active, in_active_, shard.active_count.data());
      BEEPMIS_STM_STOP(faults);
    });
    sync_->arrive_and_wait();  // fault outcomes visible to the coordinator

    for (unsigned e = 0; e < exchanges_; ++e) {
      if (s == 0) coordinate_exchange_top(e);
      sync_->arrive_and_wait();  // swap + MIS bookkeeping visible

      guarded([&] {
        BEEPMIS_STM_START(emit);
        if (e == 0) {
          detail::clear_flag_range(prev_beeped_.data(), shard.lo, shard.hi,
                                   shard.prev_beepers);
        } else {
          shard.beepers.swap(shard.prev_beepers);
        }
        detail::clear_flag_range(beeped_.data(), shard.lo, shard.hi, shard.beepers);
        ctx.round_ = round_;
        ctx.exchange_ = e;
        ctx.phase_ = BatchContext::Phase::kEmit;
        protocol_->emit(ctx);
        // Kernels emit over the ascending frontier slice, so the list is
        // normally already sorted; keep the guarantee for out-of-order
        // beeps (the delivery passes rely on it).
        if (!std::is_sorted(shard.beepers.begin(), shard.beepers.end())) {
          std::sort(shard.beepers.begin(), shard.beepers.end());
        }
        if (shards_.size() > 1) {
          // Publish only the beeps that can cross a shard line: the
          // cross-shard merge then scans O(boundary beepers) remote
          // entries instead of every remote frontier entry.
          shard.boundary_beepers.clear();
          for (const graph::NodeId v : shard.beepers) {
            if (partition_.is_boundary(v)) shard.boundary_beepers.push_back(v);
          }
        }
        BEEPMIS_STM_STOP(emit);
      });
      sync_->arrive_and_wait();  // all beeper frontiers final

      // Deliver then react with no barrier between: delivery writes only
      // this shard's heard rows and reads only exchange-frozen planes
      // (beeped_, the mis_mask_ snapshot), while react mutates only this
      // shard's status planes — so a shard may react while a neighbour
      // is still delivering.
      guarded([&] {
        BEEPMIS_STM_START(deliver);
        deliver_shard(shard, s);
        BEEPMIS_STM_STOP(deliver);
        BEEPMIS_STM_START(react);
        ctx.phase_ = BatchContext::Phase::kReact;
        protocol_->react(ctx);
        BEEPMIS_STM_STOP(react);
      });
      sync_->arrive_and_wait();  // reacts done; flags may be recycled
    }

    guarded([&] {
      detail::compact_plane_active(shard.active, in_active_, live_);
      if (!shard.reactivated.empty()) {
        // Round-boundary rule shared with the batched core: a reactivated
        // node re-enters the frontier unless still on it.
        for (const graph::NodeId v : shard.reactivated) {
          if (in_active_[v]) continue;
          shard.active.push_back(v);
          in_active_[v] = 1;
        }
        std::sort(shard.active.begin(), shard.active.end());
        shard.reactivated.clear();
      }
    });
  }
  // Common exit: every shard has left the loop, no barrier is pending.
  if (shard.error != nullptr) std::rethrow_exception(shard.error);
}

}  // namespace beepmis::sim

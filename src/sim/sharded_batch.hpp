// Sharded × batched simulator: K contiguous node-range shards execute up
// to 64 statistical-lane trials in parallel — every core (sharding) and
// every bit lane (batching) of one exchange engine.
//
// The batched core (batch.hpp) amortises up to 64 trials over one CSR
// pass but is strictly serial; the sharded core (sharded.hpp) uses K
// cores but runs one trial.  This front-end composes the two: the node
// id space is partitioned into K degree-balanced ranges
// (graph/partition.hpp) and each shard sweeps its own slice of all 64
// lane *planes* per exchange, so a large-n many-trial statistical sweep
// is bounded by memory bandwidth across cores instead of one core's.
//
//   emit     each shard runs the batched kernel's emit over its slice of
//            the union active frontier, bulk planes drawn from its own
//            bulk stream, per-lane draws from its own lane streams;
//   deliver  listener-partitioned: a shard ORs beeped planes only into
//            its own heard rows, pulling first from its local beeper
//            list and then from the other shards' boundary beepers
//            through the partition's per-shard adjacency slices —
//            race-free without atomics;
//   react    each shard runs the kernel's react over its own slice
//            (BatchContext::node_begin/node_end is the shard range);
//   merge    at round boundaries the coordinator (shard 0) merges
//            per-shard MIS joins into the global union, sums per-shard
//            active counts and retires finished lanes with the shared
//            detail::retire_finished_lanes — the same per-lane
//            termination rule every batched front-end uses.
//
// ## RNG contract (kStatisticalLanes only)
//
// The scalar-order contract is unreproducible here twice over: across
// lanes (the batched kScalarOrder draw interleaving) and across shards
// (the sharded kScalarOrder carving is defined for one stream per run,
// not 64).  So this front-end is *statistical-lanes only* — construction
// with kScalarOrder throws — and its determinism contract is: results
// are deterministic per (seed, shard count, lane count), distributed
// like independent scalar runs, but not bit-comparable to any scalar
// seed or other shard count.  Streams are jump()-partitioned per
// (shard, lane): shard s's bulk stream is the base advanced by
// s·(lanes+1) jumps, and its lane-l stream is one more jump per lane —
// disjoint 2^128-output windows for every (shard, lane) pair.  At K = 1
// the lone shard's streams coincide exactly with BatchSimulator's
// statistical seeding, so a one-shard run is bit-identical to the
// batched core (the oracle the tests pin).
//
// Keep-alive reads cross shard lines, so the coordinator snapshots the
// in-MIS planes of the union MIS (mis_mask_) whenever membership
// changes; shards deliver keep-alive from that stable snapshot while
// others are already reacting, which is what makes the
// deliver-then-react sequence barrier-free.
//
// Not supported: kScalarOrder (throws at construction), event traces,
// fault scenarios, recovery tracking — same surface as BatchSimulator.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <exception>
#include <optional>
#include <vector>

#include "graph/partition.hpp"
#include "sim/batch.hpp"

namespace beepmis::sim {

class ShardedBatchSimulator {
 public:
  /// Same bound (and rationale) as ShardedSimulator::kMaxShards: a shard
  /// is a worker thread plus n·(K+1)·4 bytes of partition slice index.
  static constexpr unsigned kMaxShards = 256;

  /// Binds `g` and partitions it into (at most) `shards` contiguous
  /// ranges; `shards` is clamped to [1, n].  Worker threads are spawned
  /// per run, one per shard, through support::run_workers.  Throws
  /// std::invalid_argument for any rng_mode other than
  /// kStatisticalLanes (see the RNG contract above).
  ShardedBatchSimulator(const graph::Graph& g, unsigned shards, SimConfig config = {},
                        BatchRngMode rng_mode = BatchRngMode::kStatisticalLanes);
  /// The simulator stores a reference; a temporary graph would dangle.
  ShardedBatchSimulator(graph::Graph&&, unsigned, SimConfig = {},
                        BatchRngMode = BatchRngMode::kStatisticalLanes) = delete;
  /// Unbound simulator: only usable through the graph-taking run overload.
  explicit ShardedBatchSimulator(unsigned shards, SimConfig config = {},
                                 BatchRngMode rng_mode = BatchRngMode::kStatisticalLanes);

  /// Runs `lanes` (1..kMaxBatchLanes) statistical lanes of `protocol` on
  /// the bound graph to per-lane termination (or the round cap).  Returns
  /// one RunResult per lane; at shard count 1 the results are
  /// bit-identical to BatchSimulator's kStatisticalLanes run with the
  /// same (graph, protocol, base, lanes).
  [[nodiscard]] std::vector<RunResult> run(BatchProtocol& protocol,
                                           support::Xoshiro256StarStar base, unsigned lanes);
  /// Rebinds to `g` (rebuilding the partition and fault schedules; like
  /// the sharded core there is no same-size fast path, because the
  /// partition depends on edge data) and runs.  The caller must keep `g`
  /// alive for the duration of the call.
  [[nodiscard]] std::vector<RunResult> run(const graph::Graph& g, BatchProtocol& protocol,
                                           support::Xoshiro256StarStar base, unsigned lanes);
  std::vector<RunResult> run(graph::Graph&&, BatchProtocol&, support::Xoshiro256StarStar,
                             unsigned) = delete;

  /// The active partition (valid once a graph is bound).
  [[nodiscard]] const graph::Partition& partition() const;
  /// Actual shard count after clamping (valid once a graph is bound).
  [[nodiscard]] unsigned shard_count() const noexcept { return partition_.shard_count(); }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  [[nodiscard]] BatchRngMode rng_mode() const noexcept { return rng_mode_; }

 private:
  /// Per-shard execution state: the shard's slice of the frontier
  /// bookkeeping plus its (shard, lane) rng streams.  Cache-line aligned
  /// so shards hammering their own counters do not false-share.
  struct alignas(64) Shard {
    graph::NodeId lo = 0, hi = 0;
    detail::FaultSchedule faults;
    detail::FaultCursor cursor;
    LaneMask mis_crashed = 0;  ///< lanes whose MIS lost a member this round
    std::vector<graph::NodeId> active;  ///< union frontier, this range only
    std::vector<graph::NodeId> beepers;
    /// beepers filtered to boundary nodes, rebuilt every exchange when
    /// K > 1, so the cross-shard merge scans only beeps that can cross a
    /// shard line.
    std::vector<graph::NodeId> boundary_beepers;
    std::vector<graph::NodeId> prev_beepers;
    std::vector<graph::NodeId> heard_dirty;
    std::vector<graph::NodeId> joined;       ///< new MIS joins this round
    std::vector<graph::NodeId> reactivated;  ///< self-healing, this range
    /// Reliable keep-alive cache: listeners in this range with any
    /// keep-alive lane, masks in the shared mis_hear_mask_ (disjoint
    /// writes per shard).
    std::vector<graph::NodeId> mis_hear;
    bool mis_hear_stale = true;
    bool mis_flag_scratch = false;  ///< context sink; staleness is coordinated
    std::vector<std::uint32_t> active_count;         ///< per lane, this slice
    std::vector<std::uint64_t> reactivation_counts;  ///< per lane, this slice
    support::Xoshiro256StarStar bulk{0};
    std::vector<support::Xoshiro256StarStar> rngs;
    /// First exception this shard's work raised; the shard keeps
    /// arriving at every barrier and the coordinator aborts at the next
    /// round boundary (same discipline as ShardedSimulator::Lane).
    std::exception_ptr error;
  };

  void bind_graph(const graph::Graph& g);
  void shard_worker(unsigned s);
  void coordinate_round_boundary();
  void coordinate_exchange_top(unsigned exchange);
  void deliver_shard(Shard& shard, unsigned s);

  const graph::Graph* graph_ = nullptr;
  unsigned requested_shards_ = 1;
  SimConfig config_;
  BatchRngMode rng_mode_ = BatchRngMode::kStatisticalLanes;
  graph::Partition partition_;
  std::vector<Shard> shards_;

  // Per-node bitplanes (bit l = lane l's flag); each shard touches only
  // its own [lo, hi) rows during parallel phases.
  std::vector<LaneMask> live_;
  std::vector<LaneMask> inmis_;
  std::vector<LaneMask> dominated_;
  std::vector<LaneMask> crashed_;
  std::vector<LaneMask> beeped_;
  std::vector<LaneMask> prev_beeped_;
  std::vector<LaneMask> heard_;
  std::vector<std::uint8_t> in_active_;

  /// Global MIS union (any lane, ever) in join-merge order; mutated only
  /// by the coordinator between parallel phases.
  std::vector<graph::NodeId> mis_union_;
  std::vector<std::uint8_t> in_mis_union_;
  /// Coordinator's snapshot of inmis_ over the union, re-taken whenever
  /// membership changes (joins merged, members crashed): shards read the
  /// snapshot during keep-alive delivery while others are reacting, so
  /// no shard ever reads a remote in-MIS plane mid-mutation.
  std::vector<LaneMask> mis_mask_;
  /// Shared reliable keep-alive masks, per listener; each shard's
  /// mis_hear list owns the entries in its own range.
  std::vector<LaneMask> mis_hear_mask_;

  // Per-(node, lane) and per-lane aggregates.
  std::vector<std::uint32_t> beep_counts_;  ///< node-major, lane_count_ stride
  std::vector<std::size_t> lane_rounds_;
  std::vector<std::uint32_t> global_active_count_;   ///< coordinator's per-lane sums
  std::vector<std::uint64_t> reactivation_totals_;   ///< summed over shards
  LaneMask running_ = 0;
  LaneMask terminated_ = 0;

  // Run-scoped coordination state.
  BatchProtocol* protocol_ = nullptr;
  std::optional<std::barrier<>> sync_;
  std::atomic<bool> failed_{false};
  bool first_pass_ = true;
  bool mis_dirty_ = false;
  bool wakeups_pending_ = false;
  bool lossy_ = false;
  double keep_ = 1.0;
  unsigned exchanges_ = 2;
  unsigned lane_count_ = 0;
  std::size_t round_ = 0;
};

}  // namespace beepmis::sim

// Batched multi-seed beeping simulator: up to 64 independent trials (one
// per bit lane) of the *same* graph and SimConfig advance in lock-step
// through one structure-of-arrays sweep.
//
// Layout: every per-node flag of the scalar BeepSimulator (beeped, heard,
// prev-beeped, live/active, in-MIS, dominated, crashed) becomes a per-node
// std::uint64_t *bitplane* whose bit l is lane l's flag.  A single pass
// over the CSR adjacency then delivers beeps for all lanes at once —
// heard[w] |= beeped[v] is one 8-byte OR where the scalar core performs up
// to 64 separate byte stores — so the trial sweep is memory-bandwidth-bound
// instead of lane-bound.  A union-of-lanes frontier (nodes active in at
// least one lane) drives the activity-bound tail exactly as in the scalar
// core.
//
// Determinism contract: lane l of a batched run is bit-identical to a
// scalar BeepSimulator run with the same (graph, protocol config, rng).
// Each lane owns its own RNG stream and consumes it in exactly the scalar
// order: protocol-reset draws, then per round ascending-id emit draws, then
// (in lossy mode) one Bernoulli per potential delivery in ascending beeper
// order, then keep-alive deliveries in per-lane MIS join order.  Lanes that
// terminate stop consuming randomness and freeze their planes.  See
// src/sim/README.md ("Batched lanes") for the full contract.
//
// Not supported (callers must fall back to the scalar core): event traces,
// round observers, and protocols without a batched kernel
// (BeepProtocol::make_batch_protocol() returns nullptr).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "sim/beep.hpp"
#include "sim/result.hpp"
#include "support/rng.hpp"

namespace beepmis::sim {

/// Width of the bitplanes: one bit per concurrent trial.
inline constexpr unsigned kMaxBatchLanes = 64;

/// One bit per lane; bit l belongs to trial lane l.
using LaneMask = std::uint64_t;

class BatchSimulator;

/// Per-exchange view handed to batched protocols.  Mirrors BeepContext but
/// every query answers for all lanes at once via a LaneMask.
class BatchContext {
 public:
  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] std::size_t round() const noexcept { return round_; }
  [[nodiscard]] unsigned exchange() const noexcept { return exchange_; }
  [[nodiscard]] unsigned lane_count() const noexcept { return lane_count_; }

  /// Union frontier: nodes active in at least one lane, ascending.  Like
  /// the scalar active list it is compacted only at round boundaries, so
  /// entries may have an empty live_mask(); protocols must skip those.
  [[nodiscard]] const std::vector<graph::NodeId>& active_nodes() const noexcept {
    return *active_;
  }

  /// Lanes in which v is active and awake (i.e. on lane l's active list).
  [[nodiscard]] LaneMask live_mask(graph::NodeId v) const { return (*live_)[v]; }
  /// Lanes in which v beeped this exchange (valid during react).
  [[nodiscard]] LaneMask beeped_mask(graph::NodeId v) const { return (*beeped_)[v]; }
  /// Lanes in which v heard at least one beep this exchange (valid during
  /// react; accounts for injected beep loss).
  [[nodiscard]] LaneMask heard_mask(graph::NodeId v) const { return (*heard_)[v]; }
  /// Lanes in which v is dominated (maintenance protocols inspect these
  /// between the usual frontier sweeps; crashed lanes are never dominated).
  [[nodiscard]] LaneMask dominated_mask(graph::NodeId v) const;
  /// Lanes still executing their round loop.  A lane that left the loop
  /// (scalar termination point) has frozen planes; maintenance protocols
  /// must mask any state they keep per round — silence counters,
  /// reactivations — with this, or they would keep mutating lanes whose
  /// scalar run has already returned.
  [[nodiscard]] LaneMask running_mask() const noexcept;

  /// Emit-phase only: v beeps in `lanes` (must be a subset of live_mask(v)).
  /// Beep-episode accounting matches the scalar core: a lane's beep
  /// continuing from the previous exchange of the same round is one episode.
  void beep(graph::NodeId v, LaneMask lanes);
  /// React-phase only: v joins the MIS in `lanes` (subset of live_mask(v)).
  void join_mis(graph::NodeId v, LaneMask lanes);
  /// React-phase only: v becomes dominated in `lanes` (subset of
  /// live_mask(v), disjoint from any lanes joined this call site).
  void deactivate(graph::NodeId v, LaneMask lanes);
  /// React-phase only: *dominated* node v resumes competing in `lanes`
  /// (subset of dominated_mask(v) & running_mask(); self-healing
  /// protocols).  Mirrors the scalar BeepContext::reactivate: takes effect
  /// from the next round, when v rejoins the union active frontier.
  void reactivate(graph::NodeId v, LaneMask lanes);

  /// Lane l's private RNG stream (identical to the scalar run's rng).
  [[nodiscard]] support::Xoshiro256StarStar& rng(unsigned lane) noexcept {
    return (*rngs_)[lane];
  }

 private:
  friend class BatchSimulator;
  enum class Phase { kEmit, kReact };

  const graph::Graph* graph_ = nullptr;
  const std::vector<graph::NodeId>* active_ = nullptr;
  const std::vector<LaneMask>* live_ = nullptr;
  const std::vector<LaneMask>* beeped_ = nullptr;
  const std::vector<LaneMask>* heard_ = nullptr;
  std::vector<support::Xoshiro256StarStar>* rngs_ = nullptr;
  BatchSimulator* simulator_ = nullptr;
  std::size_t round_ = 0;
  unsigned exchange_ = 0;
  unsigned lane_count_ = 0;
  Phase phase_ = Phase::kEmit;
};

/// Batched counterpart of BeepProtocol.  Implementations must reproduce the
/// scalar protocol's per-lane behaviour exactly, including every RNG draw:
/// lane l of reset()/emit()/react() consumes rngs[l] precisely as the
/// scalar protocol would consume its run RNG.
class BatchProtocol {
 public:
  virtual ~BatchProtocol() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual unsigned exchanges_per_round() const = 0;
  /// Called once before each batched run; must fully (re)initialise all
  /// per-lane state.  `rngs[l]` is lane l's stream (draw order per lane
  /// must match the scalar reset).
  virtual void reset(const graph::Graph& g,
                     std::span<support::Xoshiro256StarStar> rngs) = 0;
  /// Decide which (node, lane) pairs beep this exchange (ctx.beep).
  virtual void emit(BatchContext& ctx) = 0;
  /// Observe heard/beeped planes; request joins/deactivations.
  virtual void react(BatchContext& ctx) = 0;
};

/// The batched simulator.  One instance may execute many batches (scratch
/// reused); each run() takes the per-lane RNGs by value, one per trial.
class BatchSimulator {
 public:
  /// record_trace is unsupported in the batched core (throws).
  explicit BatchSimulator(SimConfig config = {});

  /// Runs rngs.size() lanes (1..kMaxBatchLanes) of `protocol` on `g` to
  /// per-lane termination (or the round cap).  Returns one RunResult per
  /// lane, bit-identical to scalar BeepSimulator::run(g, scalar_protocol,
  /// rngs[l]) for every lane l.  The caller must keep `g` alive for the
  /// duration of the call.
  [[nodiscard]] std::vector<RunResult> run(const graph::Graph& g, BatchProtocol& protocol,
                                           std::vector<support::Xoshiro256StarStar> rngs);
  RunResult run(graph::Graph&&, BatchProtocol&,
                std::vector<support::Xoshiro256StarStar>) = delete;

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

 private:
  friend class BatchContext;

  void bind_graph(const graph::Graph& g);
  void apply_wakeups_and_crashes();
  void deliver_beeps();
  void compact_active();

  const graph::Graph* graph_ = nullptr;
  SimConfig config_;
  unsigned lane_count_ = 0;

  // Fault schedules, presorted by (round, node) once per graph binding;
  // identical in shape to the scalar simulator's (the schedule is part of
  // SimConfig and therefore shared by every lane).
  std::vector<std::pair<std::uint32_t, graph::NodeId>> pending_wakeups_;
  std::vector<std::pair<std::uint32_t, graph::NodeId>> pending_crashes_;
  std::vector<graph::NodeId> initial_active_;
  graph::NodeId bound_node_count_ = 0;

  // Per-node bitplanes (bit l = lane l's flag).
  std::vector<LaneMask> live_;       ///< on lane's active list
  std::vector<LaneMask> inmis_;      ///< joined the MIS (live members only)
  std::vector<LaneMask> dominated_;  ///< dominated
  std::vector<LaneMask> crashed_;    ///< fail-stopped
  std::vector<LaneMask> beeped_;
  std::vector<LaneMask> prev_beeped_;
  std::vector<LaneMask> heard_;

  // Union frontiers and dirty lists over the planes.
  std::vector<graph::NodeId> active_;       ///< union active frontier, ascending
  std::vector<std::uint8_t> in_active_;     ///< membership bitmap of active_
  std::vector<graph::NodeId> beepers_;      ///< nodes with any beeped_ bit
  std::vector<graph::NodeId> prev_beepers_;
  std::vector<graph::NodeId> heard_dirty_;  ///< nodes with any heard_ bit
  std::vector<graph::NodeId> mis_union_;    ///< nodes with any inmis_ bit, ever
  std::vector<std::uint8_t> in_mis_union_;
  /// Reliable-channel keep-alive cache (per-lane analogue of the scalar
  /// mis_hear_): node w hears keep-alive in lanes mis_hear_mask_[w], for
  /// each w in mis_hear_.  Re-derived only when any lane's MIS changes, so
  /// a static tail exchange applies one cached (node, mask) list for all
  /// 64 lanes instead of 64 CSR walks.  Unused in lossy mode.
  std::vector<LaneMask> mis_hear_mask_;
  std::vector<graph::NodeId> mis_hear_;
  bool mis_hear_valid_ = false;
  /// Nodes reactivated this round (self-healing); merged into the union
  /// active frontier at the round boundary, like the scalar reactivated_.
  std::vector<graph::NodeId> reactivated_;

  // Per-lane state.
  std::vector<support::Xoshiro256StarStar> rngs_;
  std::vector<std::vector<graph::NodeId>> mis_lists_;  ///< per-lane live MIS, join order
  std::vector<std::uint32_t> active_count_;            ///< per-lane |active list|
  std::vector<std::size_t> lane_rounds_;
  std::vector<std::uint64_t> lane_total_beeps_;
  /// Per-(node, lane) beep episodes, node-major: beep_counts_[v * lanes + l].
  std::vector<std::uint32_t> beep_counts_;
  LaneMask running_ = 0;     ///< lanes still executing their round loop
  LaneMask terminated_ = 0;  ///< lanes that finished with an empty active set

  std::size_t next_wakeup_ = 0;
  std::size_t next_crash_ = 0;
  std::size_t round_ = 0;
  unsigned exchange_ = 0;
};

}  // namespace beepmis::sim

// Batched multi-seed beeping simulator: up to 64 independent trials (one
// per bit lane) of the *same* graph and SimConfig advance in lock-step
// through one structure-of-arrays sweep.
//
// Layout: every per-node flag of the scalar BeepSimulator (beeped, heard,
// prev-beeped, live/active, in-MIS, dominated, crashed) becomes a per-node
// std::uint64_t *bitplane* whose bit l is lane l's flag.  A single pass
// over the CSR adjacency then delivers beeps for all lanes at once —
// heard[w] |= beeped[v] is one 8-byte OR where the scalar core performs up
// to 64 separate byte stores — so the trial sweep is memory-bandwidth-bound
// instead of lane-bound.  A union-of-lanes frontier (nodes active in at
// least one lane) drives the activity-bound tail exactly as in the scalar
// core.
//
// Determinism contract (BatchRngMode::kScalarOrder, the default): lane l
// of a batched run is bit-identical to a scalar BeepSimulator run with the
// same (graph, protocol config, rng).  Each lane owns its own RNG stream
// and consumes it in exactly the scalar order: protocol-reset draws, then
// per round ascending-id emit draws, then (in lossy mode) one Bernoulli
// per potential delivery in ascending beeper order, then keep-alive
// deliveries in per-lane MIS join order.  Lanes that terminate stop
// consuming randomness and freeze their planes.  See src/sim/README.md
// ("Batched lanes") for the full contract.
//
// BatchRngMode::kStatisticalLanes (opt-in) relaxes that contract to
// per-lane *marginal distributions*: the run is seeded by one base stream,
// lane l draws from the base advanced by l+1 jump() calls (deterministic
// per (seed, lane), no scalar draw-order carving), and the base stream
// itself becomes a shared bulk-plane stream from which kernels draw one
// 64-bit word per Bernoulli *plane* — all lanes of a dyadic exponent
// bucket, or all lanes of a lossy edge delivery, decided at once.  Results
// are deterministic per (seed, lane count, mode) but not comparable
// seed-for-seed with scalar runs; see src/sim/README.md ("Statistical
// lanes") for when the trade is sound.
//
// Not supported (callers must fall back to the scalar core): event traces,
// round observers, and protocols without a batched kernel
// (BeepProtocol::make_batch_protocol() returns nullptr).
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "sim/beep.hpp"
#include "sim/exchange_core.hpp"
#include "sim/result.hpp"
#include "support/rng.hpp"

namespace beepmis::sim {

// kMaxBatchLanes and LaneMask live in sim/exchange_core.hpp (included
// above) alongside the plane half of the exchange engine.

class BatchSimulator;
class ShardedBatchSimulator;

/// Per-exchange view handed to batched protocols.  Mirrors BeepContext but
/// every query answers for all lanes at once via a LaneMask.  Like the
/// scalar context it is wired at a *sink*: the batched front-end wires one
/// context covering [0, n); the sharded-batched front-end wires one per
/// Partition slice, which is what lets K shards run one kernel's
/// emit/react concurrently over disjoint node ranges.
class BatchContext {
 public:
  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] std::size_t round() const noexcept { return round_; }
  [[nodiscard]] unsigned exchange() const noexcept { return exchange_; }
  [[nodiscard]] unsigned lane_count() const noexcept { return lane_count_; }

  /// Union frontier: nodes active in at least one lane, ascending.  Like
  /// the scalar active list it is compacted only at round boundaries, so
  /// entries may have an empty live_mask(); protocols must skip those.
  [[nodiscard]] const std::vector<graph::NodeId>& active_nodes() const noexcept {
    return *active_;
  }

  /// The id range [node_begin, node_end) this context may mutate: the whole
  /// graph in the batched core, one shard's slice in the sharded-batched
  /// core.  Kernels whose react scans *all* nodes (not just active ones —
  /// e.g. self-healing silence counters) must restrict that scan to this
  /// range or the sharded-batched core would visit each node K times.
  [[nodiscard]] graph::NodeId node_begin() const noexcept { return lo_; }
  [[nodiscard]] graph::NodeId node_end() const noexcept { return hi_; }

  /// Lanes in which v is active and awake (i.e. on lane l's active list).
  [[nodiscard]] LaneMask live_mask(graph::NodeId v) const { return (*live_)[v]; }
  /// Lanes in which v beeped this exchange (valid during react).
  [[nodiscard]] LaneMask beeped_mask(graph::NodeId v) const { return (*beeped_)[v]; }
  /// Lanes in which v heard at least one beep this exchange (valid during
  /// react; accounts for injected beep loss).
  [[nodiscard]] LaneMask heard_mask(graph::NodeId v) const { return (*heard_)[v]; }
  /// Lanes in which v is dominated (maintenance protocols inspect these
  /// between the usual frontier sweeps; crashed lanes are never dominated).
  [[nodiscard]] LaneMask dominated_mask(graph::NodeId v) const { return (*dominated_)[v]; }
  /// Lanes still executing their round loop.  A lane that left the loop
  /// (scalar termination point) has frozen planes; maintenance protocols
  /// must mask any state they keep per round — silence counters,
  /// reactivations — with this, or they would keep mutating lanes whose
  /// scalar run has already returned.
  [[nodiscard]] LaneMask running_mask() const noexcept { return *running_; }

  /// Emit-phase only: v beeps in `lanes` (must be a subset of live_mask(v)).
  /// Beep-episode accounting matches the scalar core: a lane's beep
  /// continuing from the previous exchange of the same round is one episode.
  void beep(graph::NodeId v, LaneMask lanes);
  /// React-phase only: v joins the MIS in `lanes` (subset of live_mask(v)).
  void join_mis(graph::NodeId v, LaneMask lanes);
  /// React-phase only: v becomes dominated in `lanes` (subset of
  /// live_mask(v), disjoint from any lanes joined this call site).
  void deactivate(graph::NodeId v, LaneMask lanes);
  /// React-phase only: *dominated* node v resumes competing in `lanes`
  /// (subset of dominated_mask(v) & running_mask(); self-healing
  /// protocols).  Mirrors the scalar BeepContext::reactivate: takes effect
  /// from the next round, when v rejoins the union active frontier.
  void reactivate(graph::NodeId v, LaneMask lanes);

  /// Lane l's private RNG stream.  In kScalarOrder mode it is identical to
  /// the scalar run's rng; in kStatisticalLanes mode it is the lane's
  /// jump()-partitioned stream (for draws that cannot be vectorised, e.g.
  /// per-lane heterogeneous probabilities).
  [[nodiscard]] support::Xoshiro256StarStar& rng(unsigned lane) noexcept {
    return (*rngs_)[lane];
  }

  /// The simulator's draw-entropy mode; kernels that vectorise draws must
  /// branch on this (the bulk-plane APIs below throw in kScalarOrder).
  [[nodiscard]] BatchRngMode rng_mode() const noexcept { return rng_mode_; }

  // --- Bulk-plane draws (kStatisticalLanes only) -----------------------
  // One shared stream serves all lanes: every call consumes whole 64-bit
  // outputs, bit l of a plane is an independent fair bit for lane l.  The
  // draw *count* of the masked variants depends on the mask (early exit
  // once every requested lane is decided), which is fine — statistical
  // mode has no draw-order contract — but it is why results depend on the
  // lane count as well as the seed.

  /// 64 independent fair bits, one per lane (callers mask as needed).
  [[nodiscard]] LaneMask random_plane();
  /// Independent Bernoulli(2^-k) bits for the lanes in `lanes` (zero
  /// elsewhere): the AND of k planes, early-exiting once no requested lane
  /// survives, so the expected cost is min(k, ~log2(popcount(lanes)) + 1)
  /// draws.  k >= 1075 returns the empty plane without drawing, matching
  /// bernoulli_pow2's underflow-to-never endpoint.
  [[nodiscard]] LaneMask bernoulli_plane_pow2(unsigned k, LaneMask lanes);
  /// Independent Bernoulli(p) bits for the lanes in `lanes`: each lane's
  /// uniform bit stream is compared against the binary expansion of p and
  /// the first differing bit decides, so the draw is exact for every
  /// double p at ~log2(popcount(lanes)) + 2 expected planes — where the
  /// scalar path spends popcount(lanes) serially dependent rng() calls.
  [[nodiscard]] LaneMask bernoulli_plane(double p, LaneMask lanes);

 private:
  friend class BatchSimulator;
  friend class ShardedBatchSimulator;
  enum class Phase { kEmit, kReact };

  // The context is a bundle of direct pointers into its front-end's
  // bookkeeping (no simulator backpointer): the batched core wires one
  // context at its global arrays; the sharded-batched core wires one per
  // shard, pointing the mutable lists (beepers, joins, reactivations,
  // active counts) at per-shard storage while the planes stay global
  // (each shard writes only its own [lo, hi) rows).
  const graph::Graph* graph_ = nullptr;
  const std::vector<graph::NodeId>* active_ = nullptr;
  std::vector<LaneMask>* live_ = nullptr;
  std::vector<LaneMask>* inmis_ = nullptr;
  std::vector<LaneMask>* dominated_ = nullptr;
  std::vector<LaneMask>* beeped_ = nullptr;
  const std::vector<LaneMask>* prev_beeped_ = nullptr;
  const std::vector<LaneMask>* heard_ = nullptr;
  std::vector<graph::NodeId>* beepers_ = nullptr;
  std::uint32_t* beep_counts_ = nullptr;  ///< node-major, lane_count_ stride
  std::uint32_t* active_count_ = nullptr;  ///< per-lane, this context's slice
  /// Per-lane live-MIS join-order lists; nullptr when the front-end does
  /// not maintain them (the sharded-batched core is statistical-only, so
  /// nothing consumes join order).
  std::vector<std::vector<graph::NodeId>>* mis_lists_ = nullptr;
  /// Where join_mis records new members: the global union list (batched
  /// core, deduplicated through in_mis_union_) or a per-shard new-joins
  /// list merged at the round boundary (sharded-batched core, dedup at the
  /// coordinator; in_mis_union_ is nullptr there).
  std::vector<graph::NodeId>* mis_joins_ = nullptr;
  std::vector<std::uint8_t>* in_mis_union_ = nullptr;
  bool* mis_hear_valid_ = nullptr;
  std::vector<graph::NodeId>* reactivated_ = nullptr;
  std::uint64_t* reactivation_counts_ = nullptr;  ///< per-lane
  const LaneMask* running_ = nullptr;
  /// Bulk-plane stream (kStatisticalLanes): the batched core's base
  /// stream, or this shard's own bulk stream in the sharded-batched core.
  support::Xoshiro256StarStar* bulk_rng_ = nullptr;
  std::vector<support::Xoshiro256StarStar>* rngs_ = nullptr;
  BatchRngMode rng_mode_ = BatchRngMode::kScalarOrder;
  graph::NodeId lo_ = 0, hi_ = 0;
  std::size_t round_ = 0;
  unsigned exchange_ = 0;
  unsigned lane_count_ = 0;
  Phase phase_ = Phase::kEmit;
};

/// Batched counterpart of BeepProtocol.  Implementations must reproduce the
/// scalar protocol's per-lane behaviour exactly, including every RNG draw:
/// lane l of reset()/emit()/react() consumes rngs[l] precisely as the
/// scalar protocol would consume its run RNG.
class BatchProtocol {
 public:
  virtual ~BatchProtocol() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual unsigned exchanges_per_round() const = 0;
  /// Called once before each batched run; must fully (re)initialise all
  /// per-lane state.  `rngs[l]` is lane l's stream (draw order per lane
  /// must match the scalar reset).
  virtual void reset(const graph::Graph& g,
                     std::span<support::Xoshiro256StarStar> rngs) = 0;
  /// Decide which (node, lane) pairs beep this exchange (ctx.beep).
  virtual void emit(BatchContext& ctx) = 0;
  /// Observe heard/beeped planes; request joins/deactivations.
  virtual void react(BatchContext& ctx) = 0;
};

/// The batched simulator.  One instance may execute many batches (scratch
/// reused); each run() takes the per-lane RNGs by value, one per trial.
class BatchSimulator {
 public:
  /// record_trace is unsupported in the batched core (throws).
  explicit BatchSimulator(SimConfig config = {},
                          BatchRngMode rng_mode = BatchRngMode::kScalarOrder);

  /// kScalarOrder only (throws std::logic_error otherwise): runs
  /// rngs.size() lanes (1..kMaxBatchLanes) of `protocol` on `g` to
  /// per-lane termination (or the round cap).  Returns one RunResult per
  /// lane, bit-identical to scalar BeepSimulator::run(g, scalar_protocol,
  /// rngs[l]) for every lane l.  The caller must keep `g` alive for the
  /// duration of the call.
  [[nodiscard]] std::vector<RunResult> run(const graph::Graph& g, BatchProtocol& protocol,
                                           std::vector<support::Xoshiro256StarStar> rngs);
  RunResult run(graph::Graph&&, BatchProtocol&,
                std::vector<support::Xoshiro256StarStar>) = delete;

  /// kStatisticalLanes only (throws std::logic_error otherwise): runs
  /// `lanes` lanes seeded from one base stream — lane l draws from `base`
  /// advanced by l+1 jump() calls, and `base` itself becomes the shared
  /// bulk-plane stream — so lane l's stream depends only on (seed, l).
  /// Per-lane results are distributed like independent scalar runs but are
  /// not bit-comparable to any scalar seed; they are deterministic per
  /// (seed, lane count).
  [[nodiscard]] std::vector<RunResult> run(const graph::Graph& g, BatchProtocol& protocol,
                                           support::Xoshiro256StarStar base, unsigned lanes);
  RunResult run(graph::Graph&&, BatchProtocol&, support::Xoshiro256StarStar,
                unsigned) = delete;

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  [[nodiscard]] BatchRngMode rng_mode() const noexcept { return rng_mode_; }

 private:
  friend class BatchContext;

  void bind_graph(const graph::Graph& g);
  void apply_wakeups_and_crashes();
  void deliver_beeps();
  void compact_active();
  [[nodiscard]] std::vector<RunResult> run_lanes(
      const graph::Graph& g, BatchProtocol& protocol,
      std::vector<support::Xoshiro256StarStar> rngs);

  const graph::Graph* graph_ = nullptr;
  SimConfig config_;
  BatchRngMode rng_mode_ = BatchRngMode::kScalarOrder;
  /// Shared bulk-plane stream (kStatisticalLanes only): the run's base
  /// stream, disjoint from every jump()-partitioned lane stream for the
  /// first 2^128 outputs.
  support::Xoshiro256StarStar bulk_rng_{0};
  unsigned lane_count_ = 0;

  /// Fault schedule (presorted events + round-0 frontier), built once per
  /// graph binding — the same detail::FaultSchedule the scalar and sharded
  /// cores walk; the schedule is part of SimConfig and therefore shared by
  /// every lane.
  detail::FaultSchedule faults_;
  detail::FaultCursor fault_cursor_;
  graph::NodeId bound_node_count_ = 0;

  // Per-node bitplanes (bit l = lane l's flag).
  std::vector<LaneMask> live_;       ///< on lane's active list
  std::vector<LaneMask> inmis_;      ///< joined the MIS (live members only)
  std::vector<LaneMask> dominated_;  ///< dominated
  std::vector<LaneMask> crashed_;    ///< fail-stopped
  std::vector<LaneMask> beeped_;
  std::vector<LaneMask> prev_beeped_;
  std::vector<LaneMask> heard_;

  // Union frontiers and dirty lists over the planes.
  std::vector<graph::NodeId> active_;       ///< union active frontier, ascending
  std::vector<std::uint8_t> in_active_;     ///< membership bitmap of active_
  std::vector<graph::NodeId> beepers_;      ///< nodes with any beeped_ bit
  std::vector<graph::NodeId> prev_beepers_;
  std::vector<graph::NodeId> heard_dirty_;  ///< nodes with any heard_ bit
  std::vector<graph::NodeId> mis_union_;    ///< nodes with any inmis_ bit, ever
  std::vector<std::uint8_t> in_mis_union_;
  /// Reliable-channel keep-alive cache (per-lane analogue of the scalar
  /// mis_hear_): node w hears keep-alive in lanes mis_hear_mask_[w], for
  /// each w in mis_hear_.  Re-derived only when any lane's MIS changes, so
  /// a static tail exchange applies one cached (node, mask) list for all
  /// 64 lanes instead of 64 CSR walks.  Unused in lossy mode.
  std::vector<LaneMask> mis_hear_mask_;
  std::vector<graph::NodeId> mis_hear_;
  bool mis_hear_valid_ = false;
  /// Nodes reactivated this round (self-healing); merged into the union
  /// active frontier at the round boundary, like the scalar reactivated_.
  std::vector<graph::NodeId> reactivated_;

  // Per-lane state.
  std::vector<support::Xoshiro256StarStar> rngs_;
  std::vector<std::vector<graph::NodeId>> mis_lists_;  ///< per-lane live MIS, join order
  std::vector<std::uint32_t> active_count_;            ///< per-lane |active list|
  std::vector<std::size_t> lane_rounds_;
  /// Per-(node, lane) beep episodes, node-major: beep_counts_[v * lanes + l].
  std::vector<std::uint32_t> beep_counts_;
  std::vector<std::uint64_t> reactivation_counts_;  ///< per lane (self-healing)
  LaneMask running_ = 0;     ///< lanes still executing their round loop
  LaneMask terminated_ = 0;  ///< lanes that finished with an empty active set

  std::size_t round_ = 0;
  unsigned exchange_ = 0;
};

// --- Inline hot paths -------------------------------------------------------
// BatchContext::beep and the bulk-plane draws run once per (node, exchange)
// or per exponent chunk in the kernel sweeps; defining them here lets the
// kernel translation units inline them.  The plane arithmetic itself lives
// in sim/exchange_core.hpp (detail::plane_bernoulli*), shared with the
// sharded-batched front-end; these wrappers add only the mode check.

inline LaneMask BatchContext::random_plane() {
  if (rng_mode_ != BatchRngMode::kStatisticalLanes) {
    throw std::logic_error("BatchContext::random_plane requires kStatisticalLanes");
  }
  return (*bulk_rng_)();
}

inline LaneMask BatchContext::bernoulli_plane_pow2(unsigned k, LaneMask lanes) {
  if (rng_mode_ != BatchRngMode::kStatisticalLanes) {
    throw std::logic_error("BatchContext::bernoulli_plane_pow2 requires kStatisticalLanes");
  }
  return detail::plane_bernoulli_pow2(*bulk_rng_, k, lanes);
}

inline LaneMask BatchContext::bernoulli_plane(double p, LaneMask lanes) {
  if (rng_mode_ != BatchRngMode::kStatisticalLanes) {
    throw std::logic_error("BatchContext::bernoulli_plane requires kStatisticalLanes");
  }
  return detail::plane_bernoulli(*bulk_rng_, p, lanes);
}

inline void BatchContext::beep(graph::NodeId v, LaneMask lanes) {
  if (phase_ != Phase::kEmit) {
    throw std::logic_error("BatchContext::beep called outside the emit phase");
  }
  if (v < lo_ || v >= hi_ || (lanes & ~(*live_)[v]) != 0) {
    throw std::logic_error(
        "BatchContext::beep outside the node's live lanes or this shard's range");
  }
  LaneMask& plane = (*beeped_)[v];
  const LaneMask fresh = lanes & ~plane;
  if (!fresh) return;
  if (!plane) beepers_->push_back(v);
  plane |= fresh;
  // Scalar episode rule: a beep continuing from the previous exchange of
  // the same round is one signal episode, not two.  Per-lane episode
  // *totals* are derived from these counts at extraction time, so each
  // episode costs exactly one scatter increment here.
  std::uint32_t* counts = &beep_counts_[static_cast<std::size_t>(v) * lane_count_];
  for (LaneMask b = fresh & ~(*prev_beeped_)[v]; b != 0; b &= b - 1) {
    ++counts[std::countr_zero(b)];
  }
}

}  // namespace beepmis::sim

#include "sim/beep.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/batch.hpp"
#include "sim/exchange_core.hpp"
#include "sim/flag_buffer.hpp"
#include "support/phase_timer.hpp"

namespace beepmis::sim {

std::unique_ptr<BatchProtocol> BeepProtocol::make_batch_protocol(BatchRngMode /*mode*/) const {
  return nullptr;
}

std::unique_ptr<BatchProtocol> BeepProtocol::make_batch_protocol() const {
  return make_batch_protocol(BatchRngMode::kScalarOrder);
}

ShardSupport BeepProtocol::shard_support() const { return {}; }

void BeepContext::beep(graph::NodeId v) {
  if (phase_ != Phase::kEmit) {
    throw std::logic_error("BeepContext::beep called outside the emit phase");
  }
  if (v >= status_->size() || (*status_)[v] != NodeStatus::kActive) {
    throw std::logic_error("BeepContext::beep on an inactive or invalid node");
  }
  if (v < sink_->lo || v >= sink_->hi) {
    throw std::logic_error("BeepContext::beep on a node outside this shard's range");
  }
  if (!(*beeped_)[v]) {
    (*beeped_)[v] = 1;
    sink_->beepers->push_back(v);
    // A signal continuing from the previous exchange is one episode (see
    // beep() documentation in the header).
    if (!(*prev_beeped_)[v]) {
      ++(*sink_->beep_counts)[v];
      ++*sink_->total_beeps;
      if (sink_->trace != nullptr) {
        sink_->trace->record({static_cast<std::uint32_t>(round_),
                              static_cast<std::uint8_t>(exchange_), EventKind::kBeep, v});
      }
    }
  }
}

void BeepContext::join_mis(graph::NodeId v) {
  if (phase_ != Phase::kReact) {
    throw std::logic_error("BeepContext::join_mis called outside the react phase");
  }
  if (v >= status_->size() || (*status_)[v] != NodeStatus::kActive) {
    throw std::logic_error("BeepContext::join_mis on an inactive or invalid node");
  }
  if (v < sink_->lo || v >= sink_->hi) {
    throw std::logic_error("BeepContext::join_mis on a node outside this shard's range");
  }
  (*status_)[v] = NodeStatus::kInMis;
  sink_->mis_joins->push_back(v);
  *sink_->mis_hear_valid = false;
  if (sink_->trace != nullptr) {
    sink_->trace->record({static_cast<std::uint32_t>(round_),
                          static_cast<std::uint8_t>(exchange_), EventKind::kJoinMis, v});
  }
}

void BeepContext::deactivate(graph::NodeId v) {
  if (phase_ != Phase::kReact) {
    throw std::logic_error("BeepContext::deactivate called outside the react phase");
  }
  if (v >= status_->size() || (*status_)[v] != NodeStatus::kActive) {
    throw std::logic_error("BeepContext::deactivate on an inactive or invalid node");
  }
  if (v < sink_->lo || v >= sink_->hi) {
    throw std::logic_error("BeepContext::deactivate on a node outside this shard's range");
  }
  (*status_)[v] = NodeStatus::kDominated;
  if (sink_->trace != nullptr) {
    sink_->trace->record({static_cast<std::uint32_t>(round_),
                          static_cast<std::uint8_t>(exchange_), EventKind::kDeactivate, v});
  }
}

void BeepContext::reactivate(graph::NodeId v) {
  if (phase_ != Phase::kReact) {
    throw std::logic_error("BeepContext::reactivate called outside the react phase");
  }
  if (v >= status_->size() || (*status_)[v] != NodeStatus::kDominated) {
    throw std::logic_error("BeepContext::reactivate on a non-dominated node");
  }
  if (v < sink_->lo || v >= sink_->hi) {
    throw std::logic_error("BeepContext::reactivate on a node outside this shard's range");
  }
  (*status_)[v] = NodeStatus::kActive;
  sink_->reactivated->push_back(v);
  ++sink_->reactivations;
  if (sink_->trace != nullptr) {
    sink_->trace->record({static_cast<std::uint32_t>(round_),
                          static_cast<std::uint8_t>(exchange_), EventKind::kReactivate, v});
  }
}

BeepSimulator::BeepSimulator(SimConfig config) : config_(std::move(config)) {
  if (config_.beep_loss_probability < 0.0 || config_.beep_loss_probability >= 1.0) {
    throw std::invalid_argument("SimConfig: beep_loss_probability must be in [0, 1)");
  }
}

BeepSimulator::BeepSimulator(const graph::Graph& g, SimConfig config)
    : BeepSimulator(std::move(config)) {
  bind_graph(g);
}

void BeepSimulator::bind_graph(const graph::Graph& g) {
  const graph::NodeId n = g.node_count();
  // The schedules below depend only on (config_, n), never on edge data,
  // and config_ is immutable after construction — so a rebind to any graph
  // of the same size (the shared-graph trial loop, or equally-sized
  // per-trial graphs) skips the O(n log n) rebuild.  graph_ may dangle
  // between trials, which is why the check uses the cached size.
  if (graph_ != nullptr && n == bound_node_count_) {
    graph_ = &g;
    return;
  }
  if (!config_.wake_round.empty() && config_.wake_round.size() != n) {
    throw std::invalid_argument("SimConfig: wake_round size must match the graph");
  }
  if (!config_.crash_round.empty() && config_.crash_round.size() != n) {
    throw std::invalid_argument("SimConfig: crash_round size must match the graph");
  }
  graph_ = &g;
  faults_ = detail::build_fault_schedule(config_.wake_round, config_.crash_round, 0, n);
  bound_node_count_ = n;
}

void BeepSimulator::deliver_beeps(support::Xoshiro256StarStar& rng) {
  detail::clear_flags(heard_, heard_dirty_);

  const bool lossy = config_.beep_loss_probability > 0.0;
  const double keep = 1.0 - config_.beep_loss_probability;
  // Protocols emit over the ascending active list, so the frontier is
  // normally already sorted; the check keeps the guarantee (and therefore
  // lossy-mode RNG draw order) for protocols that beep out of order.
  if (!std::is_sorted(beepers_.begin(), beepers_.end())) {
    std::sort(beepers_.begin(), beepers_.end());
  }
  const auto full_adjacency = [this](graph::NodeId v) { return graph_->neighbors(v); };
  const auto mark_heard = [this](graph::NodeId w) {
    heard_[w] = 1;
    heard_dirty_.push_back(w);
  };
  detail::deliver_from_beepers(beepers_, in_active_, full_adjacency, heard_.data(), lossy,
                               keep, &rng, mark_heard);
  if (config_.mis_keepalive) {
    // Members of the independent set beep forever (DISC'11 wake-up rule).
    // mis_nodes_ holds only live members in join order: a crashed member is
    // compacted out the round it fails, so no status check is needed here.
    if (lossy) {
      detail::deliver_keepalive_lossy(mis_nodes_, full_adjacency, heard_.data(), keep, rng,
                                      mark_heard);
    } else {
      // Reliable channel: keep-alive only ever sets heard on the fixed
      // neighbour set of the live MIS, so cache that set (deduplicated)
      // and re-derive it only when the MIS frontier changes.  A static
      // tail exchange then costs O(|N(MIS)|) instead of O(sum deg of MIS).
      if (!mis_hear_valid_) {
        detail::clear_flags(in_mis_hear_, mis_hear_);
        detail::extend_mis_hear(mis_nodes_, 0, full_adjacency, in_mis_hear_, mis_hear_);
        mis_hear_valid_ = true;
      }
      for (const graph::NodeId w : mis_hear_) {
        if (heard_[w]) continue;
        heard_[w] = 1;
        heard_dirty_.push_back(w);
      }
    }
  }
}

void BeepSimulator::compact_active() {
  detail::compact_active(active_, in_active_, status_);
}

detail::FaultOutcome BeepSimulator::apply_wakeups_and_crashes() {
  const auto trace_wake = [this](graph::NodeId v) {
    if (trace_enabled_) {
      trace_.record({static_cast<std::uint32_t>(round_), 0, EventKind::kWake, v});
    }
  };
  const auto trace_crash = [this](graph::NodeId v) {
    if (trace_enabled_) {
      trace_.record({static_cast<std::uint32_t>(round_), 0, EventKind::kCrash, v});
    }
  };
  const detail::FaultOutcome outcome = detail::apply_fault_events(
      faults_, fault_cursor_, round_, status_, active_, in_active_, trace_wake, trace_crash);
  if (outcome.mis_crashed) {
    std::erase_if(mis_nodes_,
                  [this](graph::NodeId v) { return status_[v] != NodeStatus::kInMis; });
    mis_hear_valid_ = false;
  }
  if (outcome.active_crashed) compact_active();
  return outcome;
}

bool BeepSimulator::apply_scenario_events() {
  scenario_events_.clear();
  const ScenarioView view{*graph_, round_, status_, active_, mis_nodes_};
  config_.scenario->on_round(view, scenario_events_);
  if (scenario_events_.empty()) return false;

  const graph::NodeId n = graph_->node_count();
  // Application order is a driver guarantee, not an emission obligation:
  // wakes, then crashes, then revives, ascending node id within each kind.
  std::sort(scenario_events_.begin(), scenario_events_.end(),
            [](const ScenarioEvent& a, const ScenarioEvent& b) {
              return a.kind != b.kind ? a.kind < b.kind : a.node < b.node;
            });
  bool active_dirty = false;
  bool active_crashed = false;
  bool mis_crashed = false;
  bool revived = false;
  for (const ScenarioEvent& e : scenario_events_) {
    const graph::NodeId v = e.node;
    if (v >= n) {
      throw std::invalid_argument("fault scenario emitted an out-of-range node id");
    }
    switch (e.kind) {
      case ScenarioEventKind::kWake:
        // Early wake of a still-sleeping node; awake or decided nodes are
        // a defined no-op (the legacy wake queue's in_active guard later
        // skips the node it no longer needs to wake).
        if (status_[v] != NodeStatus::kActive || in_active_[v]) break;
        active_.push_back(v);
        in_active_[v] = 1;
        active_dirty = true;
        if (trace_enabled_) {
          trace_.record({static_cast<std::uint32_t>(round_), 0, EventKind::kWake, v});
        }
        break;
      case ScenarioEventKind::kCrash:
        if (status_[v] == NodeStatus::kCrashed) break;  // crash-while-crashed: no-op
        active_crashed = active_crashed || status_[v] == NodeStatus::kActive;
        mis_crashed = mis_crashed || status_[v] == NodeStatus::kInMis;
        status_[v] = NodeStatus::kCrashed;
        if (trace_enabled_) {
          trace_.record({static_cast<std::uint32_t>(round_), 0, EventKind::kCrash, v});
        }
        break;
      case ScenarioEventKind::kRevive:
        if (status_[v] != NodeStatus::kCrashed) break;  // revive-while-alive: no-op
        status_[v] = NodeStatus::kActive;
        active_.push_back(v);
        in_active_[v] = 1;
        active_dirty = true;
        revived = true;
        if (trace_enabled_) {
          trace_.record({static_cast<std::uint32_t>(round_), 0, EventKind::kRevive, v});
        }
        break;
    }
  }
  if (mis_crashed) {
    std::erase_if(mis_nodes_,
                  [this](graph::NodeId v) { return status_[v] != NodeStatus::kInMis; });
    mis_hear_valid_ = false;
  }
  if (active_crashed) compact_active();
  if (active_dirty) std::sort(active_.begin(), active_.end());
  return mis_crashed || revived;
}

void BeepSimulator::update_recovery(bool state_may_have_changed) {
  if (state_may_have_changed) recovery_dirty_ = true;
  if (open_disruptions_.empty()) return;
  if (!active_.empty() || fault_cursor_.next_wakeup < faults_.wakeups.size()) return;
  if (recovery_dirty_) {
    recovery_valid_ = quiescent_state_valid();
    recovery_dirty_ = false;
  }
  if (!recovery_valid_) return;
  // Quiescent and valid at the end of round round_: every open disruption
  // recovered within (round_ + 1 - start) rounds.
  const auto close = static_cast<std::uint32_t>(round_ + 1);
  for (const std::uint32_t start : open_disruptions_) {
    recovery_rounds_.push_back(close - start);
  }
  open_disruptions_.clear();
}

bool BeepSimulator::quiescent_state_valid() const {
  const graph::Graph& g = *graph_;
  const graph::NodeId n = g.node_count();
  for (graph::NodeId v = 0; v < n; ++v) {
    switch (status_[v]) {
      case NodeStatus::kActive:
        return false;  // undecided (or still asleep) node
      case NodeStatus::kCrashed:
        break;  // exempt, like mis::verify_mis_run
      case NodeStatus::kInMis:
        for (const graph::NodeId w : g.neighbors(v)) {
          if (status_[w] == NodeStatus::kInMis) return false;  // independence
        }
        break;
      case NodeStatus::kDominated: {
        bool covered = false;
        for (const graph::NodeId w : g.neighbors(v)) {
          if (status_[w] == NodeStatus::kInMis) {
            covered = true;
            break;
          }
        }
        if (!covered) return false;  // lost its cover
        break;
      }
    }
  }
  return true;
}

RunResult BeepSimulator::run(const graph::Graph& g, BeepProtocol& protocol,
                             support::Xoshiro256StarStar rng) {
  // Always rebind: the caller may have rebuilt a different graph at the
  // same address (the trial runner's per-trial local does exactly that).
  bind_graph(g);
  return run(protocol, std::move(rng));
}

RunResult BeepSimulator::run(BeepProtocol& protocol, support::Xoshiro256StarStar rng) {
  if (graph_ == nullptr) {
    throw std::logic_error("BeepSimulator::run: no graph bound");
  }
  const graph::NodeId n = graph_->node_count();
  status_.assign(n, NodeStatus::kActive);
  beep_counts_.assign(n, 0);
  if (beeped_.size() != n) {
    beeped_.assign(n, 0);
    prev_beeped_.assign(n, 0);
    heard_.assign(n, 0);
    in_active_.assign(n, 0);
    in_mis_hear_.assign(n, 0);
    beepers_.clear();
    prev_beepers_.clear();
    heard_dirty_.clear();
    mis_hear_.clear();
  } else {
    // Same-size rerun: restore the all-zero invariant in O(touched) by
    // undoing exactly what the previous run left dirty.
    detail::clear_flags(beeped_, beepers_);
    detail::clear_flags(prev_beeped_, prev_beepers_);
    detail::clear_flags(heard_, heard_dirty_);
    detail::clear_flags(in_mis_hear_, mis_hear_);
    for (const graph::NodeId v : active_) in_active_[v] = 0;
  }
  mis_nodes_.clear();
  mis_hear_valid_ = false;
  reactivated_.clear();
  total_beeps_ = 0;
  round_ = 0;
  trace_.clear();
  trace_enabled_ = config_.record_trace;

  active_ = faults_.initial_active;
  for (const graph::NodeId v : active_) in_active_[v] = 1;
  fault_cursor_ = {};
  open_disruptions_.clear();
  recovery_rounds_.clear();
  recovery_dirty_ = true;
  recovery_valid_ = false;
  if (config_.scenario != nullptr) config_.scenario->reset(*graph_);

  protocol.reset(*graph_, rng);
  // Read after reset: protocols may size their exchange count to the graph.
  const unsigned exchanges = protocol.exchanges_per_round();
  if (exchanges == 0) throw std::logic_error("protocol declares zero exchanges per round");

  detail::MutationSink sink;
  sink.beepers = &beepers_;
  sink.beep_counts = &beep_counts_;
  sink.total_beeps = &total_beeps_;
  sink.mis_joins = &mis_nodes_;
  sink.mis_hear_valid = &mis_hear_valid_;
  sink.reactivated = &reactivated_;
  sink.trace = trace_enabled_ ? &trace_ : nullptr;
  sink.lo = 0;
  sink.hi = n;

  BeepContext ctx;
  ctx.graph_ = graph_;
  ctx.active_ = &active_;
  ctx.status_ = &status_;
  ctx.beeped_ = &beeped_;
  ctx.prev_beeped_ = &prev_beeped_;
  ctx.heard_ = &heard_;
  ctx.rng_ = &rng;
  ctx.sink_ = &sink;

  BEEPMIS_STM_DECLARE(faults, "beep/faults");
  BEEPMIS_STM_DECLARE(emit, "beep/emit");
  BEEPMIS_STM_DECLARE(deliver, "beep/deliver");
  BEEPMIS_STM_DECLARE(react, "beep/react");

  while ((!active_.empty() || fault_cursor_.next_wakeup < faults_.wakeups.size() ||
          round_ < config_.run_until_round) &&
         round_ < config_.max_rounds) {
    if (config_.deadline_ns != nullptr &&
        steady_now_ns() > config_.deadline_ns->load(std::memory_order_relaxed)) {
      throw RunCancelled("BeepSimulator::run: deadline expired at round " +
                         std::to_string(round_));
    }
    BEEPMIS_STM_START(faults);
    const detail::FaultOutcome outcome = apply_wakeups_and_crashes();
    bool disruptive = outcome.mis_crashed;
    if (config_.scenario != nullptr) {
      disruptive = apply_scenario_events() || disruptive;
    }
    BEEPMIS_STM_STOP(faults);
    if (config_.track_recovery && disruptive) {
      open_disruptions_.push_back(static_cast<std::uint32_t>(round_));
    }
    const bool had_active = !active_.empty();

    for (exchange_ = 0; exchange_ < exchanges; ++exchange_) {
      if (exchange_ == 0) {
        // Round start: both flag buffers must read all-zero.
        detail::clear_flags(prev_beeped_, prev_beepers_);
      } else {
        // The previous exchange's beeps become prev_beeped_ by swapping
        // buffers instead of copying n bytes.
        beeped_.swap(prev_beeped_);
        beepers_.swap(prev_beepers_);
      }
      detail::clear_flags(beeped_, beepers_);
      ctx.round_ = round_;
      ctx.exchange_ = exchange_;

      ctx.phase_ = BeepContext::Phase::kEmit;
      BEEPMIS_STM_START(emit);
      protocol.emit(ctx);
      BEEPMIS_STM_STOP(emit);

      BEEPMIS_STM_START(deliver);
      deliver_beeps(rng);
      BEEPMIS_STM_STOP(deliver);

      ctx.phase_ = BeepContext::Phase::kReact;
      BEEPMIS_STM_START(react);
      protocol.react(ctx);
      BEEPMIS_STM_STOP(react);
    }
    compact_active();
    detail::merge_reactivated(active_, in_active_, reactivated_);
    if (observer_) {
      ctx.phase_ = BeepContext::Phase::kObserve;
      observer_(ctx);
    }
    if (config_.track_recovery) update_recovery(had_active || disruptive);
    ++round_;
  }

  RunResult result;
  result.terminated =
      active_.empty() && fault_cursor_.next_wakeup >= faults_.wakeups.size();
  result.rounds = round_;
  result.status = std::move(status_);
  result.beep_counts = std::move(beep_counts_);
  result.total_beeps = total_beeps_;
  result.recovery_rounds = std::move(recovery_rounds_);
  result.unrecovered_disruptions = open_disruptions_.size();
  result.reactivations = sink.reactivations;
  return result;
}

}  // namespace beepmis::sim

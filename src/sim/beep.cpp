#include "sim/beep.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/batch.hpp"
#include "sim/flag_buffer.hpp"

namespace beepmis::sim {

std::unique_ptr<BatchProtocol> BeepProtocol::make_batch_protocol() const { return nullptr; }

void BeepContext::beep(graph::NodeId v) {
  if (phase_ != Phase::kEmit) {
    throw std::logic_error("BeepContext::beep called outside the emit phase");
  }
  if (v >= status_->size() || (*status_)[v] != NodeStatus::kActive) {
    throw std::logic_error("BeepContext::beep on an inactive or invalid node");
  }
  if (!(*beeped_)[v]) {
    (*beeped_)[v] = 1;
    simulator_->beepers_.push_back(v);
    // A signal continuing from the previous exchange is one episode (see
    // beep() documentation in the header).
    if (!(*prev_beeped_)[v]) {
      ++simulator_->beep_counts_[v];
      ++simulator_->total_beeps_;
      if (simulator_->trace_enabled_) {
        simulator_->trace_.record({static_cast<std::uint32_t>(round_),
                                   static_cast<std::uint8_t>(exchange_), EventKind::kBeep,
                                   v});
      }
    }
  }
}

void BeepContext::join_mis(graph::NodeId v) {
  if (phase_ != Phase::kReact) {
    throw std::logic_error("BeepContext::join_mis called outside the react phase");
  }
  if (v >= status_->size() || (*status_)[v] != NodeStatus::kActive) {
    throw std::logic_error("BeepContext::join_mis on an inactive or invalid node");
  }
  (*status_)[v] = NodeStatus::kInMis;
  simulator_->mis_nodes_.push_back(v);
  simulator_->mis_hear_valid_ = false;
  if (simulator_->trace_enabled_) {
    simulator_->trace_.record({static_cast<std::uint32_t>(round_),
                               static_cast<std::uint8_t>(exchange_), EventKind::kJoinMis, v});
  }
}

void BeepContext::deactivate(graph::NodeId v) {
  if (phase_ != Phase::kReact) {
    throw std::logic_error("BeepContext::deactivate called outside the react phase");
  }
  if (v >= status_->size() || (*status_)[v] != NodeStatus::kActive) {
    throw std::logic_error("BeepContext::deactivate on an inactive or invalid node");
  }
  (*status_)[v] = NodeStatus::kDominated;
  if (simulator_->trace_enabled_) {
    simulator_->trace_.record({static_cast<std::uint32_t>(round_),
                               static_cast<std::uint8_t>(exchange_), EventKind::kDeactivate,
                               v});
  }
}

void BeepContext::reactivate(graph::NodeId v) {
  if (phase_ != Phase::kReact) {
    throw std::logic_error("BeepContext::reactivate called outside the react phase");
  }
  if (v >= status_->size() || (*status_)[v] != NodeStatus::kDominated) {
    throw std::logic_error("BeepContext::reactivate on a non-dominated node");
  }
  (*status_)[v] = NodeStatus::kActive;
  simulator_->reactivated_.push_back(v);
  if (simulator_->trace_enabled_) {
    simulator_->trace_.record({static_cast<std::uint32_t>(round_),
                               static_cast<std::uint8_t>(exchange_), EventKind::kReactivate,
                               v});
  }
}

BeepSimulator::BeepSimulator(SimConfig config) : config_(std::move(config)) {
  if (config_.beep_loss_probability < 0.0 || config_.beep_loss_probability >= 1.0) {
    throw std::invalid_argument("SimConfig: beep_loss_probability must be in [0, 1)");
  }
}

BeepSimulator::BeepSimulator(const graph::Graph& g, SimConfig config)
    : BeepSimulator(std::move(config)) {
  bind_graph(g);
}

void BeepSimulator::bind_graph(const graph::Graph& g) {
  const graph::NodeId n = g.node_count();
  // The schedules below depend only on (config_, n), never on edge data,
  // and config_ is immutable after construction — so a rebind to any graph
  // of the same size (the shared-graph trial loop, or equally-sized
  // per-trial graphs) skips the O(n log n) rebuild.  graph_ may dangle
  // between trials, which is why the check uses the cached size.
  if (graph_ != nullptr && n == bound_node_count_) {
    graph_ = &g;
    return;
  }
  if (!config_.wake_round.empty() && config_.wake_round.size() != n) {
    throw std::invalid_argument("SimConfig: wake_round size must match the graph");
  }
  if (!config_.crash_round.empty() && config_.crash_round.size() != n) {
    throw std::invalid_argument("SimConfig: crash_round size must match the graph");
  }
  graph_ = &g;

  initial_active_.clear();
  pending_wakeups_.clear();
  for (graph::NodeId v = 0; v < n; ++v) {
    if (config_.wake_round.empty() || config_.wake_round[v] == 0) {
      initial_active_.push_back(v);
    } else {
      pending_wakeups_.emplace_back(config_.wake_round[v], v);
    }
  }
  std::sort(pending_wakeups_.begin(), pending_wakeups_.end());

  pending_crashes_.clear();
  if (!config_.crash_round.empty()) {
    // Never-crash (UINT32_MAX) entries are kept so behaviour matches the
    // dense scan exactly even for absurd round counts; the cursor simply
    // never reaches them in a sane run.
    for (graph::NodeId v = 0; v < n; ++v) {
      pending_crashes_.emplace_back(config_.crash_round[v], v);
    }
    std::sort(pending_crashes_.begin(), pending_crashes_.end());
  }
  bound_node_count_ = n;
}

void BeepSimulator::deliver_beeps(support::Xoshiro256StarStar& rng) {
  detail::clear_flags(heard_, heard_dirty_);

  const bool lossy = config_.beep_loss_probability > 0.0;
  const double keep = 1.0 - config_.beep_loss_probability;
  // Protocols emit over the ascending active list, so the frontier is
  // normally already sorted; the check keeps the guarantee (and therefore
  // lossy-mode RNG draw order) for protocols that beep out of order.
  if (!std::is_sorted(beepers_.begin(), beepers_.end())) {
    std::sort(beepers_.begin(), beepers_.end());
  }
  for (const graph::NodeId v : beepers_) {
    // A beeper outside the active list (a node reactivated earlier in this
    // round) does not deliver — identical to the dense scan of active_.
    if (!in_active_[v]) continue;
    for (const graph::NodeId w : graph_->neighbors(v)) {
      if (heard_[w]) continue;  // already hearing a beep; extra losses moot
      if (!lossy || rng.bernoulli(keep)) {
        heard_[w] = 1;
        heard_dirty_.push_back(w);
      }
    }
  }
  if (config_.mis_keepalive) {
    // Members of the independent set beep forever (DISC'11 wake-up rule).
    // mis_nodes_ holds only live members in join order: a crashed member is
    // compacted out the round it fails, so no status check is needed here.
    if (lossy) {
      // Every potential delivery consumes one Bernoulli draw, in join
      // order — part of the determinism contract; no caching possible.
      for (const graph::NodeId v : mis_nodes_) {
        for (const graph::NodeId w : graph_->neighbors(v)) {
          if (heard_[w]) continue;
          if (rng.bernoulli(keep)) {
            heard_[w] = 1;
            heard_dirty_.push_back(w);
          }
        }
      }
    } else {
      // Reliable channel: keep-alive only ever sets heard on the fixed
      // neighbour set of the live MIS, so cache that set (deduplicated)
      // and re-derive it only when the MIS frontier changes.  A static
      // tail exchange then costs O(|N(MIS)|) instead of O(sum deg of MIS).
      if (!mis_hear_valid_) {
        detail::clear_flags(in_mis_hear_, mis_hear_);
        for (const graph::NodeId v : mis_nodes_) {
          for (const graph::NodeId w : graph_->neighbors(v)) {
            if (in_mis_hear_[w]) continue;
            in_mis_hear_[w] = 1;
            mis_hear_.push_back(w);
          }
        }
        mis_hear_valid_ = true;
      }
      for (const graph::NodeId w : mis_hear_) {
        if (heard_[w]) continue;
        heard_[w] = 1;
        heard_dirty_.push_back(w);
      }
    }
  }
}

void BeepSimulator::compact_active() {
  std::erase_if(active_, [this](graph::NodeId v) {
    if (status_[v] == NodeStatus::kActive) return false;
    in_active_[v] = 0;
    return true;
  });
}

void BeepSimulator::apply_wakeups_and_crashes() {
  bool active_dirty = false;
  while (next_wakeup_ < pending_wakeups_.size() &&
         pending_wakeups_[next_wakeup_].first <= round_) {
    const graph::NodeId v = pending_wakeups_[next_wakeup_].second;
    ++next_wakeup_;
    if (status_[v] != NodeStatus::kActive) continue;  // crashed while asleep
    active_.push_back(v);
    in_active_[v] = 1;
    active_dirty = true;
    if (trace_enabled_) {
      trace_.record({static_cast<std::uint32_t>(round_), 0, EventKind::kWake, v});
    }
  }
  if (active_dirty) std::sort(active_.begin(), active_.end());

  // Fail-stop hits any node that has not already crashed — including MIS
  // members (whose keep-alive then falls silent) and dominated nodes.
  // Events are presorted by (round, node), so per-round work is O(crashes).
  bool crashed_any = false;
  bool mis_crashed = false;
  while (next_crash_ < pending_crashes_.size() &&
         pending_crashes_[next_crash_].first <= round_) {
    const graph::NodeId v = pending_crashes_[next_crash_].second;
    ++next_crash_;
    if (status_[v] == NodeStatus::kCrashed) continue;
    crashed_any = crashed_any || status_[v] == NodeStatus::kActive;
    mis_crashed = mis_crashed || status_[v] == NodeStatus::kInMis;
    status_[v] = NodeStatus::kCrashed;
    if (trace_enabled_) {
      trace_.record({static_cast<std::uint32_t>(round_), 0, EventKind::kCrash, v});
    }
  }
  if (mis_crashed) {
    std::erase_if(mis_nodes_,
                  [this](graph::NodeId v) { return status_[v] != NodeStatus::kInMis; });
    mis_hear_valid_ = false;
  }
  if (crashed_any) compact_active();
}

RunResult BeepSimulator::run(const graph::Graph& g, BeepProtocol& protocol,
                             support::Xoshiro256StarStar rng) {
  // Always rebind: the caller may have rebuilt a different graph at the
  // same address (the trial runner's per-trial local does exactly that).
  bind_graph(g);
  return run(protocol, std::move(rng));
}

RunResult BeepSimulator::run(BeepProtocol& protocol, support::Xoshiro256StarStar rng) {
  if (graph_ == nullptr) {
    throw std::logic_error("BeepSimulator::run: no graph bound");
  }
  const graph::NodeId n = graph_->node_count();
  status_.assign(n, NodeStatus::kActive);
  beep_counts_.assign(n, 0);
  if (beeped_.size() != n) {
    beeped_.assign(n, 0);
    prev_beeped_.assign(n, 0);
    heard_.assign(n, 0);
    in_active_.assign(n, 0);
    in_mis_hear_.assign(n, 0);
    beepers_.clear();
    prev_beepers_.clear();
    heard_dirty_.clear();
    mis_hear_.clear();
  } else {
    // Same-size rerun: restore the all-zero invariant in O(touched) by
    // undoing exactly what the previous run left dirty.
    detail::clear_flags(beeped_, beepers_);
    detail::clear_flags(prev_beeped_, prev_beepers_);
    detail::clear_flags(heard_, heard_dirty_);
    detail::clear_flags(in_mis_hear_, mis_hear_);
    for (const graph::NodeId v : active_) in_active_[v] = 0;
  }
  mis_nodes_.clear();
  mis_hear_valid_ = false;
  reactivated_.clear();
  total_beeps_ = 0;
  round_ = 0;
  trace_.clear();
  trace_enabled_ = config_.record_trace;

  active_ = initial_active_;
  for (const graph::NodeId v : active_) in_active_[v] = 1;
  next_wakeup_ = 0;
  next_crash_ = 0;

  protocol.reset(*graph_, rng);
  // Read after reset: protocols may size their exchange count to the graph.
  const unsigned exchanges = protocol.exchanges_per_round();
  if (exchanges == 0) throw std::logic_error("protocol declares zero exchanges per round");

  BeepContext ctx;
  ctx.graph_ = graph_;
  ctx.active_ = &active_;
  ctx.status_ = &status_;
  ctx.beeped_ = &beeped_;
  ctx.prev_beeped_ = &prev_beeped_;
  ctx.heard_ = &heard_;
  ctx.rng_ = &rng;
  ctx.simulator_ = this;

  while ((!active_.empty() || next_wakeup_ < pending_wakeups_.size() ||
          round_ < config_.run_until_round) &&
         round_ < config_.max_rounds) {
    apply_wakeups_and_crashes();

    for (exchange_ = 0; exchange_ < exchanges; ++exchange_) {
      if (exchange_ == 0) {
        // Round start: both flag buffers must read all-zero.
        detail::clear_flags(prev_beeped_, prev_beepers_);
      } else {
        // The previous exchange's beeps become prev_beeped_ by swapping
        // buffers instead of copying n bytes.
        beeped_.swap(prev_beeped_);
        beepers_.swap(prev_beepers_);
      }
      detail::clear_flags(beeped_, beepers_);
      ctx.round_ = round_;
      ctx.exchange_ = exchange_;

      ctx.phase_ = BeepContext::Phase::kEmit;
      protocol.emit(ctx);

      deliver_beeps(rng);

      ctx.phase_ = BeepContext::Phase::kReact;
      protocol.react(ctx);
    }
    compact_active();
    if (!reactivated_.empty()) {
      // A node deactivated and reactivated within the same round is still
      // on the active list (it survived compaction as kActive), so skip it
      // here — inserting it again would duplicate its emit/react visits.
      for (const graph::NodeId v : reactivated_) {
        if (in_active_[v]) continue;
        active_.push_back(v);
        in_active_[v] = 1;
      }
      std::sort(active_.begin(), active_.end());
      reactivated_.clear();
    }
    if (observer_) {
      ctx.phase_ = BeepContext::Phase::kObserve;
      observer_(ctx);
    }
    ++round_;
  }

  RunResult result;
  result.terminated = active_.empty() && next_wakeup_ >= pending_wakeups_.size();
  result.rounds = round_;
  result.status = std::move(status_);
  result.beep_counts = std::move(beep_counts_);
  result.total_beeps = total_beeps_;
  return result;
}

}  // namespace beepmis::sim

#include "sim/beep.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace beepmis::sim {

void BeepContext::beep(graph::NodeId v) {
  if (phase_ != Phase::kEmit) {
    throw std::logic_error("BeepContext::beep called outside the emit phase");
  }
  if (v >= status_->size() || (*status_)[v] != NodeStatus::kActive) {
    throw std::logic_error("BeepContext::beep on an inactive or invalid node");
  }
  if (!(*beeped_)[v]) {
    (*beeped_)[v] = 1;
    // A signal continuing from the previous exchange is one episode (see
    // beep() documentation in the header).
    if (!(*prev_beeped_)[v]) {
      ++simulator_->beep_counts_[v];
      ++simulator_->total_beeps_;
      if (simulator_->trace_enabled_) {
        simulator_->trace_.record({static_cast<std::uint32_t>(round_),
                                   static_cast<std::uint8_t>(exchange_), EventKind::kBeep,
                                   v});
      }
    }
  }
}

void BeepContext::join_mis(graph::NodeId v) {
  if (phase_ != Phase::kReact) {
    throw std::logic_error("BeepContext::join_mis called outside the react phase");
  }
  if (v >= status_->size() || (*status_)[v] != NodeStatus::kActive) {
    throw std::logic_error("BeepContext::join_mis on an inactive or invalid node");
  }
  (*status_)[v] = NodeStatus::kInMis;
  simulator_->mis_nodes_.push_back(v);
  if (simulator_->trace_enabled_) {
    simulator_->trace_.record({static_cast<std::uint32_t>(round_),
                               static_cast<std::uint8_t>(exchange_), EventKind::kJoinMis, v});
  }
}

void BeepContext::deactivate(graph::NodeId v) {
  if (phase_ != Phase::kReact) {
    throw std::logic_error("BeepContext::deactivate called outside the react phase");
  }
  if (v >= status_->size() || (*status_)[v] != NodeStatus::kActive) {
    throw std::logic_error("BeepContext::deactivate on an inactive or invalid node");
  }
  (*status_)[v] = NodeStatus::kDominated;
  if (simulator_->trace_enabled_) {
    simulator_->trace_.record({static_cast<std::uint32_t>(round_),
                               static_cast<std::uint8_t>(exchange_), EventKind::kDeactivate,
                               v});
  }
}

void BeepContext::reactivate(graph::NodeId v) {
  if (phase_ != Phase::kReact) {
    throw std::logic_error("BeepContext::reactivate called outside the react phase");
  }
  if (v >= status_->size() || (*status_)[v] != NodeStatus::kDominated) {
    throw std::logic_error("BeepContext::reactivate on a non-dominated node");
  }
  (*status_)[v] = NodeStatus::kActive;
  simulator_->reactivated_.push_back(v);
  if (simulator_->trace_enabled_) {
    simulator_->trace_.record({static_cast<std::uint32_t>(round_),
                               static_cast<std::uint8_t>(exchange_), EventKind::kReactivate,
                               v});
  }
}

BeepSimulator::BeepSimulator(const graph::Graph& g, SimConfig config)
    : graph_(g), config_(std::move(config)) {
  if (config_.beep_loss_probability < 0.0 || config_.beep_loss_probability >= 1.0) {
    throw std::invalid_argument("SimConfig: beep_loss_probability must be in [0, 1)");
  }
  if (!config_.wake_round.empty() && config_.wake_round.size() != g.node_count()) {
    throw std::invalid_argument("SimConfig: wake_round size must match the graph");
  }
  if (!config_.crash_round.empty() && config_.crash_round.size() != g.node_count()) {
    throw std::invalid_argument("SimConfig: crash_round size must match the graph");
  }
}

void BeepSimulator::deliver_beeps(support::Xoshiro256StarStar& rng) {
  std::fill(heard_.begin(), heard_.end(), std::uint8_t{0});
  const bool lossy = config_.beep_loss_probability > 0.0;
  const double keep = 1.0 - config_.beep_loss_probability;
  for (const graph::NodeId v : active_) {
    if (!beeped_[v]) continue;
    for (const graph::NodeId w : graph_.neighbors(v)) {
      if (heard_[w]) continue;  // already hearing a beep; extra losses moot
      if (!lossy || rng.bernoulli(keep)) heard_[w] = 1;
    }
  }
  if (config_.mis_keepalive) {
    // Members of the independent set beep forever (DISC'11 wake-up rule);
    // a crashed member falls silent.
    for (const graph::NodeId v : mis_nodes_) {
      if (status_[v] != NodeStatus::kInMis) continue;
      for (const graph::NodeId w : graph_.neighbors(v)) {
        if (heard_[w]) continue;
        if (!lossy || rng.bernoulli(keep)) heard_[w] = 1;
      }
    }
  }
}

void BeepSimulator::compact_active() {
  std::erase_if(active_,
                [this](graph::NodeId v) { return status_[v] != NodeStatus::kActive; });
}

void BeepSimulator::apply_wakeups_and_crashes() {
  bool active_dirty = false;
  while (next_wakeup_ < pending_wakeups_.size() &&
         pending_wakeups_[next_wakeup_].first <= round_) {
    const graph::NodeId v = pending_wakeups_[next_wakeup_].second;
    ++next_wakeup_;
    if (status_[v] != NodeStatus::kActive) continue;  // crashed while asleep
    active_.push_back(v);
    active_dirty = true;
    if (trace_enabled_) {
      trace_.record({static_cast<std::uint32_t>(round_), 0, EventKind::kWake, v});
    }
  }
  if (active_dirty) std::sort(active_.begin(), active_.end());

  if (!config_.crash_round.empty()) {
    // Fail-stop hits any node that has not already crashed — including MIS
    // members (whose keep-alive then falls silent) and dominated nodes.
    bool crashed_any = false;
    for (graph::NodeId v = 0; v < graph_.node_count(); ++v) {
      if (config_.crash_round[v] == round_ && status_[v] != NodeStatus::kCrashed) {
        crashed_any = crashed_any || status_[v] == NodeStatus::kActive;
        status_[v] = NodeStatus::kCrashed;
        if (trace_enabled_) {
          trace_.record({static_cast<std::uint32_t>(round_), 0, EventKind::kCrash, v});
        }
      }
    }
    if (crashed_any) compact_active();
  }
}

RunResult BeepSimulator::run(BeepProtocol& protocol, support::Xoshiro256StarStar rng) {
  const graph::NodeId n = graph_.node_count();
  status_.assign(n, NodeStatus::kActive);
  beeped_.assign(n, 0);
  prev_beeped_.assign(n, 0);
  heard_.assign(n, 0);
  beep_counts_.assign(n, 0);
  mis_nodes_.clear();
  reactivated_.clear();
  total_beeps_ = 0;
  round_ = 0;
  trace_.clear();
  trace_enabled_ = config_.record_trace;

  active_.clear();
  pending_wakeups_.clear();
  next_wakeup_ = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (config_.wake_round.empty() || config_.wake_round[v] == 0) {
      active_.push_back(v);
    } else {
      pending_wakeups_.emplace_back(config_.wake_round[v], v);
    }
  }
  std::sort(pending_wakeups_.begin(), pending_wakeups_.end());

  protocol.reset(graph_, rng);
  // Read after reset: protocols may size their exchange count to the graph.
  const unsigned exchanges = protocol.exchanges_per_round();
  if (exchanges == 0) throw std::logic_error("protocol declares zero exchanges per round");

  BeepContext ctx;
  ctx.graph_ = &graph_;
  ctx.active_ = &active_;
  ctx.status_ = &status_;
  ctx.beeped_ = &beeped_;
  ctx.prev_beeped_ = &prev_beeped_;
  ctx.heard_ = &heard_;
  ctx.rng_ = &rng;
  ctx.simulator_ = this;

  while ((!active_.empty() || next_wakeup_ < pending_wakeups_.size() ||
          round_ < config_.run_until_round) &&
         round_ < config_.max_rounds) {
    apply_wakeups_and_crashes();

    for (exchange_ = 0; exchange_ < exchanges; ++exchange_) {
      if (exchange_ == 0) {
        std::fill(prev_beeped_.begin(), prev_beeped_.end(), std::uint8_t{0});
      } else {
        prev_beeped_ = beeped_;
      }
      std::fill(beeped_.begin(), beeped_.end(), std::uint8_t{0});
      ctx.round_ = round_;
      ctx.exchange_ = exchange_;

      ctx.phase_ = BeepContext::Phase::kEmit;
      protocol.emit(ctx);

      deliver_beeps(rng);

      ctx.phase_ = BeepContext::Phase::kReact;
      protocol.react(ctx);
    }
    compact_active();
    if (!reactivated_.empty()) {
      active_.insert(active_.end(), reactivated_.begin(), reactivated_.end());
      std::sort(active_.begin(), active_.end());
      reactivated_.clear();
    }
    if (observer_) {
      ctx.phase_ = BeepContext::Phase::kObserve;
      observer_(ctx);
    }
    ++round_;
  }

  RunResult result;
  result.terminated = active_.empty() && next_wakeup_ >= pending_wakeups_.size();
  result.rounds = round_;
  result.status = status_;
  result.beep_counts = beep_counts_;
  result.total_beeps = total_beeps_;
  return result;
}

}  // namespace beepmis::sim

// Common result type for simulator runs: node fates plus the resource
// metrics the paper reports (rounds = "time steps", beeps per node,
// message bits for the LOCAL-model baseline).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace beepmis::sim {

/// Fate of a node during a distributed MIS execution.
enum class NodeStatus : std::uint8_t {
  kActive,     ///< still undecided (possibly not yet awake)
  kInMis,      ///< joined the independent set (inactive)
  kDominated,  ///< has a neighbour in the set (inactive)
  kCrashed,    ///< fail-stopped before deciding (fault injection only)
};

struct RunResult {
  /// True when every node became inactive before the round cap.
  bool terminated = false;
  /// Number of rounds executed, in the paper's "time step" unit (one round
  /// may comprise several beep exchanges).
  std::size_t rounds = 0;
  std::vector<NodeStatus> status;
  /// Beeps emitted per node across the whole run (beeping model only).
  std::vector<std::uint32_t> beep_counts;
  /// Total beeps across all nodes and exchanges.
  std::uint64_t total_beeps = 0;
  /// Total message bits sent (LOCAL-model runs; 0 for the beeping model,
  /// where `total_beeps` is the natural measure).
  std::uint64_t message_bits = 0;
  /// Recovery-SLA samples (SimConfig::track_recovery only): for each
  /// disruption — a round where an MIS member crashed or a crashed node
  /// revived — the number of rounds until the run was next quiescent with
  /// a valid MIS over the surviving nodes.  In disruption order.
  std::vector<std::uint32_t> recovery_rounds;
  /// Disruptions still open when the run ended (never recovered).
  std::size_t unrecovered_disruptions = 0;
  /// Total BeepContext::reactivate calls across the run (self-healing
  /// protocols; 0 otherwise).  Counted by the simulator's mutation sink so
  /// every front-end — scalar, sharded, batched — reports it without the
  /// protocol keeping a shared counter (which would break sharding).
  std::uint64_t reactivations = 0;

  /// Nodes with status kInMis, ascending.
  [[nodiscard]] std::vector<graph::NodeId> mis() const;
  /// Number of still-active nodes (0 iff terminated normally).
  [[nodiscard]] std::size_t active_count() const;
  /// Number of fail-stopped nodes.
  [[nodiscard]] std::size_t crashed_count() const;
  /// Mean beeps per node (over all nodes, including non-beepers).
  [[nodiscard]] double mean_beeps_per_node() const;
};

}  // namespace beepmis::sim

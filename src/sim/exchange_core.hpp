// Shared per-exchange machinery of the frontier-driven simulators — ONE
// exchange engine behind every front-end.
//
// The flag half: BeepSimulator (one lane covering [0, n)) and
// ShardedSimulator (K lanes, one per contiguous node range) execute the
// same exchange — clear flags through dirty lists, deliver beeps by
// walking an explicit beeper frontier, apply presorted fault events,
// compact the active list at round boundaries.  The plane half (bottom of
// this header) is the 64-lane bitplane analogue driving BatchSimulator and
// ShardedBatchSimulator: LaneMask planes instead of uint8_t flags, bulk
// Bernoulli planes instead of per-lane draws, per-lane retirement instead
// of one while-condition.  Holding both halves here, parameterised over
// the node range and the adjacency view (the full CSR for the unsharded
// cores, a Partition slice for one shard), is what keeps the four
// front-ends from drifting — the determinism contract in src/sim/README.md
// is implemented here.
//
// Everything operates on ranges of the *global* per-node arrays: a lane
// touches only ids in [lo, hi), which is what makes the sharded cores'
// listener-partitioned delivery race-free without atomics.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/flag_buffer.hpp"
#include "sim/result.hpp"
#include "support/rng.hpp"

namespace beepmis::sim {

/// Width of the batched cores' bitplanes: one bit per concurrent trial.
inline constexpr unsigned kMaxBatchLanes = 64;

/// One bit per lane; bit l belongs to trial lane l.  Defined here (not
/// batch.hpp) so the plane half of the exchange engine below can operate
/// on lane planes without depending on the batched front-end.
using LaneMask = std::uint64_t;

}  // namespace beepmis::sim

namespace beepmis::sim::detail {

// clear_flag_range / clear_flags live in flag_buffer.hpp (included above):
// one home for the sparse/dense clearing policy, shared by every core.

/// Presorted fault events and the round-0 active frontier for one node
/// range — the per-lane form of what BeepSimulator builds at graph binding.
struct FaultSchedule {
  /// Sleeping nodes (kActive but not yet awake), sorted by (round, node).
  std::vector<std::pair<std::uint32_t, graph::NodeId>> wakeups;
  /// Fail-stop events, sorted by (round, node); UINT32_MAX entries included
  /// for exact parity with a dense scan (they are simply never reached).
  std::vector<std::pair<std::uint32_t, graph::NodeId>> crashes;
  /// Nodes awake at round 0, ascending.
  std::vector<graph::NodeId> initial_active;
};

/// Builds the schedule for ids [lo, hi) from the per-node config vectors
/// (either may be empty = no such faults).  Restricting a global build to a
/// subrange and concatenating preserves the (round, node) order globally,
/// because ranges are contiguous and ascending.
inline FaultSchedule build_fault_schedule(const std::vector<std::uint32_t>& wake_round,
                                          const std::vector<std::uint32_t>& crash_round,
                                          graph::NodeId lo, graph::NodeId hi) {
  FaultSchedule sched;
  for (graph::NodeId v = lo; v < hi; ++v) {
    if (wake_round.empty() || wake_round[v] == 0) {
      sched.initial_active.push_back(v);
    } else {
      sched.wakeups.emplace_back(wake_round[v], v);
    }
  }
  std::sort(sched.wakeups.begin(), sched.wakeups.end());
  if (!crash_round.empty()) {
    for (graph::NodeId v = lo; v < hi; ++v) {
      sched.crashes.emplace_back(crash_round[v], v);
    }
    std::sort(sched.crashes.begin(), sched.crashes.end());
  }
  return sched;
}

struct FaultCursor {
  std::size_t next_wakeup = 0;
  std::size_t next_crash = 0;
};

struct FaultOutcome {
  bool active_crashed = false;  ///< some kActive node fail-stopped
  bool mis_crashed = false;     ///< some MIS member fail-stopped
};

/// Fires this round's wake then crash events over one range, mutating
/// status / active / in_active exactly like the scalar core: wakes before
/// crashes, equal-round events in ascending node id, a crashed sleeper
/// dropped at its wake round.  `on_wake` / `on_crash` are notification
/// hooks (trace recording in the scalar core; no-ops in a shard lane).
/// The caller handles the consequences of the returned flags (MIS-list
/// pruning, active compaction) so lane-local and global bookkeeping both
/// work.
template <typename OnWake, typename OnCrash>
FaultOutcome apply_fault_events(const FaultSchedule& sched, FaultCursor& cursor,
                                std::size_t round, std::vector<NodeStatus>& status,
                                std::vector<graph::NodeId>& active,
                                std::vector<std::uint8_t>& in_active, OnWake&& on_wake,
                                OnCrash&& on_crash) {
  FaultOutcome outcome;
  bool active_dirty = false;
  while (cursor.next_wakeup < sched.wakeups.size() &&
         sched.wakeups[cursor.next_wakeup].first <= round) {
    const graph::NodeId v = sched.wakeups[cursor.next_wakeup].second;
    ++cursor.next_wakeup;
    if (status[v] != NodeStatus::kActive) continue;  // crashed while asleep
    if (in_active[v]) continue;  // already woken early by a fault scenario
    active.push_back(v);
    in_active[v] = 1;
    active_dirty = true;
    on_wake(v);
  }
  if (active_dirty) std::sort(active.begin(), active.end());

  // Fail-stop hits any node that has not already crashed — including MIS
  // members (whose keep-alive then falls silent) and dominated nodes.
  while (cursor.next_crash < sched.crashes.size() &&
         sched.crashes[cursor.next_crash].first <= round) {
    const graph::NodeId v = sched.crashes[cursor.next_crash].second;
    ++cursor.next_crash;
    if (status[v] == NodeStatus::kCrashed) continue;
    outcome.active_crashed = outcome.active_crashed || status[v] == NodeStatus::kActive;
    outcome.mis_crashed = outcome.mis_crashed || status[v] == NodeStatus::kInMis;
    status[v] = NodeStatus::kCrashed;
    on_crash(v);
  }
  return outcome;
}

/// Round-boundary compaction: drops no-longer-active ids from the list and
/// their bits from the membership bitmap, preserving order.
inline void compact_active(std::vector<graph::NodeId>& active,
                           std::vector<std::uint8_t>& in_active,
                           const std::vector<NodeStatus>& status) {
  std::erase_if(active, [&](graph::NodeId v) {
    if (status[v] == NodeStatus::kActive) return false;
    in_active[v] = 0;
    return true;
  });
}

/// Round-boundary re-entry of reactivated nodes.  A node deactivated and
/// reactivated within the same round is still on the active list (it
/// survived compaction as kActive), so it is skipped here — inserting it
/// again would duplicate its emit/react visits.
inline void merge_reactivated(std::vector<graph::NodeId>& active,
                              std::vector<std::uint8_t>& in_active,
                              std::vector<graph::NodeId>& reactivated) {
  if (reactivated.empty()) return;
  for (const graph::NodeId v : reactivated) {
    if (in_active[v]) continue;
    active.push_back(v);
    in_active[v] = 1;
  }
  std::sort(active.begin(), active.end());
  reactivated.clear();
}

/// Frontier delivery: walks `beepers` (must be ascending; the caller
/// re-sorts if a protocol beeped out of order) and sets heard on each
/// neighbour returned by `neighbors_of` (full adjacency for the scalar
/// core, one shard's listener slice for a lane).  A beeper outside the
/// active list (a node reactivated earlier in this round) does not
/// deliver.  In lossy mode every *potential* delivery (listener not yet
/// hearing, in iteration order) consumes exactly one Bernoulli draw —
/// part of the determinism contract.  `on_hear(w)` marks the listener
/// (set flag + push the owning dirty list).
template <typename NeighborsFn, typename OnHear>
void deliver_from_beepers(const std::vector<graph::NodeId>& beepers,
                          const std::vector<std::uint8_t>& in_active,
                          NeighborsFn&& neighbors_of, const std::uint8_t* heard, bool lossy,
                          double keep, support::Xoshiro256StarStar* rng, OnHear&& on_hear) {
  for (const graph::NodeId v : beepers) {
    if (!in_active[v]) continue;
    for (const graph::NodeId w : neighbors_of(v)) {
      if (heard[w]) continue;  // already hearing a beep; extra losses moot
      if (!lossy || rng->bernoulli(keep)) on_hear(w);
    }
  }
}

/// Lossy keep-alive delivery: live MIS members beep forever; every
/// potential delivery consumes one Bernoulli draw, iterating members in
/// **join order** (the contract; no caching possible).
template <typename NeighborsFn, typename OnHear>
void deliver_keepalive_lossy(const std::vector<graph::NodeId>& mis_nodes,
                             NeighborsFn&& neighbors_of, const std::uint8_t* heard,
                             double keep, support::Xoshiro256StarStar& rng,
                             OnHear&& on_hear) {
  for (const graph::NodeId v : mis_nodes) {
    for (const graph::NodeId w : neighbors_of(v)) {
      if (heard[w]) continue;
      if (rng.bernoulli(keep)) on_hear(w);
    }
  }
}

/// Reliable-channel keep-alive cache: appends the not-yet-cached neighbours
/// of mis_nodes[from..) to the dedup set (membership bitmap + list).  With
/// from == 0 and a cleared set this is the scalar core's full rebuild;
/// incremental appends produce the same *set* (order within the cache list
/// is irrelevant — reliable delivery is idempotent).
template <typename NeighborsFn>
void extend_mis_hear(const std::vector<graph::NodeId>& mis_nodes, std::size_t from,
                     NeighborsFn&& neighbors_of, std::vector<std::uint8_t>& in_mis_hear,
                     std::vector<graph::NodeId>& mis_hear) {
  for (std::size_t i = from; i < mis_nodes.size(); ++i) {
    for (const graph::NodeId w : neighbors_of(mis_nodes[i])) {
      if (in_mis_hear[w]) continue;
      in_mis_hear[w] = 1;
      mis_hear.push_back(w);
    }
  }
}

// ---------------------------------------------------------------------------
// Plane engine: the 64-lane bitplane half of the exchange machinery, shared
// by the batched front-end (BatchSimulator, one context covering [0, n))
// and the sharded-batched front-end (ShardedBatchSimulator, one context per
// Partition slice).  Everything below is the lane-plane analogue of the
// flag helpers above: per-node LaneMask planes instead of uint8_t flags,
// per-lane counters instead of one list size.
// ---------------------------------------------------------------------------

/// Independent Bernoulli(2^-k) bits for the lanes in `lanes` (zero
/// elsewhere): the AND of k uniform planes, early-exiting once no requested
/// lane survives, so the expected cost is min(k, ~log2(popcount(lanes)) + 1)
/// draws.  k >= 1075 returns the empty plane without drawing, matching
/// bernoulli_pow2's underflow-to-never endpoint.
[[nodiscard]] inline LaneMask plane_bernoulli_pow2(support::Xoshiro256StarStar& rng,
                                                   unsigned k, LaneMask lanes) noexcept {
  if (k >= 1075) return 0;
  LaneMask plane = lanes;
  for (unsigned i = 0; i < k && plane != 0; ++i) plane &= rng();
  return plane;
}

/// Independent Bernoulli(p) bits for the lanes in `lanes`: arithmetic-
/// decoding against the binary expansion of p — each plane supplies one
/// uniform bit per undecided lane, and the first position where a lane's
/// bit differs from p's bit decides it (lane bit 0 under p bit 1 => its
/// uniform lies below p).  Exact for every double p; all 64 lanes resolve
/// in ~log2(lanes) + 2 expected planes.  Once p's remaining bits are all
/// zero, an undecided lane's uniform prefix equals p, so the uniform is
/// >= p: failure.
[[nodiscard]] inline LaneMask plane_bernoulli(support::Xoshiro256StarStar& rng, double p,
                                              LaneMask lanes) noexcept {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return lanes;
  LaneMask undecided = lanes;
  LaneMask result = 0;
  while (undecided != 0) {
    p += p;
    const bool bit = p >= 1.0;
    if (bit) p -= 1.0;
    const LaneMask r = rng();
    if (bit) {
      result |= undecided & ~r;
      undecided &= r;
    } else {
      undecided &= ~r;
    }
    if (p == 0.0) break;
  }
  return result;
}

/// Fires this round's wake then crash events over one range of the status
/// planes — the lane-plane analogue of apply_fault_events.  Wakes add
/// running-and-not-crashed lanes to the live plane (and the union active
/// list); crashes hit every not-yet-crashed running lane, dropping it from
/// the live / in-MIS / dominated planes.  `active_count[l]` tracks the
/// caller's slice of lane l's active-list size.  Returns the lanes in
/// which some MIS member fail-stopped; the caller prunes whatever
/// join-order bookkeeping it maintains (per-lane lists in the batched
/// front-end, the shared union list at the sharded coordinator).
inline LaneMask apply_plane_fault_events(
    const FaultSchedule& sched, FaultCursor& cursor, std::size_t round, LaneMask running,
    std::vector<LaneMask>& live, std::vector<LaneMask>& inmis,
    std::vector<LaneMask>& dominated, std::vector<LaneMask>& crashed,
    std::vector<graph::NodeId>& active, std::vector<std::uint8_t>& in_active,
    std::uint32_t* active_count) {
  bool active_dirty = false;
  while (cursor.next_wakeup < sched.wakeups.size() &&
         sched.wakeups[cursor.next_wakeup].first <= round) {
    const graph::NodeId v = sched.wakeups[cursor.next_wakeup].second;
    ++cursor.next_wakeup;
    // A sleeper can only be kActive or kCrashed; scalar drops the crashed.
    const LaneMask add = running & ~crashed[v];
    if (!add) continue;
    live[v] |= add;
    for (LaneMask b = add; b != 0; b &= b - 1) {
      ++active_count[std::countr_zero(b)];
    }
    if (!in_active[v]) {
      in_active[v] = 1;
      active.push_back(v);
      active_dirty = true;
    }
  }
  if (active_dirty) std::sort(active.begin(), active.end());

  LaneMask mis_crashed = 0;
  while (cursor.next_crash < sched.crashes.size() &&
         sched.crashes[cursor.next_crash].first <= round) {
    const graph::NodeId v = sched.crashes[cursor.next_crash].second;
    ++cursor.next_crash;
    const LaneMask hit = running & ~crashed[v];
    if (!hit) continue;
    crashed[v] |= hit;
    const LaneMask hit_live = hit & live[v];
    if (hit_live) {
      live[v] &= ~hit_live;
      for (LaneMask b = hit_live; b != 0; b &= b - 1) {
        --active_count[std::countr_zero(b)];
      }
    }
    const LaneMask hit_mis = hit & inmis[v];
    if (hit_mis) {
      inmis[v] &= ~hit_mis;
      mis_crashed |= hit_mis;
    }
    dominated[v] &= ~hit;
  }
  return mis_crashed;
}

/// Round-boundary compaction of a union active frontier: drops ids whose
/// live plane went empty, clearing their membership bits.
inline void compact_plane_active(std::vector<graph::NodeId>& active,
                                 std::vector<std::uint8_t>& in_active,
                                 const std::vector<LaneMask>& live) {
  std::erase_if(active, [&](graph::NodeId v) {
    if (live[v] != 0) return false;
    in_active[v] = 0;
    return true;
  });
}

/// Per-lane mirror of the scalar while-condition, evaluated at the top of
/// each round: a lane leaves the loop (freezing its planes and RNG) exactly
/// when its scalar run would.  `active_count[l]` must be lane l's *global*
/// active-list size (the sharded coordinator sums its shards' slices first)
/// and `wakeups_pending` whether any wake event remains unfired anywhere.
inline void retire_finished_lanes(std::size_t round, std::size_t run_until_round,
                                  std::size_t max_rounds, bool wakeups_pending,
                                  const std::uint32_t* active_count,
                                  std::size_t* lane_rounds, LaneMask& running,
                                  LaneMask& terminated) {
  if (!wakeups_pending && round >= run_until_round) {
    LaneMask done = 0;
    for (LaneMask b = running; b != 0; b &= b - 1) {
      const unsigned l = static_cast<unsigned>(std::countr_zero(b));
      if (active_count[l] == 0) {
        done |= LaneMask{1} << l;
        lane_rounds[l] = round;
      }
    }
    terminated |= done;
    running &= ~done;
  }
  if (round >= max_rounds) {
    for (LaneMask b = running; b != 0; b &= b - 1) {
      const unsigned l = static_cast<unsigned>(std::countr_zero(b));
      lane_rounds[l] = round;
      if (active_count[l] == 0 && !wakeups_pending) terminated |= LaneMask{1} << l;
    }
    running = 0;
  }
}

/// Reliable plane delivery: one adjacency pass serves every lane via
/// OR-accumulation — heard[w] |= beeped[v] is one 8-byte OR where the
/// scalar core performs up to 64 separate byte stores.  `neighbors_of`
/// scopes the pass (full adjacency in the batched core, one shard's
/// listener slice in the sharded-batched core), which is what makes
/// listener-partitioned delivery race-free: a lane ORs only into its own
/// heard range.
template <typename NeighborsFn>
void deliver_planes(const std::vector<graph::NodeId>& beepers,
                    const std::vector<LaneMask>& beeped, NeighborsFn&& neighbors_of,
                    std::vector<LaneMask>& heard, std::vector<graph::NodeId>& heard_dirty) {
  for (const graph::NodeId v : beepers) {
    const LaneMask m = beeped[v];
    for (const graph::NodeId w : neighbors_of(v)) {
      const LaneMask old = heard[w];
      if (!old) heard_dirty.push_back(w);
      heard[w] = old | m;
    }
  }
}

/// Statistical-lanes lossy plane delivery: loss bits for *all* lanes of an
/// edge come from one bulk Bernoulli plane instead of popcount(avail)
/// serially dependent per-lane draws.  `mask_of(v)` supplies the beeping
/// lanes of source v (the beeped plane for frontier delivery; the in-MIS
/// plane masked to running lanes for keep-alive, where the union MIS in
/// ascending order has the same per-lane marginals as join order).
template <typename MaskFn, typename NeighborsFn>
void deliver_planes_lossy(const std::vector<graph::NodeId>& sources, MaskFn&& mask_of,
                          NeighborsFn&& neighbors_of, double keep,
                          support::Xoshiro256StarStar& rng, std::vector<LaneMask>& heard,
                          std::vector<graph::NodeId>& heard_dirty) {
  for (const graph::NodeId v : sources) {
    const LaneMask m = mask_of(v);
    if (!m) continue;
    for (const graph::NodeId w : neighbors_of(v)) {
      const LaneMask avail = m & ~heard[w];
      if (!avail) continue;
      const LaneMask got = plane_bernoulli(rng, keep, avail);
      if (got) {
        if (!heard[w]) heard_dirty.push_back(w);
        heard[w] |= got;
      }
    }
  }
}

/// Reliable-channel keep-alive cache over planes (lane analogue of
/// extend_mis_hear): rebuilds the (listener, lane-mask) list from the MIS
/// union.  `mask_of(v)` supplies v's member lanes — the live in-MIS plane
/// in the batched core, the coordinator's snapshot in the sharded-batched
/// core (so shards read a stable mask while others react).
template <typename MaskFn, typename NeighborsFn>
void rebuild_mis_hear_planes(const std::vector<graph::NodeId>& mis_union, MaskFn&& mask_of,
                             NeighborsFn&& neighbors_of,
                             std::vector<LaneMask>& mis_hear_mask,
                             std::vector<graph::NodeId>& mis_hear) {
  for (const graph::NodeId w : mis_hear) mis_hear_mask[w] = 0;
  mis_hear.clear();
  for (const graph::NodeId v : mis_union) {
    const LaneMask m = mask_of(v);
    if (!m) continue;
    for (const graph::NodeId w : neighbors_of(v)) {
      if (!mis_hear_mask[w]) mis_hear.push_back(w);
      mis_hear_mask[w] |= m;
    }
  }
}

/// Applies a cached keep-alive (listener, lane-mask) list to the heard
/// planes — one OR per cached listener serves all 64 lanes per exchange.
inline void apply_mis_hear_planes(const std::vector<graph::NodeId>& mis_hear,
                                  const std::vector<LaneMask>& mis_hear_mask,
                                  std::vector<LaneMask>& heard,
                                  std::vector<graph::NodeId>& heard_dirty) {
  for (const graph::NodeId w : mis_hear) {
    const LaneMask old = heard[w];
    if (!old) heard_dirty.push_back(w);
    heard[w] = old | mis_hear_mask[w];
  }
}

/// Node-major per-lane RunResult extraction shared by the batched
/// front-ends: the node-major beep counts and the planes are each read once
/// sequentially (lane-major order would stride through the count array 64
/// times).  Per-lane episode totals are the per-node counts summed, so they
/// are derived here instead of a second scatter increment per episode in
/// BatchContext::beep.  `reactivation_counts` may be nullptr (no
/// self-healing bookkeeping).
inline std::vector<RunResult> extract_lane_results(
    graph::NodeId n, unsigned lanes, const std::vector<LaneMask>& crashed,
    const std::vector<LaneMask>& inmis, const std::vector<LaneMask>& dominated,
    const std::uint32_t* beep_counts, LaneMask terminated, const std::size_t* lane_rounds,
    const std::uint64_t* reactivation_counts) {
  std::vector<RunResult> results(lanes);
  for (unsigned l = 0; l < lanes; ++l) {
    const LaneMask bit = LaneMask{1} << l;
    RunResult& r = results[l];
    r.terminated = (terminated & bit) != 0;
    r.rounds = lane_rounds[l];
    r.status.resize(n);
    r.beep_counts.resize(n);
    if (reactivation_counts != nullptr) r.reactivations = reactivation_counts[l];
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    const LaneMask cr = crashed[v];
    const LaneMask im = inmis[v];
    const LaneMask dm = dominated[v];
    const std::uint32_t* counts = &beep_counts[static_cast<std::size_t>(v) * lanes];
    for (unsigned l = 0; l < lanes; ++l) {
      const LaneMask bit = LaneMask{1} << l;
      NodeStatus s = NodeStatus::kActive;
      if (cr & bit) {
        s = NodeStatus::kCrashed;
      } else if (im & bit) {
        s = NodeStatus::kInMis;
      } else if (dm & bit) {
        s = NodeStatus::kDominated;
      }
      results[l].status[v] = s;
      results[l].beep_counts[v] = counts[l];
      results[l].total_beeps += counts[l];
    }
  }
  return results;
}

}  // namespace beepmis::sim::detail

// Shared per-exchange machinery of the frontier-driven simulators.
//
// BeepSimulator (one lane covering [0, n)) and ShardedSimulator (K lanes,
// one per contiguous node range) execute the same exchange: clear flags
// through dirty lists, deliver beeps by walking an explicit beeper
// frontier, apply presorted fault events, compact the active list at round
// boundaries.  This header holds that logic once, parameterised over the
// node range and the adjacency view (the full CSR for the scalar core, a
// Partition slice for one shard), so the two cores cannot drift — the
// determinism contract in src/sim/README.md is implemented here.
//
// Everything operates on ranges of the *global* per-node arrays: a lane
// touches only ids in [lo, hi), which is what makes the sharded core's
// listener-partitioned delivery race-free without atomics.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/flag_buffer.hpp"
#include "sim/result.hpp"
#include "support/rng.hpp"

namespace beepmis::sim::detail {

// clear_flag_range / clear_flags live in flag_buffer.hpp (included above):
// one home for the sparse/dense clearing policy, shared by every core.

/// Presorted fault events and the round-0 active frontier for one node
/// range — the per-lane form of what BeepSimulator builds at graph binding.
struct FaultSchedule {
  /// Sleeping nodes (kActive but not yet awake), sorted by (round, node).
  std::vector<std::pair<std::uint32_t, graph::NodeId>> wakeups;
  /// Fail-stop events, sorted by (round, node); UINT32_MAX entries included
  /// for exact parity with a dense scan (they are simply never reached).
  std::vector<std::pair<std::uint32_t, graph::NodeId>> crashes;
  /// Nodes awake at round 0, ascending.
  std::vector<graph::NodeId> initial_active;
};

/// Builds the schedule for ids [lo, hi) from the per-node config vectors
/// (either may be empty = no such faults).  Restricting a global build to a
/// subrange and concatenating preserves the (round, node) order globally,
/// because ranges are contiguous and ascending.
inline FaultSchedule build_fault_schedule(const std::vector<std::uint32_t>& wake_round,
                                          const std::vector<std::uint32_t>& crash_round,
                                          graph::NodeId lo, graph::NodeId hi) {
  FaultSchedule sched;
  for (graph::NodeId v = lo; v < hi; ++v) {
    if (wake_round.empty() || wake_round[v] == 0) {
      sched.initial_active.push_back(v);
    } else {
      sched.wakeups.emplace_back(wake_round[v], v);
    }
  }
  std::sort(sched.wakeups.begin(), sched.wakeups.end());
  if (!crash_round.empty()) {
    for (graph::NodeId v = lo; v < hi; ++v) {
      sched.crashes.emplace_back(crash_round[v], v);
    }
    std::sort(sched.crashes.begin(), sched.crashes.end());
  }
  return sched;
}

struct FaultCursor {
  std::size_t next_wakeup = 0;
  std::size_t next_crash = 0;
};

struct FaultOutcome {
  bool active_crashed = false;  ///< some kActive node fail-stopped
  bool mis_crashed = false;     ///< some MIS member fail-stopped
};

/// Fires this round's wake then crash events over one range, mutating
/// status / active / in_active exactly like the scalar core: wakes before
/// crashes, equal-round events in ascending node id, a crashed sleeper
/// dropped at its wake round.  `on_wake` / `on_crash` are notification
/// hooks (trace recording in the scalar core; no-ops in a shard lane).
/// The caller handles the consequences of the returned flags (MIS-list
/// pruning, active compaction) so lane-local and global bookkeeping both
/// work.
template <typename OnWake, typename OnCrash>
FaultOutcome apply_fault_events(const FaultSchedule& sched, FaultCursor& cursor,
                                std::size_t round, std::vector<NodeStatus>& status,
                                std::vector<graph::NodeId>& active,
                                std::vector<std::uint8_t>& in_active, OnWake&& on_wake,
                                OnCrash&& on_crash) {
  FaultOutcome outcome;
  bool active_dirty = false;
  while (cursor.next_wakeup < sched.wakeups.size() &&
         sched.wakeups[cursor.next_wakeup].first <= round) {
    const graph::NodeId v = sched.wakeups[cursor.next_wakeup].second;
    ++cursor.next_wakeup;
    if (status[v] != NodeStatus::kActive) continue;  // crashed while asleep
    if (in_active[v]) continue;  // already woken early by a fault scenario
    active.push_back(v);
    in_active[v] = 1;
    active_dirty = true;
    on_wake(v);
  }
  if (active_dirty) std::sort(active.begin(), active.end());

  // Fail-stop hits any node that has not already crashed — including MIS
  // members (whose keep-alive then falls silent) and dominated nodes.
  while (cursor.next_crash < sched.crashes.size() &&
         sched.crashes[cursor.next_crash].first <= round) {
    const graph::NodeId v = sched.crashes[cursor.next_crash].second;
    ++cursor.next_crash;
    if (status[v] == NodeStatus::kCrashed) continue;
    outcome.active_crashed = outcome.active_crashed || status[v] == NodeStatus::kActive;
    outcome.mis_crashed = outcome.mis_crashed || status[v] == NodeStatus::kInMis;
    status[v] = NodeStatus::kCrashed;
    on_crash(v);
  }
  return outcome;
}

/// Round-boundary compaction: drops no-longer-active ids from the list and
/// their bits from the membership bitmap, preserving order.
inline void compact_active(std::vector<graph::NodeId>& active,
                           std::vector<std::uint8_t>& in_active,
                           const std::vector<NodeStatus>& status) {
  std::erase_if(active, [&](graph::NodeId v) {
    if (status[v] == NodeStatus::kActive) return false;
    in_active[v] = 0;
    return true;
  });
}

/// Round-boundary re-entry of reactivated nodes.  A node deactivated and
/// reactivated within the same round is still on the active list (it
/// survived compaction as kActive), so it is skipped here — inserting it
/// again would duplicate its emit/react visits.
inline void merge_reactivated(std::vector<graph::NodeId>& active,
                              std::vector<std::uint8_t>& in_active,
                              std::vector<graph::NodeId>& reactivated) {
  if (reactivated.empty()) return;
  for (const graph::NodeId v : reactivated) {
    if (in_active[v]) continue;
    active.push_back(v);
    in_active[v] = 1;
  }
  std::sort(active.begin(), active.end());
  reactivated.clear();
}

/// Frontier delivery: walks `beepers` (must be ascending; the caller
/// re-sorts if a protocol beeped out of order) and sets heard on each
/// neighbour returned by `neighbors_of` (full adjacency for the scalar
/// core, one shard's listener slice for a lane).  A beeper outside the
/// active list (a node reactivated earlier in this round) does not
/// deliver.  In lossy mode every *potential* delivery (listener not yet
/// hearing, in iteration order) consumes exactly one Bernoulli draw —
/// part of the determinism contract.  `on_hear(w)` marks the listener
/// (set flag + push the owning dirty list).
template <typename NeighborsFn, typename OnHear>
void deliver_from_beepers(const std::vector<graph::NodeId>& beepers,
                          const std::vector<std::uint8_t>& in_active,
                          NeighborsFn&& neighbors_of, const std::uint8_t* heard, bool lossy,
                          double keep, support::Xoshiro256StarStar* rng, OnHear&& on_hear) {
  for (const graph::NodeId v : beepers) {
    if (!in_active[v]) continue;
    for (const graph::NodeId w : neighbors_of(v)) {
      if (heard[w]) continue;  // already hearing a beep; extra losses moot
      if (!lossy || rng->bernoulli(keep)) on_hear(w);
    }
  }
}

/// Lossy keep-alive delivery: live MIS members beep forever; every
/// potential delivery consumes one Bernoulli draw, iterating members in
/// **join order** (the contract; no caching possible).
template <typename NeighborsFn, typename OnHear>
void deliver_keepalive_lossy(const std::vector<graph::NodeId>& mis_nodes,
                             NeighborsFn&& neighbors_of, const std::uint8_t* heard,
                             double keep, support::Xoshiro256StarStar& rng,
                             OnHear&& on_hear) {
  for (const graph::NodeId v : mis_nodes) {
    for (const graph::NodeId w : neighbors_of(v)) {
      if (heard[w]) continue;
      if (rng.bernoulli(keep)) on_hear(w);
    }
  }
}

/// Reliable-channel keep-alive cache: appends the not-yet-cached neighbours
/// of mis_nodes[from..) to the dedup set (membership bitmap + list).  With
/// from == 0 and a cleared set this is the scalar core's full rebuild;
/// incremental appends produce the same *set* (order within the cache list
/// is irrelevant — reliable delivery is idempotent).
template <typename NeighborsFn>
void extend_mis_hear(const std::vector<graph::NodeId>& mis_nodes, std::size_t from,
                     NeighborsFn&& neighbors_of, std::vector<std::uint8_t>& in_mis_hear,
                     std::vector<graph::NodeId>& mis_hear) {
  for (std::size_t i = from; i < mis_nodes.size(); ++i) {
    for (const graph::NodeId w : neighbors_of(mis_nodes[i])) {
      if (in_mis_hear[w]) continue;
      in_mis_hear[w] = 1;
      mis_hear.push_back(w);
    }
  }
}

}  // namespace beepmis::sim::detail

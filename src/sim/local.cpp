#include "sim/local.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/flag_buffer.hpp"

namespace beepmis::sim {

void LocalContext::publish(graph::NodeId v, std::uint64_t value, unsigned bits) {
  if (phase_ != Phase::kEmit) {
    throw std::logic_error("LocalContext::publish called outside the emit phase");
  }
  if (v >= status_->size() || (*status_)[v] != NodeStatus::kActive) {
    throw std::logic_error("LocalContext::publish on an inactive or invalid node");
  }
  (*values_)[v] = value;
  if (!(*published_)[v]) {
    (*published_)[v] = 1;
    simulator_->publishers_.push_back(v);
  }
  simulator_->message_bits_ +=
      static_cast<std::uint64_t>(graph_->degree(v)) * bits;
}

void LocalContext::join_mis(graph::NodeId v) {
  if (phase_ != Phase::kReact) {
    throw std::logic_error("LocalContext::join_mis called outside the react phase");
  }
  if (v >= status_->size() || (*status_)[v] != NodeStatus::kActive) {
    throw std::logic_error("LocalContext::join_mis on an inactive or invalid node");
  }
  (*status_)[v] = NodeStatus::kInMis;
}

void LocalContext::deactivate(graph::NodeId v) {
  if (phase_ != Phase::kReact) {
    throw std::logic_error("LocalContext::deactivate called outside the react phase");
  }
  if (v >= status_->size() || (*status_)[v] != NodeStatus::kActive) {
    throw std::logic_error("LocalContext::deactivate on an inactive or invalid node");
  }
  (*status_)[v] = NodeStatus::kDominated;
}

LocalSimulator::LocalSimulator(LocalSimConfig config) : config_(config) {}

LocalSimulator::LocalSimulator(const graph::Graph& g, LocalSimConfig config)
    : graph_(&g), config_(config) {}

RunResult LocalSimulator::run(const graph::Graph& g, LocalProtocol& protocol,
                              support::Xoshiro256StarStar rng) {
  graph_ = &g;
  return run(protocol, std::move(rng));
}

RunResult LocalSimulator::run(LocalProtocol& protocol, support::Xoshiro256StarStar rng) {
  if (graph_ == nullptr) {
    throw std::logic_error("LocalSimulator::run: no graph bound");
  }
  const graph::NodeId n = graph_->node_count();
  status_.assign(n, NodeStatus::kActive);
  // values_ entries are only ever read behind a set published_ flag, so
  // stale contents are unreachable and need no clearing.
  values_.resize(n);
  if (published_.size() != n) {
    published_.assign(n, 0);
    publishers_.clear();
  } else {
    detail::clear_flags(published_, publishers_);
  }
  message_bits_ = 0;

  active_.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) active_[v] = v;

  protocol.reset(*graph_, rng);
  // Read after reset: protocols may size their exchange count to the graph.
  const unsigned exchanges = protocol.exchanges_per_round();
  if (exchanges == 0) throw std::logic_error("protocol declares zero exchanges per round");

  LocalContext ctx;
  ctx.graph_ = graph_;
  ctx.active_ = &active_;
  ctx.status_ = &status_;
  ctx.values_ = &values_;
  ctx.published_ = &published_;
  ctx.rng_ = &rng;
  ctx.simulator_ = this;

  std::size_t round = 0;
  while (!active_.empty() && round < config_.max_rounds) {
    for (unsigned e = 0; e < exchanges; ++e) {
      detail::clear_flags(published_, publishers_);
      ctx.round_ = round;
      ctx.exchange_ = e;

      ctx.phase_ = LocalContext::Phase::kEmit;
      protocol.emit(ctx);

      ctx.phase_ = LocalContext::Phase::kReact;
      protocol.react(ctx);
    }
    std::erase_if(active_,
                  [this](graph::NodeId v) { return status_[v] != NodeStatus::kActive; });
    ++round;
  }

  RunResult result;
  result.terminated = active_.empty();
  result.rounds = round;
  result.status = std::move(status_);
  result.beep_counts.assign(n, 0);
  result.message_bits = message_bits_;
  return result;
}

}  // namespace beepmis::sim

#include "sim/batch.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "sim/exchange_core.hpp"
#include "sim/flag_buffer.hpp"
#include "support/phase_timer.hpp"

namespace beepmis::sim {

// Plane clearing goes through the shared dirty-list policy in
// sim/flag_buffer.hpp (templated over the flag value), and the wake/crash
// loop, lane retirement, plane delivery, and result extraction live in
// sim/exchange_core.hpp — this file is only the batched *front-end*:
// context wiring, the per-exchange choreography, and the kScalarOrder
// draw-order paths no other front-end shares.

void BatchContext::join_mis(graph::NodeId v, LaneMask lanes) {
  if (phase_ != Phase::kReact) {
    throw std::logic_error("BatchContext::join_mis called outside the react phase");
  }
  if (v < lo_ || v >= hi_ || lanes == 0 || (lanes & ~(*live_)[v]) != 0) {
    throw std::logic_error(
        "BatchContext::join_mis outside the node's live lanes or this shard's range");
  }
  (*live_)[v] &= ~lanes;
  (*inmis_)[v] |= lanes;
  for (LaneMask b = lanes; b != 0; b &= b - 1) {
    const unsigned l = static_cast<unsigned>(std::countr_zero(b));
    --active_count_[l];
    // Per-lane join order, like the scalar core (consumed by kScalarOrder
    // lossy keep-alive; absent in the statistical-only sharded core).
    if (mis_lists_ != nullptr) (*mis_lists_)[l].push_back(v);
  }
  if (in_mis_union_ == nullptr) {
    // Per-shard new-joins list: the coordinator merges and dedups into the
    // global union at the round boundary.
    mis_joins_->push_back(v);
  } else if (!(*in_mis_union_)[v]) {
    (*in_mis_union_)[v] = 1;
    mis_joins_->push_back(v);
  }
  *mis_hear_valid_ = false;
}

void BatchContext::deactivate(graph::NodeId v, LaneMask lanes) {
  if (phase_ != Phase::kReact) {
    throw std::logic_error("BatchContext::deactivate called outside the react phase");
  }
  if (v < lo_ || v >= hi_ || lanes == 0 || (lanes & ~(*live_)[v]) != 0) {
    throw std::logic_error(
        "BatchContext::deactivate outside the node's live lanes or this shard's range");
  }
  (*live_)[v] &= ~lanes;
  (*dominated_)[v] |= lanes;
  for (LaneMask b = lanes; b != 0; b &= b - 1) {
    --active_count_[std::countr_zero(b)];
  }
}

void BatchContext::reactivate(graph::NodeId v, LaneMask lanes) {
  if (phase_ != Phase::kReact) {
    throw std::logic_error("BatchContext::reactivate called outside the react phase");
  }
  if (v < lo_ || v >= hi_ || lanes == 0 || (lanes & ~(*dominated_)[v]) != 0) {
    throw std::logic_error(
        "BatchContext::reactivate outside the node's dominated lanes or this shard's "
        "range");
  }
  // A lane that left the round loop has frozen planes; reactivating into it
  // would corrupt the lane's already-final RunResult.
  if ((lanes & ~*running_) != 0) {
    throw std::logic_error("BatchContext::reactivate on a terminated lane");
  }
  (*dominated_)[v] &= ~lanes;
  (*live_)[v] |= lanes;
  for (LaneMask b = lanes; b != 0; b &= b - 1) {
    const unsigned l = static_cast<unsigned>(std::countr_zero(b));
    ++active_count_[l];
    ++reactivation_counts_[l];
  }
  reactivated_->push_back(v);
}

BatchSimulator::BatchSimulator(SimConfig config, BatchRngMode rng_mode)
    : config_(std::move(config)), rng_mode_(rng_mode) {
  if (config_.beep_loss_probability < 0.0 || config_.beep_loss_probability >= 1.0) {
    throw std::invalid_argument("SimConfig: beep_loss_probability must be in [0, 1)");
  }
  if (config_.record_trace) {
    throw std::invalid_argument(
        "BatchSimulator does not support record_trace; use the scalar BeepSimulator");
  }
  if (config_.scenario != nullptr) {
    throw std::invalid_argument(
        "BatchSimulator: fault scenarios run on the scalar BeepSimulator "
        "(kStaticSchedule scenarios materialise into crash_round vectors instead)");
  }
  if (config_.track_recovery) {
    throw std::invalid_argument(
        "BatchSimulator: recovery tracking is scalar-only (use BeepSimulator)");
  }
}

void BatchSimulator::bind_graph(const graph::Graph& g) {
  const graph::NodeId n = g.node_count();
  // Identical to the scalar binding: the schedules depend only on
  // (config_, n), so a rebind to an equal-sized graph skips the rebuild.
  if (graph_ != nullptr && n == bound_node_count_) {
    graph_ = &g;
    return;
  }
  if (!config_.wake_round.empty() && config_.wake_round.size() != n) {
    throw std::invalid_argument("SimConfig: wake_round size must match the graph");
  }
  if (!config_.crash_round.empty() && config_.crash_round.size() != n) {
    throw std::invalid_argument("SimConfig: crash_round size must match the graph");
  }
  graph_ = &g;
  faults_ = detail::build_fault_schedule(config_.wake_round, config_.crash_round, 0, n);
  bound_node_count_ = n;
}

void BatchSimulator::apply_wakeups_and_crashes() {
  const LaneMask mis_crashed = detail::apply_plane_fault_events(
      faults_, fault_cursor_, round_, running_, live_, inmis_, dominated_, crashed_,
      active_, in_active_, active_count_.data());
  if (mis_crashed) {
    // A crashed member falls out of its lane's keep-alive frontier the
    // round it fails, exactly like the scalar mis_nodes_ compaction.
    for (LaneMask b = mis_crashed; b != 0; b &= b - 1) {
      const unsigned l = static_cast<unsigned>(std::countr_zero(b));
      std::erase_if(mis_lists_[l], [this, l](graph::NodeId v) {
        return ((inmis_[v] >> l) & 1u) == 0;
      });
    }
    std::erase_if(mis_union_, [this](graph::NodeId v) {
      if (inmis_[v] != 0) return false;
      in_mis_union_[v] = 0;
      return true;
    });
    mis_hear_valid_ = false;
  }
}

void BatchSimulator::deliver_beeps() {
  detail::clear_flags(heard_, heard_dirty_);

  const bool lossy = config_.beep_loss_probability > 0.0;
  const double keep = 1.0 - config_.beep_loss_probability;
  // Protocols emit over the ascending union frontier, so the beeper list is
  // normally already sorted; keep the guarantee for out-of-order beeps.
  if (!std::is_sorted(beepers_.begin(), beepers_.end())) {
    std::sort(beepers_.begin(), beepers_.end());
  }
  const auto full_adjacency = [this](graph::NodeId v) { return graph_->neighbors(v); };
  if (!lossy) {
    // The batched payoff: one CSR pass serves every lane via OR-accumulation.
    detail::deliver_planes(beepers_, beeped_, full_adjacency, heard_, heard_dirty_);
    if (config_.mis_keepalive) {
      // Join order is irrelevant on a reliable channel (no draws), so one
      // cached (listener, lane-mask) list — re-derived only when some
      // lane's MIS changed — serves every lane per exchange.
      if (!mis_hear_valid_) {
        detail::rebuild_mis_hear_planes(
            mis_union_, [this](graph::NodeId v) { return inmis_[v]; }, full_adjacency,
            mis_hear_mask_, mis_hear_);
        mis_hear_valid_ = true;
      }
      detail::apply_mis_hear_planes(mis_hear_, mis_hear_mask_, heard_, heard_dirty_);
    }
    return;
  }

  if (rng_mode_ == BatchRngMode::kStatisticalLanes) {
    // Statistical lanes: loss bits for *all* lanes of an edge come from
    // one bulk Bernoulli plane instead of popcount(avail) serially
    // dependent per-lane draws — this is what flips the lossy-tail rows
    // back above 1x (BENCH_core.json).  Keep-alive needs no join-order
    // iteration either: the union MIS in ascending order has the same
    // per-lane marginals.
    detail::deliver_planes_lossy(
        beepers_, [this](graph::NodeId v) { return beeped_[v]; }, full_adjacency, keep,
        bulk_rng_, heard_, heard_dirty_);
    if (config_.mis_keepalive) {
      const LaneMask running = running_;
      detail::deliver_planes_lossy(
          mis_union_, [this, running](graph::NodeId v) { return inmis_[v] & running; },
          full_adjacency, keep, bulk_rng_, heard_, heard_dirty_);
    }
    return;
  }

  // Lossy channel, scalar order: every potential (beeper -> not-yet-hearing
  // listener) delivery consumes exactly one Bernoulli draw from that
  // lane's RNG, in the scalar iteration order (ascending beepers, CSR
  // neighbour order).  This path is the one piece of delivery no other
  // front-end shares — the draw interleaving across lanes has no scalar
  // analogue.
  for (const graph::NodeId v : beepers_) {
    const LaneMask m = beeped_[v];
    for (const graph::NodeId w : graph_->neighbors(v)) {
      const LaneMask avail = m & ~heard_[w];
      if (!avail) continue;
      LaneMask got = 0;
      for (LaneMask b = avail; b != 0; b &= b - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(b));
        if (rngs_[l].bernoulli(keep)) got |= LaneMask{1} << l;
      }
      if (got) {
        if (!heard_[w]) heard_dirty_.push_back(w);
        heard_[w] |= got;
      }
    }
  }
  if (config_.mis_keepalive) {
    // Keep-alive draws come after frontier draws and iterate each lane's
    // live MIS members in that lane's join order — both load-bearing for
    // scalar parity (see README determinism contract).
    for (LaneMask lanes = running_; lanes != 0; lanes &= lanes - 1) {
      const unsigned l = static_cast<unsigned>(std::countr_zero(lanes));
      const LaneMask bit = LaneMask{1} << l;
      for (const graph::NodeId v : mis_lists_[l]) {
        for (const graph::NodeId w : graph_->neighbors(v)) {
          if (heard_[w] & bit) continue;
          if (rngs_[l].bernoulli(keep)) {
            if (!heard_[w]) heard_dirty_.push_back(w);
            heard_[w] |= bit;
          }
        }
      }
    }
  }
}

void BatchSimulator::compact_active() {
  detail::compact_plane_active(active_, in_active_, live_);
}

std::vector<RunResult> BatchSimulator::run(const graph::Graph& g, BatchProtocol& protocol,
                                           std::vector<support::Xoshiro256StarStar> rngs) {
  if (rng_mode_ != BatchRngMode::kScalarOrder) {
    throw std::logic_error(
        "BatchSimulator: per-lane rng vectors belong to kScalarOrder; a "
        "kStatisticalLanes run is seeded by one base stream (run(g, protocol, "
        "base, lanes))");
  }
  return run_lanes(g, protocol, std::move(rngs));
}

std::vector<RunResult> BatchSimulator::run(const graph::Graph& g, BatchProtocol& protocol,
                                           support::Xoshiro256StarStar base,
                                           unsigned lanes) {
  if (rng_mode_ != BatchRngMode::kStatisticalLanes) {
    throw std::logic_error(
        "BatchSimulator: base-seeded runs belong to kStatisticalLanes; a "
        "kScalarOrder run takes one rng per lane");
  }
  if (lanes == 0 || lanes > kMaxBatchLanes) {
    throw std::invalid_argument("BatchSimulator::run: need 1..64 lanes");
  }
  // Lane l's stream is the base advanced by l+1 jumps, so it depends only
  // on (seed, l); the base itself serves the bulk planes.  Windows of
  // 2^128 outputs apart can never overlap in any realistic run.
  bulk_rng_ = base;
  std::vector<support::Xoshiro256StarStar> rngs;
  rngs.reserve(lanes);
  support::Xoshiro256StarStar stream = base;
  for (unsigned l = 0; l < lanes; ++l) {
    stream.jump();
    rngs.push_back(stream);
  }
  return run_lanes(g, protocol, std::move(rngs));
}

std::vector<RunResult> BatchSimulator::run_lanes(
    const graph::Graph& g, BatchProtocol& protocol,
    std::vector<support::Xoshiro256StarStar> rngs) {
  BEEPMIS_STM_DECLARE(faults, "batch/faults");
  BEEPMIS_STM_DECLARE(emit, "batch/emit");
  BEEPMIS_STM_DECLARE(deliver, "batch/deliver");
  BEEPMIS_STM_DECLARE(react, "batch/react");
  const unsigned lanes = static_cast<unsigned>(rngs.size());
  if (lanes == 0 || lanes > kMaxBatchLanes) {
    throw std::invalid_argument("BatchSimulator::run: need 1..64 lane RNGs");
  }
  bind_graph(g);
  const graph::NodeId n = graph_->node_count();
  lane_count_ = lanes;
  rngs_ = std::move(rngs);
  const LaneMask all_lanes =
      lanes == kMaxBatchLanes ? ~LaneMask{0} : (LaneMask{1} << lanes) - 1;

  live_.assign(n, 0);
  inmis_.assign(n, 0);
  dominated_.assign(n, 0);
  crashed_.assign(n, 0);
  beeped_.assign(n, 0);
  prev_beeped_.assign(n, 0);
  heard_.assign(n, 0);
  in_active_.assign(n, 0);
  in_mis_union_.assign(n, 0);
  beepers_.clear();
  prev_beepers_.clear();
  heard_dirty_.clear();
  mis_union_.clear();
  mis_hear_mask_.assign(n, 0);
  mis_hear_.clear();
  mis_hear_valid_ = false;
  reactivated_.clear();
  beep_counts_.assign(static_cast<std::size_t>(n) * lanes, 0);
  reactivation_counts_.assign(lanes, 0);
  mis_lists_.resize(lanes);
  for (auto& list : mis_lists_) list.clear();
  active_count_.assign(lanes, static_cast<std::uint32_t>(faults_.initial_active.size()));
  lane_rounds_.assign(lanes, 0);
  running_ = all_lanes;
  terminated_ = 0;
  fault_cursor_ = {};
  round_ = 0;

  active_ = faults_.initial_active;
  for (const graph::NodeId v : active_) {
    in_active_[v] = 1;
    live_[v] = all_lanes;
  }

  protocol.reset(*graph_, std::span<support::Xoshiro256StarStar>(rngs_));
  const unsigned exchanges = protocol.exchanges_per_round();
  if (exchanges == 0) throw std::logic_error("protocol declares zero exchanges per round");

  BatchContext ctx;
  ctx.graph_ = graph_;
  ctx.active_ = &active_;
  ctx.live_ = &live_;
  ctx.inmis_ = &inmis_;
  ctx.dominated_ = &dominated_;
  ctx.beeped_ = &beeped_;
  ctx.prev_beeped_ = &prev_beeped_;
  ctx.heard_ = &heard_;
  ctx.beepers_ = &beepers_;
  ctx.beep_counts_ = beep_counts_.data();
  ctx.active_count_ = active_count_.data();
  ctx.mis_lists_ = &mis_lists_;
  ctx.mis_joins_ = &mis_union_;
  ctx.in_mis_union_ = &in_mis_union_;
  ctx.mis_hear_valid_ = &mis_hear_valid_;
  ctx.reactivated_ = &reactivated_;
  ctx.reactivation_counts_ = reactivation_counts_.data();
  ctx.running_ = &running_;
  ctx.bulk_rng_ = &bulk_rng_;
  ctx.rngs_ = &rngs_;
  ctx.rng_mode_ = rng_mode_;
  ctx.lo_ = 0;
  ctx.hi_ = n;
  ctx.lane_count_ = lanes;

  while (running_ != 0) {
    if (config_.deadline_ns != nullptr &&
        steady_now_ns() > config_.deadline_ns->load(std::memory_order_relaxed)) {
      throw RunCancelled("BatchSimulator::run: deadline expired at round " +
                         std::to_string(round_));
    }
    const bool wakeups_pending = fault_cursor_.next_wakeup < faults_.wakeups.size();
    detail::retire_finished_lanes(round_, config_.run_until_round, config_.max_rounds,
                                  wakeups_pending, active_count_.data(),
                                  lane_rounds_.data(), running_, terminated_);
    if (running_ == 0) break;

    {
      BEEPMIS_STM_START(faults);
      apply_wakeups_and_crashes();
      BEEPMIS_STM_STOP(faults);
    }

    for (exchange_ = 0; exchange_ < exchanges; ++exchange_) {
      if (exchange_ == 0) {
        detail::clear_flags(prev_beeped_, prev_beepers_);
      } else {
        beeped_.swap(prev_beeped_);
        beepers_.swap(prev_beepers_);
      }
      detail::clear_flags(beeped_, beepers_);
      ctx.round_ = round_;
      ctx.exchange_ = exchange_;

      ctx.phase_ = BatchContext::Phase::kEmit;
      BEEPMIS_STM_START(emit);
      protocol.emit(ctx);
      BEEPMIS_STM_STOP(emit);

      BEEPMIS_STM_START(deliver);
      deliver_beeps();
      BEEPMIS_STM_STOP(deliver);

      ctx.phase_ = BatchContext::Phase::kReact;
      BEEPMIS_STM_START(react);
      protocol.react(ctx);
      BEEPMIS_STM_STOP(react);
    }
    compact_active();
    if (!reactivated_.empty()) {
      // Scalar round-boundary rule: a reactivated node re-enters the active
      // list unless it is still on it (live in another lane, or reactivated
      // twice); compaction above kept it when any live bit was set.
      for (const graph::NodeId v : reactivated_) {
        if (in_active_[v]) continue;
        active_.push_back(v);
        in_active_[v] = 1;
      }
      std::sort(active_.begin(), active_.end());
      reactivated_.clear();
    }
    ++round_;
  }

  return detail::extract_lane_results(n, lanes, crashed_, inmis_, dominated_,
                                      beep_counts_.data(), terminated_,
                                      lane_rounds_.data(), reactivation_counts_.data());
}

}  // namespace beepmis::sim

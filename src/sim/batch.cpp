#include "sim/batch.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace beepmis::sim {

namespace {

/// Dirty-list clearing for bitplanes, mirroring detail::clear_flags: when a
/// large fraction of the plane is dirty a straight fill beats the scatter
/// loop.
void clear_planes(std::vector<LaneMask>& planes, std::vector<graph::NodeId>& dirty) {
  if (dirty.size() >= planes.size() / 8) {
    std::fill(planes.begin(), planes.end(), LaneMask{0});
  } else {
    for (const graph::NodeId v : dirty) planes[v] = 0;
  }
  dirty.clear();
}

}  // namespace

void BatchContext::join_mis(graph::NodeId v, LaneMask lanes) {
  if (phase_ != Phase::kReact) {
    throw std::logic_error("BatchContext::join_mis called outside the react phase");
  }
  BatchSimulator& sim = *simulator_;
  if (v >= sim.live_.size() || lanes == 0 || (lanes & ~sim.live_[v]) != 0) {
    throw std::logic_error("BatchContext::join_mis outside the node's live lanes");
  }
  sim.live_[v] &= ~lanes;
  sim.inmis_[v] |= lanes;
  for (LaneMask b = lanes; b != 0; b &= b - 1) {
    const unsigned l = static_cast<unsigned>(std::countr_zero(b));
    --sim.active_count_[l];
    sim.mis_lists_[l].push_back(v);  // per-lane join order, like the scalar core
  }
  if (!sim.in_mis_union_[v]) {
    sim.in_mis_union_[v] = 1;
    sim.mis_union_.push_back(v);
  }
  sim.mis_hear_valid_ = false;
}

void BatchContext::deactivate(graph::NodeId v, LaneMask lanes) {
  if (phase_ != Phase::kReact) {
    throw std::logic_error("BatchContext::deactivate called outside the react phase");
  }
  BatchSimulator& sim = *simulator_;
  if (v >= sim.live_.size() || lanes == 0 || (lanes & ~sim.live_[v]) != 0) {
    throw std::logic_error("BatchContext::deactivate outside the node's live lanes");
  }
  sim.live_[v] &= ~lanes;
  sim.dominated_[v] |= lanes;
  for (LaneMask b = lanes; b != 0; b &= b - 1) {
    --sim.active_count_[std::countr_zero(b)];
  }
}

LaneMask BatchContext::dominated_mask(graph::NodeId v) const {
  return simulator_->dominated_[v];
}

LaneMask BatchContext::running_mask() const noexcept { return simulator_->running_; }

void BatchContext::reactivate(graph::NodeId v, LaneMask lanes) {
  if (phase_ != Phase::kReact) {
    throw std::logic_error("BatchContext::reactivate called outside the react phase");
  }
  BatchSimulator& sim = *simulator_;
  if (v >= sim.dominated_.size() || lanes == 0 || (lanes & ~sim.dominated_[v]) != 0) {
    throw std::logic_error("BatchContext::reactivate outside the node's dominated lanes");
  }
  // A lane that left the round loop has frozen planes; reactivating into it
  // would corrupt the lane's already-final RunResult.
  if ((lanes & ~sim.running_) != 0) {
    throw std::logic_error("BatchContext::reactivate on a terminated lane");
  }
  sim.dominated_[v] &= ~lanes;
  sim.live_[v] |= lanes;
  for (LaneMask b = lanes; b != 0; b &= b - 1) {
    ++sim.active_count_[std::countr_zero(b)];
  }
  sim.reactivated_.push_back(v);
}

BatchSimulator::BatchSimulator(SimConfig config, BatchRngMode rng_mode)
    : config_(std::move(config)), rng_mode_(rng_mode) {
  if (config_.beep_loss_probability < 0.0 || config_.beep_loss_probability >= 1.0) {
    throw std::invalid_argument("SimConfig: beep_loss_probability must be in [0, 1)");
  }
  if (config_.record_trace) {
    throw std::invalid_argument(
        "BatchSimulator does not support record_trace; use the scalar BeepSimulator");
  }
  if (config_.scenario != nullptr) {
    throw std::invalid_argument(
        "BatchSimulator: fault scenarios run on the scalar BeepSimulator "
        "(kStaticSchedule scenarios materialise into crash_round vectors instead)");
  }
  if (config_.track_recovery) {
    throw std::invalid_argument(
        "BatchSimulator: recovery tracking is scalar-only (use BeepSimulator)");
  }
}

void BatchSimulator::bind_graph(const graph::Graph& g) {
  const graph::NodeId n = g.node_count();
  // Identical to the scalar binding: the schedules depend only on
  // (config_, n), so a rebind to an equal-sized graph skips the rebuild.
  if (graph_ != nullptr && n == bound_node_count_) {
    graph_ = &g;
    return;
  }
  if (!config_.wake_round.empty() && config_.wake_round.size() != n) {
    throw std::invalid_argument("SimConfig: wake_round size must match the graph");
  }
  if (!config_.crash_round.empty() && config_.crash_round.size() != n) {
    throw std::invalid_argument("SimConfig: crash_round size must match the graph");
  }
  graph_ = &g;

  initial_active_.clear();
  pending_wakeups_.clear();
  for (graph::NodeId v = 0; v < n; ++v) {
    if (config_.wake_round.empty() || config_.wake_round[v] == 0) {
      initial_active_.push_back(v);
    } else {
      pending_wakeups_.emplace_back(config_.wake_round[v], v);
    }
  }
  std::sort(pending_wakeups_.begin(), pending_wakeups_.end());

  pending_crashes_.clear();
  if (!config_.crash_round.empty()) {
    for (graph::NodeId v = 0; v < n; ++v) {
      pending_crashes_.emplace_back(config_.crash_round[v], v);
    }
    std::sort(pending_crashes_.begin(), pending_crashes_.end());
  }
  bound_node_count_ = n;
}

void BatchSimulator::apply_wakeups_and_crashes() {
  bool active_dirty = false;
  while (next_wakeup_ < pending_wakeups_.size() &&
         pending_wakeups_[next_wakeup_].first <= round_) {
    const graph::NodeId v = pending_wakeups_[next_wakeup_].second;
    ++next_wakeup_;
    // A sleeper can only be kActive or kCrashed; scalar drops the crashed.
    const LaneMask add = running_ & ~crashed_[v];
    if (!add) continue;
    live_[v] |= add;
    for (LaneMask b = add; b != 0; b &= b - 1) {
      ++active_count_[std::countr_zero(b)];
    }
    if (!in_active_[v]) {
      in_active_[v] = 1;
      active_.push_back(v);
      active_dirty = true;
    }
  }
  if (active_dirty) std::sort(active_.begin(), active_.end());

  LaneMask mis_crashed = 0;
  while (next_crash_ < pending_crashes_.size() &&
         pending_crashes_[next_crash_].first <= round_) {
    const graph::NodeId v = pending_crashes_[next_crash_].second;
    ++next_crash_;
    const LaneMask hit = running_ & ~crashed_[v];
    if (!hit) continue;
    crashed_[v] |= hit;
    const LaneMask hit_live = hit & live_[v];
    if (hit_live) {
      live_[v] &= ~hit_live;
      for (LaneMask b = hit_live; b != 0; b &= b - 1) {
        --active_count_[std::countr_zero(b)];
      }
    }
    const LaneMask hit_mis = hit & inmis_[v];
    if (hit_mis) {
      inmis_[v] &= ~hit_mis;
      mis_crashed |= hit_mis;
    }
    dominated_[v] &= ~hit;
  }
  if (mis_crashed) {
    // A crashed member falls out of its lane's keep-alive frontier the
    // round it fails, exactly like the scalar mis_nodes_ compaction.
    for (LaneMask b = mis_crashed; b != 0; b &= b - 1) {
      const unsigned l = static_cast<unsigned>(std::countr_zero(b));
      std::erase_if(mis_lists_[l], [this, l](graph::NodeId v) {
        return ((inmis_[v] >> l) & 1u) == 0;
      });
    }
    std::erase_if(mis_union_, [this](graph::NodeId v) {
      if (inmis_[v] != 0) return false;
      in_mis_union_[v] = 0;
      return true;
    });
    mis_hear_valid_ = false;
  }
}

void BatchSimulator::deliver_beeps() {
  clear_planes(heard_, heard_dirty_);

  const bool lossy = config_.beep_loss_probability > 0.0;
  const double keep = 1.0 - config_.beep_loss_probability;
  // Protocols emit over the ascending union frontier, so the beeper list is
  // normally already sorted; keep the guarantee for out-of-order beeps.
  if (!std::is_sorted(beepers_.begin(), beepers_.end())) {
    std::sort(beepers_.begin(), beepers_.end());
  }
  if (!lossy) {
    // The batched payoff: one CSR pass serves every lane via OR-accumulation.
    for (const graph::NodeId v : beepers_) {
      const LaneMask m = beeped_[v];
      for (const graph::NodeId w : graph_->neighbors(v)) {
        const LaneMask old = heard_[w];
        if (!old) heard_dirty_.push_back(w);
        heard_[w] = old | m;
      }
    }
    if (config_.mis_keepalive) {
      // Join order is irrelevant on a reliable channel (no draws), so one
      // cached (listener, lane-mask) list — re-derived only when some
      // lane's MIS changed — serves every lane per exchange.
      if (!mis_hear_valid_) {
        for (const graph::NodeId w : mis_hear_) mis_hear_mask_[w] = 0;
        mis_hear_.clear();
        for (const graph::NodeId v : mis_union_) {
          const LaneMask m = inmis_[v];
          if (!m) continue;
          for (const graph::NodeId w : graph_->neighbors(v)) {
            if (!mis_hear_mask_[w]) mis_hear_.push_back(w);
            mis_hear_mask_[w] |= m;
          }
        }
        mis_hear_valid_ = true;
      }
      for (const graph::NodeId w : mis_hear_) {
        const LaneMask old = heard_[w];
        if (!old) heard_dirty_.push_back(w);
        heard_[w] = old | mis_hear_mask_[w];
      }
    }
    return;
  }

  if (rng_mode_ == BatchRngMode::kStatisticalLanes) {
    // Statistical lanes: loss bits for *all* lanes of an edge come from
    // one bulk Bernoulli plane instead of popcount(avail) serially
    // dependent per-lane draws — this is what flips the lossy-tail rows
    // back above 1x (BENCH_core.json).  Keep-alive needs no join-order
    // iteration either: the union MIS in ascending order has the same
    // per-lane marginals.
    const LaneMask running = running_;
    for (const graph::NodeId v : beepers_) {
      const LaneMask m = beeped_[v];
      for (const graph::NodeId w : graph_->neighbors(v)) {
        const LaneMask avail = m & ~heard_[w];
        if (!avail) continue;
        const LaneMask got = bernoulli_plane(keep, avail);
        if (got) {
          if (!heard_[w]) heard_dirty_.push_back(w);
          heard_[w] |= got;
        }
      }
    }
    if (config_.mis_keepalive) {
      for (const graph::NodeId v : mis_union_) {
        const LaneMask m = inmis_[v] & running;
        if (!m) continue;
        for (const graph::NodeId w : graph_->neighbors(v)) {
          const LaneMask avail = m & ~heard_[w];
          if (!avail) continue;
          const LaneMask got = bernoulli_plane(keep, avail);
          if (got) {
            if (!heard_[w]) heard_dirty_.push_back(w);
            heard_[w] |= got;
          }
        }
      }
    }
    return;
  }

  // Lossy channel, scalar order: every potential (beeper -> not-yet-hearing
  // listener) delivery consumes exactly one Bernoulli draw from that
  // lane's RNG, in the scalar iteration order (ascending beepers, CSR
  // neighbour order).
  for (const graph::NodeId v : beepers_) {
    const LaneMask m = beeped_[v];
    for (const graph::NodeId w : graph_->neighbors(v)) {
      const LaneMask avail = m & ~heard_[w];
      if (!avail) continue;
      LaneMask got = 0;
      for (LaneMask b = avail; b != 0; b &= b - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(b));
        if (rngs_[l].bernoulli(keep)) got |= LaneMask{1} << l;
      }
      if (got) {
        if (!heard_[w]) heard_dirty_.push_back(w);
        heard_[w] |= got;
      }
    }
  }
  if (config_.mis_keepalive) {
    // Keep-alive draws come after frontier draws and iterate each lane's
    // live MIS members in that lane's join order — both load-bearing for
    // scalar parity (see README determinism contract).
    for (LaneMask lanes = running_; lanes != 0; lanes &= lanes - 1) {
      const unsigned l = static_cast<unsigned>(std::countr_zero(lanes));
      const LaneMask bit = LaneMask{1} << l;
      for (const graph::NodeId v : mis_lists_[l]) {
        for (const graph::NodeId w : graph_->neighbors(v)) {
          if (heard_[w] & bit) continue;
          if (rngs_[l].bernoulli(keep)) {
            if (!heard_[w]) heard_dirty_.push_back(w);
            heard_[w] |= bit;
          }
        }
      }
    }
  }
}

void BatchSimulator::compact_active() {
  std::erase_if(active_, [this](graph::NodeId v) {
    if (live_[v] != 0) return false;
    in_active_[v] = 0;
    return true;
  });
}

std::vector<RunResult> BatchSimulator::run(const graph::Graph& g, BatchProtocol& protocol,
                                           std::vector<support::Xoshiro256StarStar> rngs) {
  if (rng_mode_ != BatchRngMode::kScalarOrder) {
    throw std::logic_error(
        "BatchSimulator: per-lane rng vectors belong to kScalarOrder; a "
        "kStatisticalLanes run is seeded by one base stream (run(g, protocol, "
        "base, lanes))");
  }
  return run_lanes(g, protocol, std::move(rngs));
}

std::vector<RunResult> BatchSimulator::run(const graph::Graph& g, BatchProtocol& protocol,
                                           support::Xoshiro256StarStar base,
                                           unsigned lanes) {
  if (rng_mode_ != BatchRngMode::kStatisticalLanes) {
    throw std::logic_error(
        "BatchSimulator: base-seeded runs belong to kStatisticalLanes; a "
        "kScalarOrder run takes one rng per lane");
  }
  if (lanes == 0 || lanes > kMaxBatchLanes) {
    throw std::invalid_argument("BatchSimulator::run: need 1..64 lanes");
  }
  // Lane l's stream is the base advanced by l+1 jumps, so it depends only
  // on (seed, l); the base itself serves the bulk planes.  Windows of
  // 2^128 outputs apart can never overlap in any realistic run.
  bulk_rng_ = base;
  std::vector<support::Xoshiro256StarStar> rngs;
  rngs.reserve(lanes);
  support::Xoshiro256StarStar stream = base;
  for (unsigned l = 0; l < lanes; ++l) {
    stream.jump();
    rngs.push_back(stream);
  }
  return run_lanes(g, protocol, std::move(rngs));
}

std::vector<RunResult> BatchSimulator::run_lanes(
    const graph::Graph& g, BatchProtocol& protocol,
    std::vector<support::Xoshiro256StarStar> rngs) {
  const unsigned lanes = static_cast<unsigned>(rngs.size());
  if (lanes == 0 || lanes > kMaxBatchLanes) {
    throw std::invalid_argument("BatchSimulator::run: need 1..64 lane RNGs");
  }
  bind_graph(g);
  const graph::NodeId n = graph_->node_count();
  lane_count_ = lanes;
  rngs_ = std::move(rngs);
  const LaneMask all_lanes =
      lanes == kMaxBatchLanes ? ~LaneMask{0} : (LaneMask{1} << lanes) - 1;

  live_.assign(n, 0);
  inmis_.assign(n, 0);
  dominated_.assign(n, 0);
  crashed_.assign(n, 0);
  beeped_.assign(n, 0);
  prev_beeped_.assign(n, 0);
  heard_.assign(n, 0);
  in_active_.assign(n, 0);
  in_mis_union_.assign(n, 0);
  beepers_.clear();
  prev_beepers_.clear();
  heard_dirty_.clear();
  mis_union_.clear();
  mis_hear_mask_.assign(n, 0);
  mis_hear_.clear();
  mis_hear_valid_ = false;
  reactivated_.clear();
  beep_counts_.assign(static_cast<std::size_t>(n) * lanes, 0);
  mis_lists_.resize(lanes);
  for (auto& list : mis_lists_) list.clear();
  active_count_.assign(lanes, static_cast<std::uint32_t>(initial_active_.size()));
  lane_rounds_.assign(lanes, 0);
  running_ = all_lanes;
  terminated_ = 0;
  next_wakeup_ = 0;
  next_crash_ = 0;
  round_ = 0;

  active_ = initial_active_;
  for (const graph::NodeId v : active_) {
    in_active_[v] = 1;
    live_[v] = all_lanes;
  }

  protocol.reset(*graph_, std::span<support::Xoshiro256StarStar>(rngs_));
  const unsigned exchanges = protocol.exchanges_per_round();
  if (exchanges == 0) throw std::logic_error("protocol declares zero exchanges per round");

  BatchContext ctx;
  ctx.graph_ = graph_;
  ctx.active_ = &active_;
  ctx.live_ = &live_;
  ctx.beeped_ = &beeped_;
  ctx.heard_ = &heard_;
  ctx.rngs_ = &rngs_;
  ctx.simulator_ = this;
  ctx.lane_count_ = lanes;

  while (running_ != 0) {
    if (config_.deadline_ns != nullptr &&
        steady_now_ns() > config_.deadline_ns->load(std::memory_order_relaxed)) {
      throw RunCancelled("BatchSimulator::run: deadline expired at round " +
                         std::to_string(round_));
    }
    // Per-lane mirror of the scalar while-condition, evaluated before the
    // round body: a lane leaves the loop (and freezes its planes and RNG)
    // exactly when its scalar run would.
    const bool wakeups_pending = next_wakeup_ < pending_wakeups_.size();
    if (!wakeups_pending && round_ >= config_.run_until_round) {
      LaneMask done = 0;
      for (LaneMask b = running_; b != 0; b &= b - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(b));
        if (active_count_[l] == 0) {
          done |= LaneMask{1} << l;
          lane_rounds_[l] = round_;
        }
      }
      terminated_ |= done;
      running_ &= ~done;
    }
    if (round_ >= config_.max_rounds) {
      for (LaneMask b = running_; b != 0; b &= b - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(b));
        lane_rounds_[l] = round_;
        if (active_count_[l] == 0 && !wakeups_pending) terminated_ |= LaneMask{1} << l;
      }
      running_ = 0;
    }
    if (running_ == 0) break;

    apply_wakeups_and_crashes();

    for (exchange_ = 0; exchange_ < exchanges; ++exchange_) {
      if (exchange_ == 0) {
        clear_planes(prev_beeped_, prev_beepers_);
      } else {
        beeped_.swap(prev_beeped_);
        beepers_.swap(prev_beepers_);
      }
      clear_planes(beeped_, beepers_);
      ctx.round_ = round_;
      ctx.exchange_ = exchange_;

      ctx.phase_ = BatchContext::Phase::kEmit;
      protocol.emit(ctx);

      deliver_beeps();

      ctx.phase_ = BatchContext::Phase::kReact;
      protocol.react(ctx);
    }
    compact_active();
    if (!reactivated_.empty()) {
      // Scalar round-boundary rule: a reactivated node re-enters the active
      // list unless it is still on it (live in another lane, or reactivated
      // twice); compaction above kept it when any live bit was set.
      for (const graph::NodeId v : reactivated_) {
        if (in_active_[v]) continue;
        active_.push_back(v);
        in_active_[v] = 1;
      }
      std::sort(active_.begin(), active_.end());
      reactivated_.clear();
    }
    ++round_;
  }

  std::vector<RunResult> results(lanes);
  for (unsigned l = 0; l < lanes; ++l) {
    const LaneMask bit = LaneMask{1} << l;
    RunResult& r = results[l];
    r.terminated = (terminated_ & bit) != 0;
    r.rounds = lane_rounds_[l];
    r.status.resize(n);
    r.beep_counts.resize(n);
  }
  // Node-major extraction: the node-major beep_counts_ and the planes are
  // each read once sequentially; lane-major order would stride through the
  // count array 64 times.
  for (graph::NodeId v = 0; v < n; ++v) {
    const LaneMask cr = crashed_[v];
    const LaneMask im = inmis_[v];
    const LaneMask dm = dominated_[v];
    const std::uint32_t* counts = &beep_counts_[static_cast<std::size_t>(v) * lanes];
    for (unsigned l = 0; l < lanes; ++l) {
      const LaneMask bit = LaneMask{1} << l;
      NodeStatus s = NodeStatus::kActive;
      if (cr & bit) {
        s = NodeStatus::kCrashed;
      } else if (im & bit) {
        s = NodeStatus::kInMis;
      } else if (dm & bit) {
        s = NodeStatus::kDominated;
      }
      results[l].status[v] = s;
      results[l].beep_counts[v] = counts[l];
      // Per-lane episode totals are the per-node counts summed, so they
      // are derived here instead of a second scatter increment per
      // episode in BatchContext::beep.
      results[l].total_beeps += counts[l];
    }
  }
  return results;
}

}  // namespace beepmis::sim

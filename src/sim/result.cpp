#include "sim/result.hpp"

namespace beepmis::sim {

std::vector<graph::NodeId> RunResult::mis() const {
  std::vector<graph::NodeId> out;
  for (std::size_t v = 0; v < status.size(); ++v) {
    if (status[v] == NodeStatus::kInMis) out.push_back(static_cast<graph::NodeId>(v));
  }
  return out;
}

std::size_t RunResult::active_count() const {
  std::size_t count = 0;
  for (const NodeStatus s : status) {
    if (s == NodeStatus::kActive) ++count;
  }
  return count;
}

std::size_t RunResult::crashed_count() const {
  std::size_t count = 0;
  for (const NodeStatus s : status) {
    if (s == NodeStatus::kCrashed) ++count;
  }
  return count;
}

double RunResult::mean_beeps_per_node() const {
  if (beep_counts.empty()) return 0.0;
  double total = 0.0;
  for (const std::uint32_t b : beep_counts) total += static_cast<double>(b);
  return total / static_cast<double>(beep_counts.size());
}

}  // namespace beepmis::sim

// Faithful preservation of the *seed* (pre-frontier) simulator hot path,
// kept as a first-class reference implementation so that
//
//  * perf reports (bench_frontier) can compare the frontier-driven core
//    against the real seed execution path running the real protocol stack
//    (virtual dispatch through BeepProtocol, the BeepContext plumbing, the
//    shipped LocalFeedbackMis) instead of a hand-inlined approximation, and
//  * tests can use it as a differential oracle: both cores are pure
//    functions of (graph, protocol, seed) with identical RNG draw order,
//    so results must agree bit-for-bit.
//
// Per-exchange cost is Θ(n) by construction — full-array flag fills, a full
// prev-beep copy, a dense active-list delivery scan and an O(n) crash scan
// per round — exactly like the seed core.  Do not "fix" that; it is the
// point.
//
// Caveats: reactivation handling predates the frontier core's dedup (a
// node deactivated and reactivated in the same round would be visited
// twice), so drive it only with non-reactivating protocols; and a
// DenseReferenceSimulator instance must not be mixed with base-class run()
// calls (the dense loop does not maintain the frontier invariants).
#pragma once

#include "sim/beep.hpp"

namespace beepmis::sim {

class DenseReferenceSimulator : private BeepSimulator {
 public:
  explicit DenseReferenceSimulator(const graph::Graph& g, SimConfig config = {})
      : BeepSimulator(g, std::move(config)) {}

  /// Executes `protocol` with the seed core's Θ(n)-per-exchange loop.
  [[nodiscard]] RunResult run_dense(BeepProtocol& protocol, support::Xoshiro256StarStar rng);

 private:
  void deliver_beeps_dense(support::Xoshiro256StarStar& rng);
  void compact_active_dense();
  void apply_wakeups_and_crashes_dense();
};

}  // namespace beepmis::sim

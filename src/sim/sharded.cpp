#include "sim/sharded.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "support/parallel.hpp"
#include "support/phase_timer.hpp"

namespace beepmis::sim {

ShardedSimulator::ShardedSimulator(unsigned shards, SimConfig config, RngMode rng_mode)
    : requested_shards_(std::max(1u, shards)),
      config_(std::move(config)),
      rng_mode_(rng_mode) {
  if (shards > kMaxShards) {
    throw std::invalid_argument(
        "ShardedSimulator: shard count " + std::to_string(shards) + " exceeds " +
        std::to_string(kMaxShards) +
        " (one worker thread and an n-scaled slice index per shard; is a "
        "negative value wrapping through unsigned?)");
  }
  if (config_.beep_loss_probability < 0.0 || config_.beep_loss_probability >= 1.0) {
    throw std::invalid_argument("SimConfig: beep_loss_probability must be in [0, 1)");
  }
  if (config_.record_trace) {
    throw std::invalid_argument(
        "ShardedSimulator: event traces are scalar-only (use BeepSimulator)");
  }
  if (config_.scenario != nullptr) {
    throw std::invalid_argument(
        "ShardedSimulator: fault scenarios run on the scalar BeepSimulator "
        "(kStaticSchedule scenarios materialise into crash_round vectors instead)");
  }
  if (config_.track_recovery) {
    throw std::invalid_argument(
        "ShardedSimulator: recovery tracking is scalar-only (use BeepSimulator)");
  }
  lossy_ = config_.beep_loss_probability > 0.0;
  keep_ = 1.0 - config_.beep_loss_probability;
}

ShardedSimulator::ShardedSimulator(const graph::Graph& g, unsigned shards, SimConfig config,
                                   RngMode rng_mode)
    : ShardedSimulator(shards, std::move(config), rng_mode) {
  bind_graph(g);
}

const graph::Partition& ShardedSimulator::partition() const {
  if (graph_ == nullptr) {
    throw std::logic_error("ShardedSimulator::partition: no graph bound");
  }
  return partition_;
}

void ShardedSimulator::bind_graph(const graph::Graph& g) {
  const graph::NodeId n = g.node_count();
  if (!config_.wake_round.empty() && config_.wake_round.size() != n) {
    throw std::invalid_argument("SimConfig: wake_round size must match the graph");
  }
  if (!config_.crash_round.empty() && config_.crash_round.size() != n) {
    throw std::invalid_argument("SimConfig: crash_round size must match the graph");
  }
  graph_ = &g;
  partition_ = graph::Partition::build(g, requested_shards_);
  if (config_.shard_local_adjacency) partition_.materialize_local_adjacency();
  const unsigned k = partition_.shard_count();
  lanes_.resize(k);
  for (unsigned s = 0; s < k; ++s) {
    Lane& lane = lanes_[s];
    lane.lo = partition_.begin(s);
    lane.hi = partition_.end(s);
    lane.faults = detail::build_fault_schedule(config_.wake_round, config_.crash_round,
                                               lane.lo, lane.hi);
  }
  // Shard ranges (and therefore the ownership of stale dirty-list entries)
  // may have moved, so the incremental flag-clearing invariant no longer
  // holds; force the next run to reinitialise the flag arrays from
  // scratch.  Unlike the scalar core there is no same-size fast path —
  // the partition depends on edge data, and the caller may have rebuilt a
  // different graph at the same address.
  beeped_.clear();
}

RunResult ShardedSimulator::run(const graph::Graph& g, BeepProtocol& protocol,
                                support::Xoshiro256StarStar rng) {
  bind_graph(g);
  return run(protocol, std::move(rng));
}

RunResult ShardedSimulator::run(BeepProtocol& protocol, support::Xoshiro256StarStar rng) {
  if (graph_ == nullptr) {
    throw std::logic_error("ShardedSimulator::run: no graph bound");
  }
  support_ = protocol.shard_support();
  if (!support_.supported) {
    throw std::invalid_argument(
        "ShardedSimulator::run: protocol does not declare sharded-execution "
        "support (BeepProtocol::shard_support); use BeepSimulator");
  }

  const graph::NodeId n = graph_->node_count();
  const unsigned k = partition_.shard_count();
  status_.assign(n, NodeStatus::kActive);
  beep_counts_.assign(n, 0);
  if (beeped_.size() != n) {
    beeped_.assign(n, 0);
    prev_beeped_.assign(n, 0);
    heard_.assign(n, 0);
    in_active_.assign(n, 0);
    in_mis_hear_.assign(n, 0);
    for (Lane& lane : lanes_) {
      lane.beepers.clear();
      lane.prev_beepers.clear();
      lane.heard_dirty.clear();
      lane.mis_hear.clear();
      lane.active.clear();
    }
  }
  mis_nodes_.clear();
  mis_generation_ = 1;
  protocol_ = &protocol;
  master_ = std::move(rng);
  pending_sync_lane_ = -1;

  protocol.reset(*graph_, master_);
  // Read after reset: protocols may size their exchange count to the graph.
  exchanges_ = protocol.exchanges_per_round();
  if (exchanges_ == 0) throw std::logic_error("protocol declares zero exchanges per round");
  if (support_.emit_draws_per_entry.size() != exchanges_) {
    throw std::logic_error(
        "ShardedSimulator::run: shard_support().emit_draws_per_entry must have "
        "one entry per exchange");
  }

  if (rng_mode_ == RngMode::kPartitionedStreams) {
    // Shard s draws from the base stream advanced by s jumps — disjoint
    // 2^128-output windows, snapshot after the (serial) reset draws.
    support::Xoshiro256StarStar stream = master_;
    for (Lane& lane : lanes_) {
      lane.rng = stream;
      stream.jump();
    }
  }

  round_ = 0;
  running_ = true;
  first_pass_ = true;
  failed_.store(false, std::memory_order_relaxed);
  active_total_ = 0;
  wakeups_pending_ = false;

  sync_.emplace(static_cast<std::ptrdiff_t>(k));
  std::atomic<unsigned> next_lane{0};
  support::run_workers(
      k, k, [&] { shard_worker(next_lane.fetch_add(1)); },
      [&](unsigned missing) {
        // Partial spawn: the started lanes are (or will be) blocked at the
        // round-top barrier waiting for lanes that will never exist.
        // Stand in for the missing lanes once (arrive_and_drop also
        // removes them from every later phase) and mark the run failed —
        // lane ids are claimed in order, so lane 0 exists whenever any
        // lane does and aborts the round loop at the next boundary.
        failed_.store(true);
        for (unsigned m = 0; m < missing; ++m) sync_->arrive_and_drop();
      });
  sync_.reset();

  RunResult result;
  result.terminated = active_total_ == 0 && !wakeups_pending_;
  result.rounds = round_;
  result.status = std::move(status_);
  result.beep_counts = std::move(beep_counts_);
  result.total_beeps = 0;
  for (const Lane& lane : lanes_) {
    result.total_beeps += lane.total_beeps;
    result.reactivations += lane.sink.reactivations;
  }
  return result;
}

void ShardedSimulator::sync_master() {
  if (pending_sync_lane_ >= 0) {
    // The last drawing shard's post-emit stream *is* the master cursor
    // (the shard consumed exactly its declared window), so adopting it
    // saves re-discarding the window.
    master_ = lanes_[static_cast<std::size_t>(pending_sync_lane_)].rng;
    pending_sync_lane_ = -1;
  }
}

void ShardedSimulator::carve_streams(unsigned exchange) {
  sync_master();
  const std::uint64_t draws = support_.emit_draws_per_entry[exchange];
  int last = -1;
  for (int s = static_cast<int>(lanes_.size()) - 1; s >= 0; --s) {
    if (draws * lanes_[static_cast<std::size_t>(s)].active.size() > 0) {
      last = s;
      break;
    }
  }
  for (int s = 0; s < static_cast<int>(lanes_.size()); ++s) {
    Lane& lane = lanes_[static_cast<std::size_t>(s)];
    lane.rng = master_;
    if (s != last) master_.discard(draws * lane.active.size());
  }
  pending_sync_lane_ = last;
}

void ShardedSimulator::coordinate_round_boundary() {
  if (failed_.load()) {
    // Some lane's protocol call threw; its exception is parked in the lane
    // and rethrown once every lane reaches the common exit, so end the run
    // here.  (At most one partial round of work is discarded.)
    running_ = false;
    return;
  }
  if (!first_pass_) {
    // Merge per-shard MIS joins into the global join-order list.  Shards
    // are ascending contiguous ranges and each shard's joins are recorded
    // in ascending id order, so concatenation reproduces the scalar join
    // order (joins happen only in the final exchange, per the contract).
    for (Lane& lane : lanes_) {
      mis_nodes_.insert(mis_nodes_.end(), lane.joined.begin(), lane.joined.end());
      lane.joined.clear();
    }
    ++round_;
  }
  first_pass_ = false;

  active_total_ = 0;
  wakeups_pending_ = false;
  for (const Lane& lane : lanes_) {
    active_total_ += lane.active.size();
    wakeups_pending_ =
        wakeups_pending_ || lane.cursor.next_wakeup < lane.faults.wakeups.size();
  }
  running_ = (active_total_ > 0 || wakeups_pending_ || round_ < config_.run_until_round) &&
             round_ < config_.max_rounds;
}

void ShardedSimulator::deliver_reliable(Lane& lane, unsigned s) {
  detail::clear_flag_range(heard_.data(), lane.lo, lane.hi, lane.heard_dirty);
  const auto slice = [this, s](graph::NodeId v) { return partition_.neighbors_in(v, s); };
  const auto mark_heard = [this, &lane](graph::NodeId w) {
    heard_[w] = 1;
    lane.heard_dirty.push_back(w);
  };

  // Local beeps first, then each remote shard's boundary beeps, shards
  // ascending.  Reliable delivery is idempotent, so this order is free to
  // differ from the scalar core's single global pass — the resulting heard
  // set is identical.
  detail::deliver_from_beepers(lane.beepers, in_active_, slice, heard_.data(),
                               /*lossy=*/false, 1.0, nullptr, mark_heard);
  for (unsigned r = 0; r < lanes_.size(); ++r) {
    if (r == s) continue;
    // Pre-filtered at emit time: only beeps that can cross a shard line.
    for (const graph::NodeId v : lanes_[r].boundary_beepers) {
      if (!in_active_[v]) continue;
      for (const graph::NodeId w : partition_.neighbors_in(v, s)) {
        if (heard_[w]) continue;
        heard_[w] = 1;
        lane.heard_dirty.push_back(w);
      }
    }
  }

  if (config_.mis_keepalive) {
    // Lazily sync this shard's slice of N(MIS) with the coordinator's
    // global list (read-only during exchanges).  A MIS crash bumps the
    // generation and forces a full rebuild; joins only append.
    if (lane.mis_generation != mis_generation_) {
      for (const graph::NodeId w : lane.mis_hear) in_mis_hear_[w] = 0;
      lane.mis_hear.clear();
      detail::extend_mis_hear(mis_nodes_, 0, slice, in_mis_hear_, lane.mis_hear);
      lane.mis_generation = mis_generation_;
      lane.mis_cache_count = mis_nodes_.size();
    } else if (lane.mis_cache_count < mis_nodes_.size()) {
      detail::extend_mis_hear(mis_nodes_, lane.mis_cache_count, slice, in_mis_hear_,
                              lane.mis_hear);
      lane.mis_cache_count = mis_nodes_.size();
    }
    for (const graph::NodeId w : lane.mis_hear) {
      if (heard_[w]) continue;
      heard_[w] = 1;
      lane.heard_dirty.push_back(w);
    }
  }
}

void ShardedSimulator::deliver_lossy_partitioned(Lane& lane, unsigned s) {
  // Lossy delivery under kPartitionedStreams: listener-partitioned like the
  // reliable path, but every potential delivery into this shard's heard
  // range consumes one Bernoulli from *this shard's* stream.  The scalar
  // core's global draw order is unreproducible in parallel, yet the
  // per-listener marginal — P(hear) = 1 - loss^|beeping neighbours|, with
  // the already-heard short-circuit — does not depend on the order the
  // beeping neighbours are tried, so the heard distribution matches the
  // scalar core's; only the sample differs, which is the mode's contract.
  // This replaces the serial coordinator bottleneck kScalarOrder pays.
  detail::clear_flag_range(heard_.data(), lane.lo, lane.hi, lane.heard_dirty);
  const auto slice = [this, s](graph::NodeId v) { return partition_.neighbors_in(v, s); };
  const auto mark_heard = [this, &lane](graph::NodeId w) {
    heard_[w] = 1;
    lane.heard_dirty.push_back(w);
  };
  detail::deliver_from_beepers(lane.beepers, in_active_, slice, heard_.data(),
                               /*lossy=*/true, keep_, &lane.rng, mark_heard);
  for (unsigned r = 0; r < lanes_.size(); ++r) {
    if (r == s) continue;
    detail::deliver_from_beepers(lanes_[r].boundary_beepers, in_active_, slice,
                                 heard_.data(), /*lossy=*/true, keep_, &lane.rng,
                                 mark_heard);
  }
  if (config_.mis_keepalive) {
    // Keep-alive beeps draw per potential delivery too; the global MIS list
    // is read-only during exchanges, and slice adjacency confines the
    // writes (and the draws) to this shard.
    detail::deliver_keepalive_lossy(mis_nodes_, slice, heard_.data(), keep_, lane.rng,
                                    mark_heard);
  }
}

void ShardedSimulator::deliver_lossy_serial() {
  // The scalar draw order interleaves shards (global ascending beeper
  // order, global already-heard short-circuit, keep-alive in global join
  // order), so lossy delivery runs serially on the coordinator.  Shard
  // dirty lists still receive the heard positions so the parallel
  // clearing discipline keeps working.
  sync_master();
  for (Lane& lane : lanes_) {
    detail::clear_flag_range(heard_.data(), lane.lo, lane.hi, lane.heard_dirty);
  }
  const auto full_adjacency = [this](graph::NodeId v) { return graph_->neighbors(v); };
  const auto mark_heard = [this](graph::NodeId w) {
    heard_[w] = 1;
    lanes_[partition_.shard_of(w)].heard_dirty.push_back(w);
  };
  for (const Lane& src : lanes_) {
    detail::deliver_from_beepers(src.beepers, in_active_, full_adjacency, heard_.data(),
                                 /*lossy=*/true, keep_, &master_, mark_heard);
  }
  if (config_.mis_keepalive) {
    detail::deliver_keepalive_lossy(mis_nodes_, full_adjacency, heard_.data(), keep_,
                                    master_, mark_heard);
  }
}

void ShardedSimulator::shard_worker(unsigned s) {
  Lane& lane = lanes_[s];
  // No lane work may unwind past a barrier: the other lanes would
  // deadlock waiting for this one.  Every inter-barrier work block —
  // protocol calls, delivery, fault application, even allocation-prone
  // bookkeeping — runs through this wrapper: the first exception is
  // parked in the lane, the lane keeps arriving at every barrier as a
  // no-op participant, the coordinator ends the run at the next round
  // boundary, and the exception is rethrown at the common exit below —
  // where support::run_workers captures it for the caller.
  const auto guarded = [&](auto&& call) {
    if (lane.error != nullptr) return;  // already aborting; skip the work
    try {
      call();
    } catch (...) {
      lane.error = std::current_exception();
      failed_.store(true);
    }
  };
  BEEPMIS_STM_DECLARE(faults, "sharded/faults");
  BEEPMIS_STM_DECLARE(emit, "sharded/emit");
  BEEPMIS_STM_DECLARE(deliver, "sharded/deliver");
  BEEPMIS_STM_DECLARE(react, "sharded/react");
  {
    lane.error = nullptr;
    BeepContext ctx;
    guarded([&] {
      // ---- per-run lane init ------------------------------------------
      detail::clear_flag_range(beeped_.data(), lane.lo, lane.hi, lane.beepers);
      detail::clear_flag_range(prev_beeped_.data(), lane.lo, lane.hi, lane.prev_beepers);
      detail::clear_flag_range(heard_.data(), lane.lo, lane.hi, lane.heard_dirty);
      for (const graph::NodeId w : lane.mis_hear) in_mis_hear_[w] = 0;
      lane.mis_hear.clear();
      for (const graph::NodeId v : lane.active) in_active_[v] = 0;
      lane.active = lane.faults.initial_active;
      for (const graph::NodeId v : lane.active) in_active_[v] = 1;
      lane.cursor = {};
      lane.joined.clear();
      lane.reactivated.clear();
      lane.mis_generation = 0;
      lane.mis_cache_count = 0;
      lane.total_beeps = 0;

      lane.sink = {};
      lane.sink.beepers = &lane.beepers;
      lane.sink.beep_counts = &beep_counts_;
      lane.sink.total_beeps = &lane.total_beeps;
      lane.sink.mis_joins = &lane.joined;
      lane.sink.mis_hear_valid = &lane.mis_flag_scratch;
      lane.sink.reactivated = &lane.reactivated;
      lane.sink.trace = nullptr;
      lane.sink.lo = lane.lo;
      lane.sink.hi = lane.hi;

      ctx.graph_ = graph_;
      ctx.active_ = &lane.active;
      ctx.status_ = &status_;
      ctx.beeped_ = &beeped_;
      ctx.prev_beeped_ = &prev_beeped_;
      ctx.heard_ = &heard_;
      ctx.rng_ = &lane.rng;
      ctx.sink_ = &lane.sink;
    });

    // ---- round loop (SPMD; shard 0 doubles as the coordinator) --------
    const auto noop = [](graph::NodeId) {};
    for (;;) {
      sync_->arrive_and_wait();  // all lanes idle; previous round complete
      if (s == 0) {
        // Not routed through `guarded`: the decision must run every round
        // even on an errored coordinator lane, or running_ would stay
        // true forever.  Its own failure parks like any other and stops
        // the run directly.
        try {
          coordinate_round_boundary();
        } catch (...) {
          if (lane.error == nullptr) lane.error = std::current_exception();
          failed_.store(true);
          running_ = false;
        }
      }
      sync_->arrive_and_wait();  // decision visible
      if (!running_) break;

      guarded([&] {
        BEEPMIS_STM_START(faults);
        lane.fault_outcome = detail::apply_fault_events(
            lane.faults, lane.cursor, round_, status_, lane.active, in_active_, noop,
            noop);
        if (lane.fault_outcome.active_crashed) {
          detail::compact_active(lane.active, in_active_, status_);
        }
        BEEPMIS_STM_STOP(faults);
      });
      sync_->arrive_and_wait();  // fault outcomes visible to the coordinator

      for (unsigned e = 0; e < exchanges_; ++e) {
        if (s == 0) {
          if (e == 0) {
            bool mis_crashed = false;
            for (const Lane& l : lanes_) {
              mis_crashed = mis_crashed || l.fault_outcome.mis_crashed;
            }
            if (mis_crashed) {
              std::erase_if(mis_nodes_, [this](graph::NodeId v) {
                return status_[v] != NodeStatus::kInMis;
              });
              ++mis_generation_;
            }
          } else {
            // The previous exchange's beeps become prev_beeped_ by a
            // global buffer swap; lanes swap their dirty lists below.
            beeped_.swap(prev_beeped_);
          }
          if (rng_mode_ == RngMode::kScalarOrder &&
              support_.emit_draws_per_entry[e] > 0) {
            carve_streams(e);
          }
        }
        sync_->arrive_and_wait();  // swap + streams visible

        guarded([&] {
          BEEPMIS_STM_START(emit);
          if (e == 0) {
            detail::clear_flag_range(prev_beeped_.data(), lane.lo, lane.hi,
                                     lane.prev_beepers);
          } else {
            lane.beepers.swap(lane.prev_beepers);
          }
          detail::clear_flag_range(beeped_.data(), lane.lo, lane.hi, lane.beepers);
          ctx.round_ = round_;
          ctx.exchange_ = e;
          ctx.phase_ = BeepContext::Phase::kEmit;
          protocol_->emit(ctx);
          // Protocols emit over the ascending active slice, so the lane
          // frontier is normally already sorted; the check keeps the
          // guarantee for protocols that beep out of order (the delivery
          // passes and the lossy global order rely on it).
          if (!std::is_sorted(lane.beepers.begin(), lane.beepers.end())) {
            std::sort(lane.beepers.begin(), lane.beepers.end());
          }
          if (lanes_.size() > 1 &&
              (!lossy_ || rng_mode_ == RngMode::kPartitionedStreams)) {
            // Publish only the beeps that can cross a shard line: the
            // cross-shard merge then scans O(boundary beepers) remote
            // entries instead of every remote frontier entry.  Needed by
            // both parallel delivery paths (reliable, and lossy under
            // partitioned streams); serial lossy walks full frontiers.
            lane.boundary_beepers.clear();
            for (const graph::NodeId v : lane.beepers) {
              if (partition_.is_boundary(v)) lane.boundary_beepers.push_back(v);
            }
          }
          BEEPMIS_STM_STOP(emit);
        });
        sync_->arrive_and_wait();  // all beeper frontiers final

        if (lossy_ && rng_mode_ == RngMode::kScalarOrder) {
          if (s == 0) {
            guarded([&] {
              BEEPMIS_STM_START(deliver);
              deliver_lossy_serial();
              BEEPMIS_STM_STOP(deliver);
            });
          }
          sync_->arrive_and_wait();  // heard flags final
        } else if (lossy_) {
          guarded([&] {
            BEEPMIS_STM_START(deliver);
            deliver_lossy_partitioned(lane, s);
            BEEPMIS_STM_STOP(deliver);
          });
        } else {
          guarded([&] {
            BEEPMIS_STM_START(deliver);
            deliver_reliable(lane, s);
            BEEPMIS_STM_STOP(deliver);
          });
        }

        guarded([&] {
          ctx.phase_ = BeepContext::Phase::kReact;
          BEEPMIS_STM_START(react);
          protocol_->react(ctx);
          BEEPMIS_STM_STOP(react);
        });
        sync_->arrive_and_wait();  // reacts done; flags may be recycled
      }

      guarded([&] {
        detail::compact_active(lane.active, in_active_, status_);
        detail::merge_reactivated(lane.active, in_active_, lane.reactivated);
      });
    }
  }
  // Common exit: every lane has left the loop, no barrier is pending.
  if (lane.error != nullptr) std::rethrow_exception(lane.error);
}

}  // namespace beepmis::sim

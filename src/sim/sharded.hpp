// Sharded single-run simulator: K contiguous node-range shards execute one
// beeping-model run in parallel, bit-identically to BeepSimulator.
//
// The scalar frontier core (beep.hpp) makes a run cheap per exchange but
// strictly serial: one huge graph cannot use more than one core, because
// the library's parallelism is across trials and batch lanes only.  This
// simulator partitions the CSR by node range (graph/partition.hpp) and
// runs every exchange as K parallel per-shard passes plus a boundary-beep
// merge:
//
//   emit     each shard runs the protocol's emit over its own slice of the
//            active frontier, drawing from its own rng stream (see the
//            draw-order contract below);
//   deliver  listener-partitioned: a shard sets heard flags only for its
//            own node range, pulling first from its local beepers and then
//            from the other shards' boundary beepers through the
//            partition's per-shard adjacency slices — race-free without
//            atomics, because no two shards write the same range;
//   react    each shard runs the protocol's react over its own actives;
//   merge    at round boundaries the coordinator merges per-shard MIS
//            joins (ascending, matching the scalar join order), applies
//            fault outcomes and decides termination.
//
// ## Draw-order contract (see also src/sim/README.md)
//
// kScalarOrder (default): the run consumes the rng stream in *exactly* the
// scalar order, so the result is bit-identical to BeepSimulator for every
// shard count.  This is possible because shard-supported protocols declare
// a fixed number of single-output draws per active-list entry per exchange
// (BeepProtocol::shard_support): before each drawing exchange the
// coordinator carves the stream into per-shard windows by advancing a
// cursor by (draws * active count) per shard — shard s's window is exactly
// the subsequence the scalar run would hand shard s's nodes.  Lossy
// delivery draws are inherently cross-shard (one Bernoulli per potential
// delivery, in global beeper order with a global already-heard
// short-circuit), so in lossy mode delivery runs serially on the
// coordinator, preserving the contract at reduced parallelism.
//
// kPartitionedStreams (opt-in): shard s draws from the base stream
// advanced by s Xoshiro256StarStar::jump() calls — fully parallel (no
// serial carving), still deterministic for a fixed (seed, shard count),
// but *not* bit-identical to the scalar run (except K = 1, where the lone
// shard's stream and iteration order coincide with the scalar run's) and
// not invariant across shard counts.  Lossy delivery stays parallel here:
// each shard draws its own listeners' loss bits from its own stream
// (P(hear) = 1 - loss^|beeping neighbours| per listener is order-free, so
// the distribution matches the scalar core even though the draw sequence
// cannot).  This is the "statistical lanes" trade from the ROADMAP: same
// distribution, different sample.
//
// Event traces and round observers are scalar-only by design (they would
// serialize the shards); construction with record_trace throws.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <exception>
#include <optional>
#include <vector>

#include "graph/partition.hpp"
#include "sim/beep.hpp"

namespace beepmis::sim {

class ShardedSimulator {
 public:
  enum class RngMode {
    kScalarOrder,         ///< bit-identical to BeepSimulator (default)
    kPartitionedStreams,  ///< jump()-partitioned per-shard streams
  };

  /// Upper bound on the shard count (construction throws above it).  A
  /// shard is a worker thread plus n·(K+1)·4 bytes of partition slice
  /// index, so values beyond any plausible core count are a configuration
  /// error (a negative CLI value wrapped through unsigned, say), not a
  /// scaling request.
  static constexpr unsigned kMaxShards = 256;

  /// Binds `g` and partitions it into (at most) `shards` ranges; `shards`
  /// is clamped to [1, n].  Worker threads are spawned per run, one per
  /// shard, through support::run_workers.
  ShardedSimulator(const graph::Graph& g, unsigned shards, SimConfig config = {},
                   RngMode rng_mode = RngMode::kScalarOrder);
  /// The simulator stores a reference; a temporary graph would dangle.
  ShardedSimulator(graph::Graph&&, unsigned, SimConfig = {},
                   RngMode = RngMode::kScalarOrder) = delete;
  /// Unbound simulator: only usable through the graph-taking run overload.
  explicit ShardedSimulator(unsigned shards, SimConfig config = {},
                            RngMode rng_mode = RngMode::kScalarOrder);

  /// Executes `protocol` to termination (or the round cap) on the bound
  /// graph.  Throws std::invalid_argument unless
  /// protocol.shard_support().supported.
  [[nodiscard]] RunResult run(BeepProtocol& protocol, support::Xoshiro256StarStar rng);
  /// Rebinds to `g` (rebuilding the partition and fault schedules — unlike
  /// the scalar core there is no same-size fast path, because the
  /// partition depends on edge data) and runs.  The caller must keep `g`
  /// alive for the duration of the call.
  [[nodiscard]] RunResult run(const graph::Graph& g, BeepProtocol& protocol,
                              support::Xoshiro256StarStar rng);
  RunResult run(graph::Graph&&, BeepProtocol&, support::Xoshiro256StarStar) = delete;

  /// The active partition (valid once a graph is bound).
  [[nodiscard]] const graph::Partition& partition() const;
  /// Actual shard count after clamping (valid once a graph is bound).
  [[nodiscard]] unsigned shard_count() const noexcept {
    return partition_.shard_count();
  }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  [[nodiscard]] RngMode rng_mode() const noexcept { return rng_mode_; }

 private:
  /// Per-shard execution lane: the shard's slice of the frontier state
  /// plus its mutation sink and rng window.  Cache-line aligned so lanes
  /// hammering their own counters do not false-share.
  struct alignas(64) Lane {
    graph::NodeId lo = 0, hi = 0;
    detail::FaultSchedule faults;
    detail::FaultCursor cursor;
    detail::FaultOutcome fault_outcome;
    std::vector<graph::NodeId> active;
    std::vector<graph::NodeId> beepers;
    /// beepers filtered to boundary nodes, rebuilt each parallel-delivery
    /// exchange (reliable, or lossy under kPartitionedStreams) so the
    /// cross-shard merge scans only beeps that can cross a shard line
    /// instead of every remote frontier entry.
    std::vector<graph::NodeId> boundary_beepers;
    std::vector<graph::NodeId> prev_beepers;
    std::vector<graph::NodeId> heard_dirty;
    std::vector<graph::NodeId> joined;       ///< new MIS joins this round
    std::vector<graph::NodeId> reactivated;  ///< unused by supported protocols
    /// Reliable-channel keep-alive cache: this shard's slice of N(MIS),
    /// lazily synced against the coordinator's global MIS list.
    std::vector<graph::NodeId> mis_hear;
    std::uint64_t mis_generation = 0;  ///< global generation incorporated
    std::size_t mis_cache_count = 0;   ///< global MIS prefix incorporated
    std::uint64_t total_beeps = 0;
    bool mis_flag_scratch = false;  ///< sink target; lanes sync lazily instead
    support::Xoshiro256StarStar rng{0};
    detail::MutationSink sink;
    /// First exception this lane's protocol calls raised; the lane keeps
    /// arriving at every barrier (so no other lane can deadlock) and the
    /// coordinator aborts the run at the next round boundary, after which
    /// the exception is rethrown at the common exit point for
    /// run_workers' capture.
    std::exception_ptr error;
  };

  void bind_graph(const graph::Graph& g);
  void shard_worker(unsigned s);
  void coordinate_round_boundary();
  void sync_master();
  void carve_streams(unsigned exchange);
  void deliver_reliable(Lane& lane, unsigned s);
  void deliver_lossy_serial();
  void deliver_lossy_partitioned(Lane& lane, unsigned s);

  const graph::Graph* graph_ = nullptr;
  unsigned requested_shards_ = 1;
  SimConfig config_;
  RngMode rng_mode_ = RngMode::kScalarOrder;
  graph::Partition partition_;
  std::vector<Lane> lanes_;

  // Global per-node state; each lane touches only its own range during
  // parallel phases.
  std::vector<NodeStatus> status_;
  std::vector<std::uint8_t> in_active_;
  std::vector<std::uint8_t> beeped_;
  std::vector<std::uint8_t> prev_beeped_;
  std::vector<std::uint8_t> heard_;
  std::vector<std::uint8_t> in_mis_hear_;
  std::vector<std::uint32_t> beep_counts_;
  /// Live MIS members in global join order; mutated only by the
  /// coordinator between parallel phases.
  std::vector<graph::NodeId> mis_nodes_;
  std::uint64_t mis_generation_ = 1;  ///< bumped on MIS crash (full rebuilds)

  // Run-scoped coordination state.
  BeepProtocol* protocol_ = nullptr;
  ShardSupport support_;
  support::Xoshiro256StarStar master_{0};
  int pending_sync_lane_ = -1;  ///< lane whose post-emit rng is the master cursor
  std::optional<std::barrier<>> sync_;
  std::atomic<bool> failed_{false};
  bool running_ = true;
  bool first_pass_ = true;
  bool lossy_ = false;
  double keep_ = 1.0;
  unsigned exchanges_ = 2;
  std::size_t round_ = 0;
  std::size_t active_total_ = 0;
  bool wakeups_pending_ = false;
};

}  // namespace beepmis::sim

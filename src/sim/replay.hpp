// Trace-replay validation: independently re-checks a recorded event trace
// of a two-exchange beeping MIS run against the protocol rules and the
// final RunResult.  This is a second, event-level oracle alongside
// mis::verify_mis_run's state-level checks — the pair catches simulator
// and protocol bugs that each alone would miss.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/result.hpp"
#include "sim/trace.hpp"

namespace beepmis::sim {

struct ReplayReport {
  /// Human-readable descriptions of every inconsistency found (capped).
  std::vector<std::string> issues;
  std::size_t issues_found = 0;

  [[nodiscard]] bool consistent() const noexcept { return issues_found == 0; }
  [[nodiscard]] std::string summary() const;
};

/// Checks, for a trace recorded from a BeepingMisSkeleton-style protocol on
/// a *reliable* channel (no beep loss).  Traces with crash injection can
/// report spurious issues (a deactivation "explained" by a joiner that
/// later crashed); use the state-level verifier for fault experiments.
/// Checked properties:
///   1. every node's final status matches its last fate event (join /
///      deactivate / crash, or active if none);
///   2. every joiner beeped (intent exchange) in its joining round;
///   3. every deactivation is explained by a neighbour that joined in the
///      same or an earlier round;
///   4. adjacent nodes never join in the same round via both announcing
///      (which would imply both beeped unheard — impossible without loss);
///   5. per-node beep counts in the trace equal RunResult::beep_counts;
///   6. no events occur for a node after it became inactive.
/// `max_reported_issues` bounds the string list; issues_found keeps the
/// true total.
[[nodiscard]] ReplayReport replay_mis_trace(const graph::Graph& g, const Trace& trace,
                                            const RunResult& result,
                                            std::size_t max_reported_issues = 20);

}  // namespace beepmis::sim

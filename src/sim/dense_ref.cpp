#include "sim/dense_ref.hpp"

#include <algorithm>
#include <stdexcept>

namespace beepmis::sim {

// Everything below is a faithful transcription of the seed simulator
// (commit 78daa6e, src/sim/beep.cpp) onto the current member names.  The
// only deliberate differences: scratch vectors come from the shared base
// so the context plumbing works unchanged, and BeepContext::beep now also
// appends to beepers_ (cleared alongside the beeped_ fill below) — a
// per-beep push the seed did not pay, negligible against the Θ(n) fills.

void DenseReferenceSimulator::deliver_beeps_dense(support::Xoshiro256StarStar& rng) {
  std::fill(heard_.begin(), heard_.end(), std::uint8_t{0});
  const bool lossy = config_.beep_loss_probability > 0.0;
  const double keep = 1.0 - config_.beep_loss_probability;
  for (const graph::NodeId v : active_) {
    if (!beeped_[v]) continue;
    for (const graph::NodeId w : graph_->neighbors(v)) {
      if (heard_[w]) continue;  // already hearing a beep; extra losses moot
      if (!lossy || rng.bernoulli(keep)) heard_[w] = 1;
    }
  }
  if (config_.mis_keepalive) {
    for (const graph::NodeId v : mis_nodes_) {
      if (status_[v] != NodeStatus::kInMis) continue;
      for (const graph::NodeId w : graph_->neighbors(v)) {
        if (heard_[w]) continue;
        if (!lossy || rng.bernoulli(keep)) heard_[w] = 1;
      }
    }
  }
}

void DenseReferenceSimulator::compact_active_dense() {
  std::erase_if(active_,
                [this](graph::NodeId v) { return status_[v] != NodeStatus::kActive; });
}

void DenseReferenceSimulator::apply_wakeups_and_crashes_dense() {
  bool active_dirty = false;
  while (fault_cursor_.next_wakeup < faults_.wakeups.size() &&
         faults_.wakeups[fault_cursor_.next_wakeup].first <= round_) {
    const graph::NodeId v = faults_.wakeups[fault_cursor_.next_wakeup].second;
    ++fault_cursor_.next_wakeup;
    if (status_[v] != NodeStatus::kActive) continue;  // crashed while asleep
    active_.push_back(v);
    active_dirty = true;
    if (trace_enabled_) {
      trace_.record({static_cast<std::uint32_t>(round_), 0, EventKind::kWake, v});
    }
  }
  if (active_dirty) std::sort(active_.begin(), active_.end());

  if (!config_.crash_round.empty()) {
    // The seed's O(n) crash scan, every round.
    bool crashed_any = false;
    for (graph::NodeId v = 0; v < graph_->node_count(); ++v) {
      if (config_.crash_round[v] == round_ && status_[v] != NodeStatus::kCrashed) {
        crashed_any = crashed_any || status_[v] == NodeStatus::kActive;
        status_[v] = NodeStatus::kCrashed;
        if (trace_enabled_) {
          trace_.record({static_cast<std::uint32_t>(round_), 0, EventKind::kCrash, v});
        }
      }
    }
    if (crashed_any) compact_active_dense();
  }
  // The seed kept crashed members in mis_nodes_ and filtered per delivery;
  // deliver_beeps_dense reproduces that, so no compaction here.
}

RunResult DenseReferenceSimulator::run_dense(BeepProtocol& protocol,
                                             support::Xoshiro256StarStar rng) {
  if (graph_ == nullptr) {
    throw std::logic_error("DenseReferenceSimulator::run_dense: no graph bound");
  }
  if (config_.scenario != nullptr || config_.track_recovery) {
    throw std::invalid_argument(
        "DenseReferenceSimulator: fault scenarios and recovery tracking are "
        "frontier-core features (use BeepSimulator)");
  }
  const graph::NodeId n = graph_->node_count();
  status_.assign(n, NodeStatus::kActive);
  beeped_.assign(n, 0);
  prev_beeped_.assign(n, 0);
  heard_.assign(n, 0);
  beep_counts_.assign(n, 0);
  beepers_.clear();
  mis_nodes_.clear();
  reactivated_.clear();
  total_beeps_ = 0;
  round_ = 0;
  trace_.clear();
  trace_enabled_ = config_.record_trace;

  // Per-run schedule rebuild, exactly like the seed (the frontier core
  // hoisted this into graph binding).
  active_.clear();
  faults_.wakeups.clear();
  fault_cursor_ = {};
  for (graph::NodeId v = 0; v < n; ++v) {
    if (config_.wake_round.empty() || config_.wake_round[v] == 0) {
      active_.push_back(v);
    } else {
      faults_.wakeups.emplace_back(config_.wake_round[v], v);
    }
  }
  std::sort(faults_.wakeups.begin(), faults_.wakeups.end());

  protocol.reset(*graph_, rng);
  const unsigned exchanges = protocol.exchanges_per_round();
  if (exchanges == 0) throw std::logic_error("protocol declares zero exchanges per round");

  detail::MutationSink sink;
  sink.beepers = &beepers_;
  sink.beep_counts = &beep_counts_;
  sink.total_beeps = &total_beeps_;
  sink.mis_joins = &mis_nodes_;
  sink.mis_hear_valid = &mis_hear_valid_;
  sink.reactivated = &reactivated_;
  sink.trace = trace_enabled_ ? &trace_ : nullptr;
  sink.lo = 0;
  sink.hi = n;

  BeepContext ctx;
  ctx.graph_ = graph_;
  ctx.active_ = &active_;
  ctx.status_ = &status_;
  ctx.beeped_ = &beeped_;
  ctx.prev_beeped_ = &prev_beeped_;
  ctx.heard_ = &heard_;
  ctx.rng_ = &rng;
  ctx.sink_ = &sink;

  while ((!active_.empty() || fault_cursor_.next_wakeup < faults_.wakeups.size() ||
          round_ < config_.run_until_round) &&
         round_ < config_.max_rounds) {
    apply_wakeups_and_crashes_dense();

    for (exchange_ = 0; exchange_ < exchanges; ++exchange_) {
      if (exchange_ == 0) {
        std::fill(prev_beeped_.begin(), prev_beeped_.end(), std::uint8_t{0});
      } else {
        prev_beeped_ = beeped_;  // the full-array copy the rewrite removed
      }
      std::fill(beeped_.begin(), beeped_.end(), std::uint8_t{0});
      beepers_.clear();
      ctx.round_ = round_;
      ctx.exchange_ = exchange_;

      ctx.phase_ = BeepContext::Phase::kEmit;
      protocol.emit(ctx);

      deliver_beeps_dense(rng);

      ctx.phase_ = BeepContext::Phase::kReact;
      protocol.react(ctx);
    }
    compact_active_dense();
    if (!reactivated_.empty()) {
      active_.insert(active_.end(), reactivated_.begin(), reactivated_.end());
      std::sort(active_.begin(), active_.end());
      reactivated_.clear();
    }
    ++round_;
  }

  RunResult result;
  result.terminated =
      active_.empty() && fault_cursor_.next_wakeup >= faults_.wakeups.size();
  result.rounds = round_;
  result.status = std::move(status_);
  result.beep_counts = std::move(beep_counts_);
  result.total_beeps = total_beeps_;
  result.reactivations = sink.reactivations;
  return result;
}

}  // namespace beepmis::sim

#include "sim/replay.hpp"

#include <limits>
#include <sstream>

namespace beepmis::sim {

namespace {

constexpr std::size_t kNoRound = std::numeric_limits<std::size_t>::max();

struct NodeHistory {
  std::size_t fate_round = kNoRound;  ///< round of join/deactivate/crash
  EventKind fate = EventKind::kBeep;  ///< kBeep = no fate recorded
  std::size_t beeps = 0;
  std::size_t last_beep_round = kNoRound;
  bool beeped_in_fate_round_intent = false;
};

}  // namespace

std::string ReplayReport::summary() const {
  std::ostringstream ss;
  ss << (consistent() ? "CONSISTENT" : "INCONSISTENT") << " (" << issues_found
     << " issue(s))";
  for (const std::string& issue : issues) ss << "\n  - " << issue;
  return ss.str();
}

ReplayReport replay_mis_trace(const graph::Graph& g, const Trace& trace,
                              const RunResult& result,
                              std::size_t max_reported_issues) {
  ReplayReport report;
  auto add_issue = [&](const std::string& text) {
    ++report.issues_found;
    if (report.issues.size() < max_reported_issues) report.issues.push_back(text);
  };

  std::vector<NodeHistory> history(g.node_count());

  for (const Event& e : trace.events()) {
    if (e.node >= g.node_count()) {
      add_issue("event for out-of-range node " + std::to_string(e.node));
      continue;
    }
    NodeHistory& h = history[e.node];
    switch (e.kind) {
      case EventKind::kBeep:
        if (h.fate_round != kNoRound && e.round > h.fate_round) {
          add_issue("node " + std::to_string(e.node) + " beeped at round " +
                    std::to_string(e.round) + " after becoming inactive");
        }
        ++h.beeps;
        h.last_beep_round = e.round;
        if (e.exchange == 0) {
          // Remember whether the *latest* intent beep is in some round;
          // checked against the fate round below.
          h.beeped_in_fate_round_intent = true;  // provisional; validated later
        }
        break;
      case EventKind::kJoinMis:
      case EventKind::kDeactivate:
        if (h.fate_round != kNoRound) {
          add_issue("node " + std::to_string(e.node) + " has two fates");
        }
        h.fate_round = e.round;
        h.fate = e.kind;
        break;
      case EventKind::kCrash:
        // Injected faults may strike decided nodes; the crash supersedes
        // any earlier fate without complaint.
        h.fate_round = e.round;
        h.fate = e.kind;
        break;
      case EventKind::kReactivate:
        if (h.fate != EventKind::kDeactivate) {
          add_issue("node " + std::to_string(e.node) +
                    " reactivated without being dominated");
        }
        h.fate_round = kNoRound;  // back in the competition; fate cleared
        h.fate = EventKind::kBeep;
        break;
      case EventKind::kRevive:
        if (h.fate != EventKind::kCrash) {
          add_issue("node " + std::to_string(e.node) + " revived without being crashed");
        }
        h.fate_round = kNoRound;  // back in the competition; fate cleared
        h.fate = EventKind::kBeep;
        break;
      case EventKind::kWake:
        break;  // wake events carry no constraints checked here
    }
  }

  // Re-scan beeps to check joiners beeped the intent exchange of their
  // joining round (the provisional flag above is not round-aware).
  std::vector<std::uint8_t> joined_beeped(g.node_count(), 0);
  for (const Event& e : trace.events()) {
    if (e.kind != EventKind::kBeep || e.exchange != 0) continue;
    const NodeHistory& h = history[e.node];
    if (h.fate == EventKind::kJoinMis && h.fate_round == e.round) {
      joined_beeped[e.node] = 1;
    }
  }

  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    const NodeHistory& h = history[v];

    // (1) final status matches last fate event.
    const NodeStatus expected = [&] {
      if (h.fate_round == kNoRound) return NodeStatus::kActive;
      switch (h.fate) {
        case EventKind::kJoinMis:
          return NodeStatus::kInMis;
        case EventKind::kDeactivate:
          return NodeStatus::kDominated;
        case EventKind::kCrash:
          return NodeStatus::kCrashed;
        default:
          return NodeStatus::kActive;
      }
    }();
    if (v < result.status.size() && result.status[v] != expected) {
      add_issue("node " + std::to_string(v) + " trace fate disagrees with final status");
    }

    // (2) joiners beeped in their joining round's intent exchange.
    if (h.fate == EventKind::kJoinMis && !joined_beeped[v]) {
      add_issue("node " + std::to_string(v) + " joined without an intent beep");
    }

    // (3) deactivations explained by a neighbour join no later than them.
    if (h.fate == EventKind::kDeactivate) {
      bool explained = false;
      for (const graph::NodeId w : g.neighbors(v)) {
        const NodeHistory& hw = history[w];
        if (hw.fate == EventKind::kJoinMis && hw.fate_round <= h.fate_round) {
          explained = true;
          break;
        }
      }
      if (!explained) {
        add_issue("node " + std::to_string(v) +
                  " deactivated without a previously-joined neighbour");
      }
    }

    // (4) adjacent same-round joins (impossible on a reliable channel).
    if (h.fate == EventKind::kJoinMis) {
      for (const graph::NodeId w : g.neighbors(v)) {
        if (w > v && history[w].fate == EventKind::kJoinMis &&
            history[w].fate_round == h.fate_round) {
          add_issue("adjacent nodes " + std::to_string(v) + " and " + std::to_string(w) +
                    " joined in the same round");
        }
      }
    }

    // (5) beep counts agree with the result's counters.
    if (v < result.beep_counts.size() && h.beeps != result.beep_counts[v]) {
      add_issue("node " + std::to_string(v) + " trace beeps " + std::to_string(h.beeps) +
                " != counter " + std::to_string(result.beep_counts[v]));
    }
  }

  return report;
}

}  // namespace beepmis::sim

// Event traces: an optional per-run record of every beep, join and
// deactivation, for debugging, visualisation and the trace-replay tests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "graph/graph.hpp"

namespace beepmis::sim {

enum class EventKind : std::uint8_t {
  kBeep,        ///< node emitted a beep in some exchange
  kJoinMis,     ///< node joined the independent set
  kDeactivate,  ///< node became dominated
  kWake,        ///< node woke up (asynchronous-start runs)
  kCrash,       ///< node fail-stopped (fault injection)
  kReactivate,  ///< dominated node resumed competing (self-healing runs)
  kRevive,      ///< crashed node came back as active (fault scenarios)
};

struct Event {
  std::uint32_t round = 0;
  std::uint8_t exchange = 0;
  EventKind kind = EventKind::kBeep;
  graph::NodeId node = 0;

  friend constexpr bool operator==(const Event&, const Event&) = default;
};

/// Append-only event log.  Recording is enabled per run via SimConfig; when
/// disabled the simulator skips all logging work.
class Trace {
 public:
  void clear() noexcept { events_.clear(); }
  void record(Event e) { events_.push_back(e); }

  [[nodiscard]] const std::vector<Event>& events() const noexcept { return events_; }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Events of one kind, in order.
  [[nodiscard]] std::vector<Event> of_kind(EventKind kind) const;
  /// Number of beeps recorded for `node`.
  [[nodiscard]] std::size_t beeps_of(graph::NodeId node) const;
  /// The round at which `node` became inactive, or SIZE_MAX if it never did.
  [[nodiscard]] std::size_t inactive_round(graph::NodeId node) const;

  /// CSV with header round,exchange,kind,node.
  void write_csv(std::ostream& out) const;

 private:
  std::vector<Event> events_;
};

[[nodiscard]] const char* to_string(EventKind kind) noexcept;

}  // namespace beepmis::sim

#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "graph/partition.hpp"

namespace beepmis::sim {

namespace {

constexpr std::uint32_t kNever = std::numeric_limits<std::uint32_t>::max();

/// Knuth's product-of-uniforms Poisson sampler; fine for the small rates
/// churn uses (cost is O(rate) draws per round).
std::uint64_t poisson(double rate, support::Xoshiro256StarStar& rng) {
  if (rate <= 0.0) return 0;
  const double limit = std::exp(-rate);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform01();
  } while (p > limit);
  return k - 1;
}

/// Geometric (support {1, 2, ...}) with the given mean, by inverse
/// transform — one draw, no rejection loop.
std::uint64_t geometric_delay(double mean, support::Xoshiro256StarStar& rng) {
  if (mean <= 1.0) return 1;
  const double p = 1.0 / mean;
  const double u = rng.uniform01();
  // ceil(log(1-u) / log(1-p)) in [1, inf); u == 0 maps to 1.
  const double d = std::ceil(std::log1p(-u) / std::log1p(-p));
  if (!(d >= 1.0)) return 1;
  if (d >= 1e18) return std::uint64_t{1} << 60;
  return static_cast<std::uint64_t>(d);
}

std::uint32_t uniform_round(std::uint32_t lo, std::uint32_t hi,
                            support::Xoshiro256StarStar& rng) {
  if (hi <= lo) return lo;
  return lo + static_cast<std::uint32_t>(rng.below(std::uint64_t{hi} - lo + 1));
}

}  // namespace

std::vector<std::uint32_t> FaultScenario::materialize_crash_rounds(
    const graph::Graph& /*g*/) const {
  throw std::logic_error(
      "FaultScenario::materialize_crash_rounds: only kStaticSchedule scenarios "
      "are expressible as crash_round vectors");
}

// --------------------------------------------------------------------------
// StaticScheduleScenario

StaticScheduleScenario::StaticScheduleScenario(std::vector<std::uint32_t> crash_round)
    : crash_round_(std::move(crash_round)) {}

std::unique_ptr<FaultScenario> StaticScheduleScenario::clone() const {
  return std::make_unique<StaticScheduleScenario>(crash_round_);
}

void StaticScheduleScenario::reset(const graph::Graph& g) {
  if (!crash_round_.empty() && crash_round_.size() != g.node_count()) {
    throw std::invalid_argument(
        "StaticScheduleScenario: crash_round size must match the graph");
  }
  queue_.clear();
  for (graph::NodeId v = 0; v < crash_round_.size(); ++v) {
    if (crash_round_[v] != kNever) queue_.emplace_back(crash_round_[v], v);
  }
  std::sort(queue_.begin(), queue_.end());
  next_ = 0;
}

void StaticScheduleScenario::on_round(const ScenarioView& view,
                                      std::vector<ScenarioEvent>& out) {
  while (next_ < queue_.size() && queue_[next_].first <= view.round) {
    out.push_back({ScenarioEventKind::kCrash, queue_[next_].second});
    ++next_;
  }
}

std::vector<std::uint32_t> StaticScheduleScenario::materialize_crash_rounds(
    const graph::Graph& g) const {
  if (!crash_round_.empty() && crash_round_.size() != g.node_count()) {
    throw std::invalid_argument(
        "StaticScheduleScenario: crash_round size must match the graph");
  }
  std::vector<std::uint32_t> rounds = crash_round_;
  rounds.resize(g.node_count(), kNever);
  return rounds;
}

// --------------------------------------------------------------------------
// UniformRandomCrash

UniformRandomCrash::UniformRandomCrash(UniformRandomCrashConfig config)
    : config_(config) {
  if (config_.fraction < 0.0 || config_.fraction > 1.0) {
    throw std::invalid_argument("UniformRandomCrash: fraction must be in [0, 1]");
  }
}

std::unique_ptr<FaultScenario> UniformRandomCrash::clone() const {
  return std::make_unique<UniformRandomCrash>(config_);
}

std::vector<std::uint32_t> UniformRandomCrash::materialize_crash_rounds(
    const graph::Graph& g) const {
  auto rng = support::SeedSequence(config_.seed).generator();
  std::vector<std::uint32_t> rounds(g.node_count(), kNever);
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    // Two draws per node regardless of outcome keeps each node's schedule
    // independent of every other node's coin.
    const bool hit = rng.bernoulli(config_.fraction);
    const std::uint32_t round = uniform_round(config_.round_lo, config_.round_hi, rng);
    if (hit) rounds[v] = round;
  }
  return rounds;
}

void UniformRandomCrash::reset(const graph::Graph& g) {
  inner_ = StaticScheduleScenario(materialize_crash_rounds(g));
  inner_.reset(g);
}

void UniformRandomCrash::on_round(const ScenarioView& view,
                                  std::vector<ScenarioEvent>& out) {
  inner_.on_round(view, out);
}

// --------------------------------------------------------------------------
// TargetHighDegree

TargetHighDegree::TargetHighDegree(TargetHighDegreeConfig config) : config_(config) {}

std::unique_ptr<FaultScenario> TargetHighDegree::clone() const {
  return std::make_unique<TargetHighDegree>(config_);
}

std::vector<std::uint32_t> TargetHighDegree::materialize_crash_rounds(
    const graph::Graph& g) const {
  const graph::NodeId n = g.node_count();
  std::vector<graph::NodeId> order(n);
  for (graph::NodeId v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](graph::NodeId a, graph::NodeId b) {
    const std::size_t da = g.degree(a), db = g.degree(b);
    return da != db ? da > db : a < b;
  });
  auto rng = support::SeedSequence(config_.seed).generator();
  std::vector<std::uint32_t> rounds(n, kNever);
  const std::size_t count = std::min<std::size_t>(config_.count, n);
  for (std::size_t i = 0; i < count; ++i) {
    rounds[order[i]] = uniform_round(config_.round_lo, config_.round_hi, rng);
  }
  return rounds;
}

void TargetHighDegree::reset(const graph::Graph& g) {
  inner_ = StaticScheduleScenario(materialize_crash_rounds(g));
  inner_.reset(g);
}

void TargetHighDegree::on_round(const ScenarioView& view,
                                std::vector<ScenarioEvent>& out) {
  inner_.on_round(view, out);
}

// --------------------------------------------------------------------------
// TargetBoundary

TargetBoundary::TargetBoundary(TargetBoundaryConfig config) : config_(config) {
  if (config_.shards < 1) {
    throw std::invalid_argument("TargetBoundary: shards must be >= 1");
  }
  if (config_.fraction < 0.0 || config_.fraction > 1.0) {
    throw std::invalid_argument("TargetBoundary: fraction must be in [0, 1]");
  }
}

std::unique_ptr<FaultScenario> TargetBoundary::clone() const {
  return std::make_unique<TargetBoundary>(config_);
}

std::vector<std::uint32_t> TargetBoundary::materialize_crash_rounds(
    const graph::Graph& g) const {
  const graph::Partition partition = graph::Partition::build(g, config_.shards);
  auto rng = support::SeedSequence(config_.seed).generator();
  std::vector<std::uint32_t> rounds(g.node_count(), kNever);
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    if (!partition.is_boundary(v)) continue;
    const bool hit = rng.bernoulli(config_.fraction);
    const std::uint32_t round = uniform_round(config_.round_lo, config_.round_hi, rng);
    if (hit) rounds[v] = round;
  }
  return rounds;
}

void TargetBoundary::reset(const graph::Graph& g) {
  inner_ = StaticScheduleScenario(materialize_crash_rounds(g));
  inner_.reset(g);
}

void TargetBoundary::on_round(const ScenarioView& view, std::vector<ScenarioEvent>& out) {
  inner_.on_round(view, out);
}

// --------------------------------------------------------------------------
// TargetMisMembers

TargetMisMembers::TargetMisMembers(TargetMisMembersConfig config) : config_(config) {
  if (config_.probability < 0.0 || config_.probability > 1.0) {
    throw std::invalid_argument("TargetMisMembers: probability must be in [0, 1]");
  }
}

std::unique_ptr<FaultScenario> TargetMisMembers::clone() const {
  return std::make_unique<TargetMisMembers>(config_);
}

void TargetMisMembers::reset(const graph::Graph& g) {
  rng_ = support::SeedSequence(config_.seed).generator();
  seen_.assign(g.node_count(), 0);
  crashes_used_ = 0;
}

void TargetMisMembers::on_round(const ScenarioView& view,
                                std::vector<ScenarioEvent>& out) {
  // view.mis_nodes is in join order; fresh joiners from the previous round
  // sit at the tail, but crashes may have compacted the list, so scan it
  // all and key on the per-node seen flag.  "The round after they join":
  // a member joining in round r-1 is first visible here at round r.
  for (const graph::NodeId v : view.mis_nodes) {
    if (seen_[v]) continue;
    seen_[v] = 1;
    if (view.round < config_.start_round) continue;  // pre-convergence grace
    if (crashes_used_ >= config_.budget) continue;
    if (config_.probability < 1.0 && !rng_.bernoulli(config_.probability)) continue;
    out.push_back({ScenarioEventKind::kCrash, v});
    ++crashes_used_;
  }
}

// --------------------------------------------------------------------------
// ChurnStream

ChurnStream::ChurnStream(ChurnStreamConfig config) : config_(config) {
  if (config_.rate < 0.0) throw std::invalid_argument("ChurnStream: rate must be >= 0");
  if (config_.revive_delay_mean < 1.0) {
    throw std::invalid_argument("ChurnStream: revive_delay_mean must be >= 1");
  }
}

std::unique_ptr<FaultScenario> ChurnStream::clone() const {
  return std::make_unique<ChurnStream>(config_);
}

void ChurnStream::reset(const graph::Graph& g) {
  crash_rng_ = support::SeedSequence(config_.seed).generator();
  revive_rng_ = crash_rng_;
  revive_rng_.jump();  // non-overlapping half of the same seeded stream
  down_.assign(g.node_count(), 0);
  pending_ = {};
}

void ChurnStream::on_round(const ScenarioView& view, std::vector<ScenarioEvent>& out) {
  while (!pending_.empty() && pending_.top().first <= view.round) {
    const graph::NodeId v = pending_.top().second;
    pending_.pop();
    down_[v] = 0;
    out.push_back({ScenarioEventKind::kRevive, v});
  }
  if (view.round < config_.round_lo || view.round >= config_.round_hi) return;
  const std::uint64_t n = view.graph.node_count();
  if (n == 0) return;
  const std::uint64_t crashes = poisson(config_.rate, crash_rng_);
  for (std::uint64_t i = 0; i < crashes; ++i) {
    const auto v = static_cast<graph::NodeId>(crash_rng_.below(n));
    if (down_[v]) continue;  // landed on a node the churn already took down
    down_[v] = 1;
    out.push_back({ScenarioEventKind::kCrash, v});
    pending_.emplace(view.round + geometric_delay(config_.revive_delay_mean, revive_rng_),
                     v);
  }
}

// --------------------------------------------------------------------------
// BudgetedAdversary

BudgetedAdversary::BudgetedAdversary(BudgetedAdversaryConfig config) : config_(config) {
  if (config_.crashes_per_round == 0) {
    throw std::invalid_argument("BudgetedAdversary: crashes_per_round must be >= 1");
  }
}

std::unique_ptr<FaultScenario> BudgetedAdversary::clone() const {
  return std::make_unique<BudgetedAdversary>(config_);
}

void BudgetedAdversary::reset(const graph::Graph& /*g*/) {
  budget_left_ = config_.budget;
}

void BudgetedAdversary::on_round(const ScenarioView& view,
                                 std::vector<ScenarioEvent>& out) {
  if (view.round < config_.start_round || budget_left_ == 0 || view.mis_nodes.empty()) {
    return;
  }
  // Greedy damage heuristic: a member's crash uncovers every dominated
  // neighbour whose only cover it was; counting all dominated neighbours
  // over-approximates that but ranks members the same way in practice.
  struct Scored {
    std::size_t score;
    graph::NodeId node;
  };
  std::vector<Scored> scored;
  scored.reserve(view.mis_nodes.size());
  for (const graph::NodeId v : view.mis_nodes) {
    std::size_t dominated = 0;
    for (const graph::NodeId w : view.graph.neighbors(v)) {
      if (view.status[w] == NodeStatus::kDominated) ++dominated;
    }
    scored.push_back({dominated, v});
  }
  const std::size_t take = std::min<std::size_t>(
      std::min<std::size_t>(config_.crashes_per_round, budget_left_), scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(take),
                    scored.end(), [](const Scored& a, const Scored& b) {
                      return a.score != b.score ? a.score > b.score : a.node < b.node;
                    });
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back({ScenarioEventKind::kCrash, scored[i].node});
    --budget_left_;
  }
}

// --------------------------------------------------------------------------
// ScriptedScenario

ScriptedScenario::ScriptedScenario(std::vector<Step> steps, ScenarioKind kind)
    : steps_(std::move(steps)), kind_(kind) {
  std::stable_sort(steps_.begin(), steps_.end(),
                   [](const Step& a, const Step& b) { return a.round < b.round; });
}

std::unique_ptr<FaultScenario> ScriptedScenario::clone() const {
  auto copy = std::make_unique<ScriptedScenario>(std::vector<Step>{}, kind_);
  copy->steps_ = steps_;
  return copy;
}

void ScriptedScenario::reset(const graph::Graph& /*g*/) { next_ = 0; }

void ScriptedScenario::on_round(const ScenarioView& view, std::vector<ScenarioEvent>& out) {
  while (next_ < steps_.size() && steps_[next_].round <= view.round) {
    out.push_back(steps_[next_].event);
    ++next_;
  }
}

}  // namespace beepmis::sim

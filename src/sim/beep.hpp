// Synchronous beeping-model simulator.
//
// The beeping model (Afek et al., DISC'11) is the weakest standard
// communication model: in each exchange a node either beeps or listens, and
// a listener learns only the single bit "at least one neighbour beeped".
// One paper "time step" may involve a constant number of exchanges (the MIS
// protocols use two: an intent beep and a join announcement), so the
// simulator runs `Protocol::exchanges_per_round()` exchanges per round.
//
// Design invariants:
//  * The simulator owns node status; protocols request transitions through
//    the context (join_mis / deactivate) and are never allowed to beep or
//    transition on behalf of inactive nodes.
//  * The simulator never auto-deactivates neighbours of a joiner: in the
//    real protocol that knowledge travels via the second-exchange beep, so
//    fault injection (lost beeps) exercises true protocol behaviour.
//  * A run is a pure function of (graph, protocol, rng seed); nodes are
//    visited in ascending id order everywhere.
//
// Performance contract (see src/sim/README.md for the full design): the
// core is *frontier-driven* — per-exchange simulator work is
// O(active + beep deliveries), independent of n.  Beep/heard flags are
// cleared through dirty-lists, the previous-exchange flags are obtained by
// double-buffer swap, beeps are delivered by walking an explicit beeper
// frontier in ascending id order (so lossy-mode RNG draw order is
// bit-identical to a dense scan of the active list), and crash/wake fault
// events come from presorted event queues.  All per-node scratch state is
// reused across runs, and the graph can be rebound between runs so one
// simulator instance amortises its allocations over many trials.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/exchange_core.hpp"
#include "sim/result.hpp"
#include "sim/scenario.hpp"
#include "sim/trace.hpp"
#include "support/rng.hpp"

namespace beepmis::sim {

/// Thrown when a run is abandoned because its cooperative deadline
/// (SimConfig::deadline_ns) expired.  The trial harness maps this either
/// to a per-trial timeout (a failed attempt that is retried / quarantined)
/// or to sweep-budget expiry (the trial is abandoned and the sweep is
/// truncated at a clean boundary) depending on which deadline fired — see
/// exp/runner.hpp.
class RunCancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Monotonic now in nanoseconds, the unit SimConfig::deadline_ns uses.
[[nodiscard]] inline std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SimConfig {
  /// Hard cap on rounds; a run that hits it returns terminated = false.
  std::size_t max_rounds = 1u << 20;
  /// Fault injection: each (beeper -> listener) delivery is dropped
  /// independently with this probability.  0 = reliable channel.
  double beep_loss_probability = 0.0;
  /// Record a full event trace (beeps, joins, deactivations).
  bool record_trace = false;
  /// Per-node wake-up rounds (asynchronous start, as studied by Afek et
  /// al. DISC'11).  Empty = everyone starts at round 0.  A node does not
  /// beep, hear, or transition before its wake round.
  std::vector<std::uint32_t> wake_round;
  /// Per-node fail-stop rounds; UINT32_MAX (the default) = never.  A node
  /// still active at the start of its crash round becomes kCrashed and
  /// falls silent forever.
  std::vector<std::uint32_t> crash_round;
  /// DISC'11-style keep-alive: nodes that joined the MIS keep beeping in
  /// every exchange forever, so late wakers (and nodes that lost a join
  /// announcement) still learn they are dominated.  Does not affect
  /// termination (MIS nodes are already inactive) nor beep_counts.
  bool mis_keepalive = false;
  /// Keep simulating (even with no active nodes) until at least this round
  /// — required by maintenance/self-healing experiments where scheduled
  /// crashes and reactivations happen after the initial MIS converges.
  std::size_t run_until_round = 0;
  /// Adaptive fault adversary consulted at every round boundary, layered
  /// on top of (after) the static wake/crash vectors; see sim/scenario.hpp
  /// for the event semantics and determinism contract.  Scalar
  /// BeepSimulator only — the batched and sharded simulators reject it
  /// (the trial harness materialises kStaticSchedule scenarios into
  /// crash_round vectors to keep those fast paths).  The scenario does not
  /// extend the run: set run_until_round to cover its event window.  The
  /// instance is stateful per run (reset() is called at every run start),
  /// so it must not be shared between concurrently running simulators —
  /// clone() exists for exactly that.
  std::shared_ptr<FaultScenario> scenario;
  /// Collect per-disruption recovery-time samples (RunResult::
  /// recovery_rounds): a disruption opens at a round where an MIS member
  /// crashes or a crashed node revives, and closes at the next round
  /// boundary where no node is active, no wake is pending, and the
  /// surviving nodes form a valid MIS.  Scalar BeepSimulator only; the
  /// validity check is O(n + m) but only runs when the state changed since
  /// it last failed.
  bool track_recovery = false;
  /// Cooperative cancellation deadline: when set, the run loop compares
  /// steady_now_ns() against the stored value at every round boundary and
  /// throws RunCancelled once it is exceeded.  The value is an atomic so a
  /// harness can move the deadline per trial (or per watchdog decision)
  /// without rebuilding the simulator; nullptr (the default) costs one
  /// pointer test per round.  Honoured by the scalar BeepSimulator and the
  /// batched BatchSimulator; the sharded simulator ignores it (its lanes
  /// rendezvous on barriers every exchange — aborting one mid-round is the
  /// coordinator's job, and the harness bounds sharded sweeps at trial
  /// boundaries instead).  A protocol that never returns from emit/react
  /// cannot be cancelled by anything in-process; that is what the
  /// process-level kill-and-resume path (exp/journal.hpp) is for.
  std::shared_ptr<const std::atomic<std::int64_t>> deadline_ns;
  /// Sharded simulators only: materialize per-shard reordered CSR copies
  /// (graph::Partition::materialize_local_adjacency) at graph-bind time, so
  /// each lane's delivery sweep reads a contiguous shard-local array
  /// instead of strided slices of the shared adjacency.  Pays one extra
  /// copy of the adjacency in RAM for locality — the intended pairing with
  /// a memory-mapped shared CSR (graph/csr_file.hpp), where the shared
  /// array may be cold disk pages.  Results are bit-identical either way.
  /// Ignored by the scalar and (unsharded) batched simulators.
  bool shard_local_adjacency = false;
};

class BeepSimulator;
class ShardedSimulator;

namespace detail {
/// Where a context's mutations land.  The scalar core wires one sink at
/// the simulator's own bookkeeping; the sharded core wires one sink per
/// lane, which is what lets K lanes run one protocol's emit/react
/// concurrently over disjoint node ranges without sharing any mutable
/// list.  [lo, hi) is the id range this context may mutate (the whole
/// graph for the scalar core).
struct MutationSink {
  std::vector<graph::NodeId>* beepers = nullptr;
  std::vector<std::uint32_t>* beep_counts = nullptr;  ///< global array
  std::uint64_t* total_beeps = nullptr;               ///< per-lane counter
  /// Where join_mis records the new member: the live-MIS join-order list
  /// itself (scalar) or a per-lane new-joins list merged at the round
  /// boundary (sharded).
  std::vector<graph::NodeId>* mis_joins = nullptr;
  /// Cleared on join so the reliable-channel keep-alive cache re-derives.
  bool* mis_hear_valid = nullptr;
  std::vector<graph::NodeId>* reactivated = nullptr;
  /// Reactivate calls through this sink (per-lane in the sharded core;
  /// lanes are summed into RunResult::reactivations at run end).
  std::uint64_t reactivations = 0;
  Trace* trace = nullptr;  ///< nullptr = not recording
  graph::NodeId lo = 0, hi = 0;
};
}  // namespace detail

/// Per-exchange view handed to protocols.  All mutating calls validate
/// their preconditions and throw std::logic_error on protocol bugs.
class BeepContext {
 public:
  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] std::size_t round() const noexcept { return round_; }
  [[nodiscard]] unsigned exchange() const noexcept { return exchange_; }

  /// Active node ids, ascending.  The list is compacted only at round
  /// boundaries: a node deactivated in an earlier exchange of the current
  /// round still appears here, so protocols iterating it in later exchanges
  /// must check is_active(v) first.
  [[nodiscard]] const std::vector<graph::NodeId>& active_nodes() const noexcept {
    return *active_;
  }

  /// The id range [node_begin, node_end) this context may mutate: the whole
  /// graph on the scalar path, one shard's slice on the sharded path.
  /// Protocols whose react scans *all* nodes (not just active ones — e.g.
  /// self-healing silence counters) must restrict that scan to this range
  /// or the sharded core would visit each node K times.
  [[nodiscard]] graph::NodeId node_begin() const noexcept { return sink_->lo; }
  [[nodiscard]] graph::NodeId node_end() const noexcept { return sink_->hi; }

  [[nodiscard]] bool is_active(graph::NodeId v) const { return status_->at(v) == NodeStatus::kActive; }
  [[nodiscard]] NodeStatus status(graph::NodeId v) const { return status_->at(v); }

  /// Whether v beeped in the current exchange (valid during react).
  [[nodiscard]] bool beeped(graph::NodeId v) const { return beeped_->at(v); }
  /// Whether v heard at least one beep in the current exchange (valid
  /// during react; accounts for injected beep loss).
  [[nodiscard]] bool heard(graph::NodeId v) const { return heard_->at(v); }

  /// Emit-phase only: make active node v beep this exchange.  A node that
  /// was already beeping in the previous exchange of the same round is
  /// treated as *continuing* one signal (Table 1's "keep signalling"), so
  /// beep_counts record signal episodes, matching the paper's Figure 5
  /// beep accounting.
  void beep(graph::NodeId v);
  /// React-phase only: active node v joins the MIS (becomes inactive).
  void join_mis(graph::NodeId v);
  /// React-phase only: active node v becomes dominated (inactive).
  void deactivate(graph::NodeId v);
  /// React-phase only: *dominated* node v resumes competing (self-healing
  /// protocols; takes effect from the next round).
  void reactivate(graph::NodeId v);

  /// Deterministic per-run randomness shared by the protocol.
  [[nodiscard]] support::Xoshiro256StarStar& rng() noexcept { return *rng_; }

 private:
  friend class BeepSimulator;
  friend class DenseReferenceSimulator;  ///< seed-path reference (dense_ref.hpp)
  friend class ShardedSimulator;         ///< per-lane contexts (sharded.hpp)
  enum class Phase { kEmit, kReact, kObserve };

  const graph::Graph* graph_ = nullptr;
  const std::vector<graph::NodeId>* active_ = nullptr;
  std::vector<NodeStatus>* status_ = nullptr;
  std::vector<std::uint8_t>* beeped_ = nullptr;
  const std::vector<std::uint8_t>* prev_beeped_ = nullptr;
  const std::vector<std::uint8_t>* heard_ = nullptr;
  support::Xoshiro256StarStar* rng_ = nullptr;
  detail::MutationSink* sink_ = nullptr;
  std::size_t round_ = 0;
  unsigned exchange_ = 0;
  Phase phase_ = Phase::kEmit;
};

class BatchProtocol;

/// Draw-entropy policy of the batched (64-lane) simulator — the lane-sweep
/// analogue of ShardedSimulator::RngMode.  Defined here (not batch.hpp) so
/// BeepProtocol::make_batch_protocol can take it without a circular
/// include.
enum class BatchRngMode {
  /// Lane l consumes its own per-trial RNG in exactly the scalar draw
  /// order, so every lane is bit-identical to a scalar BeepSimulator run
  /// (the default, and the only mode the golden batched-lane pins cover).
  kScalarOrder,
  /// Opt-in statistical mode: lanes draw from jump()-partitioned per-lane
  /// streams derived from one base seed (deterministic per (seed, lane),
  /// no scalar draw-order carving), and kernels may vectorise Bernoulli
  /// draws across lanes via BatchContext's shared bulk-plane stream — one
  /// 64-bit random plane serves a whole dyadic exponent bucket, and lossy
  /// delivery draws loss bits for all lanes of an edge at once.  Same
  /// per-lane marginal distribution, different sample: results are NOT
  /// comparable seed-for-seed with scalar runs, only distributionally
  /// (see src/sim/README.md "Statistical lanes").
  kStatisticalLanes,
};

/// Sharded-execution capability of a protocol (see sim/sharded.hpp and the
/// "Sharded execution" section of src/sim/README.md).  supported == false
/// (the default) keeps the protocol on the scalar path.  A protocol that
/// declares support promises the sharded draw-order contract:
///
///  * emit() iterates ctx.active_nodes() in ascending order and consumes
///    exactly emit_draws_per_entry[ctx.exchange()] rng outputs per list
///    entry, each via a single-output draw (bernoulli / uniform01),
///    regardless of per-node state — this is what lets the sharded driver
///    carve per-shard windows out of the scalar rng stream by count;
///  * react(), and any state emit() touches besides the rng, is per-node:
///    concurrent calls over disjoint node ranges must be safe, and neither
///    emit nor react may draw randomness outside the declared counts;
///  * joins happen only in the final exchange of a round (keep-alive
///    bookkeeping is merged across shards at round boundaries);
///  * reset() may draw freely (it runs serially on the base stream).
struct ShardSupport {
  bool supported = false;
  /// Size exchanges_per_round() when supported.
  std::vector<unsigned> emit_draws_per_entry;
};

/// Interface implemented by beeping protocols (see src/mis/).
class BeepProtocol {
 public:
  virtual ~BeepProtocol() = default;

  /// Batched kernel for this protocol under `mode`, or nullptr when no
  /// 64-lane implementation exists for that mode (the default).  A
  /// non-null kScalarOrder kernel is a contract: lane l of a
  /// BatchSimulator run with it must be bit-identical to a scalar run of
  /// *this exact* protocol — overrides in non-final classes must therefore
  /// guard against subclasses inheriting them (see LocalFeedbackMis).  A
  /// non-null kStatisticalLanes kernel promises only correct per-lane
  /// marginal distributions under the bulk-plane draw APIs (see the
  /// kernel-authoring checklist).  Callers that get nullptr use the scalar
  /// path.
  [[nodiscard]] virtual std::unique_ptr<BatchProtocol> make_batch_protocol(
      BatchRngMode mode) const;
  /// Convenience overload: the default bit-identical mode.
  [[nodiscard]] std::unique_ptr<BatchProtocol> make_batch_protocol() const;

  /// Sharded-execution declaration; default: not supported.  Like
  /// make_batch_protocol, an override in a non-final class must refuse
  /// subclasses (typeid guard) — a subclass may add behaviour (extra
  /// draws, cross-node state) that breaks the sharded contract.
  [[nodiscard]] virtual ShardSupport shard_support() const;

  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Number of exchanges per paper time step (>= 1).
  [[nodiscard]] virtual unsigned exchanges_per_round() const = 0;
  /// Called once before each run; must fully (re)initialise every piece of
  /// per-run state for `g` (assign, not resize).  One protocol instance may
  /// be reused for many runs on many graphs — the trial harness does
  /// exactly that — so any state surviving reset() makes results depend on
  /// run order and breaks the pure-function-of-(graph, protocol config,
  /// seed) contract.
  virtual void reset(const graph::Graph& g, support::Xoshiro256StarStar& rng) = 0;
  /// Decide which active nodes beep in this exchange (call ctx.beep(v)).
  virtual void emit(BeepContext& ctx) = 0;
  /// Observe heard/beeped flags; request joins/deactivations.
  virtual void react(BeepContext& ctx) = 0;
};

/// The simulator.  One instance may execute many runs, on the same graph or
/// (via the graph-rebinding run overload) on a different graph per run;
/// scratch state is reused across runs either way.
class BeepSimulator {
 public:
  explicit BeepSimulator(const graph::Graph& g, SimConfig config = {});
  /// The simulator stores a reference; a temporary graph would dangle.
  explicit BeepSimulator(graph::Graph&&, SimConfig = {}) = delete;
  /// Unbound simulator: only usable through the graph-taking run overload.
  explicit BeepSimulator(SimConfig config = {});

  /// Executes `protocol` to termination (or the round cap) using `rng` on
  /// the graph bound at construction (or the last rebinding run).
  [[nodiscard]] RunResult run(BeepProtocol& protocol, support::Xoshiro256StarStar rng);
  /// Rebinds the simulator to `g` (revalidating per-node config vectors)
  /// and runs.  The flag/frontier scratch buffers are reused, so a trial
  /// loop that calls this with per-trial graphs stops allocating for them
  /// once the high-water graph size has been seen; only the status and
  /// beep-count vectors are reallocated per run, because RunResult takes
  /// them by move.  The caller must keep `g` alive for the duration of the
  /// call.
  [[nodiscard]] RunResult run(const graph::Graph& g, BeepProtocol& protocol,
                              support::Xoshiro256StarStar rng);
  /// A temporary graph would leave the simulator bound to a destroyed
  /// object (same trap the deleted rvalue constructor blocks).
  RunResult run(graph::Graph&&, BeepProtocol&, support::Xoshiro256StarStar) = delete;

  /// Event trace of the most recent run (empty unless config.record_trace).
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

  /// Observer invoked after every round with the end-of-round context
  /// (status and heard/beeped flags of the final exchange).  Used by the
  /// dynamics instrumentation; pass nullptr to clear.
  using RoundObserver = std::function<void(const BeepContext&)>;
  void set_round_observer(RoundObserver observer) { observer_ = std::move(observer); }

 protected:
  // Protected (not private) so DenseReferenceSimulator — the preserved
  // seed-path core used for perf baselines and differential testing — can
  // reuse the scratch state and context plumbing; see sim/dense_ref.hpp.
  friend class BeepContext;

  void bind_graph(const graph::Graph& g);
  void deliver_beeps(support::Xoshiro256StarStar& rng);
  void compact_active();
  /// Returns the outcome so the run loop can open recovery disruptions on
  /// MIS-member crashes.
  detail::FaultOutcome apply_wakeups_and_crashes();
  /// Consults config_.scenario and applies its events (wakes, then
  /// crashes, then revives, ascending node id within each kind).  Returns
  /// true when the round was *disruptive* for recovery tracking (an MIS
  /// member crashed or a node revived).
  bool apply_scenario_events();
  /// Recovery-SLA bookkeeping at the round boundary (track_recovery only).
  void update_recovery(bool state_may_have_changed);
  /// Whether the current quiescent state is a valid MIS over the surviving
  /// (non-crashed) nodes.  O(n + m); callers gate it behind a dirty flag.
  [[nodiscard]] bool quiescent_state_valid() const;

  const graph::Graph* graph_ = nullptr;
  SimConfig config_;
  Trace trace_;
  RoundObserver observer_;

  /// Fault schedule (presorted events + round-0 frontier), built once per
  /// graph binding; the per-run cursor walks it (see sim/exchange_core.hpp,
  /// which the sharded core shares per lane).
  detail::FaultSchedule faults_;
  detail::FaultCursor fault_cursor_;
  /// Size the schedule above was built for (graph_ may dangle between
  /// rebinding runs, so the size is cached rather than read through it).
  graph::NodeId bound_node_count_ = 0;

  // Per-run scratch state (reused across runs; dirty-list cleared).
  std::vector<NodeStatus> status_;
  std::vector<graph::NodeId> active_;
  std::vector<std::uint8_t> in_active_;      ///< membership bitmap of active_
  std::vector<std::uint8_t> beeped_;
  std::vector<std::uint8_t> prev_beeped_;
  std::vector<std::uint8_t> heard_;
  std::vector<graph::NodeId> beepers_;       ///< frontier: set bits of beeped_
  std::vector<graph::NodeId> prev_beepers_;  ///< set bits of prev_beeped_
  std::vector<graph::NodeId> heard_dirty_;   ///< set bits of heard_
  std::vector<std::uint32_t> beep_counts_;
  std::vector<graph::NodeId> mis_nodes_;     ///< live MIS frontier, join order
  /// Reliable-channel keep-alive cache: the deduplicated neighbour set of
  /// mis_nodes_ (the nodes keep-alive delivery reaches), re-derived only
  /// when the MIS frontier changes (join / member crash).  Turns the static
  /// tail's per-exchange keep-alive cost from O(sum deg of MIS) into
  /// O(|N(MIS)|).  Unused in lossy mode, where every potential delivery
  /// must consume its own Bernoulli draw.
  std::vector<graph::NodeId> mis_hear_;
  std::vector<std::uint8_t> in_mis_hear_;    ///< membership bitmap of mis_hear_
  bool mis_hear_valid_ = false;
  std::vector<graph::NodeId> reactivated_;   ///< pending re-entries to active_
  // Fault-scenario and recovery-SLA per-run state.
  std::vector<ScenarioEvent> scenario_events_;   ///< per-round scratch
  std::vector<std::uint32_t> open_disruptions_;  ///< start rounds, open
  std::vector<std::uint32_t> recovery_rounds_;   ///< closed-disruption samples
  bool recovery_dirty_ = true;   ///< statuses changed since last validity check
  bool recovery_valid_ = false;  ///< cached quiescent_state_valid() result
  std::uint64_t total_beeps_ = 0;
  std::size_t round_ = 0;
  unsigned exchange_ = 0;
  bool trace_enabled_ = false;
};

}  // namespace beepmis::sim

#include "sim/trace.hpp"

#include <limits>
#include <ostream>

namespace beepmis::sim {

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kBeep:
      return "beep";
    case EventKind::kJoinMis:
      return "join";
    case EventKind::kDeactivate:
      return "deactivate";
    case EventKind::kWake:
      return "wake";
    case EventKind::kCrash:
      return "crash";
    case EventKind::kReactivate:
      return "reactivate";
    case EventKind::kRevive:
      return "revive";
  }
  return "unknown";
}

std::vector<Event> Trace::of_kind(EventKind kind) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::size_t Trace::beeps_of(graph::NodeId node) const {
  std::size_t count = 0;
  for (const Event& e : events_) {
    if (e.kind == EventKind::kBeep && e.node == node) ++count;
  }
  return count;
}

std::size_t Trace::inactive_round(graph::NodeId node) const {
  for (const Event& e : events_) {
    if (e.node == node &&
        (e.kind == EventKind::kJoinMis || e.kind == EventKind::kDeactivate)) {
      return e.round;
    }
  }
  return std::numeric_limits<std::size_t>::max();
}

void Trace::write_csv(std::ostream& out) const {
  out << "round,exchange,kind,node\n";
  for (const Event& e : events_) {
    out << e.round << ',' << static_cast<int>(e.exchange) << ',' << to_string(e.kind)
        << ',' << e.node << '\n';
  }
}

}  // namespace beepmis::sim

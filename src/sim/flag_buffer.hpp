// Internal helper shared by the frontier-driven simulators.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace beepmis::sim::detail {

/// Restores flags[lo, hi) to all-zero given the list of set positions
/// (all within [lo, hi)).  When a large fraction of the range is dirty a
/// straight memset beats the scatter-store loop, so dense exchanges don't
/// pay for the sparse-path machinery; the crossover fraction is
/// conservative.  The ranged form is the single home of that policy: the
/// scalar core clears whole arrays through the wrapper below, the sharded
/// core clears its shard's range directly.  Templated over the flag value
/// so the scalar/sharded uint8_t flags and the batched cores' 64-lane
/// bitplanes share the one policy.
template <typename Flag>
inline void clear_flag_range(Flag* flags, graph::NodeId lo, graph::NodeId hi,
                             std::vector<graph::NodeId>& dirty) {
  if (dirty.size() >= static_cast<std::size_t>(hi - lo) / 8) {
    std::fill(flags + lo, flags + hi, Flag{0});
  } else {
    for (const graph::NodeId v : dirty) flags[v] = 0;
  }
  dirty.clear();
}

/// Whole-array form of clear_flag_range.
template <typename Flag>
inline void clear_flags(std::vector<Flag>& flags, std::vector<graph::NodeId>& dirty) {
  clear_flag_range(flags.data(), 0, static_cast<graph::NodeId>(flags.size()), dirty);
}

}  // namespace beepmis::sim::detail

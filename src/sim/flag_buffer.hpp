// Internal helper shared by the frontier-driven simulators.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace beepmis::sim::detail {

/// Restores `flags` to all-zero given the list of set positions.  When a
/// large fraction of the array is dirty a straight memset beats the
/// scatter-store loop, so dense exchanges don't pay for the sparse-path
/// machinery; the crossover fraction is conservative.
inline void clear_flags(std::vector<std::uint8_t>& flags,
                        std::vector<graph::NodeId>& dirty) {
  if (dirty.size() >= flags.size() / 8) {
    std::fill(flags.begin(), flags.end(), std::uint8_t{0});
  } else {
    for (const graph::NodeId v : dirty) flags[v] = 0;
  }
  dirty.clear();
}

}  // namespace beepmis::sim::detail

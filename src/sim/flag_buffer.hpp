// Internal helper shared by the frontier-driven simulators.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace beepmis::sim::detail {

/// Restores flags[lo, hi) to all-zero given the list of set positions
/// (all within [lo, hi)).  When a large fraction of the range is dirty a
/// straight memset beats the scatter-store loop, so dense exchanges don't
/// pay for the sparse-path machinery; the crossover fraction is
/// conservative.  The ranged form is the single home of that policy: the
/// scalar core clears whole arrays through the wrapper below, the sharded
/// core clears its shard's range directly.
inline void clear_flag_range(std::uint8_t* flags, graph::NodeId lo, graph::NodeId hi,
                             std::vector<graph::NodeId>& dirty) {
  if (dirty.size() >= static_cast<std::size_t>(hi - lo) / 8) {
    std::fill(flags + lo, flags + hi, std::uint8_t{0});
  } else {
    for (const graph::NodeId v : dirty) flags[v] = 0;
  }
  dirty.clear();
}

/// Whole-array form of clear_flag_range.
inline void clear_flags(std::vector<std::uint8_t>& flags,
                        std::vector<graph::NodeId>& dirty) {
  clear_flag_range(flags.data(), 0, static_cast<graph::NodeId>(flags.size()), dirty);
}

}  // namespace beepmis::sim::detail

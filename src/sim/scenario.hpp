// Fault scenarios: adversaries consulted at round boundaries.
//
// The static per-node wake_round/crash_round vectors (SimConfig) model the
// weakest adversary: the whole fault schedule is fixed before the run and
// blind to protocol state.  A FaultScenario generalises this to an
// *adaptive* adversary — a scheduler the simulator consults at the top of
// every round with a read-only view of the live run (statuses, the awake
// active list, the live MIS in join order) that replies with this round's
// crash / revive / wake events.
//
// Determinism contract: a scenario's event stream is a pure function of
// (graph, its own config incl. seed, the observed run states).  Scenario
// randomness comes from the scenario's OWN seed (never the run rng), with
// internal sub-streams separated by jump() — so a schedule drawn by an
// oblivious scenario is independent of the trial seed, which is exactly
// what lets the trial harness materialise it once per shared graph and
// keep the batched/sharded fast paths (see ScenarioKind).
//
// Event semantics at the round boundary (after the legacy static-vector
// events fire, before the round's first exchange):
//  * kWake:   a still-sleeping node (kActive, not yet awake) joins the
//             active list now — an early wake.  No-op on awake/decided
//             nodes.
//  * kCrash:  fail-stop, same as a crash_round entry.  No-op on already
//             crashed nodes.
//  * kRevive: a crashed node comes back as kActive and re-enters the
//             competition this round (recovery churn; recorded in traces
//             as EventKind::kRevive).  No-op on non-crashed nodes.
// Events for out-of-range node ids throw std::invalid_argument.  Within a
// round the simulator applies all wakes, then all crashes, then all
// revives, each kind in ascending node id, regardless of emission order.
//
// The scenario cannot extend the run: pair it with
// SimConfig::run_until_round so the simulator is still alive when the
// events are due.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/result.hpp"
#include "support/rng.hpp"

namespace beepmis::sim {

enum class ScenarioEventKind : std::uint8_t { kWake, kCrash, kRevive };

struct ScenarioEvent {
  ScenarioEventKind kind = ScenarioEventKind::kCrash;
  graph::NodeId node = 0;

  friend constexpr bool operator==(const ScenarioEvent&, const ScenarioEvent&) = default;
};

/// Read-only snapshot handed to FaultScenario::on_round at the top of a
/// round (fault events of the static schedule already applied, no exchange
/// run yet).  Spans alias simulator state: valid only during the call.
struct ScenarioView {
  const graph::Graph& graph;
  std::size_t round;
  /// Per-node fates; kActive covers both awake and still-sleeping nodes.
  std::span<const NodeStatus> status;
  /// Awake active nodes, ascending.
  std::span<const graph::NodeId> active;
  /// Live MIS members in join order (crashed members already pruned).
  std::span<const graph::NodeId> mis_nodes;
};

/// How much of the run a scenario observes — the property the trial
/// harness keys its fast-path routing on (see harness::run_beep_trials and
/// the fast-path matrix in src/sim/README.md).
enum class ScenarioKind : std::uint8_t {
  /// A function of (graph, config) alone, expressible as crash_round
  /// vectors via materialize_crash_rounds().  The harness folds it into
  /// the static schedule, so batched and sharded execution stay available
  /// and bit-identical to the equivalent static-vector run.
  kStaticSchedule,
  /// State-blind but not vector-shaped (revives, multi-event churn): the
  /// stream could be pre-drawn, but needs the scalar event driver.
  kObliviousStream,
  /// Observes live run state; only the scalar simulator may execute it,
  /// and the auto-batch/auto-shard heuristics must refuse it.
  kAdaptive,
};

class FaultScenario {
 public:
  virtual ~FaultScenario() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual ScenarioKind kind() const = 0;
  /// Fresh instance with identical config and pristine state, so each
  /// trial-harness worker can own (and reset) its own copy.
  [[nodiscard]] virtual std::unique_ptr<FaultScenario> clone() const = 0;

  /// Called once at the start of every run; must fully reinitialise all
  /// per-run state (rng streams reseeded from the scenario's own seed) so
  /// one instance reused across runs stays a pure function of its inputs.
  virtual void reset(const graph::Graph& g) = 0;
  /// Appends this round's events to `out` (order irrelevant; see the
  /// application rules above).  Called every round, including rounds where
  /// the scenario emits nothing.
  virtual void on_round(const ScenarioView& view, std::vector<ScenarioEvent>& out) = 0;

  /// kStaticSchedule only: the equivalent per-node crash_round vector
  /// (UINT32_MAX = never), such that running with it in
  /// SimConfig::crash_round is bit-identical to running this scenario
  /// live.  Throws std::logic_error for other kinds.
  [[nodiscard]] virtual std::vector<std::uint32_t> materialize_crash_rounds(
      const graph::Graph& g) const;
};

// ---------------------------------------------------------------------------
// Scenario library.  All scenarios are deterministic per (seed, config).

/// The existing static vectors re-expressed as a scenario: replays an
/// explicit crash_round vector through the round-boundary driver.  The
/// differential oracle pinning driver == static-schedule equivalence runs
/// through this class.
class StaticScheduleScenario final : public FaultScenario {
 public:
  explicit StaticScheduleScenario(std::vector<std::uint32_t> crash_round);

  [[nodiscard]] std::string_view name() const override { return "static-schedule"; }
  [[nodiscard]] ScenarioKind kind() const override { return ScenarioKind::kStaticSchedule; }
  [[nodiscard]] std::unique_ptr<FaultScenario> clone() const override;
  void reset(const graph::Graph& g) override;
  void on_round(const ScenarioView& view, std::vector<ScenarioEvent>& out) override;
  [[nodiscard]] std::vector<std::uint32_t> materialize_crash_rounds(
      const graph::Graph& g) const override;

 private:
  std::vector<std::uint32_t> crash_round_;
  std::vector<std::pair<std::uint32_t, graph::NodeId>> queue_;  ///< (round, node) sorted
  std::size_t next_ = 0;
};

/// Baseline non-adversary: each node independently crashes with
/// probability `fraction`, at a round uniform in [round_lo, round_hi].
struct UniformRandomCrashConfig {
  double fraction = 0.05;
  std::uint32_t round_lo = 0;
  std::uint32_t round_hi = 0;
  std::uint64_t seed = 1;
};
class UniformRandomCrash final : public FaultScenario {
 public:
  explicit UniformRandomCrash(UniformRandomCrashConfig config);

  [[nodiscard]] std::string_view name() const override { return "uniform-crash"; }
  [[nodiscard]] ScenarioKind kind() const override { return ScenarioKind::kStaticSchedule; }
  [[nodiscard]] std::unique_ptr<FaultScenario> clone() const override;
  void reset(const graph::Graph& g) override;
  void on_round(const ScenarioView& view, std::vector<ScenarioEvent>& out) override;
  [[nodiscard]] std::vector<std::uint32_t> materialize_crash_rounds(
      const graph::Graph& g) const override;

 private:
  UniformRandomCrashConfig config_;
  StaticScheduleScenario inner_{{}};
};

/// Crashes the `count` highest-degree nodes (ties to the lower id), each at
/// a round uniform in [round_lo, round_hi] drawn in rank order.
struct TargetHighDegreeConfig {
  std::size_t count = 16;
  std::uint32_t round_lo = 0;
  std::uint32_t round_hi = 0;
  std::uint64_t seed = 1;
};
class TargetHighDegree final : public FaultScenario {
 public:
  explicit TargetHighDegree(TargetHighDegreeConfig config);

  [[nodiscard]] std::string_view name() const override { return "target-degree"; }
  [[nodiscard]] ScenarioKind kind() const override { return ScenarioKind::kStaticSchedule; }
  [[nodiscard]] std::unique_ptr<FaultScenario> clone() const override;
  void reset(const graph::Graph& g) override;
  void on_round(const ScenarioView& view, std::vector<ScenarioEvent>& out) override;
  [[nodiscard]] std::vector<std::uint32_t> materialize_crash_rounds(
      const graph::Graph& g) const override;

 private:
  TargetHighDegreeConfig config_;
  StaticScheduleScenario inner_{{}};
};

/// Crashes graph::Partition boundary nodes (nodes with a neighbour in
/// another shard) — the nodes whose failure stresses cross-shard
/// coordination.  Each boundary node crashes with probability `fraction`
/// at a round uniform in [round_lo, round_hi].
struct TargetBoundaryConfig {
  std::uint32_t shards = 2;
  double fraction = 1.0;
  std::uint32_t round_lo = 0;
  std::uint32_t round_hi = 0;
  std::uint64_t seed = 1;
};
class TargetBoundary final : public FaultScenario {
 public:
  explicit TargetBoundary(TargetBoundaryConfig config);

  [[nodiscard]] std::string_view name() const override { return "target-boundary"; }
  [[nodiscard]] ScenarioKind kind() const override { return ScenarioKind::kStaticSchedule; }
  [[nodiscard]] std::unique_ptr<FaultScenario> clone() const override;
  void reset(const graph::Graph& g) override;
  void on_round(const ScenarioView& view, std::vector<ScenarioEvent>& out) override;
  [[nodiscard]] std::vector<std::uint32_t> materialize_crash_rounds(
      const graph::Graph& g) const override;

 private:
  TargetBoundaryConfig config_;
  StaticScheduleScenario inner_{{}};
};

/// Adaptive adversary: crashes MIS members the round after they join.
/// Members already in the set when `start_round` arrives are spared (so an
/// initial MIS can form); from then on every fresh joiner is killed with
/// probability `probability` until `budget` crashes have been spent.
struct TargetMisMembersConfig {
  std::uint32_t start_round = 0;
  std::size_t budget = SIZE_MAX;
  double probability = 1.0;
  std::uint64_t seed = 1;
};
class TargetMisMembers final : public FaultScenario {
 public:
  explicit TargetMisMembers(TargetMisMembersConfig config);

  [[nodiscard]] std::string_view name() const override { return "target-mis"; }
  [[nodiscard]] ScenarioKind kind() const override { return ScenarioKind::kAdaptive; }
  [[nodiscard]] std::unique_ptr<FaultScenario> clone() const override;
  void reset(const graph::Graph& g) override;
  void on_round(const ScenarioView& view, std::vector<ScenarioEvent>& out) override;

 private:
  TargetMisMembersConfig config_;
  support::Xoshiro256StarStar rng_{1};
  std::vector<std::uint8_t> seen_;  ///< members already observed (spared or hit)
  std::size_t crashes_used_ = 0;
};

/// Continuous Poisson churn: in every round of [round_lo, round_hi) a
/// Poisson(rate)-distributed number of uniformly chosen nodes crash; each
/// victim revives after a geometric delay with mean `revive_delay_mean`.
/// Oblivious — victims are drawn over all node ids, so a draw can land on
/// an already-down node and fizzle — but the revive stream makes it
/// non-materialisable (kObliviousStream).  Crash and revive randomness are
/// jump()-partitioned halves of the scenario seed's stream.
struct ChurnStreamConfig {
  double rate = 1.0;               ///< expected crashes per round
  double revive_delay_mean = 8.0;  ///< mean rounds a victim stays down
  std::uint32_t round_lo = 0;
  std::uint32_t round_hi = UINT32_MAX;
  std::uint64_t seed = 1;
};
class ChurnStream final : public FaultScenario {
 public:
  explicit ChurnStream(ChurnStreamConfig config);

  [[nodiscard]] std::string_view name() const override { return "churn"; }
  [[nodiscard]] ScenarioKind kind() const override { return ScenarioKind::kObliviousStream; }
  [[nodiscard]] std::unique_ptr<FaultScenario> clone() const override;
  void reset(const graph::Graph& g) override;
  void on_round(const ScenarioView& view, std::vector<ScenarioEvent>& out) override;

 private:
  ChurnStreamConfig config_;
  support::Xoshiro256StarStar crash_rng_{1};
  support::Xoshiro256StarStar revive_rng_{1};
  std::vector<std::uint8_t> down_;  ///< nodes this scenario has crashed
  using Revive = std::pair<std::uint64_t, graph::NodeId>;  ///< (due round, node)
  std::priority_queue<Revive, std::vector<Revive>, std::greater<>> pending_;
};

/// Greedy worst-case adversary under a total-crashes budget: each round
/// from `start_round` on it spends up to `crashes_per_round` of its budget
/// on the MIS members whose crash uncovers the most nodes (most dominated
/// neighbours; ties to the lower id).
struct BudgetedAdversaryConfig {
  std::size_t budget = 16;
  std::uint32_t start_round = 0;
  unsigned crashes_per_round = 1;
};
class BudgetedAdversary final : public FaultScenario {
 public:
  explicit BudgetedAdversary(BudgetedAdversaryConfig config);

  [[nodiscard]] std::string_view name() const override { return "budgeted"; }
  [[nodiscard]] ScenarioKind kind() const override { return ScenarioKind::kAdaptive; }
  [[nodiscard]] std::unique_ptr<FaultScenario> clone() const override;
  void reset(const graph::Graph& g) override;
  void on_round(const ScenarioView& view, std::vector<ScenarioEvent>& out) override;

 private:
  BudgetedAdversaryConfig config_;
  std::size_t budget_left_ = 0;
};

/// Fixed event script, for tests and fuzzing: emits exactly the given
/// events at their rounds, with a caller-declared kind (default kAdaptive,
/// so scripts exercise the scalar driver and the fast-path refusal).
class ScriptedScenario final : public FaultScenario {
 public:
  struct Step {
    std::uint32_t round = 0;
    ScenarioEvent event;
  };
  explicit ScriptedScenario(std::vector<Step> steps,
                            ScenarioKind kind = ScenarioKind::kAdaptive);

  [[nodiscard]] std::string_view name() const override { return "scripted"; }
  [[nodiscard]] ScenarioKind kind() const override { return kind_; }
  [[nodiscard]] std::unique_ptr<FaultScenario> clone() const override;
  void reset(const graph::Graph& g) override;
  void on_round(const ScenarioView& view, std::vector<ScenarioEvent>& out) override;

 private:
  std::vector<Step> steps_;  ///< stably sorted by round
  ScenarioKind kind_;
  std::size_t next_ = 0;
};

}  // namespace beepmis::sim

#include "mis/theory.hpp"

#include <cmath>

namespace beepmis::mis {

double single_beeper_probability(std::size_t d, double p) noexcept {
  if (d == 0) return 0.0;
  return static_cast<double>(d) * p *
         std::pow(1.0 - p, static_cast<double>(d) - 1.0);
}

double single_beeper_upper_bound(std::size_t d, double p) noexcept {
  if (d == 0) return 0.0;
  return static_cast<double>(d) * p *
         std::exp(-(static_cast<double>(d) - 1.0) * p);
}

double theorem1_potential(std::size_t d, std::span<const double> probs) noexcept {
  double total = 0.0;
  const auto dd = static_cast<double>(d);
  for (const double p : probs) {
    total += 6.0 * dd * p * std::exp(-dd * p);
  }
  return total;
}

std::size_t hardest_clique_size(std::span<const double> probs, std::size_t d_max) noexcept {
  std::size_t best_d = 3;
  double best = theorem1_potential(3, probs);
  for (std::size_t d = 4; d <= d_max; ++d) {
    const double value = theorem1_potential(d, probs);
    if (value < best) {
      best = value;
      best_d = d;
    }
  }
  return best_d;
}

double log2_n(std::size_t n) noexcept { return std::log2(static_cast<double>(n)); }

double figure3_global_reference(std::size_t n) noexcept {
  const double l = log2_n(n);
  return l * l;
}

double figure3_local_reference(std::size_t n) noexcept { return 2.5 * log2_n(n); }

}  // namespace beepmis::mis

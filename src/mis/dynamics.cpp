#include "mis/dynamics.hpp"

#include <algorithm>

namespace beepmis::mis {

sim::BeepSimulator::RoundObserver DynamicsRecorder::observer() {
  return [this](const sim::BeepContext& ctx) {
    RoundDynamics row;
    row.round = ctx.round();

    const graph::Graph& g = ctx.graph();
    for (const graph::NodeId v : ctx.active_nodes()) {
      ++row.active;
      const double weight = protocol_->probability_of(v);
      row.total_weight += weight;
      row.max_weight = std::max(row.max_weight, weight);

      double neighborhood = 0;
      for (const graph::NodeId w : g.neighbors(v)) {
        if (ctx.status(w) == sim::NodeStatus::kActive) {
          neighborhood += protocol_->probability_of(w);
        }
      }
      row.max_neighborhood_weight = std::max(row.max_neighborhood_weight, neighborhood);
      if (neighborhood <= lambda_) {
        ++row.light;
      } else {
        ++row.heavy;
      }
    }

    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      if (ctx.status(v) == sim::NodeStatus::kInMis) ++row.in_mis;
    }
    rows_.push_back(row);
  };
}

DynamicsRun run_local_feedback_with_dynamics(const graph::Graph& g, std::uint64_t seed,
                                             const LocalFeedbackConfig& config,
                                             double lambda) {
  DynamicsRun out;
  LocalFeedbackMis protocol(config);
  DynamicsRecorder recorder(protocol, lambda);
  sim::BeepSimulator simulator(g);
  simulator.set_round_observer(recorder.observer());
  out.result = simulator.run(protocol, support::Xoshiro256StarStar(seed));
  out.dynamics = recorder.rows();
  return out;
}

}  // namespace beepmis::mis

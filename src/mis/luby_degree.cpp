#include "mis/luby_degree.hpp"

namespace beepmis::mis {

void LubyDegreeMis::reset(const graph::Graph& g, support::Xoshiro256StarStar& /*rng*/) {
  active_degree_.assign(g.node_count(), 0);
  marked_.assign(g.node_count(), 0);
  winner_.assign(g.node_count(), 0);
}

void LubyDegreeMis::emit(sim::LocalContext& ctx) {
  switch (ctx.exchange()) {
    case 0:
      // Presence bit: lets every node count its active degree.
      for (const graph::NodeId v : ctx.active_nodes()) ctx.publish(v, 1, /*bits=*/1);
      break;
    case 1:
      // Mark with probability 1/(2 d(v)); isolated nodes mark with
      // certainty (they join unconditionally).  Marked nodes broadcast
      // their active degree for the conflict rule.
      for (const graph::NodeId v : ctx.active_nodes()) {
        const std::uint32_t d = active_degree_[v];
        const double p = d == 0 ? 1.0 : 1.0 / (2.0 * static_cast<double>(d));
        marked_[v] = static_cast<std::uint8_t>(ctx.rng().bernoulli(p));
        if (marked_[v]) ctx.publish(v, d, /*bits=*/32);
      }
      break;
    default:
      // Join announcement.
      for (const graph::NodeId v : ctx.active_nodes()) {
        if (winner_[v] && ctx.is_active(v)) ctx.publish(v, 1, /*bits=*/1);
      }
      break;
  }
}

void LubyDegreeMis::react(sim::LocalContext& ctx) {
  switch (ctx.exchange()) {
    case 0:
      for (const graph::NodeId v : ctx.active_nodes()) {
        std::uint32_t d = 0;
        for (const graph::NodeId w : ctx.graph().neighbors(v)) {
          if (ctx.value_of(w).has_value()) ++d;
        }
        active_degree_[v] = d;
      }
      break;
    case 1:
      // Conflict resolution: a marked node survives unless a marked
      // neighbour has strictly larger degree, or equal degree and larger
      // id (Luby's tie-break).
      for (const graph::NodeId v : ctx.active_nodes()) {
        bool survives = marked_[v] != 0;
        if (survives) {
          const std::uint64_t mine = active_degree_[v];
          for (const graph::NodeId w : ctx.graph().neighbors(v)) {
            const auto theirs = ctx.value_of(w);
            if (!theirs) continue;  // w unmarked
            if (*theirs > mine || (*theirs == mine && w > v)) {
              survives = false;
              break;
            }
          }
        }
        winner_[v] = static_cast<std::uint8_t>(survives);
      }
      break;
    default:
      for (const graph::NodeId v : ctx.active_nodes()) {
        if (!ctx.is_active(v)) continue;
        if (winner_[v]) {
          ctx.join_mis(v);
          continue;
        }
        for (const graph::NodeId w : ctx.graph().neighbors(v)) {
          if (ctx.value_of(w).has_value()) {
            ctx.deactivate(v);
            break;
          }
        }
      }
      break;
  }
}

}  // namespace beepmis::mis

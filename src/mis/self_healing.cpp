#include "mis/self_healing.hpp"

#include <stdexcept>

#include "mis/self_healing_batch.hpp"

namespace beepmis::mis {

std::unique_ptr<sim::BatchProtocol> SelfHealingLocalFeedbackMis::make_batch_protocol(
    sim::BatchRngMode mode) const {
  // Both rng modes: the healing pass is draw-free, and the inherited
  // local-feedback emit vectorises under kStatisticalLanes.
  return std::make_unique<BatchSelfHealingMis>(config_, mode);
}

sim::ShardSupport SelfHealingLocalFeedbackMis::shard_support() const {
  // Same draw contract as the base local-feedback protocol (one intent
  // draw per active entry, none in the announcement exchange); the healing
  // pass draws nothing and touches only per-node state inside the
  // context's shard range.  The class is final, so no typeid guard needed.
  return skeleton_shard_support();
}

SelfHealingLocalFeedbackMis::SelfHealingLocalFeedbackMis(SelfHealingConfig config)
    : LocalFeedbackMis(config.base), config_(config) {
  if (config_.silence_threshold == 0) {
    throw std::invalid_argument("SelfHealing: silence_threshold must be >= 1");
  }
}

void SelfHealingLocalFeedbackMis::on_reset(const graph::Graph& g,
                                           support::Xoshiro256StarStar& rng) {
  LocalFeedbackMis::on_reset(g, rng);
  silence_.assign(g.node_count(), 0);
}

void SelfHealingLocalFeedbackMis::on_round_complete(sim::BeepContext& ctx) {
  // heard() reflects the announcement exchange, which includes the MIS
  // keep-alive beeps — a dominated node with a live dominator always
  // hears, so its silence counter stays at zero.
  // Scan only this context's node range: the whole graph on the scalar
  // path, one shard's slice on the sharded path (each shard heals its own
  // nodes; a global scan would visit every node K times).
  const graph::NodeId end = ctx.node_end();
  for (graph::NodeId v = ctx.node_begin(); v < end; ++v) {
    if (ctx.status(v) != sim::NodeStatus::kDominated) continue;
    if (ctx.heard(v)) {
      silence_[v] = 0;
    } else if (++silence_[v] >= config_.silence_threshold) {
      silence_[v] = 0;
      set_probability(v, config_.base.initial_p_low);
      ctx.reactivate(v);
    }
  }
}

}  // namespace beepmis::mis

// Luby's original degree-based MIS (Luby '85, variant B): each round an
// active node *marks* itself with probability 1/(2·d(v)) (joining outright
// when isolated); a marked node unmarks if a marked neighbour has larger
// degree (ties broken by id); surviving marks join, neighbours deactivate.
// Expected O(log n) rounds; needs active-degree knowledge and numeric
// degree messages — the contrast with the beeping algorithm is even
// sharper than for the random-priority variant, since here the messages
// carry structural information.
//
// Three exchanges per round: presence bit (to learn active degree), mark +
// degree broadcast, and the join announcement.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/local.hpp"

namespace beepmis::mis {

class LubyDegreeMis final : public sim::LocalProtocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "luby-degree"; }
  [[nodiscard]] unsigned exchanges_per_round() const override { return 3; }

  void reset(const graph::Graph& g, support::Xoshiro256StarStar& rng) override;
  void emit(sim::LocalContext& ctx) override;
  void react(sim::LocalContext& ctx) override;

 private:
  std::vector<std::uint32_t> active_degree_;
  std::vector<std::uint8_t> marked_;
  std::vector<std::uint8_t> winner_;
};

}  // namespace beepmis::mis

#include "mis/global_schedule.hpp"

#include <stdexcept>

#include "mis/global_schedule_batch.hpp"

namespace beepmis::mis {

GlobalScheduleMis::GlobalScheduleMis(std::unique_ptr<Schedule> schedule)
    : schedule_(std::move(schedule)) {
  if (!schedule_) throw std::invalid_argument("GlobalScheduleMis: null schedule");
}

std::unique_ptr<sim::BatchProtocol> GlobalScheduleMis::make_batch_protocol(
    sim::BatchRngMode /*mode*/) const {
  // No typeid guard needed: the class is final, so no subclass can inherit
  // this override with changed behaviour.  The kernel serves both rng
  // modes (under kStatisticalLanes the shared round probability becomes
  // one bulk Bernoulli plane per node).
  return std::make_unique<BatchGlobalScheduleMis>(schedule_);
}

void GlobalScheduleMis::on_reset(const graph::Graph& /*g*/,
                                 support::Xoshiro256StarStar& /*rng*/) {}

double GlobalScheduleMis::beep_probability(graph::NodeId /*v*/, std::size_t round) const {
  return schedule_->probability(round);
}

GlobalScheduleMis make_global_sweep_mis() {
  return GlobalScheduleMis(std::make_unique<SweepSchedule>());
}

GlobalScheduleMis make_global_increasing_mis(std::size_t max_degree, std::size_t n) {
  return GlobalScheduleMis(std::make_unique<IncreasingSchedule>(max_degree, n));
}

}  // namespace beepmis::mis

#include "mis/global_schedule_batch.hpp"

#include <bit>
#include <stdexcept>

#include "mis/batch_skeleton.hpp"

namespace beepmis::mis {

using sim::LaneMask;

BatchGlobalScheduleMis::BatchGlobalScheduleMis(std::shared_ptr<const Schedule> schedule)
    : schedule_(std::move(schedule)) {
  if (!schedule_) throw std::invalid_argument("BatchGlobalScheduleMis: null schedule");
}

void BatchGlobalScheduleMis::reset(const graph::Graph& g,
                                   std::span<support::Xoshiro256StarStar> /*rngs*/) {
  // The scalar on_reset draws nothing; the whole per-run state is winner_.
  winner_.assign(g.node_count(), 0);
}

void BatchGlobalScheduleMis::emit(sim::BatchContext& ctx) {
  if (ctx.exchange() == 0) {
    // Intent exchange: every live (node, lane) beeps with the round's
    // scheduled probability.  The probability is shared by all lanes, so
    // statistical mode turns the whole node into one bulk Bernoulli(p)
    // plane; scalar order draws one output per pair in ascending node
    // order — each lane's subsequence is exactly its scalar draw order.
    const double p = schedule_->probability(ctx.round());
    const bool planes = ctx.rng_mode() == sim::BatchRngMode::kStatisticalLanes;
    for (const graph::NodeId v : ctx.active_nodes()) {
      const LaneMask live = ctx.live_mask(v);
      if (!live) continue;
      winner_[v] = 0;
      LaneMask beeps = 0;
      if (planes) {
        beeps = ctx.bernoulli_plane(p, live);
      } else {
        for (LaneMask b = live; b != 0; b &= b - 1) {
          const unsigned l = static_cast<unsigned>(std::countr_zero(b));
          if (ctx.rng(l).bernoulli(p)) beeps |= LaneMask{1} << l;
        }
      }
      if (beeps) ctx.beep(v, beeps);
    }
  } else {
    batch_skeleton::announce_winners(ctx, winner_);
  }
}

void BatchGlobalScheduleMis::react(sim::BatchContext& ctx) {
  if (ctx.exchange() == 0) {
    // A beeper that heard nothing won the intent exchange (Table 1); global
    // schedules have no probability feedback.
    for (const graph::NodeId v : ctx.active_nodes()) {
      if (!ctx.live_mask(v)) continue;
      winner_[v] = ctx.beeped_mask(v) & ~ctx.heard_mask(v);
    }
  } else {
    batch_skeleton::apply_round_outcome(ctx, winner_);
  }
}

}  // namespace beepmis::mis

// Shared announcement-exchange logic of the batched MIS kernels — the
// lane-parallel mirror of BeepingMisSkeleton's second exchange (Table 1
// lines 11-15).  Every batched kernel of the two-exchange family carries a
// per-node LaneMask winner plane; the announce emit and the join/dominate
// react over it are protocol-independent and must stay identical across
// kernels (a divergence breaks lane parity for just that protocol), so
// they live here once.
#pragma once

#include <vector>

#include "sim/batch.hpp"

namespace beepmis::mis::batch_skeleton {

/// Announcement-exchange emit: first-exchange winners that are still live
/// keep signalling.
inline void announce_winners(sim::BatchContext& ctx,
                             const std::vector<sim::LaneMask>& winner) {
  for (const graph::NodeId v : ctx.active_nodes()) {
    const sim::LaneMask m = winner[v] & ctx.live_mask(v);
    if (m) ctx.beep(v, m);
  }
}

/// Announcement-exchange react: winners join the MIS; anyone else (still
/// live) who heard the announcement becomes dominated.
inline void apply_round_outcome(sim::BatchContext& ctx,
                                const std::vector<sim::LaneMask>& winner) {
  for (const graph::NodeId v : ctx.active_nodes()) {
    const sim::LaneMask live = ctx.live_mask(v);
    if (!live) continue;
    const sim::LaneMask joins = winner[v] & live;
    const sim::LaneMask dominated = ctx.heard_mask(v) & live & ~joins;
    if (joins) ctx.join_mis(v, joins);
    if (dominated) ctx.deactivate(v, dominated);
  }
}

}  // namespace beepmis::mis::batch_skeleton

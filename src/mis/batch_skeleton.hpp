// Shared announcement-exchange logic of the batched MIS kernels — the
// lane-parallel mirror of BeepingMisSkeleton's second exchange (Table 1
// lines 11-15).  Every batched kernel of the two-exchange family carries a
// per-node LaneMask winner plane; the announce emit and the join/dominate
// react over it are protocol-independent and must stay identical across
// kernels (a divergence breaks lane parity for just that protocol), so
// they live here once.
#pragma once

#include <bit>
#include <vector>

#include "sim/batch.hpp"

namespace beepmis::mis::batch_skeleton {

/// Announcement-exchange emit: first-exchange winners that are still live
/// keep signalling.
inline void announce_winners(sim::BatchContext& ctx,
                             const std::vector<sim::LaneMask>& winner) {
  for (const graph::NodeId v : ctx.active_nodes()) {
    const sim::LaneMask m = winner[v] & ctx.live_mask(v);
    if (m) ctx.beep(v, m);
  }
}

/// Announcement-exchange react: winners join the MIS; anyone else (still
/// live) who heard the announcement becomes dominated.
inline void apply_round_outcome(sim::BatchContext& ctx,
                                const std::vector<sim::LaneMask>& winner) {
  for (const graph::NodeId v : ctx.active_nodes()) {
    const sim::LaneMask live = ctx.live_mask(v);
    if (!live) continue;
    const sim::LaneMask joins = winner[v] & live;
    const sim::LaneMask dominated = ctx.heard_mask(v) & live & ~joins;
    if (joins) ctx.join_mis(v, joins);
    if (dominated) ctx.deactivate(v, dominated);
  }
}

/// Bitplane-encoded per-lane dyadic exponents for the
/// BatchRngMode::kStatisticalLanes kernels: bit l of plane j of node v is
/// bit j of lane l's exponent k.  Everything a dyadic kernel does with the
/// exponents becomes whole-plane (all 64 lanes at once) instead of a
/// per-lane loop:
///
///  * draw — Bernoulli(2^-k_l) for every live lane of one node, by chunk
///    composition: for each set bit j of k, AND in an independent
///    Bernoulli(2^-2^j) plane (itself an AND of 2^j shared uniform planes
///    with early exit, so ~log2(lanes) bulk draws).  The product over set
///    bits is exactly 2^-k per lane; lanes of one node share entropy,
///    which statistical mode explicitly permits (marginals only).
///  * update — the feedback rule's +-1 becomes a ripple carry/borrow over
///    the planes (~2 expected plane ops); callers gate inc/dec with
///    equal() masks so saturation stays their policy.
///
/// Unlike the scalar-order kernels there is no exact-zero /
/// double-underflow state: draw() fires a k = 1075 lane with true
/// probability 2^-1075 instead of never (and the exact kernel's draw clamp
/// at 2^-1074 becomes the true 2^-k) — a difference no observable run can
/// distinguish, traded for plane-parallel state.
class ExponentPlanes {
 public:
  /// All (node, lane) exponents start at `initial`; values are `width`
  /// bits wide (callers must keep every reachable value below 2^width).
  void reset(graph::NodeId n, unsigned width, unsigned initial) {
    width_ = width;
    planes_.resize(static_cast<std::size_t>(n) * width);
    for (graph::NodeId v = 0; v < n; ++v) set_all(v, initial);
  }

  /// Tightest plane count that can hold `max_value` (clamped to the bound
  /// width).  Dyadic feedback moves exponents by at most one per round, so
  /// kernels pass max_value = initial + round + 1 and every sweep below
  /// skips the provably zero high planes.
  [[nodiscard]] unsigned width_for(unsigned max_value) const noexcept {
    return std::min(width_, static_cast<unsigned>(std::bit_width(max_value)));
  }

  /// Bernoulli(2^-k_l) bits for every lane l in `live` of node v.  `width`
  /// must come from width_for() with a valid bound.
  [[nodiscard]] sim::LaneMask draw(sim::BatchContext& ctx, graph::NodeId v,
                                   sim::LaneMask live, unsigned width) {
    const sim::LaneMask* row = &planes_[static_cast<std::size_t>(v) * width_];
    sim::LaneMask fire = live;
    for (unsigned j = 0; j < width && fire != 0; ++j) {
      const sim::LaneMask need = fire & row[j];
      if (need) {
        fire = (fire & ~row[j]) | ctx.bernoulli_plane_pow2(1u << j, need);
      }
    }
    return fire;
  }

  /// Lanes of v whose exponent equals `value`, under a width_for() bound.
  /// A value above the bound (e.g. the sticky-zero probe early in a run)
  /// costs one compare; otherwise planes walk MSB first and stop once
  /// every lane differs.
  [[nodiscard]] sim::LaneMask equal(graph::NodeId v, unsigned value,
                                    unsigned width) const {
    if (width < width_ && (value >> width) != 0) return 0;
    const sim::LaneMask* row = &planes_[static_cast<std::size_t>(v) * width_];
    sim::LaneMask diff = 0;
    for (unsigned j = width; j-- > 0;) {
      diff |= row[j] ^ ((value >> j) & 1u ? ~sim::LaneMask{0} : sim::LaneMask{0});
      if (diff == ~sim::LaneMask{0}) return 0;
    }
    return ~diff;
  }

  /// k += 1 on `inc` lanes, then k -= 1 on `dec` lanes (disjoint sets).
  /// Callers must exclude lanes that would wrap (all-ones on inc, zero on
  /// dec) via equal() — that keeps saturation policy out of the helper.
  void update(graph::NodeId v, sim::LaneMask inc, sim::LaneMask dec) {
    sim::LaneMask* row = &planes_[static_cast<std::size_t>(v) * width_];
    sim::LaneMask carry = inc;
    for (unsigned j = 0; j < width_ && carry != 0; ++j) {
      const sim::LaneMask t = row[j];
      row[j] = t ^ carry;
      carry &= t;
    }
    sim::LaneMask borrow = dec;
    for (unsigned j = 0; j < width_ && borrow != 0; ++j) {
      const sim::LaneMask t = row[j];
      row[j] = t ^ borrow;
      borrow &= ~t;
    }
  }

  /// Set one lane's exponent (maintenance resets; rare, so per-bit cost is
  /// fine).
  void set_lane(graph::NodeId v, unsigned lane, unsigned value) {
    sim::LaneMask* row = &planes_[static_cast<std::size_t>(v) * width_];
    const sim::LaneMask bit = sim::LaneMask{1} << lane;
    for (unsigned j = 0; j < width_; ++j) {
      if ((value >> j) & 1u) {
        row[j] |= bit;
      } else {
        row[j] &= ~bit;
      }
    }
  }

  /// Set every lane of v to `value` (reset).
  void set_all(graph::NodeId v, unsigned value) {
    sim::LaneMask* row = &planes_[static_cast<std::size_t>(v) * width_];
    for (unsigned j = 0; j < width_; ++j) {
      row[j] = (value >> j) & 1u ? ~sim::LaneMask{0} : sim::LaneMask{0};
    }
  }

 private:
  unsigned width_ = 0;
  std::vector<sim::LaneMask> planes_;  ///< node-major: [v * width_ + j]
};

}  // namespace beepmis::mis::batch_skeleton

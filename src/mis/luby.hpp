// Luby's randomized MIS algorithm (Luby '85 / Alon-Babai-Itai '86), the
// classic O(log n) baseline the paper compares against.  Runs in the
// LOCAL-model substrate: it genuinely needs to exchange numeric values with
// neighbours, which the beeping model cannot do — that contrast is the
// point of the paper.
//
// Random-priority variant: each round every active node draws a random
// 64-bit priority and broadcasts it; a node whose priority is a strict
// local minimum (ties broken by node id) joins the MIS and announces the
// fact; neighbours of joiners become dominated.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/local.hpp"

namespace beepmis::mis {

class LubyMis final : public sim::LocalProtocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "luby"; }
  [[nodiscard]] unsigned exchanges_per_round() const override { return 2; }

  void reset(const graph::Graph& g, support::Xoshiro256StarStar& rng) override;
  void emit(sim::LocalContext& ctx) override;
  void react(sim::LocalContext& ctx) override;

 private:
  std::vector<std::uint8_t> candidate_;
};

}  // namespace beepmis::mis

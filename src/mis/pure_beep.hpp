// Local-feedback MIS in the *pure* beeping model (no sender-side collision
// detection).
//
// Table 1 of the paper lets a signalling node notice that a neighbour is
// signalling in the same time step — natural for continuous Notch-Delta
// signalling, but beyond the weakest radio model, where a node cannot
// listen while it beeps.  This protocol ports the algorithm to that model
// with the standard randomised-slot emulation: every paper time step
// expands into `subslots` beep slots plus one announcement slot.  A
// signalling node beeps in each slot independently with probability 1/2
// and listens in the others; it detects a signalling neighbour iff some
// slot has the neighbour beeping while it listens.  Two adjacent
// signallers miss each other only when their slot patterns are identical
// — probability 2^-subslots per pair per step — so the protocol is correct
// w.h.p. but (unlike the sender-CD version) not with certainty.  The
// residual violation rate and the ~subslots/2-fold beep cost are measured
// in bench_pure_beep; the emulation converges to the Table 1 behaviour as
// `subslots` grows.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/beep.hpp"

namespace beepmis::mis {

class PureBeepLocalFeedbackMis final : public sim::BeepProtocol {
 public:
  explicit PureBeepLocalFeedbackMis(unsigned subslots = 8, double factor = 2.0,
                                    double max_p = 0.5);

  [[nodiscard]] std::string_view name() const override { return "local-feedback-pure-beep"; }
  /// `subslots` randomised beep slots + 1 announcement slot.
  [[nodiscard]] unsigned exchanges_per_round() const override { return subslots_ + 1; }

  void reset(const graph::Graph& g, support::Xoshiro256StarStar& rng) override;
  void emit(sim::BeepContext& ctx) override;
  void react(sim::BeepContext& ctx) override;

  [[nodiscard]] unsigned subslots() const noexcept { return subslots_; }
  [[nodiscard]] double probability_of(graph::NodeId v) const { return p_.at(v); }

 private:
  unsigned subslots_;
  double factor_;
  double max_p_;
  std::vector<double> p_;
  std::vector<std::uint8_t> signalling_;  ///< chose to signal this time step
  std::vector<std::uint8_t> detected_;    ///< heard a neighbour while listening
};

}  // namespace beepmis::mis

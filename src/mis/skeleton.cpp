#include "mis/skeleton.hpp"

namespace beepmis::mis {

void BeepingMisSkeleton::reset(const graph::Graph& g, support::Xoshiro256StarStar& rng) {
  winner_.assign(g.node_count(), 0);
  on_reset(g, rng);
}

void BeepingMisSkeleton::on_feedback(graph::NodeId /*v*/, bool /*heard_beep*/,
                                     std::size_t /*round*/) {}

void BeepingMisSkeleton::on_round_complete(sim::BeepContext& /*ctx*/) {}

void BeepingMisSkeleton::emit(sim::BeepContext& ctx) {
  if (ctx.exchange() == 0) {
    // Intent exchange: beep with the policy's probability.
    for (const graph::NodeId v : ctx.active_nodes()) {
      winner_[v] = 0;
      if (ctx.rng().bernoulli(beep_probability(v, ctx.round()))) ctx.beep(v);
    }
  } else {
    // Announcement exchange: only first-exchange winners keep signalling.
    for (const graph::NodeId v : ctx.active_nodes()) {
      if (winner_[v] && ctx.is_active(v)) ctx.beep(v);
    }
  }
}

void BeepingMisSkeleton::react(sim::BeepContext& ctx) {
  if (ctx.exchange() == 0) {
    for (const graph::NodeId v : ctx.active_nodes()) {
      const bool heard = ctx.heard(v);
      // A beeper that heard nothing won the intent exchange and will join
      // next exchange; anyone who heard a beep stops signalling (Table 1,
      // lines 5-6).
      winner_[v] = static_cast<std::uint8_t>(ctx.beeped(v) && !heard);
      on_feedback(v, heard, ctx.round());
    }
  } else {
    for (const graph::NodeId v : ctx.active_nodes()) {
      if (!ctx.is_active(v)) continue;
      if (winner_[v]) {
        ctx.join_mis(v);  // Table 1, lines 11-13
      } else if (ctx.heard(v)) {
        ctx.deactivate(v);  // Table 1, lines 14-15
      }
    }
    on_round_complete(ctx);
  }
}

}  // namespace beepmis::mis

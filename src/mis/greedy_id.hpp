// Deterministic ID-greedy MIS: a node joins when its id is a local minimum
// among still-active neighbours.  This is the distributed version of the
// paper's "trivial centralised scan" and the classic example of why
// randomisation matters: worst-case Θ(n) rounds (an increasing-id path
// serialises completely), against O(log n) for Luby / local feedback.
// Used as a pedagogical baseline in the comparison benches.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/local.hpp"

namespace beepmis::mis {

class GreedyIdMis final : public sim::LocalProtocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "greedy-id"; }
  [[nodiscard]] unsigned exchanges_per_round() const override { return 2; }

  void reset(const graph::Graph& g, support::Xoshiro256StarStar& rng) override;
  void emit(sim::LocalContext& ctx) override;
  void react(sim::LocalContext& ctx) override;

 private:
  std::vector<std::uint8_t> candidate_;
};

}  // namespace beepmis::mis

// The paper's primary contribution: beeping MIS with *locally chosen*
// probabilities driven by neighbour feedback (Definition 1 / Table 1).
//
// Every node starts with beep probability 1/2.  After the intent exchange:
//   * heard a beep  -> divide p by the node's feedback factor (default 2);
//   * heard nothing -> multiply p by the factor, capped at max_p = 1/2.
// Expected termination is O(log n) rounds (Theorem 2 / Corollary 5) and
// each node beeps O(1) times in expectation (Theorem 6).
//
// The configuration exposes the robustness knobs discussed in the paper's
// conclusion: feedback factors may differ per node (drawn uniformly from
// [factor_low, factor_high]) and initial probabilities may differ per node
// (drawn uniformly from [initial_p_low, initial_p_high]).
#pragma once

#include <vector>

#include "mis/skeleton.hpp"

namespace beepmis::mis {

struct LocalFeedbackConfig {
  double initial_p_low = 0.5;
  double initial_p_high = 0.5;
  double factor_low = 2.0;
  double factor_high = 2.0;
  double max_p = 0.5;

  /// Exact parameters of Definition 1 (all nodes: p0 = 1/2, factor 2).
  [[nodiscard]] static LocalFeedbackConfig paper() { return {}; }
  /// Throws std::invalid_argument when parameters are out of range.
  void validate() const;
};

class LocalFeedbackMis : public BeepingMisSkeleton {
 public:
  explicit LocalFeedbackMis(LocalFeedbackConfig config = LocalFeedbackConfig::paper());

  [[nodiscard]] std::string_view name() const override { return "local-feedback"; }

  /// Batched 64-lane kernel (BatchLocalFeedbackMis; supports both rng
  /// modes — the dyadic fast path vectorises its intent draws into bulk
  /// planes under kStatisticalLanes).  Returns nullptr from subclasses: a
  /// derived protocol (e.g. self-healing) changes behaviour the batched
  /// kernel does not model, and silently batching it would break the
  /// lane-for-lane identity contract.
  [[nodiscard]] std::unique_ptr<sim::BatchProtocol> make_batch_protocol(
      sim::BatchRngMode mode) const override;
  // The override hides the base's zero-arg convenience overload; re-expose.
  using sim::BeepProtocol::make_batch_protocol;

  /// Sharded single-run execution (sim::ShardedSimulator): the skeleton's
  /// one-draw-per-active-node contract holds and all hook state (p_,
  /// factor_, winner_) is per-node.  Refuses subclasses for the same
  /// reason make_batch_protocol does.
  [[nodiscard]] sim::ShardSupport shard_support() const override;

  /// Current beep probability of node v (for tests and introspection).
  [[nodiscard]] double probability_of(graph::NodeId v) const { return p_.at(v); }
  /// The feedback factor assigned to node v at reset.
  [[nodiscard]] double factor_of(graph::NodeId v) const { return factor_.at(v); }
  [[nodiscard]] const LocalFeedbackConfig& config() const noexcept { return config_; }

 protected:
  void on_reset(const graph::Graph& g, support::Xoshiro256StarStar& rng) override;
  [[nodiscard]] double beep_probability(graph::NodeId v, std::size_t round) const override;
  void on_feedback(graph::NodeId v, bool heard_beep, std::size_t round) override;

  /// For maintenance subclasses: reset node v's probability (clamped to
  /// max_p) when it re-enters the competition.
  void set_probability(graph::NodeId v, double p);

 private:
  LocalFeedbackConfig config_;
  std::vector<double> p_;
  std::vector<double> factor_;
};

}  // namespace beepmis::mis

#include "mis/mis.hpp"

namespace beepmis::mis {

sim::RunResult run_local_feedback(const graph::Graph& g, std::uint64_t seed,
                                  const LocalFeedbackConfig& config,
                                  const sim::SimConfig& sim_config) {
  LocalFeedbackMis protocol(config);
  sim::BeepSimulator simulator(g, sim_config);
  return simulator.run(protocol, support::Xoshiro256StarStar(seed));
}

sim::RunResult run_global_sweep(const graph::Graph& g, std::uint64_t seed,
                                const sim::SimConfig& sim_config) {
  GlobalScheduleMis protocol = make_global_sweep_mis();
  sim::BeepSimulator simulator(g, sim_config);
  return simulator.run(protocol, support::Xoshiro256StarStar(seed));
}

sim::RunResult run_global_increasing(const graph::Graph& g, std::uint64_t seed,
                                     const sim::SimConfig& sim_config) {
  GlobalScheduleMis protocol = make_global_increasing_mis(g.max_degree(), g.node_count());
  sim::BeepSimulator simulator(g, sim_config);
  return simulator.run(protocol, support::Xoshiro256StarStar(seed));
}

sim::RunResult run_fixed_schedule(const graph::Graph& g, std::uint64_t seed,
                                  std::vector<double> schedule,
                                  const sim::SimConfig& sim_config) {
  GlobalScheduleMis protocol(std::make_unique<FixedSchedule>(std::move(schedule)));
  sim::BeepSimulator simulator(g, sim_config);
  return simulator.run(protocol, support::Xoshiro256StarStar(seed));
}

sim::RunResult run_luby(const graph::Graph& g, std::uint64_t seed,
                        const sim::LocalSimConfig& sim_config) {
  LubyMis protocol;
  sim::LocalSimulator simulator(g, sim_config);
  return simulator.run(protocol, support::Xoshiro256StarStar(seed));
}

sim::RunResult run_luby_degree(const graph::Graph& g, std::uint64_t seed,
                               const sim::LocalSimConfig& sim_config) {
  LubyDegreeMis protocol;
  sim::LocalSimulator simulator(g, sim_config);
  return simulator.run(protocol, support::Xoshiro256StarStar(seed));
}

sim::RunResult run_metivier(const graph::Graph& g, std::uint64_t seed,
                            unsigned bits_per_phase,
                            const sim::LocalSimConfig& sim_config) {
  MetivierMis protocol(bits_per_phase);
  sim::LocalSimulator simulator(g, sim_config);
  return simulator.run(protocol, support::Xoshiro256StarStar(seed));
}

sim::RunResult run_greedy_id(const graph::Graph& g, const sim::LocalSimConfig& sim_config) {
  GreedyIdMis protocol;
  sim::LocalSimulator simulator(g, sim_config);
  // Deterministic protocol; the seed only feeds the (unused) run RNG.
  return simulator.run(protocol, support::Xoshiro256StarStar(0));
}

}  // namespace beepmis::mis

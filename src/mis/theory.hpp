// Closed-form quantities from the paper's analysis, used by the property
// tests and the Theorem 1 bench to check measurements against theory.
#pragma once

#include <cstddef>
#include <span>

namespace beepmis::mis {

/// Probability that exactly one vertex of K_d beeps when every vertex beeps
/// independently with probability p:  d * p * (1-p)^{d-1}   (paper eq. (1)).
[[nodiscard]] double single_beeper_probability(std::size_t d, double p) noexcept;

/// Upper bound d*p*exp(-(d-1)p) on the above (paper eq. (1) RHS).
[[nodiscard]] double single_beeper_upper_bound(std::size_t d, double p) noexcept;

/// Theorem 1's potential  sum_i 6 * d * p_i * exp(-d * p_i)  for a clique
/// size d and schedule prefix `probs`.  The proof shows that while this is
/// below (log n)/4 the copies of K_d all survive w.h.p.
[[nodiscard]] double theorem1_potential(std::size_t d, std::span<const double> probs) noexcept;

/// Smallest clique size d in [3, d_max] minimising the potential — the
/// "hard" clique size for a given schedule prefix.
[[nodiscard]] std::size_t hardest_clique_size(std::span<const double> probs,
                                              std::size_t d_max) noexcept;

/// log2(n) and the paper's two reference curves for Figure 3.
[[nodiscard]] double log2_n(std::size_t n) noexcept;
/// Upper dashed line of Figure 3: (log2 n)^2.
[[nodiscard]] double figure3_global_reference(std::size_t n) noexcept;
/// Lower dotted line of Figure 3: 2.5 * log2 n.
[[nodiscard]] double figure3_local_reference(std::size_t n) noexcept;

/// Theorem 6's bound on the expected beeps per node for local feedback:
/// 1 + 1 + 2*3 = 8 (the analysis' constant; measured values are ~1.1).
[[nodiscard]] constexpr double theorem6_beep_bound() noexcept { return 8.0; }

}  // namespace beepmis::mis

// Batched (64-lane) kernel for the globally scheduled MIS protocols.
//
// The easiest lane of the batched-protocol family: the schedule fixes one
// beep probability per round for every node, so there is no per-node policy
// state at all — only the skeleton's winner flags, which become LaneMask
// bitplanes.  Lane l replays the exact scalar computation of
// BeepingMisSkeleton + GlobalScheduleMis: one Bernoulli draw per live
// (node, lane) in ascending node order during the intent exchange, winners
// announce in the second exchange.  Bit-identical to the scalar run per
// lane — pinned by tests/test_batch_sim.cpp.
#pragma once

#include <memory>
#include <vector>

#include "mis/schedule.hpp"
#include "sim/batch.hpp"

namespace beepmis::mis {

class BatchGlobalScheduleMis final : public sim::BatchProtocol {
 public:
  /// Shares the scalar protocol's schedule (schedules are immutable and
  /// stateless per probability() call, so one instance can serve the scalar
  /// protocol and any number of batched kernels concurrently).
  explicit BatchGlobalScheduleMis(std::shared_ptr<const Schedule> schedule);

  [[nodiscard]] std::string_view name() const override { return "global-schedule/batch"; }
  [[nodiscard]] unsigned exchanges_per_round() const override { return 2; }

  void reset(const graph::Graph& g,
             std::span<support::Xoshiro256StarStar> rngs) override;
  void emit(sim::BatchContext& ctx) override;
  void react(sim::BatchContext& ctx) override;

 private:
  std::shared_ptr<const Schedule> schedule_;
  std::vector<sim::LaneMask> winner_;
};

}  // namespace beepmis::mis

#include "mis/exact_feedback_batch.hpp"

#include <algorithm>
#include <bit>

#include "mis/batch_skeleton.hpp"

namespace beepmis::mis {

using sim::LaneMask;

namespace {
/// Statistical-lanes exponent bitplane width; the exponent saturates at
/// 2^12 - 1 (see the header note on why that is unobservable).
constexpr unsigned kExpWidth = 12;
constexpr unsigned kExpMax = (1u << kExpWidth) - 1;
}  // namespace

void BatchExactLocalFeedbackMis::reset(const graph::Graph& g,
                                       std::span<support::Xoshiro256StarStar> rngs) {
  // n(0, v) = 1 everywhere; the scalar on_reset draws nothing.
  const graph::NodeId n = g.node_count();
  lanes_ = static_cast<unsigned>(rngs.size());
  winner_.assign(n, 0);
  if (mode_ == sim::BatchRngMode::kStatisticalLanes) {
    eplanes_.reset(n, kExpWidth, 1);
    exponent_.clear();
  } else {
    exponent_.assign(static_cast<std::size_t>(n) * lanes_, 1);
  }
}

void BatchExactLocalFeedbackMis::emit(sim::BatchContext& ctx) {
  if (ctx.exchange() == 0) {
    // Intent exchange: beep with 2^{-min(n, 1074)}.  The clamp mirrors the
    // scalar beep_probability (2^-1074, the smallest subnormal, is the
    // floor — unlike the floating local-feedback kernel there is no
    // exact-zero state).  Scalar order: one rng() output per live
    // (node, lane) in ascending node order, single-sourced in
    // bernoulli_pow2.  Statistical lanes: chunk planes selected by the
    // exponent bitplanes, no per-lane loop.
    if (mode_ == sim::BatchRngMode::kStatisticalLanes) {
      // Bulk planes over the exponent bitplanes; the draw is the true
      // 2^-k (k <= 4095) rather than the clamped 2^-min(k, 1074) — both
      // are never-in-any-run events, so the marginals are indistinguishable.
      // Exponents start at 1 and move at most one step per round, so the
      // sweep skips the provably zero high planes.
      const unsigned width = eplanes_.width_for(
          1u + static_cast<unsigned>(std::min<std::size_t>(ctx.round(), kExpMax)));
      for (const graph::NodeId v : ctx.active_nodes()) {
        const LaneMask live = ctx.live_mask(v);
        if (!live) continue;
        winner_[v] = 0;
        const LaneMask beeps = eplanes_.draw(ctx, v, live, width);
        if (beeps) ctx.beep(v, beeps);
      }
    } else {
      for (const graph::NodeId v : ctx.active_nodes()) {
        const LaneMask live = ctx.live_mask(v);
        if (!live) continue;
        winner_[v] = 0;
        const std::uint32_t* ev = &exponent_[static_cast<std::size_t>(v) * lanes_];
        LaneMask beeps = 0;
        for (LaneMask b = live; b != 0; b &= b - 1) {
          const unsigned l = static_cast<unsigned>(std::countr_zero(b));
          const unsigned k = std::min<std::uint32_t>(ev[l], 1074);
          beeps |= static_cast<LaneMask>(ctx.rng(l).bernoulli_pow2(k)) << l;
        }
        if (beeps) ctx.beep(v, beeps);
      }
    }
  } else {
    batch_skeleton::announce_winners(ctx, winner_);
  }
}

void BatchExactLocalFeedbackMis::react(sim::BatchContext& ctx) {
  if (ctx.exchange() == 0) {
    // Definition 1 feedback in exponent form: heard -> n + 1 (halve p),
    // silence -> max(n - 1, 1) (double p, capped at 1/2).
    if (mode_ == sim::BatchRngMode::kStatisticalLanes) {
      // Whole-plane feedback: one ripple carry/borrow for all 64 lanes,
      // floored at 1 and saturating at the bitplane cap.
      const unsigned width = eplanes_.width_for(
          1u + static_cast<unsigned>(std::min<std::size_t>(ctx.round() + 1, kExpMax)));
      for (const graph::NodeId v : ctx.active_nodes()) {
        const LaneMask live = ctx.live_mask(v);
        if (!live) continue;
        const LaneMask heard = ctx.heard_mask(v);
        winner_[v] = ctx.beeped_mask(v) & ~heard;
        const LaneMask inc = live & heard & ~eplanes_.equal(v, kExpMax, width);
        const LaneMask dec = live & ~heard & ~eplanes_.equal(v, 1, width);
        if ((inc | dec) != 0) eplanes_.update(v, inc, dec);
      }
      return;
    }
    for (const graph::NodeId v : ctx.active_nodes()) {
      const LaneMask live = ctx.live_mask(v);
      if (!live) continue;
      const LaneMask heard = ctx.heard_mask(v);
      winner_[v] = ctx.beeped_mask(v) & ~heard;
      std::uint32_t* ev = &exponent_[static_cast<std::size_t>(v) * lanes_];
      for (LaneMask b = live; b != 0; b &= b - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(b));
        // Branchless like the dyadic local-feedback kernel: heard is a coin
        // flip per lane, so arithmetic on the bit beats a mispredicting
        // branch.
        const std::uint32_t h = static_cast<std::uint32_t>((heard >> l) & 1u);
        ev[l] += h + h - 1u + static_cast<std::uint32_t>(ev[l] == 1u && h == 0u);
      }
    }
  } else {
    batch_skeleton::apply_round_outcome(ctx, winner_);
  }
}

}  // namespace beepmis::mis

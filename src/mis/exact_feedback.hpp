// Definition 1 implemented *verbatim*: each node carries the integer
// exponent n(v, t) of the paper and beeps with probability 2^{-n(v,t)},
// with n(0, v) = 1, n -> max(n-1, 1) after a silent step and n -> n+1
// after hearing a beep.
//
// With the default LocalFeedbackConfig (factor 2, p0 = 1/2, max 1/2) the
// floating-point LocalFeedbackMis computes exactly the same dyadic
// probabilities, so the two implementations must produce *identical*
// executions from the same seed — a strong cross-validation exploited by
// tests/test_exact_feedback.cpp.  This variant also cannot underflow, so
// it is the reference for adversarial long-running instances.
#pragma once

#include <cstdint>
#include <vector>

#include "mis/skeleton.hpp"

namespace beepmis::mis {

class ExactLocalFeedbackMis final : public BeepingMisSkeleton {
 public:
  [[nodiscard]] std::string_view name() const override { return "local-feedback-exact"; }

  /// Batched 64-lane kernel (BatchExactLocalFeedbackMis).  Never nullptr:
  /// the class is final and carries no configuration.
  [[nodiscard]] std::unique_ptr<sim::BatchProtocol> make_batch_protocol(
      sim::BatchRngMode mode) const override;
  // The override hides the base's zero-arg convenience overload; re-expose.
  using sim::BeepProtocol::make_batch_protocol;

  /// Sharded single-run execution: exponent_ is per-node and the hooks
  /// are draw-free.  No typeid guard needed — the class is final.
  [[nodiscard]] sim::ShardSupport shard_support() const override {
    return skeleton_shard_support();
  }

  /// The paper's n(v, t) for node v (valid after reset).
  [[nodiscard]] std::uint32_t exponent_of(graph::NodeId v) const { return exponent_.at(v); }

 protected:
  void on_reset(const graph::Graph& g, support::Xoshiro256StarStar& rng) override;
  [[nodiscard]] double beep_probability(graph::NodeId v, std::size_t round) const override;
  void on_feedback(graph::NodeId v, bool heard_beep, std::size_t round) override;

 private:
  std::vector<std::uint32_t> exponent_;
};

}  // namespace beepmis::mis

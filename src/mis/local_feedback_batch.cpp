#include "mis/local_feedback_batch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "mis/batch_skeleton.hpp"

namespace beepmis::mis {

namespace {

using sim::LaneMask;

[[nodiscard]] inline unsigned lowest_lane(LaneMask b) noexcept {
  return static_cast<unsigned>(std::countr_zero(b));
}

/// p == 2^-k for an integer k >= 0?  (frexp: p = f * 2^e with f in
/// [0.5, 1); a power of two has f == 0.5 exactly, and then p = 2^(e-1),
/// i.e. k = 1 - e.)
[[nodiscard]] bool negative_pow2_exponent(double p, unsigned* k) {
  int e = 0;
  if (!(p > 0.0) || std::frexp(p, &e) != 0.5 || e > 1) return false;
  *k = static_cast<unsigned>(1 - e);
  return true;
}

/// Exponent at which the halving sequence 2^-k reaches exact 0.0:
/// 2^-1074 is the smallest subnormal, and 2^-1075 rounds to even (0).
constexpr std::uint16_t kZeroExponent = 1075;

/// Bitplane width of the statistical-lanes exponent representation; every
/// reachable exponent (<= kZeroExponent) fits in 11 bits.
constexpr unsigned kExpWidth = 11;

}  // namespace

BatchLocalFeedbackMis::BatchLocalFeedbackMis(LocalFeedbackConfig config,
                                             sim::BatchRngMode mode)
    : config_(config), mode_(mode) {
  config_.validate();
}

void BatchLocalFeedbackMis::reset(const graph::Graph& g,
                                  std::span<support::Xoshiro256StarStar> rngs) {
  const graph::NodeId n = g.node_count();
  lanes_ = static_cast<unsigned>(rngs.size());
  winner_.assign(n, 0);
  const bool hetero_p = config_.initial_p_high > config_.initial_p_low;
  const bool hetero_factor = config_.factor_high > config_.factor_low;

  unsigned k0 = 0;
  unsigned k_cap = 0;
  dyadic_ = !hetero_p && !hetero_factor && config_.factor_low == 2.0 &&
            negative_pow2_exponent(config_.initial_p_low, &k0) &&
            negative_pow2_exponent(config_.max_p, &k_cap);
  if (dyadic_) {
    // Scalar reset clamps p0 to max_p, i.e. k = max(k0, k_cap); no draws.
    k_min_ = static_cast<std::uint16_t>(k_cap);
    k_reset_ = static_cast<std::uint16_t>(std::max(k0, k_cap));
    if (mode_ == sim::BatchRngMode::kStatisticalLanes) {
      // Bitplane representation: every reachable exponent is in
      // [k_min_, kZeroExponent], so 11 planes (2^11 = 2048) cover it.
      eplanes_.reset(n, kExpWidth, k_reset_);
      k_.clear();
    } else {
      k_.assign(static_cast<std::size_t>(n) * lanes_, k_reset_);
    }
    p_.clear();
    factor_.clear();
    return;
  }

  const std::size_t cells = static_cast<std::size_t>(n) * lanes_;
  k_.clear();
  p_.assign(cells, config_.initial_p_low);
  factor_.clear();
  if (hetero_factor) factor_.assign(cells, config_.factor_low);
  // Scalar reset order per lane: ascending v, p draw before factor draw.
  // Lanes use disjoint RNG streams, so the lane-outer loop is equivalent.
  for (unsigned l = 0; l < lanes_; ++l) {
    support::Xoshiro256StarStar& rng = rngs[l];
    for (graph::NodeId v = 0; v < n; ++v) {
      double& p = p_[static_cast<std::size_t>(v) * lanes_ + l];
      if (hetero_p) {
        p = config_.initial_p_low +
            rng.uniform01() * (config_.initial_p_high - config_.initial_p_low);
      }
      if (hetero_factor) {
        factor_[static_cast<std::size_t>(v) * lanes_ + l] =
            config_.factor_low +
            rng.uniform01() * (config_.factor_high - config_.factor_low);
      }
      p = std::min(p, config_.max_p);
    }
  }
}

void BatchLocalFeedbackMis::reset_lane_probability(graph::NodeId v, unsigned lane) {
  if (dyadic_) {
    if (mode_ == sim::BatchRngMode::kStatisticalLanes) {
      eplanes_.set_lane(v, lane, k_reset_);
    } else {
      k_[static_cast<std::size_t>(v) * lanes_ + lane] = k_reset_;
    }
  } else {
    p_[static_cast<std::size_t>(v) * lanes_ + lane] =
        std::min(config_.initial_p_low, config_.max_p);
  }
}

void BatchLocalFeedbackMis::emit_intent_dyadic(sim::BatchContext& ctx) {
  for (const graph::NodeId v : ctx.active_nodes()) {
    const LaneMask live = ctx.live_mask(v);
    if (!live) continue;
    winner_[v] = 0;
    const std::uint16_t* kv = &k_[static_cast<std::size_t>(v) * lanes_];
    LaneMask beeps = 0;
    for (LaneMask b = live; b != 0; b &= b - 1) {
      const unsigned l = lowest_lane(b);
      // One rng() output per draw, exactly like the scalar bernoulli; the
      // endpoint behaviour (subnormal region, 2^-1075 underflow to
      // never-beep) is single-sourced in bernoulli_pow2.
      beeps |= static_cast<LaneMask>(ctx.rng(l).bernoulli_pow2(kv[l])) << l;
    }
    if (beeps) ctx.beep(v, beeps);
  }
}

void BatchLocalFeedbackMis::emit_intent_dyadic_planes(sim::BatchContext& ctx) {
  // Statistical lanes: one node's per-lane Bernoulli(2^-k) draws collapse
  // into a handful of shared chunk planes selected by the exponent
  // bitplanes — no per-lane loop and ~log2(lanes) bulk 64-bit draws where
  // the scalar-order path pays one serially dependent rng() call per live
  // lane.  (A lane at the exact-zero exponent fires with true probability
  // 2^-1075 here instead of never — unobservable, and closer to the ideal
  // protocol than the double underflow.)
  // Exponents move at most one step per round, so planes above
  // bit_width(k_reset + round) are provably zero and the sweep skips them.
  const unsigned width = eplanes_.width_for(
      static_cast<unsigned>(k_reset_) + static_cast<unsigned>(
          std::min<std::size_t>(ctx.round(), kZeroExponent)));
  for (const graph::NodeId v : ctx.active_nodes()) {
    const LaneMask live = ctx.live_mask(v);
    if (!live) continue;
    winner_[v] = 0;
    const LaneMask beeps = eplanes_.draw(ctx, v, live, width);
    if (beeps) ctx.beep(v, beeps);
  }
}

void BatchLocalFeedbackMis::emit_intent_general(sim::BatchContext& ctx) {
  for (const graph::NodeId v : ctx.active_nodes()) {
    const LaneMask live = ctx.live_mask(v);
    if (!live) continue;
    winner_[v] = 0;
    const double* pv = &p_[static_cast<std::size_t>(v) * lanes_];
    LaneMask beeps = 0;
    for (LaneMask b = live; b != 0; b &= b - 1) {
      const unsigned l = lowest_lane(b);
      if (ctx.rng(l).bernoulli(pv[l])) beeps |= LaneMask{1} << l;
    }
    if (beeps) ctx.beep(v, beeps);
  }
}

void BatchLocalFeedbackMis::emit(sim::BatchContext& ctx) {
  if (ctx.exchange() == 0) {
    // Intent exchange: each live (node, lane) beeps with its probability.
    // Scalar order draws from the lane's own RNG in ascending node order;
    // statistical mode vectorises the dyadic draws into bulk planes (the
    // general path keeps per-lane draws — heterogeneous probabilities
    // cannot share planes — but from jump()-partitioned streams).
    if (dyadic_ && mode_ == sim::BatchRngMode::kStatisticalLanes) {
      emit_intent_dyadic_planes(ctx);
    } else if (dyadic_) {
      emit_intent_dyadic(ctx);
    } else {
      emit_intent_general(ctx);
    }
  } else {
    batch_skeleton::announce_winners(ctx, winner_);
  }
}

void BatchLocalFeedbackMis::react_feedback(sim::BatchContext& ctx) {
  const bool hetero_factor = !factor_.empty();
  const double uniform_factor = config_.factor_low;
  for (const graph::NodeId v : ctx.active_nodes()) {
    const LaneMask live = ctx.live_mask(v);
    if (!live) continue;
    const LaneMask heard = ctx.heard_mask(v);
    // A beeper that heard nothing won the intent exchange (Table 1).
    winner_[v] = ctx.beeped_mask(v) & ~heard;
    const std::size_t base = static_cast<std::size_t>(v) * lanes_;
    if (dyadic_ && mode_ == sim::BatchRngMode::kStatisticalLanes) {
      // Whole-plane feedback: the +-1 exponent updates of all 64 lanes are
      // one ripple carry/borrow over the bitplanes, gated by the same
      // sticky-zero and k_min rules as the per-lane loop below.  Until
      // round ~1075 the sticky-zero probe is a single compare (no lane can
      // have reached it yet).
      const unsigned width = eplanes_.width_for(
          static_cast<unsigned>(k_reset_) + static_cast<unsigned>(
              std::min<std::size_t>(ctx.round() + 1, kZeroExponent)));
      const LaneMask movable = live & ~eplanes_.equal(v, kZeroExponent, width);
      const LaneMask inc = movable & heard;
      const LaneMask dec = movable & ~heard & ~eplanes_.equal(v, k_min_, width);
      if ((inc | dec) != 0) eplanes_.update(v, inc, dec);
      continue;
    }
    if (dyadic_) {
      // Exponent form of the feedback rule: /2 is k+1 (sticking at exact
      // zero), *2-capped-at-max_p is k-1 floored at k_min.
      std::uint16_t* kv = &k_[base];
      for (LaneMask b = live; b != 0; b &= b - 1) {
        const unsigned l = lowest_lane(b);
        std::uint16_t& k = kv[l];
        // Branchless: heard is a coin flip per lane, so arithmetic on the
        // bit beats a mispredicting branch.  Exponent 1075 (exact zero) is
        // sticky in both directions; silence floors at k_min (max_p).
        const std::uint16_t h = static_cast<std::uint16_t>((heard >> l) & 1u);
        const std::uint16_t movable = static_cast<std::uint16_t>(k < kZeroExponent);
        const std::uint16_t inc = static_cast<std::uint16_t>(h & movable);
        const std::uint16_t dec =
            static_cast<std::uint16_t>((h ^ 1u) & movable & (k > k_min_));
        k = static_cast<std::uint16_t>(k + inc - dec);
      }
      continue;
    }
    // Local feedback with the scalar expressions so the doubles stay
    // bit-identical: divide on heard, multiply-and-cap on silence.
    double* pv = &p_[base];
    for (LaneMask b = live; b != 0; b &= b - 1) {
      const unsigned l = lowest_lane(b);
      const double f = hetero_factor ? factor_[base + l] : uniform_factor;
      if ((heard >> l) & 1u) {
        pv[l] /= f;
      } else {
        pv[l] = std::min(config_.max_p, pv[l] * f);
      }
    }
  }
}

void BatchLocalFeedbackMis::react(sim::BatchContext& ctx) {
  if (ctx.exchange() == 0) {
    react_feedback(ctx);
  } else {
    batch_skeleton::apply_round_outcome(ctx, winner_);
  }
}

}  // namespace beepmis::mis

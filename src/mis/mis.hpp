// Umbrella header and one-call convenience API for the beepmis library.
//
// Quickstart:
//
//   #include "mis/mis.hpp"
//
//   auto rng = beepmis::support::Xoshiro256StarStar(42);
//   auto g = beepmis::graph::gnp(200, 0.5, rng);
//   auto result = beepmis::mis::run_local_feedback(g, /*seed=*/1);
//   assert(beepmis::mis::is_valid_mis_run(g, result));
//   // result.rounds, result.mis(), result.mean_beeps_per_node() ...
#pragma once

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "mis/global_schedule.hpp"
#include "mis/greedy_id.hpp"
#include "mis/local_feedback.hpp"
#include "mis/luby.hpp"
#include "mis/luby_degree.hpp"
#include "mis/metivier.hpp"
#include "mis/schedule.hpp"
#include "mis/skeleton.hpp"
#include "mis/theory.hpp"
#include "mis/verifier.hpp"
#include "sim/beep.hpp"
#include "sim/local.hpp"

namespace beepmis::mis {

/// Runs the paper's local-feedback algorithm (Definition 1) on `g` with the
/// given seed; deterministic in (g, seed, config).
[[nodiscard]] sim::RunResult run_local_feedback(
    const graph::Graph& g, std::uint64_t seed,
    const LocalFeedbackConfig& config = LocalFeedbackConfig::paper(),
    const sim::SimConfig& sim_config = {});

/// Runs the DISC'11 global sweeping-probability algorithm.
[[nodiscard]] sim::RunResult run_global_sweep(const graph::Graph& g, std::uint64_t seed,
                                              const sim::SimConfig& sim_config = {});

/// Runs the Science'11-style increasing global schedule (needs max degree
/// and n, which it reads from the graph).
[[nodiscard]] sim::RunResult run_global_increasing(const graph::Graph& g, std::uint64_t seed,
                                                   const sim::SimConfig& sim_config = {});

/// Runs a beeping MIS with an arbitrary preset probability sequence.
[[nodiscard]] sim::RunResult run_fixed_schedule(const graph::Graph& g, std::uint64_t seed,
                                                std::vector<double> schedule,
                                                const sim::SimConfig& sim_config = {});

/// Runs Luby's algorithm in the LOCAL model.
[[nodiscard]] sim::RunResult run_luby(const graph::Graph& g, std::uint64_t seed,
                                      const sim::LocalSimConfig& sim_config = {});

/// Runs Luby's original degree-based variant (LOCAL model; marks with
/// probability 1/(2 d(v)), degree messages).
[[nodiscard]] sim::RunResult run_luby_degree(const graph::Graph& g, std::uint64_t seed,
                                             const sim::LocalSimConfig& sim_config = {});

/// Runs the Métivier et al. optimal bit-complexity MIS (LOCAL model,
/// 1-bit messages); bits_per_phase = 0 auto-sizes to ceil(log2 n) + 3.
[[nodiscard]] sim::RunResult run_metivier(const graph::Graph& g, std::uint64_t seed,
                                          unsigned bits_per_phase = 0,
                                          const sim::LocalSimConfig& sim_config = {});

/// Runs the deterministic ID-greedy MIS (LOCAL model baseline; worst-case
/// Θ(n) rounds).
[[nodiscard]] sim::RunResult run_greedy_id(const graph::Graph& g,
                                           const sim::LocalSimConfig& sim_config = {});

}  // namespace beepmis::mis

#include "mis/greedy_id.hpp"

namespace beepmis::mis {

void GreedyIdMis::reset(const graph::Graph& g, support::Xoshiro256StarStar& /*rng*/) {
  candidate_.assign(g.node_count(), 0);
}

void GreedyIdMis::emit(sim::LocalContext& ctx) {
  if (ctx.exchange() == 0) {
    // Presence bit: "I am still active".
    for (const graph::NodeId v : ctx.active_nodes()) ctx.publish(v, 1, /*bits=*/1);
  } else {
    for (const graph::NodeId v : ctx.active_nodes()) {
      if (candidate_[v] && ctx.is_active(v)) ctx.publish(v, 1, /*bits=*/1);
    }
  }
}

void GreedyIdMis::react(sim::LocalContext& ctx) {
  if (ctx.exchange() == 0) {
    for (const graph::NodeId v : ctx.active_nodes()) {
      bool is_local_min = true;
      for (const graph::NodeId w : ctx.graph().neighbors(v)) {
        // Ids are static knowledge in the LOCAL model; the presence bit
        // tells v which neighbours are still competing.
        if (w < v && ctx.value_of(w).has_value()) {
          is_local_min = false;
          break;
        }
      }
      candidate_[v] = static_cast<std::uint8_t>(is_local_min);
    }
  } else {
    for (const graph::NodeId v : ctx.active_nodes()) {
      if (!ctx.is_active(v)) continue;
      if (candidate_[v]) {
        ctx.join_mis(v);
        continue;
      }
      for (const graph::NodeId w : ctx.graph().neighbors(v)) {
        if (ctx.value_of(w).has_value()) {
          ctx.deactivate(v);
          break;
        }
      }
    }
  }
}

}  // namespace beepmis::mis

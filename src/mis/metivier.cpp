#include "mis/metivier.hpp"

#include <algorithm>
#include <cmath>

namespace beepmis::mis {

void MetivierMis::reset(const graph::Graph& g, support::Xoshiro256StarStar& /*rng*/) {
  if (configured_bits_ > 0) {
    bits_ = configured_bits_;
  } else {
    const double n = std::max<double>(2.0, static_cast<double>(g.node_count()));
    bits_ = static_cast<unsigned>(std::ceil(std::log2(n))) + 3;
  }
  competing_.assign(g.node_count(), 0);
  last_bit_.assign(g.node_count(), 0);
  tied_.assign(g.node_count(), {});
}

void MetivierMis::emit(sim::LocalContext& ctx) {
  const unsigned e = ctx.exchange();
  if (e == 0) {
    // Phase start: every active node enters the competition against all of
    // its active neighbours.
    for (const graph::NodeId v : ctx.active_nodes()) {
      competing_[v] = 1;
      tied_[v].clear();
      for (const graph::NodeId w : ctx.graph().neighbors(v)) {
        if (ctx.is_active(w)) tied_[v].push_back(w);
      }
    }
  }
  if (e < bits_) {
    for (const graph::NodeId v : ctx.active_nodes()) {
      if (!competing_[v]) continue;
      // A competitor with no remaining ties has already won every
      // comparison; it stops revealing bits (they carry no information).
      if (tied_[v].empty()) continue;
      const auto bit = static_cast<std::uint8_t>(ctx.rng()() & 1u);
      last_bit_[v] = bit;
      ctx.publish(v, bit, /*bits=*/1);
    }
  } else {
    // Announcement exchange: unbeaten nodes with no remaining ties join.
    for (const graph::NodeId v : ctx.active_nodes()) {
      if (ctx.is_active(v) && competing_[v] && tied_[v].empty()) {
        ctx.publish(v, 1, /*bits=*/1);
      }
    }
  }
}

void MetivierMis::react(sim::LocalContext& ctx) {
  const unsigned e = ctx.exchange();
  if (e < bits_) {
    for (const graph::NodeId v : ctx.active_nodes()) {
      if (!competing_[v] || tied_[v].empty()) continue;
      const bool v_published = ctx.value_of(v).has_value();
      bool beaten = false;
      std::erase_if(tied_[v], [&](graph::NodeId w) {
        const auto theirs = ctx.value_of(w);
        if (!theirs) return true;  // w stopped sending: no longer a threat
        if (!v_published) return false;  // defensive; v always publishes here
        if (*theirs < last_bit_[v]) {
          beaten = true;  // w revealed 0 while v revealed 1
          return false;
        }
        if (*theirs > last_bit_[v]) return true;  // v beat w
        return false;                             // still tied
      });
      if (beaten) competing_[v] = 0;  // stop sending: the bit saving
    }
  } else {
    for (const graph::NodeId v : ctx.active_nodes()) {
      if (!ctx.is_active(v)) continue;
      if (competing_[v] && tied_[v].empty()) {
        ctx.join_mis(v);
        continue;
      }
      for (const graph::NodeId w : ctx.graph().neighbors(v)) {
        if (ctx.value_of(w).has_value()) {
          ctx.deactivate(v);
          break;
        }
      }
    }
  }
}

}  // namespace beepmis::mis

// Self-healing MIS maintenance (extension; §6 motivates ad hoc networks,
// where MIS members die).
//
// Requires SimConfig::mis_keepalive: a live MIS member beeps every
// exchange, so its dominated neighbours hear *something* every round.  A
// dominated node that hears pure silence for `silence_threshold`
// consecutive rounds concludes every dominator (and competing neighbour)
// is gone, resets its probability and re-enters the competition; the
// normal local-feedback protocol then re-converges in the damaged
// neighbourhood.  Safety is unconditional (reactivated nodes obey the
// usual two-exchange rules); the threshold only trades detection latency
// against spurious reactivations, of which there are none on reliable
// channels (silence while a dominator lives is impossible).
#pragma once

#include <cstdint>
#include <vector>

#include "mis/local_feedback.hpp"

namespace beepmis::mis {

struct SelfHealingConfig {
  LocalFeedbackConfig base = LocalFeedbackConfig::paper();
  /// Rounds of total silence before a dominated node reactivates.
  unsigned silence_threshold = 3;
};

class SelfHealingLocalFeedbackMis final : public LocalFeedbackMis {
 public:
  explicit SelfHealingLocalFeedbackMis(SelfHealingConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "local-feedback-healing"; }

  /// Batched 64-lane kernel (BatchSelfHealingMis).  Overrides the nullptr
  /// that LocalFeedbackMis's typeid guard hands to subclasses: the healing
  /// kernel reproduces the reactivation pass, so this final class is
  /// batch-capable again.
  [[nodiscard]] std::unique_ptr<sim::BatchProtocol> make_batch_protocol(
      sim::BatchRngMode mode) const override;
  // The override hides the base's zero-arg convenience overload; re-expose.
  using sim::BeepProtocol::make_batch_protocol;

  /// Sharded execution is supported: the healing pass is draw-free and
  /// strictly per-node (silence counters, probability resets, reactivate
  /// calls), and on_round_complete restricts its scan to the context's
  /// [node_begin, node_end) range so each shard heals only its own slice.
  /// Reactivation counts live in the simulator's mutation sink
  /// (RunResult::reactivations), not protocol state, so no counter is
  /// shared across shards.  Overrides the base's typeid refusal.
  [[nodiscard]] sim::ShardSupport shard_support() const override;

 protected:
  void on_reset(const graph::Graph& g, support::Xoshiro256StarStar& rng) override;
  void on_round_complete(sim::BeepContext& ctx) override;

 private:
  SelfHealingConfig config_;
  std::vector<std::uint32_t> silence_;
};

}  // namespace beepmis::mis

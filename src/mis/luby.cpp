#include "mis/luby.hpp"

namespace beepmis::mis {

void LubyMis::reset(const graph::Graph& g, support::Xoshiro256StarStar& /*rng*/) {
  candidate_.assign(g.node_count(), 0);
}

void LubyMis::emit(sim::LocalContext& ctx) {
  if (ctx.exchange() == 0) {
    // Broadcast a fresh random priority.
    for (const graph::NodeId v : ctx.active_nodes()) {
      ctx.publish(v, ctx.rng()(), /*bits=*/64);
    }
  } else {
    // Joiners announce with a single bit.
    for (const graph::NodeId v : ctx.active_nodes()) {
      if (candidate_[v] && ctx.is_active(v)) ctx.publish(v, 1, /*bits=*/1);
    }
  }
}

void LubyMis::react(sim::LocalContext& ctx) {
  if (ctx.exchange() == 0) {
    for (const graph::NodeId v : ctx.active_nodes()) {
      const auto mine = ctx.value_of(v);
      bool is_local_min = mine.has_value();
      if (is_local_min) {
        for (const graph::NodeId w : ctx.graph().neighbors(v)) {
          const auto theirs = ctx.value_of(w);
          if (!theirs) continue;
          // Lexicographic (priority, id) comparison breaks ties.
          if (*theirs < *mine || (*theirs == *mine && w < v)) {
            is_local_min = false;
            break;
          }
        }
      }
      candidate_[v] = static_cast<std::uint8_t>(is_local_min);
    }
  } else {
    for (const graph::NodeId v : ctx.active_nodes()) {
      if (!ctx.is_active(v)) continue;
      if (candidate_[v]) {
        ctx.join_mis(v);
        continue;
      }
      for (const graph::NodeId w : ctx.graph().neighbors(v)) {
        if (ctx.value_of(w).has_value()) {
          ctx.deactivate(v);
          break;
        }
      }
    }
  }
}

}  // namespace beepmis::mis

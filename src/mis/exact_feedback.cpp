#include "mis/exact_feedback.hpp"

#include <cmath>

#include "mis/exact_feedback_batch.hpp"

namespace beepmis::mis {

std::unique_ptr<sim::BatchProtocol> ExactLocalFeedbackMis::make_batch_protocol(
    sim::BatchRngMode mode) const {
  // Both rng modes: the exponent kernel buckets lanes by (clamped) dyadic
  // exponent and draws bulk planes under kStatisticalLanes.
  return std::make_unique<BatchExactLocalFeedbackMis>(mode);
}

void ExactLocalFeedbackMis::on_reset(const graph::Graph& g,
                                     support::Xoshiro256StarStar& /*rng*/) {
  exponent_.assign(g.node_count(), 1);  // n(0, v) = 1, i.e. p = 1/2
}

double ExactLocalFeedbackMis::beep_probability(graph::NodeId v,
                                               std::size_t /*round*/) const {
  // 2^{-n}; exponents beyond double range would round to 0, which is the
  // correct limiting behaviour (the node is silenced).
  return std::ldexp(1.0, -static_cast<int>(std::min<std::uint32_t>(exponent_[v], 1074)));
}

void ExactLocalFeedbackMis::on_feedback(graph::NodeId v, bool heard_beep,
                                        std::size_t /*round*/) {
  if (heard_beep) {
    ++exponent_[v];  // halve p
  } else if (exponent_[v] > 1) {
    --exponent_[v];  // double p, capped at 1/2 (n >= 1)
  }
}

}  // namespace beepmis::mis

#include "mis/applications.hpp"

#include <numeric>
#include <stdexcept>

#include "mis/mis.hpp"
#include "mis/verifier.hpp"

namespace beepmis::mis {

ColoringResult distributed_coloring(const graph::Graph& g, std::uint64_t seed,
                                    const LocalFeedbackConfig& config) {
  ColoringResult out;
  out.coloring.color_of.assign(g.node_count(), static_cast<graph::NodeId>(-1));

  std::vector<graph::NodeId> remaining(g.node_count());
  std::iota(remaining.begin(), remaining.end(), graph::NodeId{0});
  std::vector<bool> colored(g.node_count(), false);

  graph::NodeId next_color = 0;
  while (!remaining.empty()) {
    const graph::InducedSubgraph residual = graph::induced_subgraph(g, remaining);
    const sim::RunResult result =
        run_local_feedback(residual.graph, support::mix_seed(seed, next_color), config);
    if (!is_valid_mis_run(residual.graph, result)) {
      throw std::runtime_error("distributed_coloring: phase failed verification");
    }
    out.total_rounds += result.rounds;
    out.total_beeps += result.total_beeps;
    ++out.phases;

    for (const graph::NodeId local : result.mis()) {
      const graph::NodeId original = residual.original_ids[local];
      out.coloring.color_of[original] = next_color;
      colored[original] = true;
    }
    std::erase_if(remaining, [&](graph::NodeId v) { return colored[v]; });
    ++next_color;
  }
  out.coloring.colors_used = next_color;
  return out;
}

MatchingResult maximal_matching(const graph::Graph& g, std::uint64_t seed,
                                const LocalFeedbackConfig& config) {
  MatchingResult out;
  const graph::LineGraph lg = graph::line_graph(g);
  if (lg.graph.node_count() == 0) return out;

  const sim::RunResult result = run_local_feedback(lg.graph, seed, config);
  if (!is_valid_mis_run(lg.graph, result)) {
    throw std::runtime_error("maximal_matching: MIS on the line graph failed");
  }
  out.rounds = result.rounds;
  out.total_beeps = result.total_beeps;
  for (const graph::NodeId edge_node : result.mis()) {
    out.matching.push_back(lg.edges[edge_node]);
  }
  return out;
}

}  // namespace beepmis::mis

#include "mis/schedule.hpp"

#include <cmath>
#include <stdexcept>

namespace beepmis::mis {

std::size_t SweepSchedule::steps_through_phase(std::size_t k) noexcept {
  return k * (k + 3) / 2;
}

SweepSchedule::Position SweepSchedule::position(std::size_t step) noexcept {
  // Find the smallest k with steps_through_phase(k) > step.  Phase lengths
  // grow linearly, so a direct solve of k(k+3)/2 > step with correction
  // avoids iteration for huge steps.
  auto k = static_cast<std::size_t>(
      std::floor((-3.0 + std::sqrt(9.0 + 8.0 * static_cast<double>(step))) / 2.0));
  while (steps_through_phase(k) <= step) ++k;
  while (k > 1 && steps_through_phase(k - 1) > step) --k;
  return {k, step - steps_through_phase(k - 1)};
}

double SweepSchedule::probability(std::size_t step) const {
  const Position pos = position(step);
  return std::ldexp(1.0, -static_cast<int>(pos.index));  // 2^{-index}
}

IncreasingSchedule::IncreasingSchedule(std::size_t max_degree, std::size_t n,
                                       std::size_t steps_per_phase)
    : max_degree_(max_degree), steps_per_phase_(steps_per_phase) {
  if (steps_per_phase_ == 0) {
    // Default phase length Θ(log n), matching the O(log D · log n) analysis.
    const double ln = std::log2(static_cast<double>(std::max<std::size_t>(n, 2)));
    steps_per_phase_ = static_cast<std::size_t>(std::ceil(4.0 * ln));
  }
}

double IncreasingSchedule::probability(std::size_t step) const {
  const std::size_t phase = step / steps_per_phase_;
  const double base = 1.0 / static_cast<double>(max_degree_ + 1);
  const double p = std::ldexp(base, static_cast<int>(std::min<std::size_t>(phase, 63)));
  return std::min(0.5, p);
}

FixedSchedule::FixedSchedule(std::vector<double> values, bool cycle, std::string name)
    : values_(std::move(values)), cycle_(cycle), name_(std::move(name)) {
  if (values_.empty()) throw std::invalid_argument("FixedSchedule: empty sequence");
  for (const double p : values_) {
    if (p < 0.0 || p > 1.0) throw std::invalid_argument("FixedSchedule: p outside [0, 1]");
  }
}

double FixedSchedule::probability(std::size_t step) const {
  if (step < values_.size()) return values_[step];
  return cycle_ ? values_[step % values_.size()] : values_.back();
}

ConstantSchedule::ConstantSchedule(double p) : p_(p) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("ConstantSchedule: p outside [0, 1]");
}

}  // namespace beepmis::mis

// Correctness oracle for simulator runs.  Checks the three MIS conditions
// plus internal consistency of node fates, and counts each violation kind
// separately so fault-injection experiments can report *how* an execution
// degraded rather than a bare pass/fail.
#pragma once

#include <string>

#include "graph/graph.hpp"
#include "sim/result.hpp"

namespace beepmis::mis {

struct VerificationReport {
  bool terminated = false;  ///< all nodes inactive within the round cap
  /// Edges with both endpoints in the MIS (must be 0 for independence).
  std::size_t independence_violations = 0;
  /// Inactive non-MIS nodes with no MIS neighbour (break maximality).
  std::size_t uncovered_nodes = 0;
  /// Nodes still active at the end of the run.
  std::size_t still_active = 0;
  /// Fail-stopped nodes (fault injection); exempt from coverage checks.
  std::size_t crashed = 0;
  std::size_t mis_size = 0;

  [[nodiscard]] bool independent() const noexcept { return independence_violations == 0; }
  /// Maximality in the fate-consistency sense: every inactive non-member is
  /// dominated.  Together with terminated this implies set-maximality.
  [[nodiscard]] bool maximal() const noexcept {
    return uncovered_nodes == 0 && still_active == 0;
  }
  [[nodiscard]] bool valid() const noexcept {
    return terminated && independent() && maximal();
  }
  [[nodiscard]] std::string summary() const;
};

/// Verifies `result` (produced on graph `g`).  Throws std::invalid_argument
/// if sizes do not match the graph.
[[nodiscard]] VerificationReport verify_mis_run(const graph::Graph& g,
                                                const sim::RunResult& result);

/// Shorthand: true iff the run terminated with a valid MIS.
[[nodiscard]] bool is_valid_mis_run(const graph::Graph& g, const sim::RunResult& result);

}  // namespace beepmis::mis

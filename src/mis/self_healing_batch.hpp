// Batched (64-lane) kernel for the self-healing MIS maintenance protocol.
//
// Extends BatchLocalFeedbackMis exactly as the scalar protocol extends
// LocalFeedbackMis: after the announcement exchange of every round a
// healing pass scans the dominated planes, ticks a per-(node, lane)
// silence counter for lanes that heard nothing (keep-alive from a live
// dominator resets it), and once the counter reaches the threshold resets
// the lane's probability and reactivates the node via
// BatchContext::reactivate.  The pass masks everything with
// running_mask(): a lane that has left the round loop (its scalar run
// returned) must freeze its counters and planes.  No RNG draws are
// involved, so lane parity is pure state bookkeeping — pinned, including a
// per-lane reactivation-count identity (RunResult::reactivations, counted
// by the context's sink), by tests/test_batch_sim.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "mis/local_feedback_batch.hpp"
#include "mis/self_healing.hpp"

namespace beepmis::mis {

class BatchSelfHealingMis final : public BatchLocalFeedbackMis {
 public:
  explicit BatchSelfHealingMis(SelfHealingConfig config = {},
                               sim::BatchRngMode mode = sim::BatchRngMode::kScalarOrder);

  [[nodiscard]] std::string_view name() const override {
    return "local-feedback-healing/batch";
  }

  void reset(const graph::Graph& g,
             std::span<support::Xoshiro256StarStar> rngs) override;
  void react(sim::BatchContext& ctx) override;

 private:
  void heal(sim::BatchContext& ctx);

  unsigned silence_threshold_;
  /// Node-major per-lane consecutive-silence counters for dominated nodes.
  std::vector<std::uint32_t> silence_;
  /// Lanes of v with a nonzero silence counter.  In the static keep-alive
  /// tail every dominated lane hears each round and all counters sit at
  /// zero, so the healing pass touches per-lane state only for lanes that
  /// went silent or must reset a nonzero counter — one plane compare per
  /// node instead of a 64-iteration inner loop.
  std::vector<sim::LaneMask> nonzero_;
};

}  // namespace beepmis::mis

// Batched (64-lane) kernel for the paper's local-feedback MIS protocol.
//
// Replays the exact scalar computation of BeepingMisSkeleton +
// LocalFeedbackMis for up to 64 independent seeds at once: per-node
// winner/beep flags become LaneMask bitplanes, and the per-node beep
// probability / feedback factor become node-major per-lane arrays
// (p_[v * lanes + l]).  Every lane's RNG draws and floating-point updates
// happen in the scalar order with the scalar expressions, so lane l is
// bit-identical to a scalar run — pinned by tests/test_batch_sim.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "mis/batch_skeleton.hpp"
#include "mis/local_feedback.hpp"
#include "sim/batch.hpp"

namespace beepmis::mis {

class BatchLocalFeedbackMis : public sim::BatchProtocol {
 public:
  /// `mode` selects the draw-entropy representation the kernel maintains:
  /// kScalarOrder replays the scalar protocol draw-for-draw, while
  /// kStatisticalLanes keeps the dyadic exponents as bitplanes and draws
  /// bulk Bernoulli planes (it must run on a simulator in the same mode —
  /// the bulk-plane context APIs reject kScalarOrder simulators).
  explicit BatchLocalFeedbackMis(LocalFeedbackConfig config = LocalFeedbackConfig::paper(),
                                 sim::BatchRngMode mode = sim::BatchRngMode::kScalarOrder);

  [[nodiscard]] std::string_view name() const override { return "local-feedback/batch"; }
  [[nodiscard]] unsigned exchanges_per_round() const override { return 2; }

  void reset(const graph::Graph& g,
             std::span<support::Xoshiro256StarStar> rngs) override;
  void emit(sim::BatchContext& ctx) override;
  void react(sim::BatchContext& ctx) override;

 protected:
  // For maintenance subclasses (the batched mirror of
  // LocalFeedbackMis::set_probability with the scalar healing argument):
  // reset lane l of node v to min(initial_p_low, max_p), in whichever
  // representation (dyadic exponent / double) this kernel is running.
  void reset_lane_probability(graph::NodeId v, unsigned lane);

  [[nodiscard]] unsigned lane_count() const noexcept { return lanes_; }
  [[nodiscard]] const LocalFeedbackConfig& config() const noexcept { return config_; }

 private:
  void emit_intent_dyadic(sim::BatchContext& ctx);
  void emit_intent_dyadic_planes(sim::BatchContext& ctx);
  void emit_intent_general(sim::BatchContext& ctx);
  void react_feedback(sim::BatchContext& ctx);

  LocalFeedbackConfig config_;
  sim::BatchRngMode mode_ = sim::BatchRngMode::kScalarOrder;
  unsigned lanes_ = 0;
  std::vector<sim::LaneMask> winner_;

  // --- Dyadic fast path -----------------------------------------------
  // For homogeneous power-of-two configs (the paper's: p0 = 1/2, factor 2,
  // max_p = 1/2) every probability the scalar protocol can ever hold is an
  // exact power of two: p = 2^-k stays exact under /2, *2 and the max_p
  // cap, underflowing to exactly 0 at k = 1075 (2^-1074 is the smallest
  // subnormal; halving it rounds to even, i.e. 0, where it stays).  The
  // per-(node, lane) state is then a uint16 exponent, and the scalar
  // Bernoulli draw `(x >> 11) * 2^-53 < p` is the integer test
  // `k < 1075 && ((x >> 11) >> (k < 53 ? 53 - k : 0)) == 0` on the same
  // single rng() output — bit-identical, four bytes narrower per lane and
  // free of double multiplies.  Pinned against the scalar core by
  // tests/test_batch_sim.cpp.
  bool dyadic_ = false;
  std::uint16_t k_min_ = 1;    ///< exponent of max_p (cap on silence)
  std::uint16_t k_reset_ = 1;  ///< exponent of min(initial_p_low, max_p)
  std::vector<std::uint16_t> k_;  ///< node-major per-lane exponents (kScalarOrder)
  /// kStatisticalLanes representation of the same exponents: bitplanes, so
  /// the intent draw and the feedback +-1 are whole-plane operations with
  /// no per-lane loop at all (see batch_skeleton.hpp::ExponentPlanes).
  /// Only the constructed mode's representation is populated.
  batch_skeleton::ExponentPlanes eplanes_;

  // --- General path -----------------------------------------------------
  /// Node-major per-lane policy state: lane l of node v at [v * lanes_ + l],
  /// so one node's 64 lanes share cache lines during the emit/react sweeps.
  std::vector<double> p_;
  /// Allocated only for heterogeneous factor configs; homogeneous runs use
  /// config_.factor_low directly.
  std::vector<double> factor_;
};

}  // namespace beepmis::mis

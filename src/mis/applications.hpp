// MIS as a building block (paper §6: "a fundamental building block in
// algorithms for many other problems"): distributed graph colouring by
// iterated MIS and maximal matching via MIS on the line graph.  Both run
// entirely on the paper's local-feedback beeping algorithm, so the whole
// computation uses one-bit messages.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "graph/line_graph.hpp"
#include "graph/properties.hpp"
#include "mis/local_feedback.hpp"

namespace beepmis::mis {

struct ColoringResult {
  graph::Coloring coloring;
  std::size_t phases = 0;            ///< number of MIS invocations (= colours)
  std::size_t total_rounds = 0;      ///< beeping time steps across phases
  std::uint64_t total_beeps = 0;
};

/// Colours `g` by repeatedly selecting a local-feedback MIS among the
/// still-uncoloured nodes and assigning it the next colour.  Uses at most
/// O(Δ log n) rounds in expectation; the colour count is bounded by the
/// number of phases (often well below Δ + 1).  Throws std::runtime_error
/// if a phase fails verification (cannot happen on reliable channels).
[[nodiscard]] ColoringResult distributed_coloring(
    const graph::Graph& g, std::uint64_t seed,
    const LocalFeedbackConfig& config = LocalFeedbackConfig::paper());

struct MatchingResult {
  std::vector<graph::Edge> matching;
  std::size_t rounds = 0;        ///< beeping time steps on the line graph
  std::uint64_t total_beeps = 0;
};

/// Computes a maximal matching of `g` as a local-feedback MIS of the line
/// graph L(g) (per-edge agents — e.g. the two endpoints of each link
/// cooperating).  Throws std::runtime_error on verification failure.
[[nodiscard]] MatchingResult maximal_matching(
    const graph::Graph& g, std::uint64_t seed,
    const LocalFeedbackConfig& config = LocalFeedbackConfig::paper());

}  // namespace beepmis::mis

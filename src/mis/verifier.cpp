#include "mis/verifier.hpp"

#include <sstream>
#include <stdexcept>

namespace beepmis::mis {

VerificationReport verify_mis_run(const graph::Graph& g, const sim::RunResult& result) {
  if (result.status.size() != g.node_count()) {
    throw std::invalid_argument("verify_mis_run: result does not match graph size");
  }

  VerificationReport report;
  report.terminated = result.terminated;

  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    switch (result.status[v]) {
      case sim::NodeStatus::kActive:
        ++report.still_active;
        break;
      case sim::NodeStatus::kInMis: {
        ++report.mis_size;
        for (const graph::NodeId w : g.neighbors(v)) {
          if (v < w && result.status[w] == sim::NodeStatus::kInMis) {
            ++report.independence_violations;
          }
        }
        break;
      }
      case sim::NodeStatus::kDominated: {
        bool has_mis_neighbor = false;
        for (const graph::NodeId w : g.neighbors(v)) {
          if (result.status[w] == sim::NodeStatus::kInMis) {
            has_mis_neighbor = true;
            break;
          }
        }
        if (!has_mis_neighbor) ++report.uncovered_nodes;
        break;
      }
      case sim::NodeStatus::kCrashed:
        ++report.crashed;
        break;
    }
  }
  return report;
}

bool is_valid_mis_run(const graph::Graph& g, const sim::RunResult& result) {
  return verify_mis_run(g, result).valid();
}

std::string VerificationReport::summary() const {
  std::ostringstream ss;
  ss << (valid() ? "VALID" : "INVALID") << " mis_size=" << mis_size
     << " terminated=" << (terminated ? "yes" : "no")
     << " independence_violations=" << independence_violations
     << " uncovered=" << uncovered_nodes << " still_active=" << still_active
     << " crashed=" << crashed;
  return ss.str();
}

}  // namespace beepmis::mis

// Batched (64-lane) kernel for the exact-exponent local-feedback protocol.
//
// The scalar ExactLocalFeedbackMis carries the paper's integer exponent
// n(v, t) and beeps with 2^{-min(n, 1074)}; here the exponent becomes a
// node-major per-lane uint32 array and the Bernoulli draw becomes the same
// integer shift/compare the dyadic local-feedback fast path uses: the
// scalar test `(x >> 11) * 2^-53 < 2^-k` is `((x >> 11) >> (53 - k)) == 0`
// for k <= 53 and `(x >> 11) == 0` beyond (2^-k is below the 2^-53 draw
// granularity but still positive, so only the exact-zero mantissa passes).
// The kernel is therefore free of floating point entirely, and lane l is
// bit-identical to a scalar run — pinned by tests/test_batch_sim.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "mis/batch_skeleton.hpp"
#include "sim/batch.hpp"

namespace beepmis::mis {

class BatchExactLocalFeedbackMis final : public sim::BatchProtocol {
 public:
  /// Like BatchLocalFeedbackMis: kScalarOrder replays the scalar draws,
  /// kStatisticalLanes keeps the exponents as bitplanes and draws bulk
  /// planes (must run on a simulator in the same mode).
  explicit BatchExactLocalFeedbackMis(
      sim::BatchRngMode mode = sim::BatchRngMode::kScalarOrder)
      : mode_(mode) {}

  [[nodiscard]] std::string_view name() const override {
    return "local-feedback-exact/batch";
  }
  [[nodiscard]] unsigned exchanges_per_round() const override { return 2; }

  void reset(const graph::Graph& g,
             std::span<support::Xoshiro256StarStar> rngs) override;
  void emit(sim::BatchContext& ctx) override;
  void react(sim::BatchContext& ctx) override;

 private:
  sim::BatchRngMode mode_ = sim::BatchRngMode::kScalarOrder;
  unsigned lanes_ = 0;
  std::vector<sim::LaneMask> winner_;
  /// Node-major per-lane exponents n(v, t): lane l of node v at
  /// [v * lanes_ + l].  uint32 like the scalar protocol's (the round cap
  /// bounds it far below overflow).  kScalarOrder only.
  std::vector<std::uint32_t> exponent_;
  /// kStatisticalLanes representation: 12 exponent bitplanes, saturating
  /// at 4095 where the scalar exponent is unbounded — reaching the cap
  /// needs ~4000 consecutive heard rounds while the draw already clamps at
  /// 2^-1074, so no observable run can tell the difference.
  batch_skeleton::ExponentPlanes eplanes_;
};

}  // namespace beepmis::mis

#include "mis/pure_beep.hpp"

#include <algorithm>
#include <stdexcept>

namespace beepmis::mis {

PureBeepLocalFeedbackMis::PureBeepLocalFeedbackMis(unsigned subslots, double factor,
                                                   double max_p)
    : subslots_(subslots), factor_(factor), max_p_(max_p) {
  if (subslots_ == 0) throw std::invalid_argument("PureBeep: need at least one subslot");
  if (!(factor_ > 1.0)) throw std::invalid_argument("PureBeep: factor must exceed 1");
  if (!(max_p_ > 0.0) || max_p_ > 1.0) throw std::invalid_argument("PureBeep: bad max_p");
}

void PureBeepLocalFeedbackMis::reset(const graph::Graph& g,
                                     support::Xoshiro256StarStar& /*rng*/) {
  p_.assign(g.node_count(), std::min(0.5, max_p_));
  signalling_.assign(g.node_count(), 0);
  detected_.assign(g.node_count(), 0);
}

void PureBeepLocalFeedbackMis::emit(sim::BeepContext& ctx) {
  const unsigned e = ctx.exchange();
  if (e == 0) {
    // Time-step start: decide who signals, clear detection state.
    for (const graph::NodeId v : ctx.active_nodes()) {
      signalling_[v] = static_cast<std::uint8_t>(ctx.rng().bernoulli(p_[v]));
      detected_[v] = 0;
    }
  }
  if (e < subslots_) {
    // Randomised slot: each signaller beeps with probability 1/2.
    for (const graph::NodeId v : ctx.active_nodes()) {
      if (signalling_[v] && ctx.rng().bernoulli(0.5)) ctx.beep(v);
    }
  } else {
    // Announcement: signallers that never detected a rival join.
    for (const graph::NodeId v : ctx.active_nodes()) {
      if (signalling_[v] && !detected_[v] && ctx.is_active(v)) ctx.beep(v);
    }
  }
}

void PureBeepLocalFeedbackMis::react(sim::BeepContext& ctx) {
  const unsigned e = ctx.exchange();
  if (e < subslots_) {
    // A node hears only in slots where it did not beep itself.
    for (const graph::NodeId v : ctx.active_nodes()) {
      if (ctx.heard(v) && !ctx.beeped(v)) detected_[v] = 1;
    }
    if (e + 1 == subslots_) {
      // Feedback uses the same rule as Table 1, driven by detection.
      for (const graph::NodeId v : ctx.active_nodes()) {
        if (detected_[v]) {
          p_[v] /= factor_;
        } else {
          p_[v] = std::min(max_p_, p_[v] * factor_);
        }
      }
    }
  } else {
    for (const graph::NodeId v : ctx.active_nodes()) {
      if (!ctx.is_active(v)) continue;
      if (signalling_[v] && !detected_[v]) {
        ctx.join_mis(v);
      } else if (ctx.heard(v)) {
        ctx.deactivate(v);
      }
    }
  }
}

}  // namespace beepmis::mis

#include "mis/local_feedback.hpp"

#include <algorithm>
#include <stdexcept>
#include <typeinfo>

#include "mis/local_feedback_batch.hpp"

namespace beepmis::mis {

std::unique_ptr<sim::BatchProtocol> LocalFeedbackMis::make_batch_protocol(
    sim::BatchRngMode mode) const {
  // Exact-type guard: subclasses inherit this override but add behaviour
  // (reactivation hooks, different reset draws) the batched kernel does not
  // reproduce, so only the base protocol itself is batch-capable.  The
  // kernel is built for the requested mode (kStatisticalLanes switches it
  // to the bitplane exponent representation and bulk-plane draws).
  if (typeid(*this) != typeid(LocalFeedbackMis)) return nullptr;
  return std::make_unique<BatchLocalFeedbackMis>(config_, mode);
}

sim::ShardSupport LocalFeedbackMis::shard_support() const {
  // Exact-type guard, like make_batch_protocol: a subclass (self-healing)
  // adds cross-node behaviour and extra bookkeeping the sharded contract
  // does not cover.
  if (typeid(*this) != typeid(LocalFeedbackMis)) return {};
  return skeleton_shard_support();
}

void LocalFeedbackConfig::validate() const {
  if (!(initial_p_low > 0.0) || initial_p_low > initial_p_high || initial_p_high > 1.0) {
    throw std::invalid_argument(
        "LocalFeedbackConfig: need 0 < initial_p_low <= initial_p_high <= 1");
  }
  if (!(factor_low > 1.0) || factor_low > factor_high) {
    throw std::invalid_argument(
        "LocalFeedbackConfig: need 1 < factor_low <= factor_high");
  }
  if (!(max_p > 0.0) || max_p > 1.0) {
    throw std::invalid_argument("LocalFeedbackConfig: need 0 < max_p <= 1");
  }
}

LocalFeedbackMis::LocalFeedbackMis(LocalFeedbackConfig config) : config_(config) {
  config_.validate();
}

void LocalFeedbackMis::on_reset(const graph::Graph& g, support::Xoshiro256StarStar& rng) {
  const graph::NodeId n = g.node_count();
  p_.assign(n, config_.initial_p_low);
  factor_.assign(n, config_.factor_low);
  const bool hetero_p = config_.initial_p_high > config_.initial_p_low;
  const bool hetero_factor = config_.factor_high > config_.factor_low;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (hetero_p) {
      p_[v] = config_.initial_p_low +
              rng.uniform01() * (config_.initial_p_high - config_.initial_p_low);
    }
    if (hetero_factor) {
      factor_[v] = config_.factor_low +
                   rng.uniform01() * (config_.factor_high - config_.factor_low);
    }
    p_[v] = std::min(p_[v], config_.max_p);
  }
}

double LocalFeedbackMis::beep_probability(graph::NodeId v, std::size_t /*round*/) const {
  return p_[v];
}

void LocalFeedbackMis::set_probability(graph::NodeId v, double p) {
  p_.at(v) = std::min(p, config_.max_p);
}

void LocalFeedbackMis::on_feedback(graph::NodeId v, bool heard_beep, std::size_t /*round*/) {
  if (heard_beep) {
    p_[v] /= factor_[v];  // lateral inhibition: a signalling neighbour suppresses v
  } else {
    p_[v] = std::min(config_.max_p, p_[v] * factor_[v]);
  }
}

}  // namespace beepmis::mis

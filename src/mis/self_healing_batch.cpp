#include "mis/self_healing_batch.hpp"

#include <bit>
#include <stdexcept>

namespace beepmis::mis {

using sim::LaneMask;

BatchSelfHealingMis::BatchSelfHealingMis(SelfHealingConfig config, sim::BatchRngMode mode)
    : BatchLocalFeedbackMis(config.base, mode),
      silence_threshold_(config.silence_threshold) {
  if (silence_threshold_ == 0) {
    throw std::invalid_argument("BatchSelfHealingMis: silence_threshold must be >= 1");
  }
}

void BatchSelfHealingMis::reset(const graph::Graph& g,
                                std::span<support::Xoshiro256StarStar> rngs) {
  BatchLocalFeedbackMis::reset(g, rngs);
  silence_.assign(static_cast<std::size_t>(g.node_count()) * lane_count(), 0);
  nonzero_.assign(g.node_count(), 0);
}

void BatchSelfHealingMis::react(sim::BatchContext& ctx) {
  BatchLocalFeedbackMis::react(ctx);
  // Scalar on_round_complete runs at the very end of the announcement
  // exchange's react, after this round's joins and deactivations landed.
  if (ctx.exchange() + 1 == exchanges_per_round()) heal(ctx);
}

void BatchSelfHealingMis::heal(sim::BatchContext& ctx) {
  // The scalar pass scans every node (dominated nodes are off the active
  // frontier); one plane load per node here serves all lanes at once.
  // heard_mask reflects the announcement exchange, which includes the MIS
  // keep-alive beeps — a dominated node with a live dominator always
  // hears, so its silence counter stays at zero.  Lanes outside
  // running_mask are frozen: their scalar runs have already returned.
  // Scan only this context's node range — the whole graph in the batched
  // core, one shard's slice in the sharded-batched core (each shard heals
  // its own nodes; reactivation counts accumulate in the context's sink).
  const LaneMask running = ctx.running_mask();
  const unsigned lanes = lane_count();
  const graph::NodeId end = ctx.node_end();
  for (graph::NodeId v = ctx.node_begin(); v < end; ++v) {
    const LaneMask dom = ctx.dominated_mask(v) & running;
    if (!dom) continue;
    const LaneMask heard = ctx.heard_mask(v);
    const LaneMask silent = dom & ~heard;
    LaneMask pending = nonzero_[v];
    // Only lanes whose counter actually changes need the per-lane loop:
    // silent lanes tick up, heard lanes with a pending count reset to zero.
    // Every other dominated lane already sits at zero — the overwhelmingly
    // common case in a keep-alive tail, where this is one compare per node.
    const LaneMask touch = silent | (dom & heard & pending);
    if (!touch) continue;
    std::uint32_t* sv = &silence_[static_cast<std::size_t>(v) * lanes];
    LaneMask renewed = 0;
    for (LaneMask b = touch; b != 0; b &= b - 1) {
      const unsigned l = static_cast<unsigned>(std::countr_zero(b));
      const LaneMask bit = LaneMask{1} << l;
      if (!(silent & bit)) {
        sv[l] = 0;
        pending &= ~bit;
      } else if (++sv[l] >= silence_threshold_) {
        sv[l] = 0;
        pending &= ~bit;
        reset_lane_probability(v, l);
        renewed |= bit;
      } else {
        pending |= bit;
      }
    }
    nonzero_[v] = pending;
    if (renewed) ctx.reactivate(v, renewed);
  }
}

}  // namespace beepmis::mis

// Beeping MIS with globally scheduled probabilities (Afek et al.'s
// approach): all nodes beep with the same preset probability p_t at step t.
// Theorem 1 shows this class of algorithms is Ω(log² n) on the clique
// family no matter which schedule is chosen.
#pragma once

#include <memory>

#include "mis/schedule.hpp"
#include "mis/skeleton.hpp"

namespace beepmis::mis {

class GlobalScheduleMis final : public BeepingMisSkeleton {
 public:
  /// Takes ownership of the schedule.  The protocol's reported name is the
  /// schedule's name, so results are labelled by schedule.
  explicit GlobalScheduleMis(std::unique_ptr<Schedule> schedule);

  [[nodiscard]] std::string_view name() const override { return schedule_->name(); }
  [[nodiscard]] const Schedule& schedule() const noexcept { return *schedule_; }

 protected:
  void on_reset(const graph::Graph& g, support::Xoshiro256StarStar& rng) override;
  [[nodiscard]] double beep_probability(graph::NodeId v, std::size_t round) const override;

 private:
  std::unique_ptr<Schedule> schedule_;
};

/// Convenience factories.
[[nodiscard]] GlobalScheduleMis make_global_sweep_mis();
[[nodiscard]] GlobalScheduleMis make_global_increasing_mis(std::size_t max_degree,
                                                           std::size_t n);

}  // namespace beepmis::mis

// Beeping MIS with globally scheduled probabilities (Afek et al.'s
// approach): all nodes beep with the same preset probability p_t at step t.
// Theorem 1 shows this class of algorithms is Ω(log² n) on the clique
// family no matter which schedule is chosen.
#pragma once

#include <memory>

#include "mis/schedule.hpp"
#include "mis/skeleton.hpp"

namespace beepmis::mis {

class GlobalScheduleMis final : public BeepingMisSkeleton {
 public:
  /// Takes ownership of the schedule.  The protocol's reported name is the
  /// schedule's name, so results are labelled by schedule.  Ownership is
  /// shared internally so batched kernels can outlive this instance (the
  /// trial runner materialises the kernel and discards the scalar
  /// protocol); schedules are immutable after construction, which makes the
  /// sharing thread-safe.
  explicit GlobalScheduleMis(std::unique_ptr<Schedule> schedule);

  [[nodiscard]] std::string_view name() const override { return schedule_->name(); }
  [[nodiscard]] const Schedule& schedule() const noexcept { return *schedule_; }

  /// Batched 64-lane kernel (BatchGlobalScheduleMis), sharing this
  /// protocol's schedule.  Never nullptr: the class is final and the
  /// skeleton's round structure is fully reproduced by the kernel.
  [[nodiscard]] std::unique_ptr<sim::BatchProtocol> make_batch_protocol(
      sim::BatchRngMode mode) const override;
  // The override hides the base's zero-arg convenience overload; re-expose.
  using sim::BeepProtocol::make_batch_protocol;

  /// Sharded single-run execution: the schedule is immutable and read by
  /// round only, so the hooks are trivially per-node safe.  No typeid
  /// guard needed — the class is final.
  [[nodiscard]] sim::ShardSupport shard_support() const override {
    return skeleton_shard_support();
  }

 protected:
  void on_reset(const graph::Graph& g, support::Xoshiro256StarStar& rng) override;
  [[nodiscard]] double beep_probability(graph::NodeId v, std::size_t round) const override;

 private:
  std::shared_ptr<const Schedule> schedule_;
};

/// Convenience factories.
[[nodiscard]] GlobalScheduleMis make_global_sweep_mis();
[[nodiscard]] GlobalScheduleMis make_global_increasing_mis(std::size_t max_degree,
                                                           std::size_t n);

}  // namespace beepmis::mis

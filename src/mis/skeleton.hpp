// Shared two-exchange skeleton for all beeping MIS protocols.
//
// Both the paper's local-feedback algorithm and Afek et al.'s globally
// scheduled variants follow the same per-time-step structure (Table 1):
//
//   FIRST EXCHANGE  (intent): each active node beeps with its current
//     probability.  A node that beeps and hears nothing is a *winner*; a
//     node that hears a beep stops signalling.  Probability feedback (if
//     any) is applied based on whether a beep was heard.
//   SECOND EXCHANGE (announce): winners beep again and join the MIS;
//     nodes hearing an announcement become dominated.
//
// Concrete protocols supply only the probability policy via the two
// protected hooks.  With a reliable channel, two adjacent winners are
// impossible (each would have heard the other in the first exchange), so
// every terminating run yields a valid MIS; under injected beep loss the
// skeleton's behaviour degrades exactly as the real protocol would.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/beep.hpp"

namespace beepmis::mis {

class BeepingMisSkeleton : public sim::BeepProtocol {
 public:
  [[nodiscard]] unsigned exchanges_per_round() const final { return 2; }
  void reset(const graph::Graph& g, support::Xoshiro256StarStar& rng) final;
  void emit(sim::BeepContext& ctx) final;
  void react(sim::BeepContext& ctx) final;

 protected:
  /// The skeleton's sharded-execution declaration, for concrete protocols
  /// whose hooks satisfy the sharded contract (sim::ShardSupport): the
  /// intent exchange draws exactly one Bernoulli per active-list entry,
  /// the announcement exchange draws nothing, and react/on_feedback touch
  /// only per-node state.  Concrete protocols return this from their
  /// shard_support() override — with a typeid guard when non-final, like
  /// make_batch_protocol (see the kernel-authoring checklist).
  [[nodiscard]] sim::ShardSupport skeleton_shard_support() const {
    return {/*supported=*/true, /*emit_draws_per_entry=*/{1, 0}};
  }

  /// Initialise per-node policy state.
  virtual void on_reset(const graph::Graph& g, support::Xoshiro256StarStar& rng) = 0;
  /// Beep probability of active node `v` at time step `round`.
  [[nodiscard]] virtual double beep_probability(graph::NodeId v, std::size_t round) const = 0;
  /// Feedback after the first exchange: `heard_beep` is whether `v` heard at
  /// least one neighbour signalling.  Default: no adaptation (global
  /// schedules adapt via `round` alone).
  virtual void on_feedback(graph::NodeId v, bool heard_beep, std::size_t round);
  /// Called at the very end of each time step (after the announcement
  /// exchange's transitions), still in the react phase — maintenance
  /// protocols use it to inspect inactive nodes and reactivate them.
  virtual void on_round_complete(sim::BeepContext& ctx);

 private:
  std::vector<std::uint8_t> winner_;
};

}  // namespace beepmis::mis

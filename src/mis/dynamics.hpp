// Instrumentation replaying Theorem 2's potential argument on real runs.
//
// The proof tracks, for each vertex v, the weight µ_t(v) = P[v beeps] and
// the neighbourhood weight µ_t(Γ(v)), splitting neighbours into λ-light
// (µ_t(Γ(x)) <= λ) and λ-heavy.  This recorder samples those aggregate
// quantities after every round of a LocalFeedbackMis run, so benches and
// tests can check the proof's qualitative claims: total weight collapses
// geometrically, heavy vertices lose weight, and most rounds are "quiet"
// for most nodes.
#pragma once

#include <cstddef>
#include <vector>

#include "mis/local_feedback.hpp"
#include "sim/beep.hpp"

namespace beepmis::mis {

struct RoundDynamics {
  std::size_t round = 0;
  std::size_t active = 0;             ///< active nodes at end of round
  double total_weight = 0;            ///< µ_t(V) over active nodes
  double max_weight = 0;              ///< max µ_t(v)
  double max_neighborhood_weight = 0; ///< max over active v of µ_t(Γ(v))
  std::size_t light = 0;              ///< active v with µ_t(Γ(v)) <= λ
  std::size_t heavy = 0;              ///< active v with µ_t(Γ(v)) > λ
  std::size_t in_mis = 0;             ///< cumulative MIS size
};

/// Samples RoundDynamics after every round.  Install with
/// `simulator.set_round_observer(recorder.observer())`; the recorder must
/// outlive the run and observe the same protocol instance the simulator
/// executes.
class DynamicsRecorder {
 public:
  /// λ defaults to the proof's choice λ = 7.
  explicit DynamicsRecorder(const LocalFeedbackMis& protocol, double lambda = 7.0)
      : protocol_(&protocol), lambda_(lambda) {}

  [[nodiscard]] sim::BeepSimulator::RoundObserver observer();

  [[nodiscard]] const std::vector<RoundDynamics>& rows() const noexcept { return rows_; }
  void clear() noexcept { rows_.clear(); }

 private:
  const LocalFeedbackMis* protocol_;
  double lambda_;
  std::vector<RoundDynamics> rows_;
};

/// Convenience: run local feedback on `g` with dynamics recording.
struct DynamicsRun {
  sim::RunResult result;
  std::vector<RoundDynamics> dynamics;
};
[[nodiscard]] DynamicsRun run_local_feedback_with_dynamics(
    const graph::Graph& g, std::uint64_t seed,
    const LocalFeedbackConfig& config = LocalFeedbackConfig::paper(), double lambda = 7.0);

}  // namespace beepmis::mis

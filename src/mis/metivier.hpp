// Métivier, Robson, Saheb-Djahromi & Zemmari's optimal bit-complexity
// randomized MIS (Distributed Computing 2011) — reference [18] of the
// paper, the strongest classical baseline on message size.
//
// Lazy bitwise Luby: each phase, still-active nodes compete by revealing
// uniformly random bits one exchange at a time (1-bit messages).  A node
// that sees a strictly smaller bit from a competitor *stops sending* (the
// source of the bit-complexity saving); a node whose competitor reveals a
// larger bit drops that competitor.  After `bits_per_phase` reveals, a
// node that was never beaten and has no remaining ties joins the MIS and
// announces it with one final bit; hearers of the announcement become
// dominated.  Ties (probability 2^-bits_per_phase per pair) simply defer
// both nodes to the next phase, so independence is never violated.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/local.hpp"

namespace beepmis::mis {

class MetivierMis final : public sim::LocalProtocol {
 public:
  /// bits_per_phase = 0 (default) auto-sizes to ceil(log2 n) + 3 at reset,
  /// making per-phase ties unlikely on the whole graph.
  explicit MetivierMis(unsigned bits_per_phase = 0) : configured_bits_(bits_per_phase) {}

  [[nodiscard]] std::string_view name() const override { return "metivier"; }
  /// bits_per_phase bit exchanges plus the announcement exchange.
  [[nodiscard]] unsigned exchanges_per_round() const override { return bits_ + 1; }

  void reset(const graph::Graph& g, support::Xoshiro256StarStar& rng) override;
  void emit(sim::LocalContext& ctx) override;
  void react(sim::LocalContext& ctx) override;

  [[nodiscard]] unsigned bits_per_phase() const noexcept { return bits_; }

 private:
  unsigned configured_bits_;
  unsigned bits_ = 1;
  std::vector<std::uint8_t> competing_;     ///< still sending bits this phase
  std::vector<std::uint8_t> last_bit_;      ///< bit sent in the current exchange
  std::vector<std::vector<graph::NodeId>> tied_;  ///< competitors with equal prefix
};

}  // namespace beepmis::mis

// Global beep-probability schedules: the preset sequences p_1, p_2, ...
// that Theorem 1 proves are Ω(log² n) on the clique family.
//
// Three concrete schedules are provided:
//  * SweepSchedule      — the DISC'11 pattern the paper benchmarks in
//    Figure 3: phases k = 1, 2, 3, ..., phase k lasting k+1 steps with
//    p = 1, 1/2, ..., 2^{-k}.
//  * IncreasingSchedule — a reconstruction of the Science'11 scheme that
//    computes probabilities from n and the max degree D: log D phases of
//    `steps_per_phase` steps with p = min(1/2, 2^j / (D+1)).
//  * FixedSchedule      — an arbitrary user sequence (used by the Theorem 1
//    stress tests to try *any* schedule against the clique family).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace beepmis::mis {

/// A preset global probability sequence.  probability(step) must be in
/// [0, 1] for all steps (step is 0-based).
class Schedule {
 public:
  virtual ~Schedule() = default;
  [[nodiscard]] virtual double probability(std::size_t step) const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// DISC'11 sweeping schedule.  Probabilities over successive steps:
/// 1, 1/2 | 1, 1/2, 1/4 | 1, 1/2, 1/4, 1/8 | ...  (phase k has k+1 steps).
class SweepSchedule final : public Schedule {
 public:
  [[nodiscard]] double probability(std::size_t step) const override;
  [[nodiscard]] std::string_view name() const override { return "global-sweep"; }

  /// Decomposes a 0-based step index into (phase >= 1, index within phase).
  struct Position {
    std::size_t phase = 1;
    std::size_t index = 0;
  };
  [[nodiscard]] static Position position(std::size_t step) noexcept;
  /// Total steps in phases 1..k: sum (j+1) = k(k+3)/2.
  [[nodiscard]] static std::size_t steps_through_phase(std::size_t k) noexcept;
};

/// Approximation of the Science'11 globally increasing schedule (see
/// DESIGN.md §4): needs global knowledge of n and max degree D.  Phase
/// j = 0..ceil(log2(D+1)) holds p = min(1/2, 2^j/(D+1)) for
/// `steps_per_phase` steps; afterwards p stays at 1/2.
class IncreasingSchedule final : public Schedule {
 public:
  IncreasingSchedule(std::size_t max_degree, std::size_t n, std::size_t steps_per_phase = 0);

  [[nodiscard]] double probability(std::size_t step) const override;
  [[nodiscard]] std::string_view name() const override { return "global-increasing"; }
  [[nodiscard]] std::size_t steps_per_phase() const noexcept { return steps_per_phase_; }

 private:
  std::size_t max_degree_;
  std::size_t steps_per_phase_;
};

/// Arbitrary preset sequence; after the last element the schedule repeats
/// its final value (or cycles, if `cycle` is set).
class FixedSchedule final : public Schedule {
 public:
  explicit FixedSchedule(std::vector<double> values, bool cycle = false,
                         std::string name = "fixed");

  [[nodiscard]] double probability(std::size_t step) const override;
  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  std::vector<double> values_;
  bool cycle_;
  std::string name_;
};

/// Constant probability p at every step.
class ConstantSchedule final : public Schedule {
 public:
  explicit ConstantSchedule(double p);
  [[nodiscard]] double probability(std::size_t) const override { return p_; }
  [[nodiscard]] std::string_view name() const override { return "constant"; }

 private:
  double p_;
};

}  // namespace beepmis::mis

// Density extension: Figure 3 fixes p = 1/2; this bench sweeps the edge
// probability at fixed n to show the constants of Theorems 2 and 6 are
// density-insensitive — rounds stay O(log n) and beeps O(1) from
// near-empty graphs to near-cliques.
//
//   ./bench_density [--n=500] [--trials=50] [--threads=0]
#include <iostream>
#include <memory>
#include <vector>

#include "exp/runner.hpp"
#include "graph/generators.hpp"
#include "mis/local_feedback.hpp"
#include "mis/theory.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace beepmis;

  support::Options options;
  options.add("n", "500", "graph size");
  options.add("trials", "50", "trials per density");
  options.add("threads", "0", "worker threads (0 = all cores)");
  options.add("seed", "20130801", "base seed");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_density");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_density");
    return 0;
  }

  const auto n = static_cast<std::size_t>(options.get_int("n"));
  harness::TrialConfig config;
  config.trials = static_cast<std::size_t>(options.get_int("trials"));
  config.threads = static_cast<unsigned>(options.get_int("threads"));

  std::cout << "=== density sweep: local feedback on G(" << n << ", p), "
            << config.trials << " trials/point ===\n\n";
  support::Table table(
      {"p", "mean degree", "rounds mean", "sd", "beeps/node", "MIS size", "valid"});
  for (const double p : {0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 0.8, 0.95}) {
    config.base_seed =
        support::mix_seed(options.get_u64("seed"), static_cast<std::uint64_t>(p * 10000));
    const harness::GraphFactory graphs = [n, p](support::Xoshiro256StarStar& rng) {
      return graph::gnp(static_cast<graph::NodeId>(n), p, rng);
    };
    const harness::TrialStats stats = harness::run_beep_trials(
        graphs, [] { return std::make_unique<mis::LocalFeedbackMis>(); }, config);
    table.new_row()
        .cell(p, 3)
        .cell(p * static_cast<double>(n - 1), 1)
        .cell(stats.rounds.mean())
        .cell(stats.rounds.stddev())
        .cell(stats.beeps_per_node.mean())
        .cell(stats.mis_size.mean(), 1)
        .cell(std::to_string(stats.valid) + "/" + std::to_string(stats.trials));
  }
  table.print(std::cout);
  std::cout << "\ncsv:\n";
  table.write_csv(std::cout);
  std::cout << "\nreference: 2.5 log2 n = " << mis::figure3_local_reference(n)
            << "; expectation: rounds within a small factor of it at every density,\n"
               "beeps/node ~1 throughout (Theorems 2 and 6 hold for all graphs).\n";
  return 0;
}

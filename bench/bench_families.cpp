// E4/E7 companion: local-feedback rounds, beeps and MIS sizes across graph
// families at a fixed n — checks that the O(log n) / O(1)-beeps behaviour
// is family-independent (the theorems hold for every graph).
//
//   ./bench_families [--n=256] [--trials=50] [--threads=0]
#include <iostream>

#include "exp/figures.hpp"
#include "exp/report.hpp"
#include "mis/theory.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace beepmis;

  support::Options options;
  options.add("n", "256", "nominal family size");
  options.add("trials", "50", "trials per family");
  options.add("threads", "0", "worker threads (0 = all cores)");
  options.add("seed", "20130728", "base seed");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_families");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_families");
    return 0;
  }

  harness::ExperimentConfig config;
  config.trials = static_cast<std::size_t>(options.get_int("trials"));
  config.threads = static_cast<unsigned>(options.get_int("threads"));
  config.base_seed = options.get_u64("seed");
  const auto n = static_cast<std::size_t>(options.get_int("n"));

  std::cout << "=== local-feedback MIS across graph families (n ~ " << n << "), "
            << config.trials << " trials/family ===\n\n";
  const auto rows = harness::family_experiment(n, config);
  harness::print_with_csv(std::cout, harness::family_table(rows));
  std::cout << "reference: 2.5 log2 n = " << mis::figure3_local_reference(n)
            << " steps; Theorem 6 beep bound = " << mis::theorem6_beep_bound() << "\n";
  std::cout << "\npaper expectation: rounds stay O(log n) and beeps/node O(1) on every\n"
               "family (Theorems 2 and 6 are worst-case over all graphs).\n";
  return 0;
}

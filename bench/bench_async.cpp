// E9 companion (extension): asynchronous starts and fail-stop crashes.
// Staggered wake-ups break the plain protocol (a late waker cannot learn
// that a neighbour joined long ago) and the DISC'11 keep-alive rule
// repairs it; fail-stop crashes degrade coverage gracefully.
//
//   ./bench_async [--n=200] [--trials=50] [--threads=0]
#include <iostream>
#include <vector>

#include "exp/runner.hpp"
#include "graph/generators.hpp"
#include "mis/local_feedback.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace {

using namespace beepmis;

struct Scenario {
  std::string label;
  std::uint32_t wake_spread = 0;  ///< wake rounds uniform in [0, spread)
  double crash_fraction = 0.0;    ///< fraction of nodes that fail-stop
  bool keepalive = false;
};

harness::TrialStats run_scenario(const Scenario& scenario, std::size_t n,
                                 const harness::TrialConfig& base) {
  harness::TrialConfig config = base;
  config.sim.mis_keepalive = scenario.keepalive;
  config.sim.max_rounds = 2000;
  // Wake and crash schedules are derived deterministically from node ids so
  // every trial of a scenario uses the same fault plan.
  config.sim.wake_round.assign(n, 0);
  config.sim.crash_round.assign(n, 0xffffffffu);
  for (std::size_t v = 0; v < n; ++v) {
    if (scenario.wake_spread > 0) {
      config.sim.wake_round[v] =
          static_cast<std::uint32_t>(support::mix_seed(9, v) % scenario.wake_spread);
    }
    if (scenario.crash_fraction > 0.0) {
      const double u = static_cast<double>(support::mix_seed(11, v) % 1000000u) / 1e6;
      if (u < scenario.crash_fraction) {
        config.sim.crash_round[v] = static_cast<std::uint32_t>(support::mix_seed(13, v) % 20);
      }
    }
  }
  const harness::GraphFactory graphs = [n](support::Xoshiro256StarStar& rng) {
    return graph::gnp(static_cast<graph::NodeId>(n), 0.5, rng);
  };
  return harness::run_beep_trials(
      graphs, [] { return std::make_unique<mis::LocalFeedbackMis>(); }, config);
}

}  // namespace

int main(int argc, char** argv) {
  support::Options options;
  options.add("n", "200", "graph size");
  options.add("trials", "50", "trials per scenario");
  options.add("threads", "0", "worker threads (0 = all cores)");
  options.add("seed", "20130729", "base seed");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_async");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_async");
    return 0;
  }

  const auto n = static_cast<std::size_t>(options.get_int("n"));
  harness::TrialConfig base;
  base.trials = static_cast<std::size_t>(options.get_int("trials"));
  base.threads = static_cast<unsigned>(options.get_int("threads"));
  base.base_seed = options.get_u64("seed");

  const std::vector<Scenario> scenarios = {
      {"synchronous start", 0, 0.0, false},
      {"wake spread 16, no keepalive", 16, 0.0, false},
      {"wake spread 16, keepalive", 16, 0.0, true},
      {"wake spread 64, keepalive", 64, 0.0, true},
      {"5% crashes, keepalive", 0, 0.05, true},
      {"20% crashes, keepalive", 0, 0.20, true},
      {"wake 16 + 10% crashes, keepalive", 16, 0.10, true},
  };

  std::cout << "=== async starts and fail-stop crashes, local feedback on G(" << n
            << ", 1/2), " << base.trials << " trials/scenario ===\n\n";
  support::Table table({"scenario", "rounds mean", "valid", "indep viol/trial",
                        "uncovered/trial"});
  for (const Scenario& scenario : scenarios) {
    const harness::TrialStats stats = run_scenario(scenario, n, base);
    const auto trials = static_cast<double>(stats.trials);
    table.new_row()
        .cell(scenario.label)
        .cell(stats.rounds.mean())
        .cell(std::to_string(stats.valid) + "/" + std::to_string(stats.trials))
        .cell(static_cast<double>(stats.independence_violations) / trials, 3)
        .cell(static_cast<double>(stats.uncovered_nodes) / trials, 3);
  }
  table.print(std::cout);
  std::cout << "\ncsv:\n";
  table.write_csv(std::cout);
  std::cout << "\nexpectation: without keep-alive, staggered wake-ups cause independence\n"
               "violations; with the DISC'11 keep-alive rule every scenario without\n"
               "crashes stays 100% valid, and crashes cost only the crashed nodes'\n"
               "neighbourhoods (uncovered nodes), never independence.\n";
  return 0;
}

// Scaffolding shared by the BENCH_core.json drivers (bench_frontier,
// bench_batch): best-of-N wall timing and the JSON report envelope.  The
// envelope — header fields incl. git revision + compiler, a "results"
// array, the stdout-echo + --out file handling — must stay in one place:
// scripts/bench_core.sh merges the reports, so a format change applied to
// only one driver would silently skew the merged BENCH_core.json.
#pragma once

#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "support/phase_timer.hpp"

namespace beepmis::benchcommon {

template <typename Run>
double best_wall_ms(int reps, Run&& run) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    run();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

[[nodiscard]] inline std::string json_string(const std::string& s) {
  return "\"" + s + "\"";  // bench values contain no characters needing escapes
}

/// Snapshot-and-reset of the per-phase timing counters as a row fragment:
/// `, "phase_ns": {"beep/emit": 1234, ...}`.  Empty in a normal build
/// (BEEPMIS_PHASE_TIMERS off — the registry never fills), so rows only
/// carry phase_ns when the timers were compiled in; downstream tooling
/// treats the field as optional.  Call support::reset_phase_timers()
/// before a timed section and this right after it, so the fragment covers
/// exactly that section's reps (warm-up and verification runs excluded).
[[nodiscard]] inline std::string phase_ns_fragment() {
  const std::vector<support::PhaseStat> stats = support::snapshot_phase_timers();
  support::reset_phase_timers();
  if (stats.empty()) return {};
  std::ostringstream out;
  out << ", \"phase_ns\": {";
  for (std::size_t i = 0; i < stats.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << stats[i].name << "\": " << stats[i].total_ns;
  }
  out << "}";
  return out.str();
}

/// Default-ostream formatting (like the row writers), not std::to_string's
/// fixed six decimals.
template <typename Number>
[[nodiscard]] std::string json_number(Number value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

/// One bench report: ordered header fields (values are raw JSON) plus
/// pre-rendered row objects under "results".  Every report automatically
/// leads with the bench name and records the git revision (normally
/// injected by scripts/bench_core.sh via --git-rev) and the compiler.
struct JsonReport {
  std::string bench;
  std::string git_rev = "unknown";
  std::vector<std::pair<std::string, std::string>> header;  ///< key -> raw JSON
  std::vector<std::string> rows;                            ///< rendered objects

  void write(std::ostream& out) const {
    out << "{\n  \"bench\": " << json_string(bench)
        << ",\n  \"git_rev\": " << json_string(git_rev)
        << ",\n  \"compiler\": " << json_string(__VERSION__);
    for (const auto& [key, value] : header) {
      out << ",\n  \"" << key << "\": " << value;
    }
    out << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out << "    " << rows[i] << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

  /// Echoes the report to `echo` and, unless out_path is "-", also writes
  /// it to the file.  Returns false (after complaining) when the file
  /// cannot be opened.
  bool write_to(const std::string& out_path, std::ostream& echo) const {
    write(echo);
    if (out_path == "-") return true;
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << '\n';
      return false;
    }
    write(out);
    echo << "wrote " << out_path << '\n';
    return true;
  }
};

}  // namespace beepmis::benchcommon

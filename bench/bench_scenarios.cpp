// Fault-scenario SLA benchmark: one adversarial row per protocol, run
// through the trial harness (which routes every scenario+recovery workload
// to the scalar simulator — the wall_ms column prices that fallback), with
// recovery-time quantiles as the distribution-level evidence.
//
// Row set:
//   self-healing    x uniform-crash   the non-adversarial baseline
//   self-healing    x target-mis      adaptive: kill fresh MIS members
//   self-healing    x budgeted        adaptive: greedy worst-case kills
//   self-healing    x churn           Poisson crash+revive stream
//   local-feedback  x target-mis      no healing rule: SLA never met
//   global-sweep    x target-degree   static hub kills
//   lf-exact        x target-boundary static partition-boundary kills
//
// The uniform-crash baseline is budget-matched to target-mis (same expected
// crash count), so the recovery_p99 gap between the two rows isolates what
// *adaptivity* costs the protocol, not merely more crashes.
//
// Contributes the "faults" section of BENCH_core.json (scripts/bench_core.sh).
//
//   ./bench_scenarios [--n=1000] [--avg-degree=8] [--trials=24]
//                     [--tail-rounds=160] [--reps=2] [--seed=2026]
//                     [--threads=0] [--git-rev=<rev>] [--out=BENCH_scenarios.json]
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/runner.hpp"
#include "graph/generators.hpp"
#include "mis/exact_feedback.hpp"
#include "mis/global_schedule.hpp"
#include "mis/local_feedback.hpp"
#include "mis/self_healing.hpp"
#include "sim/scenario.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace {

using namespace beepmis;

struct Case {
  std::string protocol;
  std::string scenario;
  harness::BeepProtocolFactory protocols;
  harness::FaultScenarioFactory scenarios;
};

struct Measurement {
  std::string protocol;
  std::string scenario;
  std::size_t trials = 0;
  std::size_t valid = 0;
  std::size_t disruptions = 0;
  std::size_t recovered = 0;
  std::size_t unrecovered = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  double mean_rounds = 0;
  double wall_ms = 0;
};

harness::BeepProtocolFactory protocol_factory(const std::string& name) {
  if (name == "self-healing") {
    return [] { return std::make_unique<mis::SelfHealingLocalFeedbackMis>(); };
  }
  if (name == "local-feedback") {
    return [] { return std::make_unique<mis::LocalFeedbackMis>(); };
  }
  if (name == "global-sweep") {
    return [] {
      return std::make_unique<mis::GlobalScheduleMis>(mis::make_global_sweep_mis());
    };
  }
  return [] { return std::make_unique<mis::ExactLocalFeedbackMis>(); };
}

}  // namespace

int main(int argc, char** argv) {
  support::Options options;
  options.add("n", "1000", "nodes in the sparse G(n, d/n) instance");
  options.add("avg-degree", "8", "average degree");
  options.add("trials", "24", "trials per (protocol, scenario) row");
  options.add("tail-rounds", "160", "maintenance tail (run_until_round)");
  options.add("reps", "2", "timing repetitions (best-of)");
  options.add("seed", "2026", "base seed");
  options.add("threads", "0", "worker threads (0 = all cores)");
  options.add("git-rev", "unknown", "git revision recorded in the JSON header");
  options.add("out", "BENCH_scenarios.json", "JSON report path ('-' = stdout only)");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_scenarios");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_scenarios");
    return 0;
  }

  const auto n = static_cast<std::size_t>(options.get_int("n"));
  const double avg_degree = options.get_double("avg-degree");
  const auto trials = static_cast<std::size_t>(options.get_int("trials"));
  const auto tail = static_cast<std::size_t>(options.get_int("tail-rounds"));
  const int reps = static_cast<int>(options.get_int("reps"));
  const std::uint64_t seed = options.get_u64("seed");

  // Crash budget shared by the budget-matched rows.  The static windows sit
  // well past the formation phase (convergence takes ~log n rounds; 3/8 of
  // the tail clears it at every size measured here) so the baseline's
  // recovery samples measure *healing* of isolated post-formation crashes,
  // not the tail of initial convergence — overlapping formation inflates
  // uniform-crash recovery times and buries the adaptive-vs-random signal.
  // The windows still end at 3/4 of the tail so recovery can finish before
  // the run ends.
  const std::size_t budget = std::max<std::size_t>(8, n / 64);
  // target-mis preys on *fresh* joiners, so it must be armed while the MIS
  // is still forming — from the natural-convergence window, not the tail.
  const std::uint32_t adaptive_start = 2;
  const auto lo = static_cast<std::uint32_t>(std::max<std::size_t>(5, 3 * tail / 8));
  const auto hi = static_cast<std::uint32_t>(std::max<std::size_t>(lo + 8, 3 * tail / 4));
  const auto churn_hi = hi;
  // The baseline burst-crashes its whole budget inside 8 rounds, mirroring
  // the shape of the adaptive mass-kill: recovery samples close at global
  // quiescence, so a schedule dribbled across the tail would measure the
  // arrival stream's lulls instead of healing — with matched budget AND
  // window, victim *choice* is the only variable separating the rows.
  const auto uniform_hi = static_cast<std::uint32_t>(lo + 7);
  const double uniform_fraction =
      static_cast<double>(budget) / static_cast<double>(n);

  const std::vector<Case> cases = {
      {"self-healing", "uniform-crash", protocol_factory("self-healing"),
       [=] {
         return std::make_unique<sim::UniformRandomCrash>(
             sim::UniformRandomCrashConfig{uniform_fraction, lo, uniform_hi, seed + 1});
       }},
      {"self-healing", "target-mis", protocol_factory("self-healing"),
       [=] {
         return std::make_unique<sim::TargetMisMembers>(
             sim::TargetMisMembersConfig{adaptive_start, budget, 1.0, seed + 2});
       }},
      {"self-healing", "budgeted", protocol_factory("self-healing"),
       [=] {
         // Pace the greedy adversary so its whole budget is spent within a
         // quarter of the tail — an attack that outlives the run would
         // measure truncation, not recovery.
         const auto per_round =
             static_cast<unsigned>(std::max<std::size_t>(1, 4 * budget / tail));
         return std::make_unique<sim::BudgetedAdversary>(
             sim::BudgetedAdversaryConfig{budget, lo, per_round});
       }},
      {"self-healing", "churn", protocol_factory("self-healing"),
       [=] {
         return std::make_unique<sim::ChurnStream>(
             sim::ChurnStreamConfig{1.0, 8.0, lo, churn_hi, seed + 3});
       }},
      {"local-feedback", "target-mis", protocol_factory("local-feedback"),
       [=] {
         return std::make_unique<sim::TargetMisMembers>(
             sim::TargetMisMembersConfig{adaptive_start, budget, 1.0, seed + 2});
       }},
      {"global-sweep", "target-degree", protocol_factory("global-sweep"),
       [=] {
         return std::make_unique<sim::TargetHighDegree>(
             sim::TargetHighDegreeConfig{budget, lo, hi, seed + 4});
       }},
      {"local-feedback-exact", "target-boundary", protocol_factory("local-feedback-exact"),
       [=] {
         return std::make_unique<sim::TargetBoundary>(
             sim::TargetBoundaryConfig{2, 0.25, lo, hi, seed + 5});
       }},
  };

  harness::TrialConfig base;
  base.trials = trials;
  base.base_seed = seed;
  base.threads = static_cast<unsigned>(options.get_int("threads"));
  base.shared_graph = true;
  base.sim.mis_keepalive = true;
  base.sim.run_until_round = tail;
  base.sim.max_rounds = std::max<std::size_t>(800, 4 * tail);
  base.sim.track_recovery = true;

  const harness::GraphFactory graphs = [n, avg_degree](support::Xoshiro256StarStar& rng) {
    return graph::gnp(static_cast<graph::NodeId>(n),
                      avg_degree / static_cast<double>(n), rng);
  };

  std::cout << "=== recovery SLAs under fault scenarios, sparse G(" << n << ", "
            << avg_degree << "/n), " << trials << " trials/row, tail " << tail
            << " rounds ===\n\n";

  std::vector<Measurement> results;
  support::Table table({"protocol", "scenario", "valid", "disruptions", "unrecovered",
                        "rec p50", "rec p95", "rec p99", "wall ms"});
  for (const Case& c : cases) {
    harness::TrialConfig config = base;
    config.scenario = c.scenarios;
    harness::TrialStats stats;
    const double wall_ms = benchcommon::best_wall_ms(reps, [&] {
      stats = harness::run_beep_trials(graphs, c.protocols, config);
    });

    Measurement m;
    m.protocol = c.protocol;
    m.scenario = c.scenario;
    m.trials = stats.trials;
    m.valid = stats.valid;
    m.disruptions = stats.disruptions;
    m.recovered = stats.recovery_rounds.size();
    m.unrecovered = stats.unrecovered_disruptions;
    const harness::TrialStats::RecoveryQuantiles q = stats.recovery_quantiles();
    m.p50 = q.p50;
    m.p95 = q.p95;
    m.p99 = q.p99;
    m.mean_rounds = stats.rounds.mean();
    m.wall_ms = wall_ms;
    results.push_back(m);

    table.new_row()
        .cell(m.protocol)
        .cell(m.scenario)
        .cell(std::to_string(m.valid) + "/" + std::to_string(m.trials))
        .cell(m.disruptions)
        .cell(m.unrecovered)
        .cell(m.p50, 1)
        .cell(m.p95, 1)
        .cell(m.p99, 1)
        .cell(m.wall_ms, 2);
  }
  std::cout << table.to_string() << '\n';

  benchcommon::JsonReport report;
  report.bench = "bench_scenarios";
  report.git_rev = options.get("git-rev");
  report.header = {
      {"seed", benchcommon::json_number(seed)},
      {"avg_degree", benchcommon::json_number(avg_degree)},
      {"trials", benchcommon::json_number(trials)},
      {"tail_rounds", benchcommon::json_number(tail)},
      {"crash_budget", benchcommon::json_number(budget)},
  };
  for (const Measurement& m : results) {
    std::ostringstream row;
    row << "{\"workload\": \"sla\", \"protocol\": \"" << m.protocol
        << "\", \"impl\": \"" << m.scenario << "\", \"n\": " << n
        << ", \"trials\": " << m.trials << ", \"valid\": " << m.valid
        << ", \"disruptions\": " << m.disruptions << ", \"recovered\": " << m.recovered
        << ", \"unrecovered\": " << m.unrecovered << ", \"recovery_p50\": " << m.p50
        << ", \"recovery_p95\": " << m.p95 << ", \"recovery_p99\": " << m.p99
        << ", \"mean_rounds\": " << m.mean_rounds << ", \"wall_ms\": " << m.wall_ms
        << "}";
    report.rows.push_back(row.str());
  }
  return report.write_to(options.get("out"), std::cout) ? 0 : 1;
}

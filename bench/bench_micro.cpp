// E8: micro-benchmarks of the substrate itself (google-benchmark): graph
// generation, simulator round throughput, full MIS runs and verification.
// These are the ablation data for the engineering choices in DESIGN.md
// (CSR adjacency, episode-counted beeps, two-exchange rounds).
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mis/mis.hpp"

namespace {

using namespace beepmis;

void BM_GnpGeneration(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto rng = support::Xoshiro256StarStar(seed++);
    benchmark::DoNotOptimize(graph::gnp(n, 0.5, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_GnpGeneration)->Arg(100)->Arg(1000);

void BM_GnpSparseGeneration(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto rng = support::Xoshiro256StarStar(seed++);
    benchmark::DoNotOptimize(graph::gnp(n, 4.0 / static_cast<double>(n), rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_GnpSparseGeneration)->Arg(1000)->Arg(100000);

void BM_LocalFeedbackRun(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  auto graph_rng = support::Xoshiro256StarStar(7);
  const graph::Graph g = graph::gnp(n, 0.5, graph_rng);
  std::uint64_t seed = 1;
  std::size_t rounds = 0;
  for (auto _ : state) {
    const sim::RunResult result = mis::run_local_feedback(g, seed++);
    rounds += result.rounds;
    benchmark::DoNotOptimize(result.total_beeps);
  }
  state.counters["rounds/run"] =
      static_cast<double>(rounds) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_LocalFeedbackRun)->Arg(100)->Arg(500)->Arg(1000);

void BM_GlobalSweepRun(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  auto graph_rng = support::Xoshiro256StarStar(7);
  const graph::Graph g = graph::gnp(n, 0.5, graph_rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mis::run_global_sweep(g, seed++).rounds);
  }
}
BENCHMARK(BM_GlobalSweepRun)->Arg(100)->Arg(500);

void BM_LubyRun(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  auto graph_rng = support::Xoshiro256StarStar(7);
  const graph::Graph g = graph::gnp(n, 0.5, graph_rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mis::run_luby(g, seed++).rounds);
  }
}
BENCHMARK(BM_LubyRun)->Arg(100)->Arg(500)->Arg(1000);

void BM_LocalFeedbackSparse(benchmark::State& state) {
  // Sparse large graphs: the regime where per-round cost ~ active degree
  // sum matters (ad hoc network scale).
  const auto n = static_cast<graph::NodeId>(state.range(0));
  auto graph_rng = support::Xoshiro256StarStar(9);
  const graph::Graph g = graph::gnp(n, 8.0 / static_cast<double>(n), graph_rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mis::run_local_feedback(g, seed++).rounds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_LocalFeedbackSparse)->Arg(10000)->Arg(100000);

void BM_Verifier(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  auto graph_rng = support::Xoshiro256StarStar(11);
  const graph::Graph g = graph::gnp(n, 0.5, graph_rng);
  const sim::RunResult result = mis::run_local_feedback(g, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mis::verify_mis_run(g, result).valid());
  }
}
BENCHMARK(BM_Verifier)->Arg(1000);

void BM_GreedyMis(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  auto graph_rng = support::Xoshiro256StarStar(13);
  const graph::Graph g = graph::gnp(n, 0.5, graph_rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::greedy_mis(g).size());
  }
}
BENCHMARK(BM_GreedyMis)->Arg(1000);

}  // namespace

// Round-count distributions (the error bars of Figure 3, in full): per-run
// histograms of termination time for the global sweep and local feedback
// on G(n, 1/2), plus tail statistics backing Theorem 2's w.h.p. claim
// (the tail decays geometrically, so the 99th percentile sits within a
// small factor of the median).
//
//   ./bench_distribution [--n=500] [--runs=400]
#include <algorithm>
#include <iostream>
#include <vector>

#include "graph/generators.hpp"
#include "mis/mis.hpp"
#include "support/options.hpp"
#include "support/stats.hpp"

namespace {

using namespace beepmis;

void report(const std::string& label, std::vector<double> rounds) {
  const support::Summary summary = support::summarize(rounds);
  std::sort(rounds.begin(), rounds.end());
  const double p99 = support::quantile_sorted(rounds, 0.99);

  std::cout << label << ":\n"
            << "  mean " << summary.mean << ", sd " << summary.stddev << ", median "
            << summary.median << ", p99 " << p99 << ", max " << summary.max
            << "  (p99/median = " << p99 / summary.median << ")\n\n";
  support::Histogram histogram(summary.min, summary.max + 1.0,
                               std::min<std::size_t>(18, rounds.size()));
  for (const double r : rounds) histogram.push(r);
  std::cout << histogram.render(48) << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  support::Options options;
  options.add("n", "500", "graph size");
  options.add("runs", "400", "independent runs per algorithm");
  options.add("seed", "20130804", "base seed");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_distribution");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_distribution");
    return 0;
  }

  const auto n = static_cast<graph::NodeId>(options.get_int("n"));
  const auto runs = static_cast<std::size_t>(options.get_int("runs"));
  const std::uint64_t seed = options.get_u64("seed");

  std::cout << "=== termination-time distributions on G(" << n << ", 1/2), " << runs
            << " runs ===\n\n";

  std::vector<double> local, global;
  local.reserve(runs);
  global.reserve(runs);
  for (std::size_t t = 0; t < runs; ++t) {
    auto rng = support::Xoshiro256StarStar(support::mix_seed(seed, t));
    const graph::Graph g = graph::gnp(n, 0.5, rng);
    local.push_back(static_cast<double>(mis::run_local_feedback(g, t).rounds));
    global.push_back(static_cast<double>(mis::run_global_sweep(g, t).rounds));
  }

  report("local feedback", std::move(local));
  report("global sweep", std::move(global));

  std::cout << "Theorem 2 (w.h.p. bound) predicts a geometric tail for the local\n"
               "algorithm: p99 within a small factor of the median, no extreme outliers.\n";
  return 0;
}

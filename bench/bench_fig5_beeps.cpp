// Reproduces Figure 5: mean number of beeps per node on G(n, 1/2) for n up
// to 200, 200 trials per point, global sweep vs local feedback.  The paper
// reports the global series growing with n while the local series stays
// near 1.1; §5 also reports ~1.1 on rectangular grid graphs, reproduced
// here as the E4 grid series.
//
//   ./bench_fig5_beeps [--trials=200] [--threads=0] [--quick]
#include <iostream>
#include <vector>

#include "exp/figures.hpp"
#include "exp/report.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace beepmis;

  support::Options options;
  options.add("trials", "200", "trials per point (paper: 200)");
  options.add("threads", "0", "worker threads (0 = all cores)");
  options.add("seed", "20130723", "base seed");
  options.add("quick", "false", "smaller grid of n values");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_fig5_beeps");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_fig5_beeps");
    return 0;
  }

  harness::ExperimentConfig config;
  config.trials = static_cast<std::size_t>(options.get_int("trials"));
  config.threads = static_cast<unsigned>(options.get_int("threads"));
  config.base_seed = options.get_u64("seed");

  std::vector<std::size_t> ns;
  std::vector<std::size_t> grid_sides;
  if (options.get_bool("quick")) {
    ns = {20, 60, 120, 200};
    grid_sides = {8, 14};
    config.trials = std::min<std::size_t>(config.trials, 30);
  } else {
    ns = {10, 20, 40, 60, 80, 100, 120, 140, 160, 180, 200};
    grid_sides = {8, 12, 16, 20, 24, 28};
  }

  std::cout << "=== Figure 5: mean beeps per node on G(n, 1/2), " << config.trials
            << " trials/point ===\n\n";
  const auto rows = harness::figure5_experiment(ns, config);
  harness::print_with_csv(std::cout, harness::figure5_table(rows));
  std::cout << harness::figure5_plot(rows) << '\n';

  std::cout << "paper expectation: the global series grows with n; the local series is\n"
               "flat near 1.1 beeps per node (Theorem 6: O(1) expected beeps).\n\n";

  std::cout << "=== E4: local-feedback beeps per node on rectangular grids (paper §5: "
               "~1.1) ===\n\n";
  const auto grid_rows = harness::grid_beeps_experiment(grid_sides, config);
  harness::print_with_csv(std::cout, harness::grid_beeps_table(grid_rows));
  return 0;
}

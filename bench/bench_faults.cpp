// E9 (extension): beep-loss fault injection for the local-feedback
// algorithm.  The paper's correctness argument assumes reliable beeps;
// this bench quantifies degradation when each beep delivery is dropped
// independently with probability `loss`.
//
//   ./bench_faults [--n=200] [--trials=50] [--threads=0]
#include <iostream>
#include <vector>

#include "exp/figures.hpp"
#include "exp/report.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace beepmis;

  support::Options options;
  options.add("n", "200", "graph size");
  options.add("trials", "50", "trials per loss level");
  options.add("threads", "0", "worker threads (0 = all cores)");
  options.add("seed", "20130727", "base seed");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_faults");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_faults");
    return 0;
  }

  harness::ExperimentConfig config;
  config.trials = static_cast<std::size_t>(options.get_int("trials"));
  config.threads = static_cast<unsigned>(options.get_int("threads"));
  config.base_seed = options.get_u64("seed");
  const auto n = static_cast<std::size_t>(options.get_int("n"));

  const std::vector<double> losses{0.0, 0.001, 0.01, 0.05, 0.1, 0.2};

  std::cout << "=== E9: local feedback under beep loss, G(" << n << ", 1/2), "
            << config.trials << " trials/level (round cap 2000) ===\n\n";
  const auto rows = harness::fault_experiment(n, losses, config);
  harness::print_with_csv(std::cout, harness::fault_table(rows));
  std::cout << "notes: 'valid' requires termination plus a perfect MIS;\n"
               "independence violations arise when two adjacent winners both miss\n"
               "each other's intent beep; uncovered nodes miss a join announcement.\n";
  return 0;
}

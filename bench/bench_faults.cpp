// E9 (extension): beep-loss fault injection for the local-feedback
// algorithm.  The paper's correctness argument assumes reliable beeps;
// this bench quantifies degradation when each beep delivery is dropped
// independently with probability `loss`.
//
// With --scenario=<name> the sweep additionally subjects every loss level
// to a crash adversary (sim/scenario.hpp) on the self-healing protocol,
// reporting recovery-time SLA quantiles instead of the plain columns.
//
//   ./bench_faults [--n=200] [--trials=50] [--threads=0]
//   ./bench_faults --scenario=target-mis --scenario-budget=16
#include <iostream>
#include <vector>

#include "cli/registry.hpp"
#include "exp/figures.hpp"
#include "exp/report.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace beepmis;

  support::Options options;
  options.add("n", "200", "graph size");
  options.add("trials", "50", "trials per loss level");
  options.add("threads", "0", "worker threads (0 = all cores)");
  options.add("seed", "20130727", "base seed");
  options.add("scenario", "none", "crash adversary layered on the loss sweep");
  options.add("scenario-rate", "0.05", "scenario crash fraction / rate / probability");
  options.add("scenario-lo", "5", "scenario crash-window start round");
  options.add("scenario-hi", "25", "scenario crash-window end round");
  options.add("scenario-budget", "16", "scenario crash budget / target count");
  options.add("scenario-seed", "1", "scenario rng seed");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_faults");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_faults") << '\n' << cli::scenario_help();
    return 0;
  }

  harness::ExperimentConfig config;
  config.trials = static_cast<std::size_t>(options.get_int("trials"));
  config.threads = static_cast<unsigned>(options.get_int("threads"));
  config.base_seed = options.get_u64("seed");
  const auto n = static_cast<std::size_t>(options.get_int("n"));

  const std::vector<double> losses{0.0, 0.001, 0.01, 0.05, 0.1, 0.2};

  cli::ScenarioSpec sspec;
  sspec.name = options.get("scenario");
  sspec.rate = options.get_double("scenario-rate");
  sspec.round_lo = static_cast<std::uint32_t>(options.get_int("scenario-lo"));
  sspec.round_hi = static_cast<std::uint32_t>(options.get_int("scenario-hi"));
  sspec.budget = static_cast<std::size_t>(options.get_int("scenario-budget"));
  sspec.seed = options.get_u64("scenario-seed");

  if (sspec.name != "none") {
    const auto prototype = cli::make_scenario(sspec);
    const harness::FaultScenarioFactory scenario = [prototype] {
      return prototype->clone();
    };
    std::cout << "=== E9 + adversary '" << sspec.name
              << "': self-healing under beep loss, G(" << n << ", 1/2), "
              << config.trials << " trials/level (maintenance tail 150) ===\n\n";
    const auto rows = harness::fault_scenario_experiment(n, losses, scenario, config);
    harness::print_with_csv(std::cout, harness::fault_recovery_table(rows));
    std::cout << "notes: a disruption opens when a crash or revive perturbs the MIS\n"
                 "and closes at the first quiescent valid state; 'rec pXX' are\n"
                 "quantiles over all per-disruption recovery times (rounds).\n";
    return 0;
  }

  std::cout << "=== E9: local feedback under beep loss, G(" << n << ", 1/2), "
            << config.trials << " trials/level (round cap 2000) ===\n\n";
  const auto rows = harness::fault_experiment(n, losses, config);
  harness::print_with_csv(std::cout, harness::fault_table(rows));
  std::cout << "notes: 'valid' requires termination plus a perfect MIS;\n"
               "independence violations arise when two adjacent winners both miss\n"
               "each other's intent beep; uncovered nodes miss a join announcement.\n";
  return 0;
}

// Sharded single-run benchmark: scalar BeepSimulator vs ShardedSimulator
// across shard counts on one large instance — the "one huge graph, many
// cores" regime the trial-level parallelism cannot touch — plus the
// sharded × batched composition (ShardedBatchSimulator): 64 statistical
// lanes per exchange swept by K shards at once.
//
// Every kScalarOrder row is cross-checked bit-identical against the scalar
// run before timing (the sharded determinism contract), so the ratio
// compares two executions of the same computation.  The jump()-partitioned
// opt-in mode (impl suffix "-jump") is only verified for MIS validity: it
// trades scalar identity for fully parallel rng draws (see
// sim/sharded.hpp).  The statistical rows (mode "statistical") have no
// scalar twin by design: every lane is validity-checked before timing,
// the k = 1 sharded-batched run is additionally cross-checked
// bit-identical to the batched statistical run (the engine-unification
// oracle), and their speedup column is *per-trial* — scalar wall time
// times the lane count over the batch wall time.
//
// Speedups depend on the machine: the per-run worker pool has one thread
// per shard, so rows report hardware_threads in the header — on a 1-core
// box the k > 1 rows measure pure overhead, not speedup.
//
// A build configured with -DBEEPMIS_PHASE_TIMERS=ON adds an optional
// "phase_ns" object to every row: CPU-nanoseconds per simulator phase
// (emit/deliver/react/faults) over that row's timing reps.
//
// Workloads:
//   converge        run to natural termination (~O(log n) rounds); the
//                   emit Bernoullis are carved serially but delivery and
//                   react parallelise.
//   keepalive-tail  mis_keepalive + run_until_round static tail (skipped
//                   above --tail-max-n: the cached keep-alive sweep is so
//                   cheap that barrier overhead dominates at huge n).
//
//   ./bench_shard [--n=1000000] [--avg-degree=8] [--shards=1,2,8]
//                 [--tail-rounds=500] [--tail-max-n=200000] [--reps=2]
//                 [--seed=2026] [--git-rev=<rev>] [--out=BENCH_shard.json]
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "mis/local_feedback.hpp"
#include "mis/verifier.hpp"
#include "sim/batch.hpp"
#include "sim/beep.hpp"
#include "sim/sharded.hpp"
#include "sim/sharded_batch.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace beepmis;

struct Measurement {
  std::string workload;
  std::string impl;
  std::string mode;  ///< draw-entropy mode: "scalar-order" or "statistical"
  std::size_t n = 0;
  unsigned shards = 0;
  unsigned lanes = 1;  ///< trials per timed run (64 for the batched rows)
  double wall_ms = 0.0;
  double speedup_vs_scalar = 1.0;
  /// Partition locality of the sharded rows (0 for the scalar row):
  /// edges crossing shard lines and nodes with out-of-shard neighbours —
  /// the cross-shard merge traffic the speedup has to survive.
  std::size_t cut_edges = 0;
  std::size_t boundary_nodes = 0;
  std::string phase;  ///< pre-rendered ", \"phase_ns\": {...}" or empty
};

using benchcommon::best_wall_ms;

/// Parses --shards; exits with a clear message on junk (a non-numeric
/// token, 0, or a count the simulator would reject) rather than recording
/// a mislabeled row or dying in an uncaught std::stoul throw.
std::vector<unsigned> parse_shard_list(const std::string& csv) {
  std::vector<unsigned> shards;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    unsigned long value = 0;
    std::size_t consumed = 0;
    try {
      value = std::stoul(item, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != item.size() || value == 0 ||
        value > sim::ShardedSimulator::kMaxShards) {
      std::cerr << "--shards: '" << item << "' is not a shard count in [1, "
                << sim::ShardedSimulator::kMaxShards << "]\n";
      std::exit(1);
    }
    shards.push_back(static_cast<unsigned>(value));
  }
  if (shards.empty()) shards = {1, 2, 8};
  return shards;
}

void check_same(const sim::RunResult& a, const sim::RunResult& b, const char* what) {
  if (a.rounds != b.rounds || a.total_beeps != b.total_beeps ||
      a.terminated != b.terminated || a.status != b.status ||
      a.beep_counts != b.beep_counts) {
    std::cerr << "FATAL: scalar and sharded runs diverged (" << what << ")\n";
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  support::Options options;
  options.add("n", "1000000", "nodes in the sparse G(n, d/n) instance");
  options.add("avg-degree", "8", "average degree");
  options.add("shards", "1,2,8", "comma-separated shard counts to measure");
  options.add("tail-rounds", "500", "run_until_round for keepalive-tail");
  options.add("tail-max-n", "200000", "skip keepalive-tail above this n");
  options.add("reps", "2", "timing repetitions (best-of)");
  options.add("seed", "2026", "run seed");
  options.add("git-rev", "unknown", "git revision recorded in the JSON header");
  options.add("out", "BENCH_shard.json", "JSON report path ('-' = stdout only)");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_shard");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_shard");
    return 0;
  }

  const auto n = static_cast<graph::NodeId>(options.get_int("n"));
  const double avg_degree = options.get_double("avg-degree");
  const std::vector<unsigned> shard_counts = parse_shard_list(options.get("shards"));
  const auto tail_rounds = static_cast<std::size_t>(options.get_int("tail-rounds"));
  const auto tail_max_n = static_cast<std::size_t>(options.get_int("tail-max-n"));
  const int reps = static_cast<int>(options.get_int("reps"));
  const std::uint64_t seed = options.get_u64("seed");
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());

  auto graph_rng = support::Xoshiro256StarStar(seed);
  const graph::Graph g = graph::gnp(n, avg_degree / static_cast<double>(n), graph_rng);
  std::cout << "graph: " << g.describe() << ", hardware threads: " << hardware << "\n\n";

  std::vector<Measurement> results;
  support::Table table(
      {"workload", "impl", "mode", "shards", "lanes", "cut edges", "wall ms", "speedup"});
  const auto record = [&](const std::string& workload, const std::string& impl,
                          const char* mode, unsigned shards, unsigned lanes, double ms,
                          double speedup, std::size_t cut_edges, std::size_t boundary_nodes,
                          std::string phase) {
    results.push_back({workload, impl, mode, n, shards, lanes, ms, speedup, cut_edges,
                       boundary_nodes, std::move(phase)});
    table.new_row()
        .cell(workload)
        .cell(impl)
        .cell(mode)
        .cell(static_cast<std::size_t>(shards))
        .cell(static_cast<std::size_t>(lanes))
        .cell(cut_edges)
        .cell(ms)
        .cell(speedup);
  };
  const auto partition_stats = [](const graph::Partition& p, std::size_t& cut,
                                  std::size_t& boundary) {
    cut = p.cut_edges();
    boundary = 0;
    for (std::uint32_t s = 0; s < p.shard_count(); ++s) {
      boundary += p.boundary_nodes(s).size();
    }
  };
  /// Best-of-`reps` wall time for `run`, with the per-phase counters reset
  /// going in and snapshotted coming out (so phase_out covers exactly this
  /// row's reps — verification runs excluded).
  const auto timed = [&](int reps_for_row, std::string& phase_out, auto&& run) {
    support::reset_phase_timers();
    const double ms = best_wall_ms(reps_for_row, run);
    phase_out = benchcommon::phase_ns_fragment();
    return ms;
  };

  const auto measure_workload = [&](const std::string& workload,
                                    const sim::SimConfig& config) {
    sim::BeepSimulator scalar_sim(g, config);
    mis::LocalFeedbackMis scalar_protocol;
    const sim::RunResult reference =
        scalar_sim.run(scalar_protocol, support::Xoshiro256StarStar(seed));
    std::string phase;
    const double scalar_ms = timed(reps, phase, [&] {
      (void)scalar_sim.run(scalar_protocol, support::Xoshiro256StarStar(seed));
    });
    record(workload, "scalar", "scalar-order", 1, 1, scalar_ms, 1.0, 0, 0, phase);

    for (const unsigned k : shard_counts) {
      sim::ShardedSimulator sharded_sim(g, k, config);
      mis::LocalFeedbackMis protocol;
      check_same(reference, sharded_sim.run(protocol, support::Xoshiro256StarStar(seed)),
                 (workload + " k=" + std::to_string(k)).c_str());
      const double ms = timed(reps, phase, [&] {
        (void)sharded_sim.run(protocol, support::Xoshiro256StarStar(seed));
      });
      std::size_t cut = 0, boundary = 0;
      partition_stats(sharded_sim.partition(), cut, boundary);
      record(workload, "sharded-k" + std::to_string(k), "scalar-order", k, 1, ms,
             scalar_ms / ms, cut, boundary, phase);
    }

    // jump()-partitioned streams: no scalar identity (validity-checked
    // instead), no serial rng carving.  Reliable channel only.
    if (config.beep_loss_probability == 0.0) {
      const unsigned k = shard_counts.back();
      sim::ShardedSimulator jump_sim(g, k, config,
                                     sim::ShardedSimulator::RngMode::kPartitionedStreams);
      mis::LocalFeedbackMis protocol;
      const sim::RunResult result =
          jump_sim.run(protocol, support::Xoshiro256StarStar(seed));
      const mis::VerificationReport report = mis::verify_mis_run(g, result);
      if (config.run_until_round == 0 && (!result.terminated || !report.valid())) {
        std::cerr << "FATAL: partitioned-stream run invalid (" << workload << ": "
                  << report.summary() << ")\n";
        return 1;
      }
      const double ms = timed(reps, phase, [&] {
        (void)jump_sim.run(protocol, support::Xoshiro256StarStar(seed));
      });
      std::size_t cut = 0, boundary = 0;
      partition_stats(jump_sim.partition(), cut, boundary);
      record(workload, "sharded-k" + std::to_string(k) + "-jump", "scalar-order", k, 1,
             ms, scalar_ms / ms, cut, boundary, phase);
    }

    // Sharded × batched: 64 statistical lanes per run, swept by K shards.
    // No scalar twin by design — every lane must verify as a valid MIS
    // (both workloads here are lossless and crash-free), and at k = 1 the
    // run must be bit-identical to the batched statistical run, lane for
    // lane.  The speedup column is per-trial: one batch carries 64 trials,
    // so the fair scalar cost is scalar_ms * lanes.
    if (config.beep_loss_probability == 0.0) {
      const unsigned lanes = sim::kMaxBatchLanes;
      const std::unique_ptr<sim::BatchProtocol> kernel =
          scalar_protocol.make_batch_protocol(sim::BatchRngMode::kStatisticalLanes);
      if (!kernel) {
        std::cerr << "FATAL: local-feedback lost its statistical kernel\n";
        return 1;
      }
      sim::BatchSimulator batch_sim(config, sim::BatchRngMode::kStatisticalLanes);
      const std::vector<sim::RunResult> batched_ref =
          batch_sim.run(g, *kernel, support::Xoshiro256StarStar(seed), lanes);
      for (const sim::RunResult& r : batched_ref) {
        if (!mis::is_valid_mis_run(g, r)) {
          std::cerr << "FATAL: batched statistical lane invalid (" << workload << ")\n";
          return 1;
        }
      }
      const double batch_ms = timed(reps, phase, [&] {
        (void)batch_sim.run(g, *kernel, support::Xoshiro256StarStar(seed), lanes);
      });
      record(workload, "batched", "statistical", 1, lanes, batch_ms,
             scalar_ms * lanes / batch_ms, 0, 0, phase);

      for (const unsigned k : shard_counts) {
        sim::ShardedBatchSimulator sb_sim(g, k, config);
        const std::vector<sim::RunResult> sb_ref =
            sb_sim.run(*kernel, support::Xoshiro256StarStar(seed), lanes);
        for (std::size_t lane = 0; lane < sb_ref.size(); ++lane) {
          if (k == 1) {
            check_same(batched_ref[lane], sb_ref[lane],
                       (workload + " sharded-batched k=1 lane " + std::to_string(lane))
                           .c_str());
          } else if (!mis::is_valid_mis_run(g, sb_ref[lane])) {
            std::cerr << "FATAL: sharded-batched lane " << lane << " invalid ("
                      << workload << " k=" << k << ")\n";
            return 1;
          }
        }
        const double ms = timed(reps, phase, [&] {
          (void)sb_sim.run(*kernel, support::Xoshiro256StarStar(seed), lanes);
        });
        std::size_t cut = 0, boundary = 0;
        partition_stats(sb_sim.partition(), cut, boundary);
        record(workload, "sharded-k" + std::to_string(k) + "-batched", "statistical", k,
               lanes, ms, scalar_ms * lanes / ms, cut, boundary, phase);
      }
    }
    return 0;
  };

  sim::SimConfig converge;
  if (measure_workload("converge", converge) != 0) return 1;
  if (n <= tail_max_n) {
    sim::SimConfig keepalive_tail;
    keepalive_tail.mis_keepalive = true;
    keepalive_tail.run_until_round = tail_rounds;
    if (measure_workload("keepalive-tail", keepalive_tail) != 0) return 1;
  }

  std::cout << table.to_string() << '\n';

  benchcommon::JsonReport report;
  report.bench = "bench_shard";
  report.git_rev = options.get("git-rev");
  report.header = {
      {"seed", benchcommon::json_number(seed)},
      {"avg_degree", benchcommon::json_number(avg_degree)},
      {"hardware_threads", benchcommon::json_number(hardware)},
  };
  for (const Measurement& m : results) {
    std::ostringstream row;
    row << "{\"workload\": \"" << m.workload << "\", \"protocol\": \"local-feedback\""
        << ", \"impl\": \"" << m.impl << "\", \"mode\": \"" << m.mode
        << "\", \"n\": " << m.n << ", \"shards\": " << m.shards
        << ", \"lanes\": " << m.lanes << ", \"cut_edges\": " << m.cut_edges
        << ", \"boundary_nodes\": " << m.boundary_nodes
        << ", \"wall_ms\": " << m.wall_ms
        << ", \"speedup_vs_scalar\": " << m.speedup_vs_scalar << m.phase << "}";
    report.rows.push_back(row.str());
  }
  return report.write_to(options.get("out"), std::cout) ? 0 : 1;
}

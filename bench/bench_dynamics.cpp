// Analysis replay: per-round evolution of the quantities in Theorem 2's
// proof — total weight µ_t(V), the maximum neighbourhood weight µ_t(Γ(v)),
// and the λ-light/λ-heavy split (λ = 7) — for single local-feedback runs
// on a dense random graph and on a large clique (the case the paper
// highlights as needing the multi-step analysis).
//
//   ./bench_dynamics [--n=500] [--seed=1]
#include <iostream>

#include "graph/generators.hpp"
#include "mis/dynamics.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace {

using namespace beepmis;

void print_dynamics(const std::string& title, const mis::DynamicsRun& run) {
  std::cout << title << " (terminated in " << run.result.rounds << " rounds, MIS size "
            << run.result.mis().size() << ")\n\n";
  support::Table table({"t", "active", "mu_t(V)", "max mu(v)", "max mu(Gamma(v))",
                        "light", "heavy", "in MIS"});
  for (const mis::RoundDynamics& row : run.dynamics) {
    table.new_row()
        .cell(row.round)
        .cell(row.active)
        .cell(row.total_weight)
        .cell(row.max_weight, 4)
        .cell(row.max_neighborhood_weight)
        .cell(row.light)
        .cell(row.heavy)
        .cell(row.in_mis);
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  support::Options options;
  options.add("n", "500", "graph size");
  options.add("seed", "1", "seed for graph and run");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_dynamics");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_dynamics");
    return 0;
  }

  const auto n = static_cast<graph::NodeId>(options.get_int("n"));
  const std::uint64_t seed = options.get_u64("seed");

  std::cout << "=== Theorem 2 proof dynamics (lambda = 7) ===\n\n";

  auto rng = support::Xoshiro256StarStar(seed);
  const graph::Graph dense = graph::gnp(n, 0.5, rng);
  print_dynamics("G(" + std::to_string(n) + ", 1/2)",
                 mis::run_local_feedback_with_dynamics(dense, seed));

  const graph::Graph clique = graph::complete(n);
  print_dynamics("K_" + std::to_string(n),
                 mis::run_local_feedback_with_dynamics(clique, seed));

  std::cout
      << "reading guide: on the clique every node starts heavy (mu(Gamma(v)) ~ n/4)\n"
         "and hears beeps, so weights halve until the neighbourhood weight is O(1)\n"
         "('light'); only then can a lone beeper win — the geometric collapse of\n"
         "mu_t(V) visible above is what bounds the run at O(log n) rounds.\n";
  return 0;
}

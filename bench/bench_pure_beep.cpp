// Model-translation ablation: local feedback ported to the *pure* beeping
// model (no sender-side collision detection) via randomised-slot
// emulation.  Sweeps the number of subslots k: correctness converges to
// the Table 1 behaviour as 2^-k collision misses vanish, at a ~k/2-fold
// beep cost.  Quantifies what the paper's (biologically justified)
// sender-CD assumption buys.
//
//   ./bench_pure_beep [--n=200] [--trials=100] [--threads=0]
#include <iostream>
#include <memory>
#include <vector>

#include "exp/runner.hpp"
#include "graph/generators.hpp"
#include "mis/local_feedback.hpp"
#include "mis/pure_beep.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace beepmis;

  support::Options options;
  options.add("n", "200", "graph size");
  options.add("trials", "100", "trials per subslot count");
  options.add("threads", "0", "worker threads (0 = all cores)");
  options.add("seed", "20130731", "base seed");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_pure_beep");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_pure_beep");
    return 0;
  }

  const auto n = static_cast<std::size_t>(options.get_int("n"));
  harness::TrialConfig config;
  config.trials = static_cast<std::size_t>(options.get_int("trials"));
  config.threads = static_cast<unsigned>(options.get_int("threads"));

  const harness::GraphFactory graphs = [n](support::Xoshiro256StarStar& rng) {
    return graph::gnp(static_cast<graph::NodeId>(n), 0.5, rng);
  };

  std::cout << "=== pure beeping model (no sender CD): subslot sweep on G(" << n
            << ", 1/2), " << config.trials << " trials ===\n\n";
  support::Table table({"variant", "rounds mean", "beeps/node", "valid",
                        "indep viol/trial"});

  // Reference: the paper's sender-CD algorithm.
  config.base_seed = support::mix_seed(options.get_u64("seed"), 0);
  const harness::TrialStats reference = harness::run_beep_trials(
      graphs, [] { return std::make_unique<mis::LocalFeedbackMis>(); }, config);
  table.new_row()
      .cell("Table 1 (sender CD)")
      .cell(reference.rounds.mean())
      .cell(reference.beeps_per_node.mean())
      .cell(std::to_string(reference.valid) + "/" + std::to_string(reference.trials))
      .cell(0.0, 3);

  for (const unsigned subslots : {1u, 2u, 4u, 8u, 12u}) {
    config.base_seed = support::mix_seed(options.get_u64("seed"), subslots);
    const harness::TrialStats stats = harness::run_beep_trials(
        graphs,
        [subslots] { return std::make_unique<mis::PureBeepLocalFeedbackMis>(subslots); },
        config);
    table.new_row()
        .cell("pure beep, k = " + std::to_string(subslots))
        .cell(stats.rounds.mean())
        .cell(stats.beeps_per_node.mean())
        .cell(std::to_string(stats.valid) + "/" + std::to_string(stats.trials))
        .cell(static_cast<double>(stats.independence_violations) /
                  static_cast<double>(stats.trials),
              3);
  }
  table.print(std::cout);
  std::cout << "\ncsv:\n";
  table.write_csv(std::cout);
  std::cout << "\nexpectation: violations fall ~2^-k with subslot count while beeps/node\n"
               "rise ~k/2; rounds (paper time steps) stay O(log n) throughout.\n";
  return 0;
}

// Self-healing maintenance bench (extension): after the MIS converges,
// fail-stop a fraction of all nodes (including MIS members) and measure
// whether coverage is restored.  Compares the plain protocol (which cannot
// recover) against the silence-triggered healing rule.
//
// With --scenario=<name> the static crash mix is replaced by the named
// adversary (sim/scenario.hpp) and the table reports recovery-time SLA
// quantiles for the plain vs healing protocols.
//
//   ./bench_healing [--n=200] [--trials=50] [--threads=0]
//   ./bench_healing --scenario=churn --scenario-rate=1.0
#include <iostream>
#include <limits>
#include <memory>
#include <vector>

#include "cli/registry.hpp"
#include "exp/runner.hpp"
#include "graph/generators.hpp"
#include "mis/self_healing.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace {

using namespace beepmis;

harness::TrialConfig healing_base(std::size_t n, const harness::TrialConfig& base) {
  harness::TrialConfig config = base;
  config.sim.mis_keepalive = true;
  config.sim.run_until_round = 150;
  config.sim.max_rounds = 800;
  (void)n;
  return config;
}

harness::BeepProtocolFactory protocol_factory(bool healing) {
  return [healing]() -> std::unique_ptr<sim::BeepProtocol> {
    if (healing) return std::make_unique<mis::SelfHealingLocalFeedbackMis>();
    return std::make_unique<mis::LocalFeedbackMis>();
  };
}

harness::GraphFactory gnp_half(std::size_t n) {
  return [n](support::Xoshiro256StarStar& rng) {
    return graph::gnp(static_cast<graph::NodeId>(n), 0.5, rng);
  };
}

harness::TrialStats run_case(std::size_t n, double crash_fraction, bool healing,
                             const harness::TrialConfig& base) {
  harness::TrialConfig config = healing_base(n, base);
  config.sim.crash_round.assign(n, std::numeric_limits<std::uint32_t>::max());
  for (std::size_t v = 0; v < n; ++v) {
    const double u = static_cast<double>(support::mix_seed(17, v) % 1000000u) / 1e6;
    if (u < crash_fraction) {
      config.sim.crash_round[v] =
          static_cast<std::uint32_t>(30 + support::mix_seed(19, v) % 20);
    }
  }
  return harness::run_beep_trials(gnp_half(n), protocol_factory(healing), config);
}

harness::TrialStats run_scenario_case(std::size_t n, const cli::ScenarioSpec& spec,
                                      bool healing, const harness::TrialConfig& base) {
  harness::TrialConfig config = healing_base(n, base);
  config.sim.track_recovery = true;
  const auto prototype = cli::make_scenario(spec);
  config.scenario = [prototype] { return prototype->clone(); };
  return harness::run_beep_trials(gnp_half(n), protocol_factory(healing), config);
}

}  // namespace

int main(int argc, char** argv) {
  support::Options options;
  options.add("n", "200", "graph size");
  options.add("trials", "50", "trials per case");
  options.add("threads", "0", "worker threads (0 = all cores)");
  options.add("seed", "20130803", "base seed");
  options.add("scenario", "none", "crash adversary replacing the static mix");
  options.add("scenario-rate", "0.05", "scenario crash fraction / rate / probability");
  options.add("scenario-lo", "30", "scenario crash-window start round");
  options.add("scenario-hi", "50", "scenario crash-window end round");
  options.add("scenario-budget", "16", "scenario crash budget / target count");
  options.add("scenario-seed", "1", "scenario rng seed");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_healing");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_healing") << '\n' << cli::scenario_help();
    return 0;
  }

  const auto n = static_cast<std::size_t>(options.get_int("n"));
  harness::TrialConfig base;
  base.trials = static_cast<std::size_t>(options.get_int("trials"));
  base.threads = static_cast<unsigned>(options.get_int("threads"));
  base.base_seed = options.get_u64("seed");

  if (const std::string scenario = options.get("scenario"); scenario != "none") {
    cli::ScenarioSpec spec;
    spec.name = scenario;
    spec.rate = options.get_double("scenario-rate");
    spec.round_lo = static_cast<std::uint32_t>(options.get_int("scenario-lo"));
    spec.round_hi = static_cast<std::uint32_t>(options.get_int("scenario-hi"));
    spec.budget = static_cast<std::size_t>(options.get_int("scenario-budget"));
    spec.seed = options.get_u64("scenario-seed");

    std::cout << "=== self-healing vs adversary '" << scenario << "' on G(" << n
              << ", 1/2), " << base.trials << " trials/case ===\n\n";
    support::Table table({"healing", "valid", "uncovered/trial", "disrupt/trial",
                          "unrecovered/trial", "rec p50", "rec p95", "rec p99"});
    for (const bool healing : {false, true}) {
      const harness::TrialStats stats = run_scenario_case(n, spec, healing, base);
      const auto trials = static_cast<double>(stats.trials);
      const harness::TrialStats::RecoveryQuantiles q = stats.recovery_quantiles();
      table.new_row()
          .cell(healing ? "yes" : "no")
          .cell(std::to_string(stats.valid) + "/" + std::to_string(stats.trials))
          .cell(static_cast<double>(stats.uncovered_nodes) / trials, 3)
          .cell(static_cast<double>(stats.disruptions) / trials, 2)
          .cell(static_cast<double>(stats.unrecovered_disruptions) / trials, 3)
          .cell(q.p50, 1)
          .cell(q.p95, 1)
          .cell(q.p99, 1);
    }
    table.print(std::cout);
    std::cout << "\ncsv:\n";
    table.write_csv(std::cout);
    std::cout << "\nexpectation: without healing every disruption stays open\n"
                 "(unrecovered > 0, empty quantiles); with the silence rule the\n"
                 "damaged neighbourhoods re-converge within a bounded SLA.\n";
    return 0;
  }

  std::cout << "=== self-healing after fail-stop crashes (rounds 30-50) on G(" << n
            << ", 1/2), " << base.trials << " trials/case ===\n\n";
  support::Table table({"crash fraction", "healing", "valid", "uncovered/trial",
                        "indep viol/trial"});
  for (const double fraction : {0.05, 0.15, 0.30}) {
    for (const bool healing : {false, true}) {
      const harness::TrialStats stats = run_case(n, fraction, healing, base);
      const auto trials = static_cast<double>(stats.trials);
      table.new_row()
          .cell(fraction, 2)
          .cell(healing ? "yes" : "no")
          .cell(std::to_string(stats.valid) + "/" + std::to_string(stats.trials))
          .cell(static_cast<double>(stats.uncovered_nodes) / trials, 3)
          .cell(static_cast<double>(stats.independence_violations) / trials, 3);
    }
  }
  table.print(std::cout);
  std::cout << "\ncsv:\n";
  table.write_csv(std::cout);
  std::cout << "\nexpectation: without healing, crashes of MIS members strand their\n"
               "dominated neighbours (uncovered > 0); with the silence rule every\n"
               "surviving neighbourhood re-converges to a valid MIS.\n";
  return 0;
}

// Self-healing maintenance bench (extension): after the MIS converges,
// fail-stop a fraction of all nodes (including MIS members) and measure
// whether coverage is restored.  Compares the plain protocol (which cannot
// recover) against the silence-triggered healing rule.
//
//   ./bench_healing [--n=200] [--trials=50] [--threads=0]
#include <iostream>
#include <limits>
#include <memory>
#include <vector>

#include "exp/runner.hpp"
#include "graph/generators.hpp"
#include "mis/self_healing.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace {

using namespace beepmis;

harness::TrialStats run_case(std::size_t n, double crash_fraction, bool healing,
                             const harness::TrialConfig& base) {
  harness::TrialConfig config = base;
  config.sim.mis_keepalive = true;
  config.sim.run_until_round = 150;
  config.sim.max_rounds = 800;
  config.sim.crash_round.assign(n, std::numeric_limits<std::uint32_t>::max());
  for (std::size_t v = 0; v < n; ++v) {
    const double u = static_cast<double>(support::mix_seed(17, v) % 1000000u) / 1e6;
    if (u < crash_fraction) {
      config.sim.crash_round[v] =
          static_cast<std::uint32_t>(30 + support::mix_seed(19, v) % 20);
    }
  }
  const harness::GraphFactory graphs = [n](support::Xoshiro256StarStar& rng) {
    return graph::gnp(static_cast<graph::NodeId>(n), 0.5, rng);
  };
  const harness::BeepProtocolFactory protocols = [healing]() -> std::unique_ptr<sim::BeepProtocol> {
    if (healing) return std::make_unique<mis::SelfHealingLocalFeedbackMis>();
    return std::make_unique<mis::LocalFeedbackMis>();
  };
  return harness::run_beep_trials(graphs, protocols, config);
}

}  // namespace

int main(int argc, char** argv) {
  support::Options options;
  options.add("n", "200", "graph size");
  options.add("trials", "50", "trials per case");
  options.add("threads", "0", "worker threads (0 = all cores)");
  options.add("seed", "20130803", "base seed");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_healing");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_healing");
    return 0;
  }

  const auto n = static_cast<std::size_t>(options.get_int("n"));
  harness::TrialConfig base;
  base.trials = static_cast<std::size_t>(options.get_int("trials"));
  base.threads = static_cast<unsigned>(options.get_int("threads"));
  base.base_seed = options.get_u64("seed");

  std::cout << "=== self-healing after fail-stop crashes (rounds 30-50) on G(" << n
            << ", 1/2), " << base.trials << " trials/case ===\n\n";
  support::Table table({"crash fraction", "healing", "valid", "uncovered/trial",
                        "indep viol/trial"});
  for (const double fraction : {0.05, 0.15, 0.30}) {
    for (const bool healing : {false, true}) {
      const harness::TrialStats stats = run_case(n, fraction, healing, base);
      const auto trials = static_cast<double>(stats.trials);
      table.new_row()
          .cell(fraction, 2)
          .cell(healing ? "yes" : "no")
          .cell(std::to_string(stats.valid) + "/" + std::to_string(stats.trials))
          .cell(static_cast<double>(stats.uncovered_nodes) / trials, 3)
          .cell(static_cast<double>(stats.independence_violations) / trials, 3);
    }
  }
  table.print(std::cout);
  std::cout << "\ncsv:\n";
  table.write_csv(std::cout);
  std::cout << "\nexpectation: without healing, crashes of MIS members strand their\n"
               "dominated neighbours (uncovered > 0); with the silence rule every\n"
               "surviving neighbourhood re-converges to a valid MIS.\n";
  return 0;
}

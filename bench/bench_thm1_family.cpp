// Empirical companion to Theorem 1: on the clique-family graph (k disjoint
// copies of K_d for every d = 1..k) any globally scheduled algorithm needs
// Ω(log² n) steps, while the local-feedback algorithm stays O(log n).
// Prints rounds for both algorithms across family sizes, growth fits, and
// the Theorem 1 potential diagnostics for the sweep schedule.
//
//   ./bench_thm1_family [--trials=50] [--threads=0] [--quick]
#include <cmath>
#include <iostream>
#include <vector>

#include "exp/figures.hpp"
#include "exp/report.hpp"
#include "mis/schedule.hpp"
#include "mis/theory.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace beepmis;

  support::Options options;
  options.add("trials", "50", "trials per family size");
  options.add("threads", "0", "worker threads (0 = all cores)");
  options.add("seed", "20130724", "base seed");
  options.add("quick", "false", "smaller family sizes");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_thm1_family");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_thm1_family");
    return 0;
  }

  harness::ExperimentConfig config;
  config.trials = static_cast<std::size_t>(options.get_int("trials"));
  config.threads = static_cast<unsigned>(options.get_int("threads"));
  config.base_seed = options.get_u64("seed");

  std::vector<std::size_t> ks = options.get_bool("quick")
                                    ? std::vector<std::size_t>{4, 8, 12}
                                    : std::vector<std::size_t>{4, 6, 8, 10, 12, 14, 16, 20};
  if (options.get_bool("quick")) config.trials = std::min<std::size_t>(config.trials, 15);

  std::cout << "=== Theorem 1 lower-bound family: k copies of K_d, d = 1..k ===\n\n";
  const auto rows = harness::theorem1_experiment(ks, config);
  harness::print_with_csv(std::cout, harness::theorem1_table(rows));
  std::cout << harness::theorem1_fit_report(rows) << '\n';

  // Theorem 1 potential diagnostics: how many sweep steps until the
  // potential sum_i 6 d p_i e^{-d p_i} reaches (log n)/4 for the hardest d.
  std::cout << "Theorem 1 potential diagnostics (sweep schedule):\n";
  support::Table diag({"k", "n", "hardest d", "steps to reach (log2 n)/4"});
  const mis::SweepSchedule sweep;
  for (const auto& row : rows) {
    std::vector<double> prefix;
    const double target = std::log2(static_cast<double>(row.node_count)) / 4.0;
    std::size_t steps = 0;
    std::size_t hardest = 3;
    while (steps < 100000) {
      prefix.push_back(sweep.probability(steps));
      ++steps;
      hardest = mis::hardest_clique_size(prefix, row.k);
      if (mis::theorem1_potential(hardest, prefix) >= target) break;
    }
    diag.new_row().cell(row.k).cell(row.node_count).cell(hardest).cell(steps);
  }
  diag.print(std::cout);
  std::cout << "\nWhile the hardest clique's potential is below (log2 n)/4, its copies\n"
               "all survive w.h.p. (Theorem 1 proof), forcing the sweep to keep running.\n";
  return 0;
}

// E6: robustness ablation from the paper's conclusion — the feedback
// factor need not be exactly 2, may differ between nodes, and initial
// probabilities may vary, all without losing correctness or (much)
// performance.  Each row must stay O(log n)-ish and 100% valid.
//
//   ./bench_robustness [--n=200] [--trials=50] [--threads=0]
#include <iostream>

#include "exp/figures.hpp"
#include "exp/report.hpp"
#include "mis/theory.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace beepmis;

  support::Options options;
  options.add("n", "200", "graph size");
  options.add("trials", "50", "trials per variant");
  options.add("threads", "0", "worker threads (0 = all cores)");
  options.add("seed", "20130726", "base seed");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_robustness");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_robustness");
    return 0;
  }

  harness::ExperimentConfig config;
  config.trials = static_cast<std::size_t>(options.get_int("trials"));
  config.threads = static_cast<unsigned>(options.get_int("threads"));
  config.base_seed = options.get_u64("seed");
  const auto n = static_cast<std::size_t>(options.get_int("n"));

  std::cout << "=== E6: robustness of local feedback on G(" << n << ", 1/2), "
            << config.trials << " trials/variant ===\n\n";
  const auto rows = harness::robustness_experiment(n, config);
  harness::print_with_csv(std::cout, harness::robustness_table(rows));
  std::cout << "reference: 2.5 log2 n = " << mis::figure3_local_reference(n) << " steps\n";
  std::cout << "\npaper expectation (§6): all variants remain correct and within a\n"
               "modest constant factor of the factor-2 configuration.\n";
  return 0;
}

// Batched-lanes benchmark: per-trial scalar simulator vs the 64-lane
// BatchSimulator on shared-graph trial sweeps (the paper's methodology:
// every reported metric is an average over many independent seeds of the
// same random graph), across the whole batched protocol family.
//
// Both paths run the identical trial set — same shared graph, same
// per-trial seed tree as harness::run_beep_trials — and the bench verifies
// every per-trial RunResult is bit-identical before timing, so the
// trials/sec ratio compares two executions of the same computation.  The
// batched kernel comes from BeepProtocol::make_batch_protocol(), i.e. the
// exact wiring the trial harness uses.
//
// Protocol lanes (one scalar protocol + its batched kernel each):
//   local-feedback  the paper's Definition 1 (dyadic fast-path kernel)
//   global-sweep    Afek et al.'s globally scheduled probabilities
//   exact-feedback  the integer-exponent variant (integer-compare kernel)
//   healing         self-healing maintenance (reactivation in BatchContext)
//
// Workloads:
//   converge        run each trial to natural termination (~O(log n)
//                   rounds).  Batching wins on delivery (one CSR pass and
//                   one 8-byte OR per edge serve all 64 lanes) but every
//                   lane still draws its own per-node Bernoullis, so the
//                   speedup is bounded by that irreducible per-lane work.
//   keepalive-tail  mis_keepalive + run_until_round tail (the maintenance
//                   regime): the static tail collapses to one cached
//                   (listener, lane-mask) sweep for all lanes, the
//                   headline >= 10x.
//   healing-tail    (healing only) keep-alive + targeted crashes after
//                   convergence + run_until_round tail: the per-round
//                   healing scan serves 64 lanes per plane load where the
//                   scalar protocol scans all n nodes per trial.
//
// Each (workload, protocol) pair is measured in both draw-entropy modes:
// "scalar-order" (bit-identical lanes, cross-checked against the scalar
// runs before timing) and "statistical" (BatchRngMode::kStatisticalLanes:
// jump()-partitioned lane streams + bulk Bernoulli planes; lanes are
// validity-checked instead, since there is no scalar twin by design).
//
//   ./bench_batch [--n=10000] [--avg-degree=8] [--trials=64] [--reps=3]
//                 [--tail-rounds=500] [--seed=2026] [--git-rev=<rev>]
//                 [--out=BENCH_batch.json]
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "mis/exact_feedback.hpp"
#include "mis/global_schedule.hpp"
#include "mis/local_feedback.hpp"
#include "mis/schedule.hpp"
#include "mis/self_healing.hpp"
#include "mis/verifier.hpp"
#include "sim/batch.hpp"
#include "sim/beep.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace beepmis;

struct Measurement {
  std::string workload;
  std::string protocol;
  std::string impl;
  std::string mode;  ///< draw-entropy mode: "scalar-order" or "statistical"
  std::size_t n = 0;
  std::size_t trials = 0;
  double wall_ms = 0.0;
  double trials_per_sec = 0.0;
  double speedup_vs_scalar = 1.0;
  std::string phase;  ///< pre-rendered ", \"phase_ns\": {...}" or empty
};

using benchcommon::best_wall_ms;

/// Per-trial run RNG, matching harness::run_beep_trials' seed tree.
support::Xoshiro256StarStar trial_rng(const support::SeedSequence& root, std::size_t trial) {
  return root.child(trial).child(1).generator();
}

benchcommon::JsonReport make_report(const std::vector<Measurement>& results,
                                    std::uint64_t seed, double avg_degree,
                                    const std::string& git_rev) {
  benchcommon::JsonReport report;
  report.bench = "bench_batch";
  report.git_rev = git_rev;
  report.header = {
      {"seed", benchcommon::json_number(seed)},
      {"avg_degree", benchcommon::json_number(avg_degree)},
      {"lanes", benchcommon::json_number(sim::kMaxBatchLanes)},
  };
  for (const Measurement& m : results) {
    std::ostringstream row;
    row << "{\"workload\": \"" << m.workload << "\", \"protocol\": \"" << m.protocol
        << "\", \"impl\": \"" << m.impl << "\", \"mode\": \"" << m.mode
        << "\", \"n\": " << m.n
        << ", \"trials\": " << m.trials << ", \"wall_ms\": " << m.wall_ms
        << ", \"trials_per_sec\": " << m.trials_per_sec
        << ", \"speedup_vs_scalar\": " << m.speedup_vs_scalar << m.phase << "}";
    report.rows.push_back(row.str());
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  support::Options options;
  options.add("n", "10000", "nodes in the shared sparse G(n, d/n) instance");
  options.add("avg-degree", "8", "average degree of the shared graph");
  options.add("trials", "64", "independent seeds per sweep");
  options.add("tail-rounds", "500", "run_until_round for the *-tail workloads");
  options.add("reps", "3", "timing repetitions (best-of)");
  options.add("seed", "2026", "base seed of the trial seed tree");
  options.add("git-rev", "unknown", "git revision recorded in the JSON header");
  options.add("out", "BENCH_batch.json", "JSON report path ('-' = stdout only)");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_batch");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_batch");
    return 0;
  }

  const auto n = static_cast<graph::NodeId>(options.get_int("n"));
  const double avg_degree = options.get_double("avg-degree");
  const auto trials = static_cast<std::size_t>(options.get_int("trials"));
  const auto tail_rounds = static_cast<std::size_t>(options.get_int("tail-rounds"));
  const int reps = static_cast<int>(options.get_int("reps"));
  const std::uint64_t seed = options.get_u64("seed");
  const std::string git_rev = options.get("git-rev");

  const support::SeedSequence root(seed);
  auto graph_rng = root.child(0).child(0).generator();
  const graph::Graph g = graph::gnp(n, avg_degree / static_cast<double>(n), graph_rng);
  std::cout << "graph: " << g.describe() << ", trials: " << trials << "\n\n";

  std::vector<Measurement> results;
  support::Table table({"workload", "protocol", "impl", "mode", "trials", "wall ms",
                        "trials/sec", "speedup"});
  const auto record = [&](const std::string& workload, const std::string& protocol,
                          const char* impl, const char* mode, double ms,
                          double speedup, std::string phase = {}) {
    Measurement m;
    m.workload = workload;
    m.protocol = protocol;
    m.impl = impl;
    m.mode = mode;
    m.n = n;
    m.trials = trials;
    m.wall_ms = ms;
    m.trials_per_sec = static_cast<double>(trials) / (ms / 1000.0);
    m.speedup_vs_scalar = speedup;
    m.phase = std::move(phase);
    results.push_back(m);
    table.new_row()
        .cell(workload)
        .cell(protocol)
        .cell(impl)
        .cell(mode)
        .cell(trials)
        .cell(ms)
        .cell(m.trials_per_sec)
        .cell(speedup);
  };

  using ProtocolFactory = std::function<std::unique_ptr<sim::BeepProtocol>()>;
  const auto measure_workload = [&](const std::string& workload,
                                    const std::string& protocol_name,
                                    const sim::SimConfig& config,
                                    const ProtocolFactory& make_protocol) {
    // Scalar sweep: one simulator + protocol reused across trials, exactly
    // like one harness worker; the batched kernel comes from the scalar
    // protocol's own make_batch_protocol.
    sim::BeepSimulator scalar_sim(g, config);
    const std::unique_ptr<sim::BeepProtocol> scalar_protocol = make_protocol();
    sim::BatchSimulator batch_sim(config);
    const std::unique_ptr<sim::BatchProtocol> batch_protocol =
        scalar_protocol->make_batch_protocol();
    if (!batch_protocol) {
      std::cerr << "FATAL: protocol " << protocol_name << " has no batched kernel\n";
      std::exit(1);
    }

    // Cross-check every trial before timing: lane t of the batch must be
    // bit-identical to scalar trial t.
    {
      std::vector<support::Xoshiro256StarStar> rngs;
      for (std::size_t t = 0; t < trials; ++t) {
        if (rngs.size() == sim::kMaxBatchLanes) rngs.clear();
        rngs.push_back(trial_rng(root, t));
        const bool flush = rngs.size() == sim::kMaxBatchLanes || t + 1 == trials;
        if (!flush) continue;
        const std::size_t first = t + 1 - rngs.size();
        const std::vector<sim::RunResult> batch = batch_sim.run(g, *batch_protocol, rngs);
        for (std::size_t lane = 0; lane < batch.size(); ++lane) {
          const sim::RunResult scalar =
              scalar_sim.run(*scalar_protocol, trial_rng(root, first + lane));
          if (scalar.rounds != batch[lane].rounds ||
              scalar.total_beeps != batch[lane].total_beeps ||
              scalar.terminated != batch[lane].terminated ||
              scalar.status != batch[lane].status ||
              scalar.beep_counts != batch[lane].beep_counts) {
            std::cerr << "FATAL: scalar and batched runs diverged (workload " << workload
                      << ", protocol " << protocol_name << ", trial " << (first + lane)
                      << ")\n";
            std::exit(1);
          }
        }
      }
    }

    support::reset_phase_timers();
    const double scalar_ms = best_wall_ms(reps, [&] {
      for (std::size_t t = 0; t < trials; ++t) {
        (void)scalar_sim.run(*scalar_protocol, trial_rng(root, t));
      }
    });
    std::string scalar_phase = benchcommon::phase_ns_fragment();
    const double batch_ms = best_wall_ms(reps, [&] {
      for (std::size_t first = 0; first < trials; first += sim::kMaxBatchLanes) {
        const std::size_t last = std::min(first + sim::kMaxBatchLanes, trials);
        std::vector<support::Xoshiro256StarStar> rngs;
        rngs.reserve(last - first);
        for (std::size_t t = first; t < last; ++t) rngs.push_back(trial_rng(root, t));
        (void)batch_sim.run(g, *batch_protocol, std::move(rngs));
      }
    });
    std::string batch_phase = benchcommon::phase_ns_fragment();
    record(workload, protocol_name, "scalar", "scalar-order", scalar_ms, 1.0,
           std::move(scalar_phase));
    record(workload, protocol_name, "batched", "scalar-order", batch_ms,
           scalar_ms / batch_ms, std::move(batch_phase));

    // Statistical lanes: same trial count, one jump()-partitioned base
    // stream per 64-lane batch (the harness's seed tree), bulk-plane
    // draws.  No bit-identity to cross-check by design; instead every
    // lossless no-crash lane must verify as a valid MIS before timing
    // (loss can legitimately leave fate inconsistencies, and a crash near
    // the run_until cutoff can legitimately end a lane mid-heal, so those
    // lanes check termination only).
    sim::BatchSimulator stat_sim(config, sim::BatchRngMode::kStatisticalLanes);
    const std::unique_ptr<sim::BatchProtocol> stat_protocol =
        scalar_protocol->make_batch_protocol(sim::BatchRngMode::kStatisticalLanes);
    if (!stat_protocol) {
      std::cerr << "FATAL: protocol " << protocol_name << " has no statistical kernel\n";
      std::exit(1);
    }
    const bool lossless = config.beep_loss_probability == 0.0 && config.crash_round.empty();
    const auto stat_batches = [&](bool check) {
      for (std::size_t first = 0; first < trials; first += sim::kMaxBatchLanes) {
        const std::size_t last = std::min(first + sim::kMaxBatchLanes, trials);
        const std::vector<sim::RunResult> batch =
            stat_sim.run(g, *stat_protocol, trial_rng(root, first),
                         static_cast<unsigned>(last - first));
        if (!check) continue;
        for (std::size_t lane = 0; lane < batch.size(); ++lane) {
          const bool ok = lossless ? mis::is_valid_mis_run(g, batch[lane])
                                   : batch[lane].terminated;
          if (!ok) {
            std::cerr << "FATAL: statistical lane " << (first + lane)
                      << " produced an invalid run (workload " << workload
                      << ", protocol " << protocol_name << ")\n";
            std::exit(1);
          }
        }
      }
    };
    stat_batches(/*check=*/true);
    support::reset_phase_timers();
    const double stat_ms = best_wall_ms(reps, [&] { stat_batches(/*check=*/false); });
    record(workload, protocol_name, "batched", "statistical", stat_ms,
           scalar_ms / stat_ms, benchcommon::phase_ns_fragment());
  };

  const ProtocolFactory local_feedback = [] {
    return std::make_unique<mis::LocalFeedbackMis>();
  };
  const ProtocolFactory global_sweep = [] {
    return std::make_unique<mis::GlobalScheduleMis>(std::make_unique<mis::SweepSchedule>());
  };
  const ProtocolFactory exact_feedback = [] {
    return std::make_unique<mis::ExactLocalFeedbackMis>();
  };
  const ProtocolFactory healing = [] {
    return std::make_unique<mis::SelfHealingLocalFeedbackMis>();
  };

  sim::SimConfig converge;
  sim::SimConfig keepalive_tail;
  keepalive_tail.mis_keepalive = true;
  keepalive_tail.run_until_round = tail_rounds;
  // Maintenance scenario for the healing lane: a handful of spread-out
  // nodes fail after the initial MIS converges, so dominated neighbourhoods
  // go silent, reactivate and re-converge before the static tail.
  sim::SimConfig healing_tail = keepalive_tail;
  healing_tail.crash_round.assign(n, UINT32_MAX);
  for (unsigned i = 1; i <= 8; ++i) {
    healing_tail.crash_round[static_cast<graph::NodeId>(
        (static_cast<std::size_t>(i) * n) / 9)] = 14 + 2 * i;
  }

  // Lossy maintenance tail (the rows left open after the PR-3 sweep): with
  // beep loss every potential keep-alive delivery consumes its own
  // per-lane Bernoulli, so nothing can be cached and the batched win is
  // bounded by per-lane draw work — the honest counterpart to the cached
  // lossless tail.  A quarter-length tail: the regime is draw-dominated
  // and steady from the first tail round, so longer tails only multiply
  // bench wall-clock without changing the ratio.
  sim::SimConfig lossy_tail = keepalive_tail;
  lossy_tail.beep_loss_probability = 0.05;
  lossy_tail.run_until_round = std::max<std::size_t>(1, tail_rounds / 4);

  measure_workload("converge", "local-feedback", converge, local_feedback);
  measure_workload("converge", "global-sweep", converge, global_sweep);
  measure_workload("converge", "exact-feedback", converge, exact_feedback);
  measure_workload("keepalive-tail", "local-feedback", keepalive_tail, local_feedback);
  measure_workload("keepalive-tail", "global-sweep", keepalive_tail, global_sweep);
  measure_workload("keepalive-tail", "exact-feedback", keepalive_tail, exact_feedback);
  measure_workload("lossy-tail", "local-feedback", lossy_tail, local_feedback);
  measure_workload("healing-tail", "healing", healing_tail, healing);

  std::cout << table.to_string() << '\n';

  const benchcommon::JsonReport report = make_report(results, seed, avg_degree, git_rev);
  return report.write_to(options.get("out"), std::cout) ? 0 : 1;
}

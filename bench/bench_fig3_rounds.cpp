// Reproduces Figure 3: mean number of time steps to compute an MIS on
// G(n, 1/2) for n up to 1000, 100 trials per point, comparing the global
// sweeping schedule of Afek et al. [DISC'11] against the paper's
// local-feedback algorithm.  Reference curves: (log2 n)^2 and 2.5 log2 n.
// Also prints the E5 growth fits (global ~ log^2 n, local ~ c log n).
//
//   ./bench_fig3_rounds [--trials=100] [--threads=0] [--quick]
#include <iostream>
#include <vector>

#include "exp/figures.hpp"
#include "exp/report.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace beepmis;

  support::Options options;
  options.add("trials", "100", "trials per point (paper: 100)");
  options.add("threads", "0", "worker threads (0 = all cores)");
  options.add("seed", "20130722", "base seed");
  options.add("quick", "false", "smaller n grid for a fast smoke run");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_fig3_rounds");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_fig3_rounds");
    return 0;
  }

  harness::ExperimentConfig config;
  config.trials = static_cast<std::size_t>(options.get_int("trials"));
  config.threads = static_cast<unsigned>(options.get_int("threads"));
  config.base_seed = options.get_u64("seed");

  std::vector<std::size_t> ns;
  if (options.get_bool("quick")) {
    ns = {20, 50, 100, 200, 400};
    config.trials = std::min<std::size_t>(config.trials, 20);
  } else {
    ns = {20, 50, 100, 150, 200, 300, 400, 500, 600, 700, 800, 900, 1000};
  }

  std::cout << "=== Figure 3: MIS time steps on G(n, 1/2), " << config.trials
            << " trials/point ===\n\n";
  const auto rows = harness::figure3_experiment(ns, config);

  harness::print_with_csv(std::cout, harness::figure3_table(rows));
  std::cout << harness::figure3_plot(rows) << '\n';
  std::cout << harness::figure3_fit_report(rows);
  std::cout << "\npaper expectation: upper (global) series tracks (log2 n)^2;"
            << "\n                   lower (local) series tracks ~2.5 log2 n.\n";
  return 0;
}

// E7: Luby's algorithm vs the local-feedback beeping algorithm.  Both are
// O(log n) in rounds (the paper's point is that the beeping algorithm
// matches Luby with a drastically weaker communication model); the table
// contrasts round counts and communication volume.
//
//   ./bench_luby [--trials=50] [--threads=0] [--quick]
#include <iostream>
#include <vector>

#include "exp/figures.hpp"
#include "exp/report.hpp"
#include "support/fit.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace beepmis;

  support::Options options;
  options.add("trials", "50", "trials per point");
  options.add("threads", "0", "worker threads (0 = all cores)");
  options.add("seed", "20130725", "base seed");
  options.add("quick", "false", "smaller n grid");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_luby");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_luby");
    return 0;
  }

  harness::ExperimentConfig config;
  config.trials = static_cast<std::size_t>(options.get_int("trials"));
  config.threads = static_cast<unsigned>(options.get_int("threads"));
  config.base_seed = options.get_u64("seed");

  std::vector<std::size_t> ns = options.get_bool("quick")
                                    ? std::vector<std::size_t>{50, 100, 200}
                                    : std::vector<std::size_t>{50, 100, 200, 400, 800, 1600};
  if (options.get_bool("quick")) config.trials = std::min<std::size_t>(config.trials, 15);

  std::cout << "=== E7: Luby (LOCAL model) vs local-feedback beeping on G(n, 1/2), "
            << config.trials << " trials/point ===\n\n";
  const auto rows = harness::luby_comparison_experiment(ns, config);
  harness::print_with_csv(std::cout, harness::comparison_table(rows));

  std::vector<double> nd, luby, local;
  for (const auto& row : rows) {
    nd.push_back(static_cast<double>(row.n));
    luby.push_back(row.luby_rounds);
    local.push_back(row.local_rounds);
  }
  std::cout << "round growth fits:\n"
            << "  luby           : " << support::describe_fit(support::fit_vs_log2(nd, luby), "log2(n)")
            << '\n'
            << "  local feedback : "
            << support::describe_fit(support::fit_vs_log2(nd, local), "log2(n)") << '\n';
  std::cout << "\npaper expectation: both O(log n) rounds; the beeping algorithm uses\n"
               "one-bit messages and O(1) beeps per node, while Luby exchanges numeric\n"
               "priorities (64-bit here) every round.\n";
  return 0;
}

// Graph storage-tier benchmark: the same simulation on the in-RAM CSR vs
// the memory-mapped BMCSR file vs mmap-plus-reordered shard-local
// adjacency copies (graph::Partition::materialize_local_adjacency) — the
// read-path cost of each tier of the memory-tiered storage layer
// (src/graph/README.md), plus a streamed-build row recording what the
// bounded-memory on-disk builder costs versus building in RAM.
//
// Every mmap row is cross-checked bit-identical against the in-RAM run
// before timing (the tier-blindness contract — the tier is an execution
// choice, never a results choice), so the ratio columns compare two
// executions of the same computation.  Shard-local rows are additionally
// cross-checked against the shared-adjacency sharded run.
//
// A build configured with -DBEEPMIS_PHASE_TIMERS=ON adds "phase_ns" to
// every simulator row; the deliver/emit ratio of those rows is what
// scripts/check_bench_regression.py's phase-drift tracking watches — a
// tier whose delivery sweep quietly slows (page faults, lost locality)
// shifts that ratio even when total wall time stays inside the speedup
// tolerance.
//
//   ./bench_graph_tier [--n=200000] [--avg-degree=8] [--shards=4]
//                      [--reps=2] [--seed=2026] [--budget-mb=64]
//                      [--git-rev=<rev>] [--out=BENCH_graph_tier.json]
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "graph/csr_file.hpp"
#include "graph/generators.hpp"
#include "mis/local_feedback.hpp"
#include "sim/beep.hpp"
#include "sim/sharded.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace beepmis;

struct Measurement {
  std::string workload;
  std::string impl;
  std::size_t n = 0;
  unsigned shards = 1;
  double wall_ms = 0.0;
  /// ram_ms / wall_ms against the same front-end on the in-RAM tier
  /// (1.0 for the ram rows themselves); omitted for the build rows.
  double speedup_vs_ram = 0.0;
  bool has_speedup = true;
  std::string phase;  ///< pre-rendered ", \"phase_ns\": {...}" or empty
};

using benchcommon::best_wall_ms;

void check_same(const sim::RunResult& a, const sim::RunResult& b, const char* what) {
  if (a.rounds != b.rounds || a.total_beeps != b.total_beeps ||
      a.terminated != b.terminated || a.status != b.status ||
      a.beep_counts != b.beep_counts) {
    std::cerr << "FATAL: storage tiers diverged (" << what << ")\n";
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  support::Options options;
  options.add("n", "200000", "nodes in the sparse G(n, d/n) instance");
  options.add("avg-degree", "8", "average degree");
  options.add("shards", "4", "shard count for the sharded tier rows");
  options.add("reps", "2", "timing repetitions (best-of)");
  options.add("seed", "2026", "run seed");
  options.add("budget-mb", "64", "streaming builder memory budget (MiB)");
  options.add("git-rev", "unknown", "git revision recorded in the JSON header");
  options.add("out", "BENCH_graph_tier.json", "JSON report path ('-' = stdout only)");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_graph_tier");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_graph_tier");
    return 0;
  }

  const auto n = static_cast<graph::NodeId>(options.get_int("n"));
  const double avg_degree = options.get_double("avg-degree");
  const auto shards = static_cast<unsigned>(options.get_int("shards"));
  const int reps = static_cast<int>(options.get_int("reps"));
  const std::uint64_t seed = options.get_u64("seed");
  const std::size_t budget_bytes =
      static_cast<std::size_t>(options.get_int("budget-mb")) << 20;
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const double p = avg_degree / static_cast<double>(n);

  const std::string file_path =
      (std::filesystem::temp_directory_path() /
       ("bench_graph_tier_" + std::to_string(::getpid()) + ".bmcsr"))
          .string();

  std::vector<Measurement> results;
  support::Table table({"workload", "impl", "shards", "wall ms", "vs ram"});
  const auto record = [&](const std::string& workload, const std::string& impl,
                          unsigned k, double ms, double speedup, bool has_speedup,
                          std::string phase) {
    results.push_back({workload, impl, n, k, ms, speedup, has_speedup,
                       std::move(phase)});
    support::Table& row =
        table.new_row().cell(workload).cell(impl).cell(static_cast<std::size_t>(k)).cell(
            ms);
    if (has_speedup) {
      row.cell(speedup);
    } else {
      row.cell("-");
    }
  };
  const auto timed = [&](std::string& phase_out, auto&& run) {
    support::reset_phase_timers();
    const double ms = best_wall_ms(reps, run);
    phase_out = benchcommon::phase_ns_fragment();
    return ms;
  };

  // --- build rows: in-RAM generator vs bounded-memory streamed file -------
  auto graph_rng = support::Xoshiro256StarStar(seed);
  const auto ram_build_start = std::chrono::steady_clock::now();
  const graph::Graph g_ram = graph::gnp(n, p, graph_rng);
  const double ram_build_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                ram_build_start)
          .count();
  record("build", "ram-builder", 1, ram_build_ms, 0.0, false, "");

  graph::StreamCsrOptions stream_options;
  stream_options.memory_budget_bytes = budget_bytes;
  const graph::EdgeStream stream = graph::gnp_edge_stream(n, p, seed);
  const auto stream_build_start = std::chrono::steady_clock::now();
  const graph::StreamCsrStats stream_stats =
      graph::write_csr_file_streaming(n, stream, file_path, stream_options);
  const double stream_build_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                stream_build_start)
          .count();
  record("build", "stream-builder", 1, stream_build_ms, 0.0, false, "");

  const graph::Graph g_map = graph::load_csr_file(file_path);
  std::cout << "graph: " << g_ram.describe() << ", streamed file: "
            << stream_stats.adjacency_count << " adjacency slots in "
            << stream_stats.stream_passes << " passes, hardware threads: " << hardware
            << "\n\n";

  // The streamed file must be the same workload as the in-RAM build.
  if (g_map.node_count() != g_ram.node_count() ||
      g_map.edge_count() != g_ram.edge_count()) {
    std::cerr << "FATAL: streamed BMCSR and in-RAM build disagree on the graph\n";
    return 1;
  }

  // --- simulator rows: scalar and sharded on each tier ---------------------
  const sim::SimConfig config;
  std::string phase;

  mis::LocalFeedbackMis scalar_protocol;
  sim::BeepSimulator scalar_sim(config);
  const sim::RunResult reference =
      scalar_sim.run(g_ram, scalar_protocol, support::Xoshiro256StarStar(seed));
  const double scalar_ram_ms = timed(phase, [&] {
    (void)scalar_sim.run(g_ram, scalar_protocol, support::Xoshiro256StarStar(seed));
  });
  record("converge", "scalar-ram", 1, scalar_ram_ms, 1.0, true, phase);

  check_same(reference,
             scalar_sim.run(g_map, scalar_protocol, support::Xoshiro256StarStar(seed)),
             "scalar mmap");
  const double scalar_map_ms = timed(phase, [&] {
    (void)scalar_sim.run(g_map, scalar_protocol, support::Xoshiro256StarStar(seed));
  });
  record("converge", "scalar-mmap", 1, scalar_map_ms, scalar_ram_ms / scalar_map_ms,
         true, phase);

  struct TierCase {
    const char* impl;
    const graph::Graph* graph;
    bool shard_local;
  };
  const TierCase tiers[] = {
      {"sharded-ram", &g_ram, false},
      {"sharded-mmap", &g_map, false},
      {"sharded-mmap-local", &g_map, true},
  };
  double sharded_ram_ms = 0.0;
  for (const TierCase& tier : tiers) {
    sim::SimConfig tier_config = config;
    tier_config.shard_local_adjacency = tier.shard_local;
    sim::ShardedSimulator sharded_sim(*tier.graph, shards, tier_config);
    mis::LocalFeedbackMis protocol;
    check_same(reference, sharded_sim.run(protocol, support::Xoshiro256StarStar(seed)),
               tier.impl);
    const double ms = timed(phase, [&] {
      (void)sharded_sim.run(protocol, support::Xoshiro256StarStar(seed));
    });
    if (sharded_ram_ms == 0.0) sharded_ram_ms = ms;
    record("converge", tier.impl, shards, ms, sharded_ram_ms / ms, true, phase);
  }

  std::filesystem::remove(file_path);
  std::cout << table.to_string() << '\n';

  benchcommon::JsonReport report;
  report.bench = "bench_graph_tier";
  report.git_rev = options.get("git-rev");
  report.header = {
      {"seed", benchcommon::json_number(seed)},
      {"avg_degree", benchcommon::json_number(avg_degree)},
      {"hardware_threads", benchcommon::json_number(hardware)},
      {"stream_budget_bytes", benchcommon::json_number(budget_bytes)},
      {"stream_passes", benchcommon::json_number(stream_stats.stream_passes)},
  };
  for (const Measurement& m : results) {
    std::ostringstream row;
    row << "{\"workload\": \"" << m.workload << "\", \"protocol\": \"local-feedback\""
        << ", \"impl\": \"" << m.impl << "\", \"mode\": \"scalar-order\""
        << ", \"n\": " << m.n << ", \"shards\": " << m.shards
        << ", \"wall_ms\": " << m.wall_ms;
    if (m.has_speedup) row << ", \"speedup_vs_ram\": " << m.speedup_vs_ram;
    row << m.phase << "}";
    report.rows.push_back(row.str());
  }
  return report.write_to(options.get("out"), std::cout) ? 0 : 1;
}

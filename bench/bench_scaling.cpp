// Scale extension: the paper's experiments stop at n = 1000; Theorem 2
// promises O(log n) on every graph, so this bench pushes the local-feedback
// algorithm to million-node sparse networks (average degree ~10, the ad hoc
// sensor-network regime of §6) and checks the logarithmic trend continues.
//
//   ./bench_scaling [--max-exp=6] [--trials=5] [--threads=0]
#include <cmath>
#include <iostream>
#include <vector>

#include "exp/runner.hpp"
#include "graph/generators.hpp"
#include "mis/local_feedback.hpp"
#include "support/fit.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace beepmis;

  support::Options options;
  options.add("max-exp", "6", "largest n = 10^max-exp (<= 7)");
  options.add("trials", "5", "trials per size");
  options.add("threads", "0", "worker threads (0 = all cores)");
  options.add("seed", "20130730", "base seed");
  options.add("avg-degree", "10", "average degree of the sparse G(n, p)");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_scaling");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_scaling");
    return 0;
  }

  const long max_exp = std::min(7L, options.get_int("max-exp"));
  const double avg_degree = options.get_double("avg-degree");
  harness::TrialConfig config;
  config.trials = static_cast<std::size_t>(options.get_int("trials"));
  config.threads = static_cast<unsigned>(options.get_int("threads"));

  std::cout << "=== scaling: local feedback on sparse G(n, " << avg_degree
            << "/n), " << config.trials << " trials/point ===\n\n";

  std::vector<double> ns, means;
  support::Table table({"n", "rounds mean", "sd", "beeps/node", "2.5 log2 n", "valid"});
  for (long exp = 2; exp <= max_exp; ++exp) {
    const auto n = static_cast<std::size_t>(std::pow(10.0, exp));
    config.base_seed = support::mix_seed(options.get_u64("seed"), n);
    const harness::GraphFactory graphs = [n, avg_degree](support::Xoshiro256StarStar& rng) {
      return graph::gnp(static_cast<graph::NodeId>(n),
                        avg_degree / static_cast<double>(n), rng);
    };
    const harness::TrialStats stats = harness::run_beep_trials(
        graphs, [] { return std::make_unique<mis::LocalFeedbackMis>(); }, config);

    table.new_row()
        .cell(n)
        .cell(stats.rounds.mean())
        .cell(stats.rounds.stddev())
        .cell(stats.beeps_per_node.mean())
        .cell(2.5 * std::log2(static_cast<double>(n)))
        .cell(std::to_string(stats.valid) + "/" + std::to_string(stats.trials));
    ns.push_back(static_cast<double>(n));
    means.push_back(stats.rounds.mean());
  }
  table.print(std::cout);
  std::cout << "\ncsv:\n";
  table.write_csv(std::cout);

  const support::LinearFit fit = support::fit_vs_log2(ns, means);
  std::cout << '\n' << support::describe_fit(fit, "log2(n)") << '\n'
            << "Theorem 2: the slope should stay a small constant all the way to n = 10^"
            << max_exp << ".\n";
  return 0;
}

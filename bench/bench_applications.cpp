// Building-block applications bench (§6: MIS "as a fundamental building
// block"): cost and quality of iterated-MIS colouring and line-graph
// matching across network sizes, all powered by the local-feedback
// beeping algorithm.
//
//   ./bench_applications [--trials=20] [--p=0.1]
#include <iostream>
#include <vector>

#include "graph/generators.hpp"
#include "mis/applications.hpp"
#include "support/options.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace beepmis;

  support::Options options;
  options.add("trials", "20", "trials per size");
  options.add("p", "0.1", "edge probability");
  options.add("seed", "20130802", "base seed");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_applications");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_applications");
    return 0;
  }

  const auto trials = static_cast<std::size_t>(options.get_int("trials"));
  const double p = options.get_double("p");
  const std::uint64_t base_seed = options.get_u64("seed");

  std::cout << "=== MIS building blocks on G(n, " << p << "), " << trials
            << " trials/point ===\n\n";
  support::Table table({"n", "colours (MIS)", "colours (greedy)", "maxdeg+1",
                        "colour steps", "matching size", "m/2 cap", "matching steps"});

  for (const std::size_t n : {50u, 100u, 200u, 400u}) {
    support::RunningStats colors, greedy_colors, degree_bound, color_rounds;
    support::RunningStats match_size, edge_half, match_rounds;
    for (std::size_t t = 0; t < trials; ++t) {
      const std::uint64_t seed = support::mix_seed(base_seed, n * 1000 + t);
      auto rng = support::Xoshiro256StarStar(seed);
      const graph::Graph g = graph::gnp(static_cast<graph::NodeId>(n), p, rng);

      const mis::ColoringResult coloring = mis::distributed_coloring(g, seed);
      if (!graph::is_proper_coloring(g, coloring.coloring)) {
        std::cerr << "improper colouring at n=" << n << "\n";
        return 1;
      }
      colors.push(static_cast<double>(coloring.coloring.colors_used));
      greedy_colors.push(static_cast<double>(graph::greedy_coloring(g).colors_used));
      degree_bound.push(static_cast<double>(g.max_degree() + 1));
      color_rounds.push(static_cast<double>(coloring.total_rounds));

      const mis::MatchingResult matching = mis::maximal_matching(g, seed + 1);
      if (!graph::is_maximal_matching(g, matching.matching)) {
        std::cerr << "non-maximal matching at n=" << n << "\n";
        return 1;
      }
      match_size.push(static_cast<double>(matching.matching.size()));
      edge_half.push(static_cast<double>(g.edge_count()) / 2.0);
      match_rounds.push(static_cast<double>(matching.rounds));
    }
    table.new_row()
        .cell(n)
        .cell(colors.mean(), 1)
        .cell(greedy_colors.mean(), 1)
        .cell(degree_bound.mean(), 1)
        .cell(color_rounds.mean(), 1)
        .cell(match_size.mean(), 1)
        .cell(edge_half.mean(), 1)
        .cell(match_rounds.mean(), 1);
  }
  table.print(std::cout);
  std::cout << "\ncsv:\n";
  table.write_csv(std::cout);
  std::cout << "\nnotes: 'm/2 cap' is the trivial upper bound on any matching;\n"
               "colour steps = total beeping time steps summed over MIS phases.\n"
               "Every run is verified proper/maximal before being counted.\n";
  return 0;
}

// Frontier-core micro-benchmark: seed-path (dense, Θ(n)-per-exchange)
// simulator vs the frontier-driven simulator on dense and sparse-tail
// workloads.
//
// The frontier rewrite makes per-exchange simulator cost O(active + beep
// deliveries) instead of Θ(n).  The regime where that matters is the long
// low-activity tail: after a local-feedback MIS converges (O(log n)
// rounds), maintenance experiments keep the clock running via
// run_until_round, and the pre-rewrite core paid three n-byte clears plus
// an n-byte copy per exchange regardless of activity.
//
// The dense baseline is sim::DenseReferenceSimulator — the seed simulator
// hot loop preserved verbatim in the library — driving the *real* protocol
// stack (mis::LocalFeedbackMis through the virtual BeepProtocol interface),
// so both rows run exactly the same protocol code and differ only in the
// simulator core.  Both cores are pure functions of (graph, seed) with
// identical RNG draw order, so the bench cross-checks bit-identical results
// before timing; a measurement of two different computations would be
// meaningless.
//
//   ./bench_frontier [--n=100000] [--avg-degree=8] [--tail-rounds=1500]
//                    [--reps=3] [--seed=2026] [--git-rev=<rev>]
//                    [--out=BENCH_frontier.json]
//
// Emits a JSON report with wall-ms and exchanges/sec per (workload,
// implementation, n) plus speedups, and records the benchmarked git
// revision (--git-rev, normally injected by scripts/bench_core.sh) and the
// compiler in the header, so future PRs have a perf trajectory to compare
// against.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "mis/local_feedback.hpp"
#include "sim/beep.hpp"
#include "sim/dense_ref.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace {

using namespace beepmis;

struct Measurement {
  std::string workload;
  std::string impl;
  std::size_t n = 0;
  std::size_t rounds = 0;
  std::size_t exchanges = 0;
  double wall_ms = 0.0;
  double exchanges_per_sec = 0.0;
  double speedup_vs_dense = 1.0;
};

using benchcommon::best_wall_ms;

benchcommon::JsonReport make_report(const std::vector<Measurement>& results,
                                    std::uint64_t seed, double avg_degree,
                                    const std::string& git_rev) {
  benchcommon::JsonReport report;
  report.bench = "bench_frontier";
  report.git_rev = git_rev;
  report.header = {
      {"seed", benchcommon::json_number(seed)},
      {"avg_degree", benchcommon::json_number(avg_degree)},
      {"dense_impl",
       benchcommon::json_string("DenseReferenceSimulator + real LocalFeedbackMis stack")},
  };
  for (const Measurement& m : results) {
    std::ostringstream row;
    row << "{\"workload\": \"" << m.workload << "\", \"impl\": \"" << m.impl
        << "\", \"n\": " << m.n << ", \"rounds\": " << m.rounds
        << ", \"exchanges\": " << m.exchanges << ", \"wall_ms\": " << m.wall_ms
        << ", \"exchanges_per_sec\": " << m.exchanges_per_sec
        << ", \"speedup_vs_dense\": " << m.speedup_vs_dense << "}";
    report.rows.push_back(row.str());
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  support::Options options;
  options.add("n", "100000", "nodes in the sparse G(n, d/n) instance");
  options.add("avg-degree", "8", "average degree of the sparse graph");
  options.add("tail-rounds", "1500", "run_until_round for the sparse-tail workload");
  options.add("frontier-tail-scale", "100",
              "extra tail-rounds factor for the frontier tail-only timing "
              "(its tail is too cheap to resolve over tail-rounds alone)");
  options.add("reps", "3", "timing repetitions (best-of)");
  options.add("seed", "2026", "graph + run seed");
  options.add("git-rev", "unknown", "git revision recorded in the JSON header");
  options.add("out", "BENCH_frontier.json", "JSON report path ('-' = stdout only)");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_frontier");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_frontier");
    return 0;
  }

  const auto n = static_cast<graph::NodeId>(options.get_int("n"));
  const double avg_degree = options.get_double("avg-degree");
  const auto tail_rounds = static_cast<std::size_t>(options.get_int("tail-rounds"));
  const auto frontier_tail_scale =
      static_cast<std::size_t>(options.get_int("frontier-tail-scale"));
  const int reps = static_cast<int>(options.get_int("reps"));
  const std::uint64_t seed = options.get_u64("seed");
  const std::string git_rev = options.get("git-rev");
  constexpr std::size_t kMaxRounds = 1u << 20;

  auto graph_rng = support::Xoshiro256StarStar(seed);
  const graph::Graph g = graph::gnp(n, avg_degree / static_cast<double>(n), graph_rng);
  std::cout << "graph: " << g.describe() << "\n\n";

  // Workloads: "dense" runs to natural termination (~O(log n) rounds, the
  // whole graph active at the start); "sparse-tail" keeps the clock running
  // for tail_rounds, long past convergence.  The difference between the two
  // — "tail-only" — isolates the low-activity regime where per-exchange
  // cost must not scale with n; it is the headline number.
  struct RunPair {
    sim::RunResult checked;
    double dense_ms = 0.0;
    double frontier_ms = 0.0;
  };

  sim::BeepSimulator frontier_sim(g);  // scratch reused across every timed run
  const auto measure = [&](std::size_t run_until) {
    sim::SimConfig config;
    config.run_until_round = run_until;
    config.max_rounds = kMaxRounds;
    sim::DenseReferenceSimulator dense_sim(g, config);
    mis::LocalFeedbackMis dense_protocol;
    const sim::RunResult dense_result =
        dense_sim.run_dense(dense_protocol, support::Xoshiro256StarStar(seed));
    frontier_sim = sim::BeepSimulator(g, config);
    mis::LocalFeedbackMis protocol;
    const sim::RunResult frontier_result =
        frontier_sim.run(protocol, support::Xoshiro256StarStar(seed));
    // Same protocol stack, same RNG draw order: any divergence would make
    // the timing comparison meaningless.
    if (frontier_result.rounds != dense_result.rounds ||
        frontier_result.total_beeps != dense_result.total_beeps ||
        frontier_result.status != dense_result.status ||
        frontier_result.beep_counts != dense_result.beep_counts) {
      std::cerr << "FATAL: dense reference and frontier core diverged (rounds "
                << dense_result.rounds << " vs " << frontier_result.rounds << ", beeps "
                << dense_result.total_beeps << " vs " << frontier_result.total_beeps
                << ")\n";
      std::exit(1);
    }
    RunPair pair;
    pair.checked = dense_result;
    pair.dense_ms = best_wall_ms(reps, [&] {
      mis::LocalFeedbackMis p;
      (void)dense_sim.run_dense(p, support::Xoshiro256StarStar(seed));
    });
    pair.frontier_ms = best_wall_ms(reps, [&] {
      mis::LocalFeedbackMis p;
      (void)frontier_sim.run(p, support::Xoshiro256StarStar(seed));
    });
    return pair;
  };

  const RunPair converge = measure(0);
  const RunPair tail = measure(tail_rounds);

  // Tail-only cost per implementation: subtract the converge-only run from
  // a tail run.  The frontier tail is orders of magnitude cheaper per
  // exchange, so over tail_rounds alone it would vanish into the converge
  // phase's timing noise; give the frontier a proportionally longer tail
  // (frontier_tail_scale) so that *its own* tail cost dominates the
  // subtraction too, and compare per-exchange rates rather than raw wall
  // times.  Each row's wall_ms still refers to that row's own rounds.
  const std::size_t dense_tail_only_rounds = tail.checked.rounds - converge.checked.rounds;
  const double dense_tail_ms = std::max(1e-3, tail.dense_ms - converge.dense_ms);

  const std::size_t frontier_tail_target = tail_rounds * frontier_tail_scale;
  sim::SimConfig long_config;
  long_config.run_until_round = frontier_tail_target;
  long_config.max_rounds = kMaxRounds;
  frontier_sim = sim::BeepSimulator(g, long_config);
  mis::LocalFeedbackMis warm_protocol;
  const sim::RunResult long_result =
      frontier_sim.run(warm_protocol, support::Xoshiro256StarStar(seed));
  const double frontier_long_ms = best_wall_ms(reps, [&] {
    mis::LocalFeedbackMis p;
    (void)frontier_sim.run(p, support::Xoshiro256StarStar(seed));
  });
  const std::size_t frontier_tail_only_rounds =
      long_result.rounds - converge.checked.rounds;
  const double frontier_tail_ms = std::max(1e-3, frontier_long_ms - converge.frontier_ms);

  std::vector<Measurement> results;
  support::Table table(
      {"workload", "impl", "rounds", "wall ms", "exchanges/sec", "speedup"});
  const auto record = [&](const char* workload, const char* impl, std::size_t rounds,
                          double ms, double speedup) {
    Measurement m;
    m.workload = workload;
    m.impl = impl;
    m.n = n;
    m.rounds = rounds;
    m.exchanges = 2 * rounds;
    m.wall_ms = ms;
    m.exchanges_per_sec = static_cast<double>(m.exchanges) / (ms / 1000.0);
    m.speedup_vs_dense = speedup;
    results.push_back(m);
    table.new_row()
        .cell(workload)
        .cell(impl)
        .cell(rounds)
        .cell(ms)
        .cell(m.exchanges_per_sec)
        .cell(speedup);
  };

  record("dense", "seed-dense", converge.checked.rounds, converge.dense_ms, 1.0);
  record("dense", "frontier", converge.checked.rounds, converge.frontier_ms,
         converge.dense_ms / converge.frontier_ms);
  record("sparse-tail", "seed-dense", tail.checked.rounds, tail.dense_ms, 1.0);
  record("sparse-tail", "frontier", tail.checked.rounds, tail.frontier_ms,
         tail.dense_ms / tail.frontier_ms);
  const double dense_tail_rate =
      2.0 * static_cast<double>(dense_tail_only_rounds) / (dense_tail_ms / 1000.0);
  const double frontier_tail_rate =
      2.0 * static_cast<double>(frontier_tail_only_rounds) / (frontier_tail_ms / 1000.0);
  // Degenerate tail (e.g. --tail-rounds=0): no meaningful ratio, report 1.
  const double tail_speedup =
      (dense_tail_rate > 0.0 && frontier_tail_rate > 0.0)
          ? frontier_tail_rate / dense_tail_rate
          : 1.0;
  record("sparse-tail-only", "seed-dense", dense_tail_only_rounds, dense_tail_ms, 1.0);
  record("sparse-tail-only", "frontier", frontier_tail_only_rounds, frontier_tail_ms,
         tail_speedup);

  std::cout << table.to_string() << '\n';

  const benchcommon::JsonReport report = make_report(results, seed, avg_degree, git_rev);
  return report.write_to(options.get("out"), std::cout) ? 0 : 1;
}

// Frontier-core micro-benchmark: dense (pre-rewrite) vs frontier-driven
// simulator on dense and sparse-tail workloads.
//
// The frontier rewrite makes per-exchange simulator cost O(active + beep
// deliveries) instead of Θ(n).  The regime where that matters is the long
// low-activity tail: after a local-feedback MIS converges (O(log n)
// rounds), maintenance experiments keep the clock running via
// run_until_round, and the pre-rewrite core paid three n-byte clears plus
// an n-byte copy per exchange regardless of activity.
//
// To measure the difference honestly, this bench embeds a faithful copy of
// the pre-rewrite hot loop (`denseref` below: full-array fills, full
// prev-beep copy, dense active-list delivery scan) together with an inlined
// paper-config local-feedback protocol, and runs both implementations on
// identical (graph, seed) inputs.  Both are pure functions of (graph,
// seed) with identical RNG draw order, so the bench also cross-checks that
// rounds, total beeps and MIS size agree bit-for-bit — a measurement of two
// different computations would be meaningless.
//
//   ./bench_frontier [--n=100000] [--avg-degree=8] [--tail-rounds=1500]
//                    [--reps=3] [--seed=2026] [--out=BENCH_core.json]
//
// Emits a JSON report (default BENCH_core.json) with wall-ms and
// exchanges/sec per (workload, implementation, n), plus the speedups, so
// future PRs have a perf trajectory to compare against.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "mis/local_feedback.hpp"
#include "sim/beep.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace denseref {

using namespace beepmis;

// Faithful reproduction of the pre-rewrite simulator hot path with the
// paper-config local-feedback protocol (p0 = 1/2, factor 2, two exchanges)
// inlined.  Per-exchange cost is Θ(n) by construction: three full-array
// clears, one full-array copy, and a full active-list delivery scan.
struct DenseRunResult {
  std::size_t rounds = 0;
  std::uint64_t total_beeps = 0;
  std::size_t mis_size = 0;
};

DenseRunResult run_local_feedback_dense(const graph::Graph& g, std::uint64_t seed,
                                        std::size_t run_until_round,
                                        std::size_t max_rounds) {
  auto rng = support::Xoshiro256StarStar(seed);
  const graph::NodeId n = g.node_count();

  enum class Status : std::uint8_t { kActive, kInMis, kDominated };
  std::vector<Status> status(n, Status::kActive);
  std::vector<std::uint8_t> beeped(n, 0), prev_beeped(n, 0), heard(n, 0);
  std::vector<std::uint8_t> winner(n, 0);
  std::vector<double> p(n, 0.5);
  std::vector<graph::NodeId> active(n);
  for (graph::NodeId v = 0; v < n; ++v) active[v] = v;

  std::uint64_t total_beeps = 0;
  std::size_t round = 0;
  while ((!active.empty() || round < run_until_round) && round < max_rounds) {
    for (unsigned exchange = 0; exchange < 2; ++exchange) {
      if (exchange == 0) {
        std::fill(prev_beeped.begin(), prev_beeped.end(), std::uint8_t{0});
      } else {
        prev_beeped = beeped;  // the full-array copy the rewrite removed
      }
      std::fill(beeped.begin(), beeped.end(), std::uint8_t{0});

      // emit
      if (exchange == 0) {
        for (const graph::NodeId v : active) {
          winner[v] = 0;
          if (rng.bernoulli(p[v])) {
            beeped[v] = 1;
            if (!prev_beeped[v]) ++total_beeps;
          }
        }
      } else {
        for (const graph::NodeId v : active) {
          if (winner[v] && status[v] == Status::kActive) {
            beeped[v] = 1;
            if (!prev_beeped[v]) ++total_beeps;
          }
        }
      }

      // deliver (reliable channel): dense scan of the active list
      std::fill(heard.begin(), heard.end(), std::uint8_t{0});
      for (const graph::NodeId v : active) {
        if (!beeped[v]) continue;
        for (const graph::NodeId w : g.neighbors(v)) heard[w] = 1;
      }

      // react
      if (exchange == 0) {
        for (const graph::NodeId v : active) {
          const bool h = heard[v];
          winner[v] = static_cast<std::uint8_t>(beeped[v] && !h);
          if (h) {
            p[v] /= 2.0;
          } else {
            p[v] = std::min(0.5, p[v] * 2.0);
          }
        }
      } else {
        for (const graph::NodeId v : active) {
          if (status[v] != Status::kActive) continue;
          if (winner[v]) {
            status[v] = Status::kInMis;
          } else if (heard[v]) {
            status[v] = Status::kDominated;
          }
        }
      }
    }
    std::erase_if(active, [&](graph::NodeId v) { return status[v] != Status::kActive; });
    ++round;
  }

  DenseRunResult result;
  result.rounds = round;
  result.total_beeps = total_beeps;
  for (const Status s : status) {
    if (s == Status::kInMis) ++result.mis_size;
  }
  return result;
}

}  // namespace denseref

namespace {

using namespace beepmis;

struct Measurement {
  std::string workload;
  std::string impl;
  std::size_t n = 0;
  std::size_t rounds = 0;
  std::size_t exchanges = 0;
  double wall_ms = 0.0;
  double exchanges_per_sec = 0.0;
  double speedup_vs_dense = 1.0;
};

template <typename Run>
double best_wall_ms(int reps, Run&& run) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    run();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

void write_json(std::ostream& out, const std::vector<Measurement>& results,
                std::uint64_t seed, double avg_degree) {
  out << "{\n  \"bench\": \"bench_frontier\",\n  \"seed\": " << seed
      << ",\n  \"avg_degree\": " << avg_degree << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    out << "    {\"workload\": \"" << m.workload << "\", \"impl\": \"" << m.impl
        << "\", \"n\": " << m.n << ", \"rounds\": " << m.rounds
        << ", \"exchanges\": " << m.exchanges << ", \"wall_ms\": " << m.wall_ms
        << ", \"exchanges_per_sec\": " << m.exchanges_per_sec
        << ", \"speedup_vs_dense\": " << m.speedup_vs_dense << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  support::Options options;
  options.add("n", "100000", "nodes in the sparse G(n, d/n) instance");
  options.add("avg-degree", "8", "average degree of the sparse graph");
  options.add("tail-rounds", "1500", "run_until_round for the sparse-tail workload");
  options.add("frontier-tail-scale", "100",
              "extra tail-rounds factor for the frontier tail-only timing "
              "(its tail is too cheap to resolve over tail-rounds alone)");
  options.add("reps", "3", "timing repetitions (best-of)");
  options.add("seed", "2026", "graph + run seed");
  options.add("out", "BENCH_core.json", "JSON report path ('-' = stdout only)");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("bench_frontier");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("bench_frontier");
    return 0;
  }

  const auto n = static_cast<graph::NodeId>(options.get_int("n"));
  const double avg_degree = options.get_double("avg-degree");
  const auto tail_rounds = static_cast<std::size_t>(options.get_int("tail-rounds"));
  const auto frontier_tail_scale =
      static_cast<std::size_t>(options.get_int("frontier-tail-scale"));
  const int reps = static_cast<int>(options.get_int("reps"));
  const std::uint64_t seed = options.get_u64("seed");
  constexpr std::size_t kMaxRounds = 1u << 20;

  auto graph_rng = support::Xoshiro256StarStar(seed);
  const graph::Graph g = graph::gnp(n, avg_degree / static_cast<double>(n), graph_rng);
  std::cout << "graph: " << g.describe() << "\n\n";

  // Workloads: "dense" runs to natural termination (~O(log n) rounds, the
  // whole graph active at the start); "sparse-tail" keeps the clock running
  // for tail_rounds, long past convergence.  The difference between the two
  // — "tail-only" — isolates the low-activity regime where per-exchange
  // cost must not scale with n; it is the headline number.
  struct RunPair {
    denseref::DenseRunResult checked;
    double dense_ms = 0.0;
    double frontier_ms = 0.0;
  };

  sim::BeepSimulator frontier_sim(g);  // scratch reused across every timed run
  const auto measure = [&](std::size_t run_until) {
    const denseref::DenseRunResult dense_result =
        denseref::run_local_feedback_dense(g, seed, run_until, kMaxRounds);
    sim::SimConfig config;
    config.run_until_round = run_until;
    config.max_rounds = kMaxRounds;
    frontier_sim = sim::BeepSimulator(g, config);
    mis::LocalFeedbackMis protocol;
    const sim::RunResult frontier_result =
        frontier_sim.run(protocol, support::Xoshiro256StarStar(seed));
    // Both cores are pure functions of (graph, seed) with the same RNG draw
    // order; a divergence would make the timing comparison meaningless.
    if (frontier_result.rounds != dense_result.rounds ||
        frontier_result.total_beeps != dense_result.total_beeps ||
        frontier_result.mis().size() != dense_result.mis_size) {
      std::cerr << "FATAL: dense reference and frontier core diverged (rounds "
                << dense_result.rounds << " vs " << frontier_result.rounds << ", beeps "
                << dense_result.total_beeps << " vs " << frontier_result.total_beeps
                << ")\n";
      std::exit(1);
    }
    RunPair pair;
    pair.checked = dense_result;
    pair.dense_ms = best_wall_ms(reps, [&] {
      (void)denseref::run_local_feedback_dense(g, seed, run_until, kMaxRounds);
    });
    pair.frontier_ms = best_wall_ms(reps, [&] {
      mis::LocalFeedbackMis p;
      (void)frontier_sim.run(p, support::Xoshiro256StarStar(seed));
    });
    return pair;
  };

  const RunPair converge = measure(0);
  const RunPair tail = measure(tail_rounds);

  // Tail-only cost per implementation: subtract the converge-only run from
  // a tail run.  The frontier tail is orders of magnitude cheaper per
  // exchange, so over tail_rounds alone it would vanish into the converge
  // phase's timing noise; give the frontier a proportionally longer tail
  // (frontier_tail_scale) so that *its own* tail cost dominates the
  // subtraction too, and compare per-exchange rates rather than raw wall
  // times.  Each row's wall_ms still refers to that row's own rounds.
  const std::size_t dense_tail_only_rounds = tail.checked.rounds - converge.checked.rounds;
  const double dense_tail_ms = std::max(1e-3, tail.dense_ms - converge.dense_ms);

  const std::size_t frontier_tail_target = tail_rounds * frontier_tail_scale;
  sim::SimConfig long_config;
  long_config.run_until_round = frontier_tail_target;
  long_config.max_rounds = kMaxRounds;
  frontier_sim = sim::BeepSimulator(g, long_config);
  mis::LocalFeedbackMis warm_protocol;
  const sim::RunResult long_result =
      frontier_sim.run(warm_protocol, support::Xoshiro256StarStar(seed));
  const double frontier_long_ms = best_wall_ms(reps, [&] {
    mis::LocalFeedbackMis p;
    (void)frontier_sim.run(p, support::Xoshiro256StarStar(seed));
  });
  const std::size_t frontier_tail_only_rounds =
      long_result.rounds - converge.checked.rounds;
  const double frontier_tail_ms = std::max(1e-3, frontier_long_ms - converge.frontier_ms);

  std::vector<Measurement> results;
  support::Table table(
      {"workload", "impl", "rounds", "wall ms", "exchanges/sec", "speedup"});
  const auto record = [&](const char* workload, const char* impl, std::size_t rounds,
                          double ms, double speedup) {
    Measurement m;
    m.workload = workload;
    m.impl = impl;
    m.n = n;
    m.rounds = rounds;
    m.exchanges = 2 * rounds;
    m.wall_ms = ms;
    m.exchanges_per_sec = static_cast<double>(m.exchanges) / (ms / 1000.0);
    m.speedup_vs_dense = speedup;
    results.push_back(m);
    table.new_row()
        .cell(workload)
        .cell(impl)
        .cell(rounds)
        .cell(ms)
        .cell(m.exchanges_per_sec)
        .cell(speedup);
  };

  record("dense", "dense-reference", converge.checked.rounds, converge.dense_ms, 1.0);
  record("dense", "frontier", converge.checked.rounds, converge.frontier_ms,
         converge.dense_ms / converge.frontier_ms);
  record("sparse-tail", "dense-reference", tail.checked.rounds, tail.dense_ms, 1.0);
  record("sparse-tail", "frontier", tail.checked.rounds, tail.frontier_ms,
         tail.dense_ms / tail.frontier_ms);
  const double dense_tail_rate =
      2.0 * static_cast<double>(dense_tail_only_rounds) / (dense_tail_ms / 1000.0);
  const double frontier_tail_rate =
      2.0 * static_cast<double>(frontier_tail_only_rounds) / (frontier_tail_ms / 1000.0);
  // Degenerate tail (e.g. --tail-rounds=0): no meaningful ratio, report 1.
  const double tail_speedup =
      (dense_tail_rate > 0.0 && frontier_tail_rate > 0.0)
          ? frontier_tail_rate / dense_tail_rate
          : 1.0;
  record("sparse-tail-only", "dense-reference", dense_tail_only_rounds, dense_tail_ms, 1.0);
  record("sparse-tail-only", "frontier", frontier_tail_only_rounds, frontier_tail_ms,
         tail_speedup);

  std::cout << table.to_string() << '\n';

  const std::string out_path = options.get("out");
  write_json(std::cout, results, seed, avg_degree);
  if (out_path != "-") {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << '\n';
      return 1;
    }
    write_json(out, results, seed, avg_degree);
    std::cout << "wrote " << out_path << '\n';
  }
  return 0;
}

// Sensor-network clustering: the paper's conclusion motivates beeping MIS
// for ad hoc sensor networks — nodes with no ids, no global knowledge and
// one-bit radios.  This example deploys sensors uniformly in the unit
// square, connects nodes within radio range, elects cluster heads with the
// local-feedback MIS, and draws the result as an ASCII map.
//
//   ./sensor_network [--sensors=120] [--radius=0.18] [--seed=7] [--compare]
//
// --budget=SECONDS bounds the beeping election's wall clock: the exact
// election runs if it finishes inside the budget, otherwise the example
// falls back to the deterministic greedy-id election — an exact answer
// when affordable, an honest approximate one when not.
#include <atomic>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cli/registry.hpp"
#include "mis/local_feedback.hpp"
#include "mis/mis.hpp"
#include "mis/self_healing.hpp"
#include "sim/sharded.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace {

using namespace beepmis;

/// Draws sensors on a character grid: '#' = cluster head, 'o' = member.
std::string ascii_map(const graph::GeometricGraph& field,
                      const std::vector<graph::NodeId>& heads, std::size_t size) {
  std::vector<std::string> canvas(size, std::string(2 * size, ' '));
  std::vector<bool> is_head(field.graph.node_count(), false);
  for (const graph::NodeId v : heads) is_head[v] = true;
  for (graph::NodeId v = 0; v < field.graph.node_count(); ++v) {
    const auto row = static_cast<std::size_t>(field.y[v] * static_cast<double>(size - 1));
    const auto col =
        static_cast<std::size_t>(field.x[v] * static_cast<double>(2 * size - 1));
    canvas[row][col] = is_head[v] ? '#' : 'o';
  }
  std::string out;
  for (const auto& line : canvas) {
    out += '|';
    out += line;
    out += "|\n";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  support::Options options;
  options.add("sensors", "120", "number of sensors");
  options.add("radius", "0.18", "radio range (unit square)");
  options.add("seed", "7", "random seed");
  options.add("compare", "false", "also run Luby's algorithm and compare cost");
  options.add("shards", "1",
              "elect heads across this many CSR shards / worker threads "
              "(bit-identical to the single-threaded election)");
  options.add("churn", "false",
              "crash 20% of sensors mid-run and re-elect heads via self-healing");
  options.add("budget", "0",
              "wall-clock budget in seconds for the head election (0 = unlimited); "
              "on expiry fall back to the deterministic greedy election");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("sensor_network");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("sensor_network");
    return 0;
  }

  const auto sensors = static_cast<graph::NodeId>(options.get_int("sensors"));
  const double radius = options.get_double("radius");
  const std::uint64_t seed = options.get_u64("seed");
  const auto shards = static_cast<unsigned>(options.get_int("shards"));
  double budget_seconds = 0.0;
  try {
    budget_seconds = cli::parse_seconds_flag("--budget", options.get("budget"));
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << '\n' << options.usage("sensor_network");
    return 1;
  }

  auto rng = support::Xoshiro256StarStar(seed);
  const graph::GeometricGraph field = graph::random_geometric(sensors, radius, rng);
  const graph::Graph& g = field.graph;
  std::cout << "deployed " << sensors << " sensors, radio range " << radius << ": "
            << g.describe() << "\n";
  const graph::Components comps = graph::connected_components(g);
  std::cout << "network has " << comps.count << " connected component(s)\n\n";

  // --shards >= 2 elects through the sharded simulator (one worker thread
  // per CSR shard); the sharded core draws in scalar order, so the elected
  // heads — and everything printed below — are identical either way.
  sim::RunResult result;
  bool exact_election = true;
  if (shards >= 2) {
    mis::LocalFeedbackMis protocol;
    sim::ShardedSimulator simulator(g, shards);
    result = simulator.run(protocol, support::Xoshiro256StarStar(seed));
    std::cout << "election ran on " << simulator.shard_count() << " CSR shards\n";
  } else if (budget_seconds > 0.0) {
    // Budget-bounded election: the simulator checks the deadline at every
    // round boundary and throws sim::RunCancelled past it; the fallback is
    // the deterministic greedy election — exact if affordable, honest
    // approximation otherwise.
    sim::SimConfig config;
    config.deadline_ns = std::make_shared<std::atomic<std::int64_t>>(
        sim::steady_now_ns() + static_cast<std::int64_t>(budget_seconds * 1e9));
    mis::LocalFeedbackMis protocol;
    sim::BeepSimulator simulator(g, config);
    try {
      result = simulator.run(protocol, support::Xoshiro256StarStar(seed));
    } catch (const sim::RunCancelled& e) {
      std::cout << "election budget expired (" << e.what()
                << "); falling back to the deterministic greedy election\n";
      result = mis::run_greedy_id(g);
      exact_election = false;
    }
  } else {
    result = mis::run_local_feedback(g, seed);
  }
  const mis::VerificationReport report = mis::verify_mis_run(g, result);
  const auto heads = result.mis();

  std::cout << "cluster-head election ("
            << (exact_election ? "local-feedback beeping MIS"
                               : "greedy-id fallback, budget expired")
            << "):\n"
            << "  time steps: " << result.rounds << "\n"
            << "  beeps per node: " << result.mean_beeps_per_node()
            << " (1-bit radio messages)\n"
            << "  cluster heads: " << heads.size() << "\n"
            << "  every sensor is a head or hears a head: "
            << (report.valid() ? "yes" : "NO") << "\n\n";

  std::cout << ascii_map(field, heads, 24) << "\n  '#' = cluster head, 'o' = member\n\n";

  if (options.get_bool("churn")) {
    // Battery failures: 20% of sensors (head or not) die at rounds 20-30;
    // the self-healing variant re-elects heads in orphaned clusters.
    sim::SimConfig churn_config;
    churn_config.mis_keepalive = true;
    churn_config.run_until_round = 100;
    churn_config.crash_round.assign(g.node_count(), 0xffffffffu);
    for (graph::NodeId v = 0; v < g.node_count(); v += 5) {
      churn_config.crash_round[v] = 20 + v % 11;
    }
    mis::SelfHealingLocalFeedbackMis healing_protocol;
    sim::BeepSimulator churn_simulator(g, churn_config);
    const sim::RunResult after =
        churn_simulator.run(healing_protocol, support::Xoshiro256StarStar(seed));
    const mis::VerificationReport after_report = mis::verify_mis_run(g, after);

    std::cout << "after battery failures (20% of sensors died, self-healing on):\n"
              << "  re-elections (reactivated sensors): " << healing_protocol.reactivations()
              << "\n  surviving sensors covered: " << (after_report.valid() ? "yes" : "NO")
              << " (" << after_report.summary() << ")\n\n"
              << ascii_map(field, after.mis(), 24)
              << "\n  '#' = cluster head after churn ('o' includes dead sensors)\n\n";
  }

  if (options.get_bool("compare")) {
    const sim::RunResult luby = mis::run_luby(g, seed);
    support::Table table({"algorithm", "rounds", "communication"});
    table.new_row()
        .cell("local-feedback beeps")
        .cell(result.rounds)
        .cell(std::to_string(result.total_beeps) + " one-bit beeps");
    table.new_row()
        .cell("luby (LOCAL model)")
        .cell(luby.rounds)
        .cell(std::to_string(luby.message_bits) + " message bits");
    table.print(std::cout);
    std::cout << "\nLuby needs numeric messages; the beeping algorithm reaches the same\n"
                 "round complexity with single-bit signals (paper Theorems 2 and 6).\n";
  }
  return report.valid() ? 0 : 1;
}

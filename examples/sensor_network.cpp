// Sensor-network clustering: the paper's conclusion motivates beeping MIS
// for ad hoc sensor networks — nodes with no ids, no global knowledge and
// one-bit radios.  This example deploys sensors uniformly in the unit
// square, connects nodes within radio range, elects cluster heads with the
// local-feedback MIS, and draws the result as an ASCII map.
//
//   ./sensor_network [--sensors=120] [--radius=0.18] [--seed=7] [--compare]
//
// Every election here goes through cli::run_algorithm on a declarative
// cli::AlgorithmSpec — the same registry entrypoint beepmis_cli and the
// beepmisd sweep service use — so the example exercises the public API
// rather than private simulator plumbing: sharded elections set
// spec.shards, the wall-clock budget sets spec.budget_seconds (falling
// back to the deterministic greedy-id election on expiry), and churn is
// the registered self-healing algorithm under a uniform-crash scenario.
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/registry.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mis/verifier.hpp"
#include "sim/beep.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace {

using namespace beepmis;

/// Draws sensors on a character grid: '#' = cluster head, 'o' = member.
std::string ascii_map(const graph::GeometricGraph& field,
                      const std::vector<graph::NodeId>& heads, std::size_t size) {
  std::vector<std::string> canvas(size, std::string(2 * size, ' '));
  std::vector<bool> is_head(field.graph.node_count(), false);
  for (const graph::NodeId v : heads) is_head[v] = true;
  for (graph::NodeId v = 0; v < field.graph.node_count(); ++v) {
    const auto row = static_cast<std::size_t>(field.y[v] * static_cast<double>(size - 1));
    const auto col =
        static_cast<std::size_t>(field.x[v] * static_cast<double>(2 * size - 1));
    canvas[row][col] = is_head[v] ? '#' : 'o';
  }
  std::string out;
  for (const auto& line : canvas) {
    out += '|';
    out += line;
    out += "|\n";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  support::Options options;
  options.add("sensors", "120", "number of sensors");
  options.add("radius", "0.18", "radio range (unit square)");
  options.add("seed", "7", "random seed");
  options.add("compare", "false", "also run Luby's algorithm and compare cost");
  options.add("shards", "1",
              "elect heads across this many CSR shards / worker threads "
              "(bit-identical to the single-threaded election)");
  options.add("churn", "false",
              "crash ~20% of sensors mid-run and re-elect heads via self-healing");
  options.add("budget", "0",
              "wall-clock budget in seconds for the head election (0 = unlimited); "
              "on expiry fall back to the deterministic greedy election");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("sensor_network");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("sensor_network");
    return 0;
  }

  const auto sensors = static_cast<graph::NodeId>(options.get_int("sensors"));
  const double radius = options.get_double("radius");
  const std::uint64_t seed = options.get_u64("seed");
  const auto shards = static_cast<unsigned>(options.get_int("shards"));
  double budget_seconds = 0.0;
  try {
    budget_seconds = cli::parse_seconds_flag("--budget", options.get("budget"));
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << '\n' << options.usage("sensor_network");
    return 1;
  }

  auto rng = support::Xoshiro256StarStar(seed);
  const graph::GeometricGraph field = graph::random_geometric(sensors, radius, rng);
  const graph::Graph& g = field.graph;
  std::cout << "deployed " << sensors << " sensors, radio range " << radius << ": "
            << g.describe() << "\n";
  const graph::Components comps = graph::connected_components(g);
  std::cout << "network has " << comps.count << " connected component(s)\n\n";

  // --shards >= 2 elects through the sharded simulator (one worker thread
  // per CSR shard); the sharded core draws in scalar order, so the elected
  // heads — and everything printed below — are identical either way.
  cli::AlgorithmSpec election;
  election.name = "local-feedback";
  election.seed = seed;
  election.shards = shards;
  election.budget_seconds = budget_seconds;

  sim::RunResult result;
  bool exact_election = true;
  try {
    result = cli::run_algorithm(election, g);
    if (shards >= 2) std::cout << "election ran on " << shards << " CSR shards\n";
  } catch (const sim::RunCancelled& e) {
    // Budget-bounded election: run_algorithm arms the simulator's deadline
    // from spec.budget_seconds and the simulator cancels at the first round
    // boundary past it; the fallback is the deterministic greedy election —
    // exact if affordable, honest approximation otherwise.
    std::cout << "election budget expired (" << e.what()
              << "); falling back to the deterministic greedy election\n";
    cli::AlgorithmSpec fallback;
    fallback.name = "greedy-id";
    fallback.seed = seed;
    result = cli::run_algorithm(fallback, g);
    exact_election = false;
  }
  const mis::VerificationReport report = mis::verify_mis_run(g, result);
  const auto heads = result.mis();

  std::cout << "cluster-head election ("
            << (exact_election ? "local-feedback beeping MIS"
                               : "greedy-id fallback, budget expired")
            << "):\n"
            << "  time steps: " << result.rounds << "\n"
            << "  beeps per node: " << result.mean_beeps_per_node()
            << " (1-bit radio messages)\n"
            << "  cluster heads: " << heads.size() << "\n"
            << "  every sensor is a head or hears a head: "
            << (report.valid() ? "yes" : "NO") << "\n\n";

  std::cout << ascii_map(field, heads, 24) << "\n  '#' = cluster head, 'o' = member\n\n";

  if (options.get_bool("churn")) {
    // Battery failures: the registered uniform-crash adversary kills each
    // sensor w.p. 0.2 in rounds 20-30 while the self-healing variant
    // re-elects heads in orphaned clusters.
    cli::AlgorithmSpec healing;
    healing.name = "self-healing";
    healing.seed = seed;
    healing.sim.run_until_round = 100;
    healing.scenario.name = "uniform-crash";
    healing.scenario.rate = 0.2;
    healing.scenario.round_lo = 20;
    healing.scenario.round_hi = 30;
    healing.scenario.seed = seed;
    const sim::RunResult after = cli::run_algorithm(healing, g);
    const mis::VerificationReport after_report = mis::verify_mis_run(g, after);

    std::cout << "after battery failures (~20% of sensors died, self-healing on):\n"
              << "  surviving sensors covered: " << (after_report.valid() ? "yes" : "NO")
              << " (" << after_report.summary() << ")\n\n"
              << ascii_map(field, after.mis(), 24)
              << "\n  '#' = cluster head after churn ('o' includes dead sensors)\n\n";
  }

  if (options.get_bool("compare")) {
    cli::AlgorithmSpec luby_spec;
    luby_spec.name = "luby";
    luby_spec.seed = seed;
    const sim::RunResult luby = cli::run_algorithm(luby_spec, g);
    support::Table table({"algorithm", "rounds", "communication"});
    table.new_row()
        .cell("local-feedback beeps")
        .cell(result.rounds)
        .cell(std::to_string(result.total_beeps) + " one-bit beeps");
    table.new_row()
        .cell("luby (LOCAL model)")
        .cell(luby.rounds)
        .cell(std::to_string(luby.message_bits) + " message bits");
    table.print(std::cout);
    std::cout << "\nLuby needs numeric messages; the beeping algorithm reaches the same\n"
                 "round complexity with single-bit signals (paper Theorems 2 and 6).\n";
  }
  return report.valid() ? 0 : 1;
}

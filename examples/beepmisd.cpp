// beepmisd: the persistent sweep server (src/svc/README.md).  Owns a
// Unix socket and a durable state directory; clients submit serialized
// SweepSpec lines (cli/sweep_spec.hpp) and stream back progress and a
// bit-exact TrialStats payload.  Repeated requests hit the result
// cache; duplicates attach to the in-flight job; a killed server
// resumes its queued sweeps from their journals on the next start.
//
//   ./beepmisd --socket=/tmp/beepmis.sock --state-dir=/tmp/beepmis-state
//
// SIGTERM drains gracefully (finish the backlog, then exit); SIGINT
// stops fast (checkpoint running sweeps, persist the queue, exit).
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <thread>

#include "support/options.hpp"
#include "svc/server.hpp"

namespace {

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig); }

}  // namespace

int main(int argc, char** argv) {
  using namespace beepmis;

  support::Options options;
  options.add("socket", "", "unix socket path to listen on (required)");
  options.add("state-dir", "", "durable state directory (required)");
  options.add("workers", "1", "concurrent sweep jobs");
  options.add("poll-ms", "100", "poll slice for accept/read loops");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("beepmisd");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("beepmisd");
    return 0;
  }

  svc::ServiceConfig config;
  config.socket_path = options.get("socket");
  config.state_dir = options.get("state-dir");
  config.job_workers = static_cast<unsigned>(options.get_int("workers"));
  config.poll_ms = static_cast<int>(options.get_int("poll-ms"));

  try {
    svc::SweepService service(config);
    service.start();
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    {
      const svc::ServiceCounters c = service.counters();
      // The "listening" line is the readiness handshake scripts wait for.
      std::cout << "beepmisd listening on " << config.socket_path << " (state "
                << config.state_dir << ", workers " << config.job_workers << ", recovered "
                << c.recovered_pending << " pending";
      if (c.rejected_pending > 0) std::cout << ", rejected " << c.rejected_pending;
      std::cout << ")" << std::endl;
    }

    while (g_signal.load() == 0 && !service.stopped()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    const int sig = g_signal.load();
    if (sig == SIGTERM) {
      std::cout << "beepmisd: SIGTERM, draining backlog" << std::endl;
      service.drain();
    } else if (sig != 0) {
      std::cout << "beepmisd: signal " << sig << ", fast stop (state persisted)" << std::endl;
      service.stop();
    }
    service.join();

    const svc::ServiceCounters c = service.counters();
    std::cout << "beepmisd: exiting; submitted " << c.submitted << ", completed " << c.completed
              << ", cache hits " << c.cache_hits << ", attached " << c.attached << ", failed "
              << c.failed << '\n';
    if (!service.internal_error().empty()) {
      std::cerr << "beepmisd: internal error: " << service.internal_error() << '\n';
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "beepmisd: " << e.what() << '\n';
    return 1;
  }
}

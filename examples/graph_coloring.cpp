// MIS as a building block — the use case the paper's conclusion calls out.
// Runs the library's two MIS-powered applications on a random network:
//   * distributed (Δ+1)-ish colouring by iterated local-feedback MIS, and
//   * maximal matching as a local-feedback MIS of the line graph.
// Both computations use only one-bit beep messages end to end.
//
//   ./graph_coloring [--n=150] [--p=0.1] [--seed=5]
#include <iostream>

#include "graph/generators.hpp"
#include "mis/applications.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace beepmis;

  support::Options options;
  options.add("n", "150", "number of nodes");
  options.add("p", "0.1", "edge probability for G(n, p)");
  options.add("seed", "5", "random seed");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("graph_coloring");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("graph_coloring");
    return 0;
  }

  const auto n = static_cast<graph::NodeId>(options.get_int("n"));
  const double p = options.get_double("p");
  const std::uint64_t seed = options.get_u64("seed");

  auto graph_rng = support::Xoshiro256StarStar(seed);
  const graph::Graph g = graph::gnp(n, p, graph_rng);
  std::cout << "network: " << g.describe() << " (max degree " << g.max_degree()
            << ")\n\n";

  // --- Application 1: distributed colouring by iterated MIS -------------
  const mis::ColoringResult coloring = mis::distributed_coloring(g, seed);
  const graph::Coloring greedy = graph::greedy_coloring(g);
  const bool proper = graph::is_proper_coloring(g, coloring.coloring);

  support::Table color_table({"metric", "value"});
  color_table.new_row().cell("colours (iterated beeping MIS)").cell(
      static_cast<std::size_t>(coloring.coloring.colors_used));
  color_table.new_row().cell("colours (sequential greedy)").cell(
      static_cast<std::size_t>(greedy.colors_used));
  color_table.new_row().cell("upper bound (max degree + 1)").cell(g.max_degree() + 1);
  color_table.new_row().cell("MIS phases").cell(coloring.phases);
  color_table.new_row().cell("total beeping time steps").cell(coloring.total_rounds);
  color_table.new_row().cell("total beeps").cell(
      static_cast<std::size_t>(coloring.total_beeps));
  color_table.new_row().cell("colouring proper").cell(proper ? "yes" : "NO");
  std::cout << "distributed colouring:\n";
  color_table.print(std::cout);

  // --- Application 2: maximal matching via MIS on the line graph --------
  const mis::MatchingResult matching = mis::maximal_matching(g, seed + 1);
  const bool maximal = graph::is_maximal_matching(g, matching.matching);

  support::Table match_table({"metric", "value"});
  match_table.new_row().cell("matched edges").cell(matching.matching.size());
  match_table.new_row().cell("line-graph nodes (edges of G)").cell(g.edge_count());
  match_table.new_row().cell("beeping time steps").cell(matching.rounds);
  match_table.new_row().cell("matching maximal").cell(maximal ? "yes" : "NO");
  std::cout << "\nmaximal matching (MIS on the line graph):\n";
  match_table.print(std::cout);

  std::cout << "\nfirst matched edges:";
  for (std::size_t i = 0; i < std::min<std::size_t>(8, matching.matching.size()); ++i) {
    std::cout << ' ' << matching.matching[i].u << '-' << matching.matching[i].v;
  }
  std::cout << "\n";
  return (proper && maximal) ? 0 : 1;
}

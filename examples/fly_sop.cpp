// Fly sensory-organ-precursor (SOP) selection: the biological system the
// paper abstracts from.  Proneural cells sit in an epithelial sheet
// (modelled as a hexagonal lattice); Notch-Delta lateral inhibition picks
// SOPs so every cell is an SOP or touches one, and no two SOPs touch —
// exactly an MIS.  This example runs the local-feedback algorithm on the
// lattice, renders the resulting bristle pattern, and replays the
// developmental timeline from the event trace.
//
//   ./fly_sop [--rows=14] [--cols=30] [--seed=2013] [--timeline]
#include <iostream>
#include <string>
#include <vector>

#include "mis/mis.hpp"
#include "sim/trace.hpp"
#include "support/options.hpp"

namespace {

using namespace beepmis;

std::string render_epithelium(graph::NodeId rows, graph::NodeId cols,
                              const std::vector<sim::NodeStatus>& status) {
  std::string out;
  for (graph::NodeId r = 0; r < rows; ++r) {
    // Offset alternate rows to suggest hexagonal packing.
    out += (r % 2 == 1) ? " " : "";
    for (graph::NodeId c = 0; c < cols; ++c) {
      const sim::NodeStatus s = status[r * cols + c];
      out += (s == sim::NodeStatus::kInMis) ? "* " : ". ";
    }
    out += '\n';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  support::Options options;
  options.add("rows", "14", "epithelium rows");
  options.add("cols", "30", "epithelium columns");
  options.add("seed", "2013", "random seed");
  options.add("timeline", "false", "print per-round SOP commitment timeline");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("fly_sop");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("fly_sop");
    return 0;
  }

  const auto rows = static_cast<graph::NodeId>(options.get_int("rows"));
  const auto cols = static_cast<graph::NodeId>(options.get_int("cols"));
  const std::uint64_t seed = options.get_u64("seed");

  const graph::Graph sheet = graph::hex_grid(rows, cols);
  std::cout << "proneural cluster: " << rows << "x" << cols << " cells ("
            << sheet.describe() << ")\n\n";

  // Run with trace recording so the developmental timeline can be replayed.
  mis::LocalFeedbackMis notch_delta;  // lateral inhibition with feedback
  sim::SimConfig config;
  config.record_trace = true;
  sim::BeepSimulator simulator(sheet, config);
  const sim::RunResult result =
      simulator.run(notch_delta, support::Xoshiro256StarStar(seed));

  const mis::VerificationReport report = mis::verify_mis_run(sheet, result);
  std::cout << "SOP pattern after " << result.rounds << " time steps ('*' = SOP):\n\n"
            << render_epithelium(rows, cols, result.status) << '\n'
            << "SOPs: " << report.mis_size << " / " << sheet.node_count() << " cells ("
            << 100.0 * static_cast<double>(report.mis_size) /
                   static_cast<double>(sheet.node_count())
            << "%)\n"
            << "pattern is a valid MIS: " << (report.valid() ? "yes" : "NO") << '\n'
            << "mean Delta bursts (beeps) per cell: " << result.mean_beeps_per_node()
            << "\n";

  if (options.get_bool("timeline")) {
    std::cout << "\ndevelopmental timeline (cells committing per time step):\n";
    const sim::Trace& trace = simulator.trace();
    std::vector<std::size_t> sops(result.rounds, 0), inhibited(result.rounds, 0);
    for (const sim::Event& e : trace.events()) {
      if (e.kind == sim::EventKind::kJoinMis) ++sops[e.round];
      if (e.kind == sim::EventKind::kDeactivate) ++inhibited[e.round];
    }
    std::size_t undecided = sheet.node_count();
    for (std::size_t t = 0; t < result.rounds; ++t) {
      undecided -= sops[t] + inhibited[t];
      std::cout << "  t=" << t << ": +" << sops[t] << " SOPs, +" << inhibited[t]
                << " inhibited, " << undecided << " undecided\n";
    }
  }
  return report.valid() ? 0 : 1;
}

// Quickstart: select a maximal independent set on a random network with the
// paper's local-feedback beeping algorithm and inspect the result.
//
//   ./quickstart [--n=200] [--p=0.5] [--seed=1] [--dot]
#include <iostream>

#include "graph/io.hpp"
#include "mis/mis.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace beepmis;

  support::Options options;
  options.add("n", "200", "number of nodes");
  options.add("p", "0.5", "edge probability for G(n, p)");
  options.add("seed", "1", "random seed (graph and algorithm)");
  options.add("dot", "false", "print the graph as Graphviz DOT with the MIS highlighted");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("quickstart");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("quickstart");
    return 0;
  }

  const auto n = static_cast<graph::NodeId>(options.get_int("n"));
  const double p = options.get_double("p");
  const std::uint64_t seed = options.get_u64("seed");

  // 1. Build a random network.
  auto graph_rng = support::Xoshiro256StarStar(seed);
  const graph::Graph g = graph::gnp(n, p, graph_rng);
  std::cout << "network: " << g.describe() << ", max degree " << g.max_degree() << "\n";

  // 2. Run the local-feedback beeping MIS (Definition 1 of the paper).
  const sim::RunResult result = mis::run_local_feedback(g, seed);

  // 3. Inspect and verify.
  const mis::VerificationReport report = mis::verify_mis_run(g, result);
  std::cout << "algorithm: local-feedback beeping MIS\n"
            << "time steps: " << result.rounds << "  (2.5*log2 n = "
            << mis::figure3_local_reference(n) << ")\n"
            << "mean beeps per node: " << result.mean_beeps_per_node() << "\n"
            << "MIS size: " << report.mis_size << "\n"
            << "verification: " << report.summary() << "\n";

  std::cout << "MIS members:";
  for (const graph::NodeId v : result.mis()) std::cout << ' ' << v;
  std::cout << '\n';

  if (options.get_bool("dot")) {
    const auto selected = result.mis();
    graph::write_dot(std::cout, g, selected);
  }
  return report.valid() ? 0 : 1;
}

// beepmis_client: thin beepmisd client.  Submits one serialized
// SweepSpec (cli/sweep_spec.hpp) and prints the streamed progress plus
// the same bit-exact stats digest beepmis_cli prints for a local sweep
// (stats_bits / counts_exact lines), so scripts can diff a served
// result against a direct run — the kill-and-restart resume oracle does
// exactly that.  Exits with the server-reported sweep exit code
// (0 complete, 2 quarantined, 3 truncated, 1 failed/degraded).
//
//   ./beepmis_client --socket=/tmp/beepmis.sock
//       --spec='sweepspec v3 graph=gnp graph.n=2000 ... trials=128'
//   ./beepmis_client --socket=... --ping     # liveness probe
//   ./beepmis_client --socket=... --drain    # graceful shutdown
//   ./beepmis_client --socket=... --stop     # fast durable shutdown
#include <bit>
#include <cstdint>
#include <iostream>

#include "cli/registry.hpp"
#include "support/hash.hpp"
#include "support/options.hpp"
#include "svc/client.hpp"

namespace {

/// Same bit-exact digest lines as beepmis_cli's sweep mode.
void print_stats_bits(const char* name, const beepmis::support::RunningStats& s) {
  using beepmis::support::to_hex_u64;
  const auto st = s.state();
  std::cout << "stats_bits " << name << ' ' << st.count << ' '
            << to_hex_u64(std::bit_cast<std::uint64_t>(st.mean)) << ' '
            << to_hex_u64(std::bit_cast<std::uint64_t>(st.m2)) << ' '
            << to_hex_u64(std::bit_cast<std::uint64_t>(st.min)) << ' '
            << to_hex_u64(std::bit_cast<std::uint64_t>(st.max)) << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace beepmis;

  support::Options options;
  options.add("socket", "", "beepmisd unix socket path (required)");
  options.add("spec", "", "serialized sweep request ('sweepspec v3 ...')");
  options.add("client", "beepmis_client", "fair-share client id (one token)");
  options.add("priority", "0", "job priority 0-9 (higher runs first)");
  options.add("ping", "false", "probe the server and exit");
  options.add("drain", "false", "ask the server to drain and exit");
  options.add("stop", "false", "ask the server to stop fast and exit");
  if (!options.parse(argc, argv)) {
    std::cerr << options.error() << '\n' << options.usage("beepmis_client");
    return 1;
  }
  if (options.help_requested()) {
    std::cout << options.usage("beepmis_client");
    return 0;
  }

  try {
    svc::SweepClient client = svc::SweepClient::connect(options.get("socket"));
    if (options.get_bool("ping")) {
      std::cout << (client.ping() ? "pong" : "unexpected reply") << '\n';
      return 0;
    }
    if (options.get_bool("drain")) {
      std::cout << client.drain() << '\n';
      return 0;
    }
    if (options.get_bool("stop")) {
      std::cout << client.stop() << '\n';
      return 0;
    }

    const std::string spec_text = options.get("spec");
    if (spec_text.empty()) {
      std::cerr << "beepmis_client: --spec is required (or --ping/--drain/--stop)\n";
      return 1;
    }
    using Event = svc::SweepClient::Event;
    Event event = client.submit(spec_text, static_cast<int>(options.get_int("priority")),
                                options.get("client"));
    while (event.kind == Event::Kind::kAck || event.kind == Event::Kind::kProgress) {
      if (event.kind == Event::Kind::kAck) {
        std::cout << "ack " << support::to_hex_u64(event.fingerprint) << ' ' << event.ack_mode
                  << " chunks=" << event.chunks_total << std::endl;
      } else {
        std::cout << "progress " << event.chunks_done << '/' << event.chunks_total << std::endl;
      }
      event = client.next_event();
    }
    if (event.kind == Event::Kind::kError) {
      std::cerr << "beepmis_client: server: " << event.message << '\n';
      return 1;
    }

    std::cout << "result status=" << event.status << " exit=" << event.exit_code
              << " cached=" << (event.cached ? 1 : 0) << '\n';
    if (!event.message.empty()) std::cout << "reason: " << event.message << '\n';
    if (event.has_stats) {
      const harness::TrialStats& stats = event.stats;
      if (!stats.resume_discarded_reason.empty()) {
        std::cout << "journal rejected: " << stats.resume_discarded_reason << '\n';
      }
      std::cout << "sweep: requested " << stats.requested_trials << ", completed "
                << stats.trials << ", attempted " << stats.attempted << ", quarantined "
                << stats.quarantined << ", retries " << stats.retries << ", resumed "
                << stats.resumed_trials << ", truncated " << (stats.truncated ? 1 : 0) << '\n';
      print_stats_bits("rounds", stats.rounds);
      print_stats_bits("beeps_per_node", stats.beeps_per_node);
      print_stats_bits("max_beeps_any_node", stats.max_beeps_any_node);
      print_stats_bits("mis_size", stats.mis_size);
      print_stats_bits("message_bits", stats.message_bits);
      std::cout << "counts_exact " << stats.trials << ' ' << stats.terminated << ' '
                << stats.valid << ' ' << stats.independence_violations << ' '
                << stats.uncovered_nodes << '\n';
    }
    return event.exit_code;
  } catch (const std::exception& e) {
    std::cerr << "beepmis_client: " << e.what() << '\n';
    return 1;
  }
}
